//! Offline vendored stand-in for the subset of the `criterion` API this
//! workspace's benches use. The build container has no access to
//! crates.io, so this stub keeps `cargo bench` compiling and producing
//! useful wall-clock numbers (median of N timed samples printed to
//! stdout) without the real crate's statistics, plots or baselines.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Measurement configuration and top-level bench registry.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 20 }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&id.to_string(), self.sample_size, &mut f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: std::marker::PhantomData,
        }
    }

    /// Entry point used by the `criterion_main!` expansion.
    pub fn final_summary(&self) {}
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: std::marker::PhantomData<&'a mut Criterion>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&format!("{}/{}", self.name, id), self.sample_size, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_bench(
            &format!("{}/{}", self.name, id),
            self.sample_size,
            &mut |b| {
                f(b, input);
            },
        );
        self
    }

    pub fn finish(self) {}
}

fn run_bench(label: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        elapsed: Duration::ZERO,
        iters: 0,
    };
    // Warm-up pass (also primes lazy setup inside the closure).
    f(&mut bencher);
    let mut times = Vec::with_capacity(samples);
    for _ in 0..samples {
        bencher.elapsed = Duration::ZERO;
        bencher.iters = 0;
        f(&mut bencher);
        if bencher.iters > 0 {
            times.push(bencher.elapsed.as_nanos() as f64 / bencher.iters as f64);
        }
    }
    times.sort_by(f64::total_cmp);
    let median = times.get(times.len() / 2).copied().unwrap_or(f64::NAN);
    println!("bench: {label:<50} median {median:>12.1} ns/iter ({samples} samples)");
}

/// Passed to benchmark closures; times the measured routine.
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        let out = routine();
        self.elapsed += start.elapsed();
        self.iters += 1;
        drop(black_box(out));
    }

    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let input = setup();
        let start = Instant::now();
        let out = routine(input);
        self.elapsed += start.elapsed();
        self.iters += 1;
        drop(black_box(out));
    }
}

/// Batch sizing hint; ignored by the stub.
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Throughput annotation; ignored by the stub.
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// Two-part benchmark identifier (`function/parameter`).
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        Self {
            full: format!("{function}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            full: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.full)
    }
}

/// Opaque value barrier preventing the optimiser from deleting benched work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a group runner function, either positionally or with an
/// explicit config.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = <$crate::Criterion as ::core::default::Default>::default();
            targets = $($target),+
        );
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_square(c: &mut Criterion) {
        c.bench_function("square", |b| b.iter(|| black_box(21u64) * 2));
        let mut g = c.benchmark_group("grouped");
        g.sample_size(3);
        g.throughput(Throughput::Bytes(8));
        g.bench_function("square", |b| b.iter(|| black_box(21u64) * 2));
        g.bench_with_input(BenchmarkId::new("with_input", 4), &4u64, |b, &n| {
            b.iter_batched(|| n, |n| n * n, BatchSize::LargeInput)
        });
        g.finish();
    }

    criterion_group! {
        name = configured;
        config = Criterion::default().sample_size(2);
        targets = bench_square
    }

    criterion_group!(positional, bench_square);

    #[test]
    fn groups_run() {
        configured();
        positional();
    }
}
