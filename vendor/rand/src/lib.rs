//! Offline vendored stand-in for the subset of the `rand` 0.8 API this
//! workspace uses: `Rng::gen`, `Rng::gen_range`, `Rng::gen_bool`,
//! `SeedableRng::seed_from_u64` and `rngs::StdRng`.
//!
//! The build container has no access to crates.io, so the workspace ships
//! this deterministic implementation instead. `StdRng` is xoshiro256++
//! seeded through SplitMix64 — statistically solid for test-data
//! generation, *not* cryptographic. Sequences are stable across platforms
//! and releases, which the reproducibility tests rely on.

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    /// Sample a value of type `T` from its standard distribution
    /// (uniform `[0, 1)` for floats, uniform over the domain for ints).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from a range (half-open or inclusive).
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli trial with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction from seeds; only the `seed_from_u64` entry point is needed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable from their "standard" distribution via [`Rng::gen`].
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange {
    type Output;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Uniform `u64` in `[0, span)` without modulo bias (Lemire's method,
/// simplified to the single widening multiply — the bias is < 2^-64).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + uniform_below(rng, span + 1) as $t
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_sint {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
    )*};
}

impl_sample_range_sint!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl SampleRange for core::ops::Range<f64> {
    type Output = f64;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + (self.end - self.start) * f64::sample(rng)
    }
}

impl SampleRange for core::ops::Range<f32> {
    type Output = f32;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + (self.end - self.start) * f32::sample(rng)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (the stub's `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    use super::RngCore;

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..200 {
            let v = rng.gen_range(0..=3usize);
            assert!(v <= 3);
            seen_lo |= v == 0;
            seen_hi |= v == 3;
        }
        assert!(seen_lo && seen_hi, "inclusive range must reach both ends");
        for _ in 0..200 {
            let v = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&v));
            let f = rng.gen_range(1.5f64..2.5);
            assert!((1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn rng_usable_through_mut_ref() {
        fn takes_impl(rng: &mut impl Rng) -> f64 {
            rng.gen::<f64>()
        }
        let mut rng = StdRng::seed_from_u64(1);
        let _ = takes_impl(&mut rng);
        let r = &mut rng;
        let _ = takes_impl(r);
    }

    #[test]
    fn gen_bool_probability_sane() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((1500..3500).contains(&hits), "got {hits}");
    }
}
