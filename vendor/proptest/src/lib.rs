//! Offline vendored stand-in for the subset of the `proptest` API this
//! workspace uses: the `proptest!` macro, `ProptestConfig::with_cases`,
//! `any::<T>()`, range and tuple strategies, `prop_map`,
//! `collection::vec`, and `prop_assert!`/`prop_assert_eq!`.
//!
//! The build container has no access to crates.io. Compared to the real
//! crate, this stub drops input *shrinking*: a failing case reports the
//! generated input (via the panic message of the assertion that tripped)
//! but does not minimise it. Generation is deterministic: the RNG is
//! seeded from the test name, so failures reproduce exactly. Set
//! `PROPTEST_SEED=<u64>` to explore a different sequence locally.

use rand::{Rng, SeedableRng};

/// Runner configuration; only the case count is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Drives one property test: owns the RNG and the case budget.
pub struct TestRunner {
    rng: StdRng,
    cases: u32,
}

impl TestRunner {
    #[must_use]
    pub fn new(config: ProptestConfig, name: &str) -> Self {
        // FNV-1a over the test name: deterministic per test, stable across
        // runs, different across tests.
        let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            seed ^= u64::from(b);
            seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
        }
        if let Ok(s) = std::env::var("PROPTEST_SEED") {
            if let Ok(s) = s.parse::<u64>() {
                seed = seed.wrapping_add(s);
            }
        }
        Self {
            rng: StdRng::seed_from_u64(seed),
            cases: config.cases,
        }
    }

    #[must_use]
    pub fn cases(&self) -> u32 {
        self.cases
    }

    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}

/// A generator of values of type `Value`.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_filter<F>(self, reason: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            f,
            reason,
        }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_filter`]. Rejection-samples; gives
/// up (panics) after 1000 consecutive rejections like the real crate.
pub struct Filter<S, F> {
    inner: S,
    f: F,
    reason: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter rejected 1000 candidates in a row: {}",
            self.reason
        );
    }
}

/// Types with a canonical "anything" strategy, via [`any`].
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_via_standard {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.gen::<$t>()
            }
        }
    )*};
}

impl_arbitrary_via_standard!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

impl Arbitrary for f64 {
    /// Finite `f64`s across the whole exponent range (no NaN/inf), which is
    /// what geometry property tests want from `any::<f64>()`.
    fn arbitrary(rng: &mut StdRng) -> Self {
        let mantissa = rng.gen::<f64>() * 2.0 - 1.0;
        let exp = rng.gen_range(-64i32..64);
        mantissa * (exp as f64).exp2()
    }
}

/// Strategy for [`Arbitrary`] types; see [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — the standard strategy for `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Constant strategy (`Just` in real proptest).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_strategy_for_range {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_strategy_for_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64, f32);

macro_rules! impl_strategy_for_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_strategy_for_tuple!(A: 0);
impl_strategy_for_tuple!(A: 0, B: 1);
impl_strategy_for_tuple!(A: 0, B: 1, C: 2);
impl_strategy_for_tuple!(A: 0, B: 1, C: 2, D: 3);
impl_strategy_for_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_strategy_for_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

pub mod collection {
    use super::{StdRng, Strategy};
    use rand::Rng;

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub struct VecStrategy<S> {
        elem: S,
        size: core::ops::Range<usize>,
    }

    /// `proptest::collection::vec(elem, len_range)`.
    pub fn vec<S: Strategy>(elem: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = if self.size.is_empty() {
                self.size.start
            } else {
                rng.gen_range(self.size.clone())
            };
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Like `assert!`, inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Like `assert_eq!`, inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Like `assert_ne!`, inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// The property-test block macro. Supports the common form:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(16))]
///     #[test]
///     fn prop(x in 0u64..10, v in collection::vec(any::<u8>(), 0..64)) { ... }
/// }
/// ```
///
/// Unlike the real crate there is no shrinking; assertions panic directly.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with ($cfg) $($rest)*);
    };
    (@with ($cfg:expr)) => {};
    (@with ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut runner = $crate::TestRunner::new(config, stringify!($name));
            for _case in 0..runner.cases() {
                let ($($arg,)*) =
                    ($($crate::Strategy::generate(&($strat), runner.rng()),)*);
                $body
            }
        }
        $crate::proptest!(@with ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with ($crate::ProptestConfig::default()) $($rest)*);
    };
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, Just,
        ProptestConfig, Strategy, TestRunner,
    };
}

// Re-exported so the expanded `proptest!` body can name the RNG type.
pub use rand::rngs::StdRng;

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn evens() -> impl Strategy<Value = u64> {
        (0u64..1000).prop_map(|x| x * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples(x in 1usize..10, (a, b) in (0.0f64..1.0, -5i64..5)) {
            prop_assert!((1..10).contains(&x));
            prop_assert!((0.0..1.0).contains(&a));
            prop_assert!((-5..5).contains(&b));
        }

        #[test]
        fn mapped_strategy(e in evens()) {
            prop_assert_eq!(e % 2, 0);
        }

        #[test]
        fn vec_strategy_lengths(v in crate::collection::vec(any::<u8>(), 3..7)) {
            prop_assert!((3..7).contains(&v.len()));
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(x in 0u32..10) {
            prop_assert!(x < 10);
        }
    }

    #[test]
    fn deterministic_across_runners() {
        let mut r1 = TestRunner::new(ProptestConfig::with_cases(1), "seed_test");
        let mut r2 = TestRunner::new(ProptestConfig::with_cases(1), "seed_test");
        let s = 0u64..u64::MAX;
        assert_eq!(s.generate(r1.rng()), s.generate(r2.rng()));
    }
}
