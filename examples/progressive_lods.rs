//! Inspect the LOD ladder of one PPVP-compressed vessel: per-LOD face
//! counts, compressed segment sizes, decode times, and enclosed volume
//! (which grows monotonically — the progressive-approximation guarantee),
//! then export each LOD as a Wavefront OBJ file for viewing.
//!
//! ```sh
//! cargo run --release --example progressive_lods [out_dir]
//! ```

use rand::SeedableRng;
use std::io::Write;
use tripro_mesh::{encode, EncoderConfig};
use tripro_synth::{vessel, VesselConfig};

fn main() {
    let out_dir = std::env::args().nth(1).unwrap_or_else(|| {
        std::env::temp_dir()
            .join("tripro_lods")
            .display()
            .to_string()
    });
    std::fs::create_dir_all(&out_dir).expect("create output dir");

    let mut rng = rand::rngs::StdRng::seed_from_u64(9);
    let cfg = VesselConfig {
        levels: 4,
        grid: 44,
        ..Default::default()
    };
    println!("generating a bifurcated vessel...");
    let v = vessel(&mut rng, &cfg, tripro_geom::Vec3::ZERO);
    println!(
        "  {} faces, {} bifurcation levels",
        v.mesh.faces.len(),
        cfg.levels
    );

    let cm = encode(&v.mesh, &EncoderConfig::default()).expect("encode");
    let raw = tripro_mesh::raw_size(&v.mesh);
    println!(
        "compressed: {} B over {} LODs (raw {} B, ratio {:.1}x)\n",
        cm.payload_size(),
        cm.max_lod() + 1,
        raw,
        raw as f64 / cm.payload_size() as f64
    );

    println!(
        "{:>4} {:>9} {:>12} {:>12} {:>14}",
        "LOD", "faces", "segment B", "decode ms", "volume"
    );
    let mut dec = cm.decoder().expect("decode base");
    for (lod, seg_bytes) in cm.segment_sizes().iter().enumerate() {
        let t0 = std::time::Instant::now();
        dec.decode_to(lod).expect("decode");
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        let tris = dec.triangles();
        let vol = tripro_geom::mesh_volume(&tris);
        println!(
            "{lod:>4} {:>9} {:>12} {:>12.2} {:>14.3}",
            tris.len(),
            seg_bytes,
            ms,
            vol
        );
        write_obj(&format!("{out_dir}/vessel_lod{lod}.obj"), &tris);
    }
    println!("\nOBJ files written to {out_dir}");
    println!("volume grows with LOD: every lower LOD is a subset of the full object");
}

fn write_obj(path: &str, tris: &[tripro_geom::Triangle]) {
    let mut f = std::io::BufWriter::new(std::fs::File::create(path).expect("create obj"));
    for t in tris {
        for p in t.vertices() {
            writeln!(f, "v {} {} {}", p.x, p.y, p.z).unwrap();
        }
    }
    for i in 0..tris.len() {
        let b = 3 * i + 1;
        writeln!(f, "f {} {} {}", b, b + 1, b + 2).unwrap();
    }
}
