//! Quickstart: compress a handful of 3D objects with PPVP and run a
//! progressive nearest-neighbour join.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use rand::SeedableRng;
use tripro::{Accel, Engine, ObjectStore, Paradigm, QueryConfig, StoreConfig};
use tripro_geom::vec3;
use tripro_synth::{nucleus, NucleusConfig};

fn main() {
    // 1. Generate a few synthetic nuclei (stand-ins for any watertight
    //    triangle meshes you may have).
    let mut rng = rand::rngs::StdRng::seed_from_u64(42);
    let cfg = NucleusConfig::default();
    let targets: Vec<_> = (0..8)
        .map(|i| nucleus(&mut rng, &cfg, vec3(i as f64 * 6.0, 0.0, 0.0)))
        .collect();
    let sources: Vec<_> = (0..8)
        .map(|i| nucleus(&mut rng, &cfg, vec3(i as f64 * 6.0 + 2.0, 4.0, 1.0)))
        .collect();

    // 2. Build compressed object stores. Every object is PPVP-encoded into
    //    a multi-LOD progressive format and indexed in an R-tree.
    let store_cfg = StoreConfig::default();
    let target_store = ObjectStore::build(&targets, &store_cfg).expect("valid meshes");
    let source_store = ObjectStore::build(&sources, &store_cfg).expect("valid meshes");
    println!(
        "compressed {} + {} objects into {} KiB (raw: {} KiB)",
        target_store.len(),
        source_store.len(),
        (target_store.compressed_bytes() + source_store.compressed_bytes()) / 1024,
        (targets
            .iter()
            .chain(&sources)
            .map(tripro_mesh::raw_size)
            .sum::<usize>())
            / 1024,
    );

    // 3. Run the same nearest-neighbour join under both paradigms.
    let engine = Engine::new(&target_store, &source_store);
    for paradigm in [Paradigm::FilterRefine, Paradigm::FilterProgressiveRefine] {
        target_store.cache().clear();
        source_store.cache().clear();
        let cfg = QueryConfig::new(paradigm, Accel::Brute);
        let t0 = std::time::Instant::now();
        let (pairs, stats) = engine.nn_join(&cfg).expect("join failed");
        let elapsed = t0.elapsed();
        let snap = stats.snapshot();
        println!(
            "\n{}: {:?} ({} face-pair tests, {} decodes)",
            paradigm.label(),
            elapsed,
            snap.face_pair_tests,
            snap.decodes,
        );
        for (t, nn) in &pairs {
            println!("  target {t} -> nearest source {nn:?}");
        }
    }
    println!("\nBoth paradigms return identical results; FPR does less work.");
}
