//! LOD-list tuning (paper §4.4 and §6.5): profile a sampled join, print the
//! per-LOD evaluated/pruned counts (Fig 12's data), and derive the list of
//! LODs worth refining at via the `pruned fraction > 1/r²` rule.
//!
//! ```sh
//! cargo run --release --example lod_tuning
//! ```

use tripro::{
    choose_lods, Accel, Engine, ObjectStore, Paradigm, QueryConfig, QueryKind, StoreConfig,
};
use tripro_synth::DatasetConfig;

fn main() {
    let block = tripro_synth::generate(&DatasetConfig {
        nuclei_count: 120,
        vessel_count: 0,
        ..Default::default()
    });
    let cfg = StoreConfig::default();
    let a = ObjectStore::build(&block.nuclei_a, &cfg).expect("encode A");
    let b = ObjectStore::build(&block.nuclei_b, &cfg).expect("encode B");
    let engine = Engine::new(&a, &b);

    for kind in [
        QueryKind::Intersection,
        QueryKind::Within(1.0),
        QueryKind::NearestNeighbour,
    ] {
        a.cache().clear();
        b.cache().clear();
        let choice = choose_lods(&engine, kind, 60, Accel::Brute).expect("profiling failed");
        println!("\n=== {} join ===", kind.label());
        println!(
            "measured r = {:.2}, break-even pruned fraction = {:.0}%",
            choice.r,
            choice.threshold * 100.0
        );
        println!(
            "{:>4} {:>10} {:>10} {:>8}",
            "LOD", "evaluated", "pruned", "frac"
        );
        for act in &choice.activity {
            println!(
                "{:>4} {:>10} {:>10} {:>7.1}%{}",
                act.lod,
                act.evaluated,
                act.pruned,
                act.pruned_fraction * 100.0,
                if choice.chosen.contains(&act.lod) {
                    "  <- refine here"
                } else {
                    ""
                }
            );
        }

        // Verify the tuned list returns identical results, faster.
        let full = QueryConfig::new(Paradigm::FilterProgressiveRefine, Accel::Brute);
        let tuned = full.clone().with_lods(choice.chosen.clone());
        a.cache().clear();
        b.cache().clear();
        let t0 = std::time::Instant::now();
        let (r_full, _) = engine.nn_join(&full).expect("join failed");
        let t_full = t0.elapsed();
        a.cache().clear();
        b.cache().clear();
        let t0 = std::time::Instant::now();
        let (r_tuned, _) = engine.nn_join(&tuned).expect("join failed");
        let t_tuned = t0.elapsed();
        assert_eq!(r_full, r_tuned, "tuning must not change results");
        println!(
            "all-LODs NN join: {t_full:?}; tuned {:?}: {t_tuned:?}",
            choice.chosen
        );
    }
}
