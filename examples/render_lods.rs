//! Render every LOD of a PPVP-compressed vessel to PPM images with the
//! built-in software renderer — see with your own eyes what progressive
//! protruding-vertex pruning does to a polyhedron.
//!
//! ```sh
//! cargo run --release --example render_lods [out_dir]
//! ```

use rand::SeedableRng;
use tripro_mesh::{encode, EncoderConfig};
use tripro_synth::{vessel, VesselConfig};
use tripro_viz::{render_triangles, Camera, RenderOptions};

fn main() {
    let out_dir = std::env::args().nth(1).unwrap_or_else(|| {
        std::env::temp_dir()
            .join("tripro_renders")
            .display()
            .to_string()
    });
    std::fs::create_dir_all(&out_dir).expect("create output dir");

    let mut rng = rand::rngs::StdRng::seed_from_u64(21);
    let cfg = VesselConfig {
        levels: 3,
        grid: 40,
        ..Default::default()
    };
    let v = vessel(&mut rng, &cfg, tripro_geom::Vec3::ZERO);
    let cm = encode(&v.mesh, &EncoderConfig::default()).expect("encode");

    // One fixed camera framing the FULL object, reused for every LOD, so
    // the images are directly comparable.
    let cam = Camera::isometric(&v.mesh.aabb());
    let opts = RenderOptions {
        width: 640,
        height: 640,
        ..Default::default()
    };

    let mut dec = cm.decoder().expect("decode");
    for lod in 0..=cm.max_lod() {
        dec.decode_to(lod).expect("decode");
        let tris = dec.triangles();
        let img = render_triangles(&tris, &cam, &opts);
        let path = format!("{out_dir}/vessel_lod{lod}.ppm");
        img.save_ppm(&path).expect("write ppm");
        println!("LOD {lod}: {} faces -> {path}", tris.len());
    }
    println!("\nimages share one camera; watch the vessel grow back to full detail");
}
