//! Digital-pathology scenario from the paper's introduction: given a tissue
//! block with segmented nuclei and blood vessels, find for every nucleus the
//! vessels within a clinical distance, comparing acceleration strategies.
//!
//! ```sh
//! cargo run --release --example pathology_join
//! ```

use tripro::{Accel, Engine, ObjectStore, Paradigm, QueryConfig, StoreConfig};
use tripro_synth::{DatasetConfig, VesselConfig};

fn main() {
    // A small tissue block: 150 nuclei and 2 vessels.
    let data_cfg = DatasetConfig {
        nuclei_count: 150,
        vessel_count: 2,
        vessel: VesselConfig {
            levels: 3,
            grid: 36,
            ..Default::default()
        },
        ..Default::default()
    };
    println!("generating tissue block...");
    let block = tripro_synth::generate(&data_cfg);
    println!(
        "  {} nuclei (~{} faces each), {} vessels (~{} faces each)",
        block.nuclei_a.len(),
        block.nuclei_a[0].faces.len(),
        block.vessels.len(),
        block.vessels.iter().map(|v| v.faces.len()).sum::<usize>() / block.vessels.len(),
    );

    let store_cfg = StoreConfig::default();
    let nuclei = ObjectStore::build(&block.nuclei_a, &store_cfg).expect("nuclei encode");
    let vessels = ObjectStore::build(&block.vessels, &store_cfg).expect("vessels encode");
    let engine = Engine::new(&nuclei, &vessels);

    // "Which vessels lie within d of each nucleus?" — the WN-NV test.
    let d = 4.0;
    println!("\nwithin-join (d = {d}), all strategies, FR vs FPR:");
    println!(
        "{:<16} {:>12} {:>12} {:>14} {:>10}",
        "accel", "FR (ms)", "FPR (ms)", "face pairs FPR", "matches"
    );
    for accel in Accel::ALL {
        let mut row = (0.0, 0.0, 0, 0);
        for paradigm in [Paradigm::FilterRefine, Paradigm::FilterProgressiveRefine] {
            nuclei.cache().clear();
            vessels.cache().clear();
            let cfg = QueryConfig::new(paradigm, accel).with_threads(4);
            let t0 = std::time::Instant::now();
            let (pairs, stats) = engine.within_join(d, &cfg).expect("join failed");
            let ms = t0.elapsed().as_secs_f64() * 1e3;
            let matches: usize = pairs.iter().map(|(_, v)| v.len()).sum();
            match paradigm {
                Paradigm::FilterRefine => row.0 = ms,
                Paradigm::FilterProgressiveRefine => {
                    row.1 = ms;
                    row.2 = stats.snapshot().face_pair_tests;
                    row.3 = matches;
                }
            }
        }
        println!(
            "{:<16} {:>12.1} {:>12.1} {:>14} {:>10}",
            accel.label(),
            row.0,
            row.1,
            row.2,
            row.3
        );
    }
    println!("\nFPR returns the same matches while refining most pairs at low LODs.");
}
