#!/usr/bin/env bash
# Join-benchmark snapshot for CI: runs the bench_joins harness at tiny
# scale and leaves target/harness/BENCH_joins.json for artifact upload.
#
# Usage: scripts/bench_snapshot.sh [scale]
#   scale: tiny (default) | small | medium
set -euo pipefail
cd "$(dirname "$0")/.."

SCALE="${1:-${TRIPRO_SCALE:-tiny}}"
export TRIPRO_SCALE="$SCALE"

echo "[bench_snapshot] scale=$TRIPRO_SCALE threads=${TRIPRO_THREADS:-auto}"
cargo run --release -p tripro-bench --bin bench_joins

test -s target/harness/BENCH_joins.json
# The snapshot must carry the pipelined-vs-phased comparison (wall time,
# overlap factor, per-stage occupancy) alongside the paradigm/accel cells.
grep -q '"exec_overlap"' target/harness/BENCH_joins.json
grep -q '"overlap_factor"' target/harness/BENCH_joins.json
echo "[bench_snapshot] ok: target/harness/BENCH_joins.json (with exec_overlap columns)"

echo "[bench_snapshot] observability overhead guard"
cargo run --release -p tripro-bench --bin bench_obs

test -s target/harness/BENCH_obs.json
echo "[bench_snapshot] ok: target/harness/BENCH_obs.json"
