#!/usr/bin/env bash
# Smoke test for the sharded serve tier: build a tiny synthetic dataset,
# start a loopback 3-shard cluster behind a coordinator next to a
# single-engine reference serving the same stores, and assert
#
#   1. the cluster answers the mixed workload byte-identically to the
#      single engine (tripro-load --verify exits nonzero on divergence),
#   2. per-shard scatter metrics are visible on the coordinator,
#   3. the coordinator's exposition is federated: per-node families
#      (node="shard0..2") plus an exact node="cluster" aggregate,
#   4. `tripro trace --addr` on the coordinator renders stitched cluster
#      waterfalls with child spans from all 3 shards under one trace id,
#   5. every process drains cleanly on a wire Shutdown frame.
#
# Usage: scripts/smoke_cluster.sh [port-base]   (default 3760)
set -euo pipefail
cd "$(dirname "$0")/.."

BASE="${1:-3760}"
SINGLE="127.0.0.1:$BASE"
S1="127.0.0.1:$((BASE + 1))"
S2="127.0.0.1:$((BASE + 2))"
S3="127.0.0.1:$((BASE + 3))"
COORD="127.0.0.1:$((BASE + 4))"
WORK="target/smoke_cluster"
rm -rf "$WORK"
mkdir -p "$WORK"

echo "[smoke_cluster] building release binaries"
cargo build --release -p tripro-cli -p tripro-bench --bin tripro --bin tripro-load

BIN=target/release

echo "[smoke_cluster] generating + compressing a tiny dataset"
"$BIN/tripro" generate --out "$WORK/data" --nuclei 16 --vessels 0
"$BIN/tripro" build --in "$WORK/data/nuclei_a" --out "$WORK/store_a"
"$BIN/tripro" build --in "$WORK/data/nuclei_b" --out "$WORK/store_b"

PIDS=()
cleanup() {
    for pid in "${PIDS[@]}"; do kill "$pid" 2>/dev/null || true; done
}
trap cleanup EXIT

await_port() {
    local addr=$1
    for _ in $(seq 1 100); do
        if (exec 3<>"/dev/tcp/${addr%:*}/${addr#*:}") 2>/dev/null; then
            exec 3>&- || true
            return 0
        fi
        sleep 0.2
    done
    echo "[smoke_cluster] $addr never came up" >&2
    return 1
}

echo "[smoke_cluster] starting single-engine reference on $SINGLE"
"$BIN/tripro" serve --target "$WORK/store_a" --source "$WORK/store_b" \
    --addr "$SINGLE" &
PIDS+=($!)

echo "[smoke_cluster] starting 3 shards"
i=0
for addr in "$S1" "$S2" "$S3"; do
    "$BIN/tripro" serve --target "$WORK/store_a" --source "$WORK/store_b" \
        --addr "$addr" --shard-index "$i" --shard-count 3 --epoch 1 \
        --trace-slow-ms 0 &
    PIDS+=($!)
    i=$((i + 1))
done
for addr in "$SINGLE" "$S1" "$S2" "$S3"; do await_port "$addr"; done

echo "[smoke_cluster] starting coordinator on $COORD"
# --max-inflight above the client count so a small CI box never sheds
# the verification workload for lack of executor slots.
"$BIN/tripro" serve --coordinator --target "$WORK/store_a" \
    --shards "$S1,$S2,$S3" --addr "$COORD" --epoch 1 --max-inflight 16 \
    --trace-slow-ms 0 &
PIDS+=($!)
await_port "$COORD"

echo "[smoke_cluster] mixed workload through the coordinator, verified against the single engine"
"$BIN/tripro-load" --addr "$COORD" --verify "$SINGLE" --clients 4 --requests 40 \
    --mix intersect,within,nn,knn,contains --out "$WORK/BENCH_cluster.json"

echo "[smoke_cluster] checking per-shard scatter metrics on the coordinator"
METRICS="$WORK/metrics.txt"
"$BIN/tripro" metrics --addr "$COORD" --check > "$METRICS"
grep -q '^# TYPE tripro_shard_fanout histogram$' "$METRICS"
grep -q 'tripro_shard_subquery_seconds' "$METRICS"
grep -q 'tripro_merge_seconds' "$METRICS"

echo "[smoke_cluster] federated exposition: per-node families + cluster aggregate"
for node in cluster coordinator shard0 shard1 shard2; do
    grep -q "node=\"$node\"" "$METRICS" || {
        echo "[smoke_cluster] federated exposition is missing node=\"$node\"" >&2
        exit 1
    }
done
# Every shard must export the engine's query-latency family; the
# coordinator (which merges, not executes) must export its merge timer.
for node in shard0 shard1 shard2; do
    grep 'tripro_query_latency_seconds_count{' "$METRICS" \
        | grep -q "node=\"$node\"" || {
        echo "[smoke_cluster] no tripro_query_latency_seconds for node=\"$node\"" >&2
        exit 1
    }
done
grep 'tripro_merge_seconds_count{' "$METRICS" | grep -q 'node="coordinator"' || {
    echo "[smoke_cluster] no tripro_merge_seconds for node=\"coordinator\"" >&2
    exit 1
}

echo "[smoke_cluster] cross-node trace waterfalls on the coordinator"
TRACES="$WORK/traces.txt"
"$BIN/tripro" trace --addr "$COORD" > "$TRACES"
# At least one stitched record must contain a child span from every
# shard; records are blocks starting with "trace 0x...".
awk '
    /^trace 0x/ { if (s0 && s1 && s2) ok = 1; s0 = s1 = s2 = 0 }
    /shard=0/ { s0 = 1 }
    /shard=1/ { s1 = 1 }
    /shard=2/ { s2 = 1 }
    END { if ((s0 && s1 && s2) || ok) exit 0; exit 1 }
' "$TRACES" || {
    echo "[smoke_cluster] no trace waterfall spans all 3 shards:" >&2
    head -40 "$TRACES" >&2
    exit 1
}

echo "[smoke_cluster] byte-identity columns in the artifact"
grep -q '"mismatches":0' "$WORK/BENCH_cluster.json"
grep -q '"shard_errors":0' "$WORK/BENCH_cluster.json"

echo "[smoke_cluster] drain shutdown of every process over the wire"
"$BIN/tripro-load" --addr "$COORD,$S1,$S2,$S3,$SINGLE" --clients 1 --requests 1 \
    --shutdown --out "$WORK/BENCH_shutdown.json"

# Every process must exit zero on its own (clean drain, no kill needed).
for pid in "${PIDS[@]}"; do
    wait "$pid"
done
PIDS=()
trap - EXIT

echo "[smoke_cluster] ok"
