#!/usr/bin/env bash
# Regenerate every table and figure of the paper's evaluation.
# Outputs land in target/harness/*.txt (also printed to stdout).
#
# Usage:
#   scripts/run_experiments.sh [tiny|small|medium]
#
# On slow machines the vessel-involving Table 1 / Fig 10 sections can be
# split across invocations with TRIPRO_TESTS / TRIPRO_PARADIGMS, e.g.:
#   TRIPRO_TESTS=NN-NV TRIPRO_PARADIGMS=FPR target/release/table1

set -euo pipefail
cd "$(dirname "$0")/.."

export TRIPRO_SCALE="${1:-small}"
echo "== building (release) =="
cargo build --release -p tripro-bench --bins

run() {
    echo
    echo "== $1 =="
    "target/release/$1"
}

run datasetstats   # §6.2 statistics
run fig9           # compressed bytes per LOD
run fig11          # faces vs decimation rounds
run fig12          # pairs evaluated/pruned per LOD + LOD choice
run table2         # decode cache on/off
run fig13          # PostGIS-style baseline vs FR vs FPR
run fig10          # time breakdown per test × accel × paradigm
run table1         # the headline latency table

echo
echo "All harness outputs written to target/harness/"
