#!/usr/bin/env bash
# Smoke test for the tripro-serve query service: build a tiny synthetic
# dataset, serve it, drive it with the tripro-load generator (which exits
# nonzero on any protocol or transport error), and shut the server down
# over the wire. Leaves target/harness/BENCH_serve.json for artifact
# upload.
#
# Usage: scripts/smoke_serve.sh [addr]
set -euo pipefail
cd "$(dirname "$0")/.."

ADDR="${1:-127.0.0.1:3750}"
WORK="target/smoke_serve"
rm -rf "$WORK"
mkdir -p "$WORK"

echo "[smoke_serve] building release binaries"
cargo build --release -p tripro-cli -p tripro-bench --bin tripro --bin tripro-load

BIN=target/release

echo "[smoke_serve] generating + compressing a tiny dataset"
"$BIN/tripro" generate --out "$WORK/data" --nuclei 16 --vessels 0
"$BIN/tripro" build --in "$WORK/data/nuclei_a" --out "$WORK/store_a"
"$BIN/tripro" build --in "$WORK/data/nuclei_b" --out "$WORK/store_b"

echo "[smoke_serve] starting server on $ADDR"
"$BIN/tripro" serve --target "$WORK/store_a" --source "$WORK/store_b" \
    --addr "$ADDR" &
SERVER_PID=$!
trap 'kill "$SERVER_PID" 2>/dev/null || true' EXIT

# Wait for the listener to come up (tripro-load's stats probe would also
# fail fast, but retrying here keeps the failure mode clear).
for _ in $(seq 1 50); do
    if (exec 3<>"/dev/tcp/${ADDR%:*}/${ADDR#*:}") 2>/dev/null; then
        exec 3>&- || true
        break
    fi
    sleep 0.2
done

echo "[smoke_serve] closed-loop mixed workload"
"$BIN/tripro-load" --addr "$ADDR" --clients 4 --requests 50

echo "[smoke_serve] scraping the Metrics frame (v2) and validating the exposition"
METRICS="$WORK/metrics.txt"
# --check validates the Prometheus text format server-side output and
# exits nonzero on malformed exposition, failing the smoke test.
"$BIN/tripro" metrics --addr "$ADDR" --check > "$METRICS"
test -s "$METRICS"
grep -q '^# TYPE tripro_query_latency_seconds histogram$' "$METRICS"
grep -q 'tripro_requests_total{outcome="admitted"}' "$METRICS"

echo "[smoke_serve] open-loop workload with per-request deadlines, then shutdown"
"$BIN/tripro-load" --addr "$ADDR" --clients 2 --requests 25 --rate 200 \
    --deadline-ms 2000 --shutdown

wait "$SERVER_PID"
trap - EXIT

test -s target/harness/BENCH_serve.json
echo "[smoke_serve] ok: target/harness/BENCH_serve.json"
