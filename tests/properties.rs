//! Property-based tests for the core invariants of the reproduction:
//! the PPVP subset guarantee, codec losslessness, entropy-coder roundtrip,
//! and index correctness against brute force.

use proptest::prelude::*;
use rand::SeedableRng;
use tripro_geom::{vec3, Aabb, Triangle, Vec3};
use tripro_index::{AabbTree, RTree};
use tripro_mesh::{encode, EncoderConfig, PruneMode, TriMesh};
use tripro_synth::{nucleus, NucleusConfig};

fn arb_nucleus() -> impl Strategy<Value = TriMesh> {
    (any::<u64>(), 0.5f64..3.0).prop_map(|(seed, radius)| {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let cfg = NucleusConfig {
            radius,
            ..Default::default()
        };
        nucleus(&mut rng, &cfg, vec3(10.0, 10.0, 10.0))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// PPVP: volume grows monotonically with LOD (subset property) and the
    /// top LOD reproduces the quantised mesh exactly.
    #[test]
    fn ppvp_subset_and_roundtrip(tm in arb_nucleus()) {
        let cm = encode(&tm, &EncoderConfig::default()).unwrap();
        let mut dec = cm.decoder().unwrap();
        let mut prev = dec.mesh().signed_volume6();
        prop_assert!(prev > 0);
        for lod in 1..=cm.max_lod() {
            dec.decode_to(lod).unwrap();
            let v = dec.mesh().signed_volume6();
            prop_assert!(v >= prev, "volume shrank between LODs {} and {lod}", lod - 1);
            prev = v;
        }
        prop_assert_eq!(dec.mesh().face_count(), tm.faces.len());
        dec.mesh().validate_closed_manifold().unwrap();
        // Serialisation roundtrip.
        let back = tripro_mesh::CompressedMesh::from_bytes(&cm.to_bytes()).unwrap();
        prop_assert_eq!(&back, &cm);
    }

    /// Every vertex of a lower-LOD mesh lies inside (or on) the full mesh:
    /// a stronger, point-wise check of the progressive approximation.
    #[test]
    fn lower_lod_vertices_inside_full_mesh(tm in arb_nucleus()) {
        let cm = encode(&tm, &EncoderConfig::default()).unwrap();
        let mut dec = cm.decoder().unwrap();
        let base = dec.triangles();
        dec.decode_to(cm.max_lod()).unwrap();
        let full = dec.triangles();
        // Shrink test points slightly towards the base centroid so boundary
        // points (which the base shares with the full mesh) test cleanly.
        let centroid = base
            .iter()
            .map(|t| t.centroid())
            .fold(Vec3::ZERO, |s, c| s + c)
            / base.len() as f64;
        for t in base.iter().take(40) {
            let p = t.centroid().lerp(centroid, 1e-4);
            prop_assert!(
                tripro_geom::point_in_mesh(p, &full),
                "base-surface point {p} escaped the full mesh"
            );
        }
    }

    /// PPMC-like unconstrained pruning does NOT maintain the subset
    /// property on shapes with recessing vertices — the motivation for PPVP.
    /// (Statistical: must be violated for at least one generated shape.)
    #[test]
    fn distance_monotonicity_between_objects(seed in any::<u64>()) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let cfg = NucleusConfig::default();
        let a = nucleus(&mut rng, &cfg, vec3(0.0, 0.0, 0.0));
        let b = nucleus(&mut rng, &cfg, vec3(4.0, 0.0, 0.0));
        let ca = encode(&a, &EncoderConfig::default()).unwrap();
        let cb = encode(&b, &EncoderConfig::default()).unwrap();
        let mut da = ca.decoder().unwrap();
        let mut db = cb.decoder().unwrap();
        let top = ca.max_lod().min(cb.max_lod());
        let mut prev = f64::INFINITY;
        for lod in 0..=top {
            da.decode_to(lod).unwrap();
            db.decode_to(lod).unwrap();
            let d2 = min_dist2(&da.triangles(), &db.triangles());
            prop_assert!(
                d2 <= prev * (1.0 + 1e-9),
                "distance grew from {prev} to {d2} at LOD {lod}"
            );
            prev = d2;
        }
    }

    /// Entropy coder: lossless on arbitrary byte strings.
    #[test]
    fn range_coder_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..4096)) {
        let c = tripro_coder::compress(&data);
        prop_assert_eq!(tripro_coder::decompress(&c).unwrap(), data);
    }

    /// Varints: roundtrip arbitrary signed/unsigned values.
    #[test]
    fn varint_roundtrip(values in proptest::collection::vec(any::<i64>(), 0..64)) {
        let mut buf = Vec::new();
        for &v in &values {
            tripro_coder::write_i64(&mut buf, v);
        }
        let mut r = tripro_coder::ByteReader::new(&buf);
        for &v in &values {
            prop_assert_eq!(r.read_i64().unwrap(), v);
        }
        prop_assert_eq!(r.remaining(), 0);
    }

    /// Quantiser: dequantise∘quantise is a fixed point and error is bounded.
    #[test]
    fn quantizer_fixed_point(
        p in (0.0f64..100.0, 0.0f64..100.0, 0.0f64..100.0),
        bits in 4u32..20,
    ) {
        let q = tripro_coder::Quantizer::new([0.0; 3], [100.0; 3], bits);
        let g = q.quantize([p.0, p.1, p.2]);
        let back = q.dequantize(g);
        prop_assert_eq!(q.quantize(back), g);
        let err = ((p.0 - back[0]).powi(2) + (p.1 - back[1]).powi(2) + (p.2 - back[2]).powi(2)).sqrt();
        prop_assert!(err <= q.max_error() * 1.0001);
    }

    /// R-tree window queries agree with brute force on random boxes.
    #[test]
    fn rtree_matches_brute(
        boxes in proptest::collection::vec(
            ((0.0f64..50.0, 0.0f64..50.0, 0.0f64..50.0), (0.1f64..5.0, 0.1f64..5.0, 0.1f64..5.0)),
            1..80,
        ),
        window in ((0.0f64..50.0, 0.0f64..50.0, 0.0f64..50.0), (1.0f64..20.0, 1.0f64..20.0, 1.0f64..20.0)),
    ) {
        let items: Vec<(Aabb, usize)> = boxes
            .iter()
            .enumerate()
            .map(|(i, ((x, y, z), (ex, ey, ez)))| {
                (Aabb::from_corners(vec3(*x, *y, *z), vec3(x + ex, y + ey, z + ez)), i)
            })
            .collect();
        let w = Aabb::from_corners(
            vec3(window.0.0, window.0.1, window.0.2),
            vec3(window.0.0 + window.1.0, window.0.1 + window.1.1, window.0.2 + window.1.2),
        );
        let tree = RTree::bulk_load(items.clone());
        let mut got = tree.query_intersects(&w);
        got.sort_unstable();
        let mut want: Vec<usize> = items
            .iter()
            .filter(|(bb, _)| bb.intersects(&w))
            .map(|(_, i)| *i)
            .collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);

        // NN candidates must contain the brute-force nearest by MINDIST.
        let target = Aabb::from_point(vec3(window.0.0, window.0.1, window.0.2));
        let cands = tree.nn_candidates(&target);
        let nearest = items
            .iter()
            .min_by(|a, b| a.0.min_dist(&target).total_cmp(&b.0.min_dist(&target)))
            .unwrap();
        // Any candidate at the same MINDIST qualifies (ties).
        let best_d = nearest.0.min_dist(&target);
        prop_assert!(
            cands.iter().any(|(i, _)| (items[*i].0.min_dist(&target) - best_d).abs() < 1e-9),
            "no candidate matches the brute-force nearest distance"
        );
    }

    /// AABB-tree distance equals brute force over random triangle soups.
    #[test]
    fn aabbtree_distance_matches_brute(
        seed_a in 0u64..1000,
        seed_b in 0u64..1000,
    ) {
        let ta = random_tris(seed_a, 24, vec3(0.0, 0.0, 0.0));
        let tb = random_tris(seed_b, 24, vec3(8.0, 2.0, 1.0));
        let brute = ta
            .iter()
            .flat_map(|x| tb.iter().map(move |y| tripro_geom::tri_tri_dist2(x, y)))
            .fold(f64::INFINITY, f64::min);
        let ba = AabbTree::build(ta);
        let bb = AabbTree::build(tb);
        let mut n = 0;
        let d2 = ba.min_dist2_tree(&bb, f64::INFINITY, &mut n);
        prop_assert!((d2 - brute).abs() < 1e-9, "bvh {d2} vs brute {brute}");
    }
}

/// PPMC-like (unconstrained) pruning violates the subset property —
/// demonstrating why PPVP's restriction matters. Witness: an octahedron
/// whose top apex is dented inward; unconstrained decimation removes the
/// dent and thereby *grows* the solid, so the simplified mesh is not a
/// progressive approximation.
#[test]
fn ppmc_mode_violates_subset_property() {
    use tripro_geom::ivec3;
    use tripro_mesh::{decimate_round, Mesh};
    // The dented apex gets id 0 so the deterministic ascending-id sweep
    // considers it first (decimation locks each removal's ring).
    let p = vec![
        ivec3(0, 0, 4), // dented apex
        ivec3(8, 0, 8),
        ivec3(0, 8, 8),
        ivec3(-8, 0, 8),
        ivec3(0, -8, 8),
        ivec3(0, 0, 0),
    ];
    let f = [
        [1u32, 2, 0],
        [2, 3, 0],
        [3, 4, 0],
        [4, 1, 0],
        [2, 1, 5],
        [3, 2, 5],
        [4, 3, 5],
        [1, 4, 5],
    ];
    // Unconstrained mode removes the dent: volume grows.
    let mut any = Mesh::from_parts(p.clone(), &f).unwrap();
    let before = any.signed_volume6();
    let events = decimate_round(&mut any, PruneMode::Any);
    assert!(
        events.iter().any(|e| e.removed == 0),
        "dent should be removable"
    );
    assert!(
        any.signed_volume6() > before,
        "removing a recessing vertex must grow the solid"
    );
    // PPVP refuses: volume never grows.
    let mut ppvp = Mesh::from_parts(p, &f).unwrap();
    let before = ppvp.signed_volume6();
    let events = decimate_round(&mut ppvp, PruneMode::ProtrudingOnly);
    assert!(events.iter().all(|e| e.removed != 0));
    assert!(ppvp.signed_volume6() <= before);
}

fn min_dist2(a: &[Triangle], b: &[Triangle]) -> f64 {
    let ta = AabbTree::build(a.to_vec());
    let tb = AabbTree::build(b.to_vec());
    let mut n = 0;
    ta.min_dist2_tree(&tb, f64::INFINITY, &mut n)
}

fn random_tris(seed: u64, n: usize, offset: Vec3) -> Vec<Triangle> {
    use rand::Rng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let base = vec3(
                rng.gen::<f64>() * 5.0,
                rng.gen::<f64>() * 5.0,
                rng.gen::<f64>() * 5.0,
            ) + offset;
            Triangle::new(
                base,
                base + vec3(rng.gen::<f64>(), rng.gen::<f64>(), rng.gen::<f64>()),
                base + vec3(rng.gen::<f64>(), rng.gen::<f64>(), rng.gen::<f64>()),
            )
        })
        .collect()
}
