//! Loopback end-to-end tests for the tripro-serve query service: concurrent
//! TCP clients must get byte-identical results to direct `Engine` calls;
//! forced overload must shed with `Overloaded` while the server stays
//! responsive; a zero deadline must return `DeadlineExceeded`; shutdown
//! must drain gracefully.

use std::sync::Arc;
use std::time::Duration;
use tripro::{Engine, ExecStats, ObjectStore, Paradigm, PointQuery, QueryConfig, StoreConfig};
use tripro_serve::{Client, ErrorCode, QueryReply, Request, ServeConfig, Server};
use tripro_synth::{DatasetConfig, VesselConfig};

fn stores() -> (Arc<ObjectStore>, Arc<ObjectStore>) {
    let block = tripro_synth::generate(&DatasetConfig {
        nuclei_count: 24,
        vessel_count: 1,
        vessel: VesselConfig {
            levels: 2,
            grid: 16,
            ..Default::default()
        },
        seed: 0x5E27E,
        ..Default::default()
    });
    let target = ObjectStore::build(&block.nuclei_a, &StoreConfig::default()).expect("encode a");
    let source = ObjectStore::build(&block.nuclei_b, &StoreConfig::default()).expect("encode b");
    (Arc::new(target), Arc::new(source))
}

fn start(cfg: ServeConfig) -> (Server, Arc<ObjectStore>, Arc<ObjectStore>) {
    let (target, source) = stores();
    let server = Server::start(Arc::clone(&target), Arc::clone(&source), cfg).expect("start");
    (server, target, source)
}

fn ids_of(reply: QueryReply) -> Vec<u32> {
    match reply {
        QueryReply::Ids(ids) => ids,
        QueryReply::Error { code, message, .. } => panic!("unexpected error {code:?}: {message}"),
        other => panic!("engine never answers these requests with {other:?}"),
    }
}

#[test]
fn concurrent_clients_match_direct_engine() {
    let (server, target, source) = start(ServeConfig::default());
    let addr = server.addr();

    // Direct (in-process) reference results for every op kind.
    let cfg = QueryConfig::new(Paradigm::FilterProgressiveRefine, tripro::Accel::Aabb);
    let stats = ExecStats::new();
    let engine = Engine::new(&target, &source);
    let n = target.len() as u32;

    let expected: Vec<(Request, Vec<u32>)> = (0..n)
        .flat_map(|t| {
            let c = target.rtree().bounds().center();
            vec![
                (
                    Request::Intersect {
                        target: t,
                        deadline_ms: u32::MAX,
                    },
                    engine.intersect_one(t, &cfg, &stats).unwrap(),
                ),
                (
                    Request::Within {
                        target: t,
                        d: 2.0,
                        deadline_ms: u32::MAX,
                    },
                    engine.within_one(t, 2.0, &cfg, &stats).unwrap(),
                ),
                (
                    Request::Nn {
                        target: t,
                        deadline_ms: u32::MAX,
                    },
                    engine
                        .nn_one(t, &cfg, &stats)
                        .unwrap()
                        .into_iter()
                        .collect(),
                ),
                (
                    Request::Knn {
                        target: t,
                        k: 3,
                        deadline_ms: u32::MAX,
                    },
                    engine.knn_one(t, 3, &cfg, &stats).unwrap(),
                ),
                (
                    Request::Contains {
                        p: [c.x, c.y, c.z],
                        deadline_ms: u32::MAX,
                    },
                    PointQuery::new(&target)
                        .containing(c, &cfg, &stats)
                        .unwrap(),
                ),
            ]
        })
        .collect();

    // Drive the same requests over the wire from several threads at once.
    let n_clients = 4;
    std::thread::scope(|scope| {
        for shard in 0..n_clients {
            let expected = &expected;
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                for (req, want) in expected.iter().skip(shard).step_by(n_clients) {
                    let got = ids_of(client.query(req).expect("query"));
                    assert_eq!(&got, want, "wire result diverged for {req:?}");
                }
            });
        }
    });

    let s = server.stats();
    assert!(s.admitted >= expected.len() as u64);
    assert_eq!(s.shed, 0);
    assert_eq!(s.protocol_errors, 0);
    server.shutdown();
}

#[test]
fn overload_sheds_but_server_stays_responsive() {
    let (server, _t, _s) = start(ServeConfig {
        max_inflight: 1,
        queue_depth: 0,
        inject_latency: Some(Duration::from_millis(150)),
        ..ServeConfig::default()
    });
    let addr = server.addr();

    // More concurrent clients than the admission limit: some must be shed
    // with an explicit Overloaded reply.
    let n_clients = 6;
    let outcomes: Vec<QueryReply> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..n_clients)
            .map(|i| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    client
                        .query(&Request::Intersect {
                            target: i as u32,
                            deadline_ms: u32::MAX,
                        })
                        .expect("query transport")
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("join"))
            .collect()
    });

    let shed = outcomes
        .iter()
        .filter(|r| {
            matches!(
                r,
                QueryReply::Error {
                    code: ErrorCode::Overloaded,
                    ..
                }
            )
        })
        .count();
    let served = outcomes.iter().filter(|r| r.ids().is_some()).count();
    assert!(shed > 0, "expected overload shedding, got {outcomes:?}");
    assert!(served > 0, "at least one request must be admitted");
    assert_eq!(shed + served, n_clients, "unexpected outcome: {outcomes:?}");

    // Health and stats probes are answered inline even while the single
    // execution slot is busy.
    let mut probe = Client::connect(addr).expect("connect probe");
    probe.health().expect("health under load");
    let stats = probe.stats().expect("stats under load");
    assert!(stats.shed >= shed as u64);
    server.shutdown();
}

#[test]
fn zero_deadline_returns_deadline_exceeded() {
    let (server, target, _s) = start(ServeConfig::default());
    let mut client = Client::connect(server.addr()).expect("connect");

    let reply = client
        .query(&Request::Intersect {
            target: 0,
            deadline_ms: 0,
        })
        .expect("query");
    assert_eq!(reply.error_code(), Some(ErrorCode::DeadlineExceeded));

    // The same query with no deadline completes fine afterwards: the
    // expiry neither wedged the connection nor the dispatcher.
    let ok = client
        .query(&Request::Intersect {
            target: 0,
            deadline_ms: u32::MAX,
        })
        .expect("query");
    assert!(ok.ids().is_some());
    drop(target);

    let s = server.stats();
    assert!(s.deadline_expired >= 1);
    server.shutdown();
}

#[test]
fn bad_requests_and_malformed_frames_are_rejected() {
    let (server, target, _s) = start(ServeConfig::default());
    let addr = server.addr();

    // Semantically invalid: target id out of range.
    let mut client = Client::connect(addr).expect("connect");
    let reply = client
        .query(&Request::Intersect {
            target: target.len() as u32 + 7,
            deadline_ms: u32::MAX,
        })
        .expect("query");
    assert_eq!(reply.error_code(), Some(ErrorCode::BadRequest));

    // Structurally invalid: garbage bytes are answered with BadRequest and
    // the connection is dropped — without disturbing other clients.
    {
        use std::io::{Read, Write};
        let mut raw = std::net::TcpStream::connect(addr).expect("raw connect");
        raw.write_all(&[0xDE; 32]).expect("write garbage");
        let mut buf = Vec::new();
        let _ = raw.read_to_end(&mut buf); // server replies then closes
        assert!(!buf.is_empty(), "expected an error frame before close");
    }
    client.health().expect("existing client still healthy");

    let s = server.stats();
    assert!(s.protocol_errors >= 1);
    server.shutdown();
}

#[test]
fn mid_frame_disconnects_do_not_stall_dispatch() {
    // A client may die at any byte offset of a frame. The server must
    // treat each case as a clean (counted) transport failure on that one
    // connection — never stall the accept loop or dispatcher, never wedge
    // other clients.
    let (server, _t, _s) = start(ServeConfig::default());
    let addr = server.addr();

    let frame = tripro_serve::protocol::encode_request(
        7,
        &Request::Intersect {
            target: 0,
            deadline_ms: u32::MAX,
        },
    );
    let header_len = tripro_serve::protocol::HEADER_LEN;
    assert!(frame.len() > header_len, "query frame must carry a payload");

    // Cut points: mid-header after the length prefix, one byte short of a
    // full header, and mid-payload after a complete header.
    for cut in [4, header_len - 1, header_len + 1] {
        use std::io::Write;
        let mut raw = std::net::TcpStream::connect(addr).expect("raw connect");
        raw.write_all(&frame[..cut]).expect("write prefix");
        drop(raw); // disconnect mid-frame

        // The server must keep serving new connections and queries.
        let mut client = Client::connect(addr).expect("connect after cut");
        let reply = client
            .query(&Request::Intersect {
                target: 0,
                deadline_ms: u32::MAX,
            })
            .expect("query after cut");
        assert!(reply.ids().is_some(), "cut at {cut} wedged the server");
    }

    // Every truncated frame is a counted protocol error, and none of them
    // may leak an admission (the cut frames never reached dispatch).
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        let s = server.stats();
        // (completed lags admitted briefly: outcomes tick after the reply
        // is sent, so poll for both.)
        if s.protocol_errors >= 3 && s.admitted == s.completed {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "truncated frames never surfaced as protocol errors ({s:?})"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    server.shutdown();
}

#[test]
fn metrics_frame_returns_valid_exposition() {
    let (server, _t, _s) = start(ServeConfig::default());
    let mut client = Client::connect(server.addr()).expect("connect");

    // Generate some traffic so the query/decode series exist.
    for t in 0..3u32 {
        let reply = client
            .query(&Request::Intersect {
                target: t,
                deadline_ms: u32::MAX,
            })
            .expect("query");
        assert!(reply.ids().is_some());
    }

    let text = client.metrics().expect("metrics frame");
    tripro::obs::validate_exposition(&text).expect("well-formed Prometheus exposition");
    assert!(
        text.contains("tripro_requests_total{outcome=\"admitted\"}"),
        "outcome counters missing:\n{text}"
    );
    assert!(
        text.contains("# TYPE tripro_query_latency_seconds histogram"),
        "query latency histogram missing:\n{text}"
    );
    server.shutdown();
}

#[test]
fn admission_ledger_balances_after_drain() {
    // Regression test for the accounting gap: every admitted request must
    // eventually be accounted as completed, deadline-expired, or failed.
    // Mixes successes with zero-deadline expiries so more than one outcome
    // path contributes.
    let (server, target, _s) = start(ServeConfig::default());
    let mut client = Client::connect(server.addr()).expect("connect");

    for t in 0..target.len() as u32 {
        let _ = client
            .query(&Request::Nn {
                target: t,
                deadline_ms: if t % 3 == 0 { 0 } else { u32::MAX },
            })
            .expect("query");
    }

    // Responses are sent before the outcome counter ticks, so poll briefly
    // for the ledger to balance instead of racing it.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        let s = server.stats();
        let accounted = s.completed + s.deadline_expired + s.failed;
        if s.admitted == accounted {
            assert!(s.admitted >= target.len() as u64);
            assert!(s.completed > 0 && s.deadline_expired > 0);
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "ledger never balanced: admitted {} vs accounted {accounted} ({s:?})",
            s.admitted
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    server.shutdown();
}

#[test]
fn remote_shutdown_drains_and_unblocks_wait() {
    let (server, _t, _s) = start(ServeConfig::default());
    let mut client = Client::connect(server.addr()).expect("connect");

    // Queue a little work, then ask the server to exit.
    for t in 0..3u32 {
        let reply = client
            .query(&Request::Nn {
                target: t,
                deadline_ms: u32::MAX,
            })
            .expect("query");
        assert!(reply.ids().is_some());
    }
    client.shutdown_server().expect("shutdown ack");
    server.wait(); // must return now that the server is draining
    server.shutdown();
}
