//! Bounded-exhaustive interleaving tests for the engine's concurrency
//! protocols, using the deterministic model explorer in `tripro::sync::model`.
//!
//! Each test expresses one real protocol — decode-cache shard accounting,
//! pool job handoff, span-ring publication — as a small op program over
//! virtual threads and runs *every* schedule up to a bound, checking
//! invariants after each atomic step. A failing schedule is reported as a
//! replayable thread-index trace. The model is sequentially consistent;
//! weak-memory concerns are handled by the `atomic_ordering` lint and the
//! Miri/TSan CI jobs (see docs/concurrency.md).

use tripro::sync::model::{at, step, wait_while, Model, Op, Thread};

/// The decode cache's accounting protocol (crates/tripro/src/cache.rs):
/// entries live in per-shard maps behind shard mutexes, while the byte
/// budget `used` is a *separate* atomic counter updated after the shard
/// lock is released. The counter therefore lags the maps transiently —
/// that is by design (it is an advisory budget) — but at quiescence it
/// must equal the bytes actually resident, under EVERY interleaving of
/// two inserters and a concurrent evictor.
#[test]
fn cache_shard_accounting_converges_under_all_schedules() {
    #[derive(Default)]
    struct S {
        shard: [Vec<i64>; 2],
        /// The modeled atomic byte counter (may transiently disagree with
        /// the shard contents, exactly like the real `AtomicUsize`).
        used: i64,
        /// Per-thread pending delta: bytes inserted/evicted under the
        /// shard lock but not yet folded into `used`.
        delta: [i64; 3],
    }
    const CAP: i64 = 100;

    // Writers 0 and 1 each insert one 64-byte entry into their own shard
    // (the real cache shards by key hash), then publish the delta.
    let writer = |t: usize| {
        Thread::new(vec![
            Op::Lock(at(t)),
            step(move |s: &mut S, _| {
                s.shard[t].push(64);
                s.delta[t] = 64;
            }),
            Op::Unlock(at(t)),
            step(move |s: &mut S, _| s.used += s.delta[t]),
        ])
    };
    // The evictor models `enforce_capacity`: sweep both shards, evicting
    // whenever the (possibly stale) counter reads over budget.
    let evict_pass = |shard: usize| {
        vec![
            Op::Lock(at(shard)),
            step(move |s: &mut S, t| {
                s.delta[t] = if s.used > CAP {
                    s.shard[shard].pop().map_or(0, |b| -b)
                } else {
                    0
                };
            }),
            Op::Unlock(at(shard)),
            step(move |s: &mut S, t| s.used += s.delta[t]),
        ]
    };
    let mut evictor_ops = evict_pass(0);
    evictor_ops.extend(evict_pass(1));

    let model = Model {
        threads: vec![writer(0), writer(1), Thread::new(evictor_ops)],
        mutexes: 2,
        condvars: 0,
    };
    let report = model
        .explore(
            S::default,
            // No transient invariant on `used`: the counter is advisory
            // and lags the maps by construction.
            |_| Ok(()),
            |s| {
                let resident: i64 = s.shard.iter().flatten().sum();
                if s.used == resident {
                    Ok(())
                } else {
                    Err(format!(
                        "counter drift survived quiescence: used={} resident={resident}",
                        s.used
                    ))
                }
            },
            2_000_000,
        )
        .expect("shard accounting must converge under every schedule");
    assert!(report.complete, "schedule space not exhausted");
    assert!(
        report.schedules > 100,
        "suspiciously few schedules explored"
    );
}

/// The worker pool's job handoff (crates/tripro/src/pool.rs): the caller
/// posts a job epoch under the state mutex and notifies the work condvar;
/// workers park in a predicate loop keyed on the epoch, run the job, then
/// decrement `active` and notify the done condvar the caller waits on.
/// Exhaustively: no lost wakeup, no lost job, no stranded caller —
/// including the schedule where the caller posts before any worker parks.
#[test]
fn pool_job_handoff_is_lost_wakeup_free() {
    #[derive(Default)]
    struct S {
        epoch: u32,
        active: u32,
        done_work: u32,
    }
    const M: usize = 0; // state mutex
    const WORK: usize = 0; // work condvar
    const DONE: usize = 1; // done condvar
    const WORKERS: u32 = 2;

    let caller = Thread::new(vec![
        Op::Lock(at(M)),
        step(|s: &mut S, _| {
            s.epoch += 1;
            s.active = WORKERS;
        }),
        Op::NotifyAll(at(WORK)),
        wait_while(DONE, M, |s: &S| s.active > 0),
        Op::Unlock(at(M)),
    ]);
    let worker = || {
        Thread::daemon(vec![
            Op::Lock(at(M)),
            wait_while(WORK, M, |s: &S| s.epoch == 0),
            step(|s: &mut S, _| {
                s.done_work += 1;
                s.active -= 1;
            }),
            Op::NotifyOne(at(DONE)),
            Op::Unlock(at(M)),
        ])
    };

    let model = Model {
        threads: vec![caller, worker(), worker()],
        mutexes: 1,
        condvars: 2,
    };
    let report = model
        .explore(
            S::default,
            |_| Ok(()),
            |s| {
                if s.done_work == WORKERS && s.active == 0 {
                    Ok(())
                } else {
                    Err(format!(
                        "handoff incomplete: done_work={} active={}",
                        s.done_work, s.active
                    ))
                }
            },
            2_000_000,
        )
        .expect("pool handoff must complete under every schedule");
    assert!(report.complete, "schedule space not exhausted");
}

/// Span-ring publication (crates/tripro/src/obs/trace.rs): writers claim a
/// slot index with an atomic cursor fetch_add (one indivisible step), then
/// fill the slot's record under the slot lock; the scraper reads under the
/// same lock. A record is multiple words, so lockless writes could tear —
/// the locked protocol must never expose a half-written record.
#[test]
fn span_ring_publication_is_torn_free() {
    #[derive(Default)]
    struct S {
        cursor: usize,
        claim: [usize; 2],
        /// Each slot is a two-word record; a consistent record has
        /// matching halves.
        slot: [(u32, u32); 2],
        torn_seen: Option<(u32, u32)>,
    }

    // Writer t: claim a slot (atomic step), then write both halves of the
    // record in one critical section under that slot's lock.
    let writer = |t: usize, val: u32| {
        Thread::new(vec![
            step(move |s: &mut S, _| {
                s.claim[t] = s.cursor;
                s.cursor += 1;
            }),
            Op::Lock(Box::new(move |s: &S| s.claim[t] % 2)),
            step(move |s: &mut S, _| {
                let i = s.claim[t] % 2;
                s.slot[i] = (val, val);
            }),
            Op::Unlock(Box::new(move |s: &S| s.claim[t] % 2)),
        ])
    };
    // The scraper walks both slots under their locks and records any
    // inconsistent (torn) snapshot it observes.
    let scrape_slot = |i: usize| {
        vec![
            Op::Lock(at(i)),
            step(move |s: &mut S, _| {
                if s.slot[i].0 != s.slot[i].1 {
                    s.torn_seen = Some(s.slot[i]);
                }
            }),
            Op::Unlock(at(i)),
        ]
    };
    let mut scraper_ops = scrape_slot(0);
    scraper_ops.extend(scrape_slot(1));

    let model = Model {
        threads: vec![writer(0, 7), writer(1, 9), Thread::new(scraper_ops)],
        mutexes: 2,
        condvars: 0,
    };
    let report = model
        .explore(
            S::default,
            |s| match s.torn_seen {
                None => Ok(()),
                Some(r) => Err(format!("scraper observed torn record {r:?}")),
            },
            |s| {
                if s.cursor == 2 {
                    Ok(())
                } else {
                    Err(format!("cursor={} after two claims", s.cursor))
                }
            },
            2_000_000,
        )
        .expect("locked slot publication can never tear");
    assert!(report.complete, "schedule space not exhausted");
}

/// Seeded-bug check: remove the slot lock and split the two-word write
/// into two steps (the bug the locked protocol prevents) — the explorer
/// must find a schedule where the scraper observes a torn record. This is
/// the harness's proof-of-life: it demonstrably catches the defect class
/// the ring protocol exists to rule out.
#[test]
fn explorer_catches_lockless_torn_write() {
    #[derive(Default)]
    struct S {
        slot: (u32, u32),
        torn_seen: Option<(u32, u32)>,
    }
    let buggy_writer = Thread::new(vec![
        step(|s: &mut S, _| s.slot.0 = 7),
        step(|s: &mut S, _| s.slot.1 = 7),
    ]);
    let scraper = Thread::new(vec![step(|s: &mut S, _| {
        if s.slot.0 != s.slot.1 {
            s.torn_seen = Some(s.slot);
        }
    })]);
    let model = Model {
        threads: vec![buggy_writer, scraper],
        mutexes: 0,
        condvars: 0,
    };
    let err = model
        .explore(
            S::default,
            |s| match s.torn_seen {
                None => Ok(()),
                Some(r) => Err(format!("scraper observed torn record {r:?}")),
            },
            |_| Ok(()),
            100_000,
        )
        .expect_err("a lockless two-step write must tear under some schedule");
    assert!(err.message.contains("torn"), "{err}");
    assert!(
        !err.schedule.is_empty(),
        "violation must carry a replayable schedule"
    );
}
