//! Bounded-exhaustive interleaving tests for the engine's concurrency
//! protocols, using the deterministic model explorer in `tripro::sync::model`.
//!
//! Each test expresses one real protocol — decode-cache shard accounting,
//! pool job handoff, span-ring publication — as a small op program over
//! virtual threads and runs *every* schedule up to a bound, checking
//! invariants after each atomic step. A failing schedule is reported as a
//! replayable thread-index trace. The model is sequentially consistent;
//! weak-memory concerns are handled by the `atomic_ordering` lint and the
//! Miri/TSan CI jobs (see docs/concurrency.md).

use tripro::sync::model::{at, step, wait_while, Model, Op, Thread};

/// The decode cache's accounting protocol (crates/tripro/src/cache.rs):
/// entries live in per-shard maps behind shard mutexes, while the byte
/// budget `used` is a *separate* atomic counter updated after the shard
/// lock is released. The counter therefore lags the maps transiently —
/// that is by design (it is an advisory budget) — but at quiescence it
/// must equal the bytes actually resident, under EVERY interleaving of
/// two inserters and a concurrent evictor.
#[test]
fn cache_shard_accounting_converges_under_all_schedules() {
    #[derive(Default)]
    struct S {
        shard: [Vec<i64>; 2],
        /// The modeled atomic byte counter (may transiently disagree with
        /// the shard contents, exactly like the real `AtomicUsize`).
        used: i64,
        /// Per-thread pending delta: bytes inserted/evicted under the
        /// shard lock but not yet folded into `used`.
        delta: [i64; 3],
    }
    const CAP: i64 = 100;

    // Writers 0 and 1 each insert one 64-byte entry into their own shard
    // (the real cache shards by key hash), then publish the delta.
    let writer = |t: usize| {
        Thread::new(vec![
            Op::Lock(at(t)),
            step(move |s: &mut S, _| {
                s.shard[t].push(64);
                s.delta[t] = 64;
            }),
            Op::Unlock(at(t)),
            step(move |s: &mut S, _| s.used += s.delta[t]),
        ])
    };
    // The evictor models `enforce_capacity`: sweep both shards, evicting
    // whenever the (possibly stale) counter reads over budget.
    let evict_pass = |shard: usize| {
        vec![
            Op::Lock(at(shard)),
            step(move |s: &mut S, t| {
                s.delta[t] = if s.used > CAP {
                    s.shard[shard].pop().map_or(0, |b| -b)
                } else {
                    0
                };
            }),
            Op::Unlock(at(shard)),
            step(move |s: &mut S, t| s.used += s.delta[t]),
        ]
    };
    let mut evictor_ops = evict_pass(0);
    evictor_ops.extend(evict_pass(1));

    let model = Model {
        threads: vec![writer(0), writer(1), Thread::new(evictor_ops)],
        mutexes: 2,
        condvars: 0,
    };
    let report = model
        .explore(
            S::default,
            // No transient invariant on `used`: the counter is advisory
            // and lags the maps by construction.
            |_| Ok(()),
            |s| {
                let resident: i64 = s.shard.iter().flatten().sum();
                if s.used == resident {
                    Ok(())
                } else {
                    Err(format!(
                        "counter drift survived quiescence: used={} resident={resident}",
                        s.used
                    ))
                }
            },
            2_000_000,
        )
        .expect("shard accounting must converge under every schedule");
    assert!(report.complete, "schedule space not exhausted");
    assert!(
        report.schedules > 100,
        "suspiciously few schedules explored"
    );
}

/// The worker pool's job handoff (crates/tripro/src/pool.rs): the caller
/// posts a job epoch under the state mutex and notifies the work condvar;
/// workers park in a predicate loop keyed on the epoch, run the job, then
/// decrement `active` and notify the done condvar the caller waits on.
/// Exhaustively: no lost wakeup, no lost job, no stranded caller —
/// including the schedule where the caller posts before any worker parks.
#[test]
fn pool_job_handoff_is_lost_wakeup_free() {
    #[derive(Default)]
    struct S {
        epoch: u32,
        active: u32,
        done_work: u32,
    }
    const M: usize = 0; // state mutex
    const WORK: usize = 0; // work condvar
    const DONE: usize = 1; // done condvar
    const WORKERS: u32 = 2;

    let caller = Thread::new(vec![
        Op::Lock(at(M)),
        step(|s: &mut S, _| {
            s.epoch += 1;
            s.active = WORKERS;
        }),
        Op::NotifyAll(at(WORK)),
        wait_while(DONE, M, |s: &S| s.active > 0),
        Op::Unlock(at(M)),
    ]);
    let worker = || {
        Thread::daemon(vec![
            Op::Lock(at(M)),
            wait_while(WORK, M, |s: &S| s.epoch == 0),
            step(|s: &mut S, _| {
                s.done_work += 1;
                s.active -= 1;
            }),
            Op::NotifyOne(at(DONE)),
            Op::Unlock(at(M)),
        ])
    };

    let model = Model {
        threads: vec![caller, worker(), worker()],
        mutexes: 1,
        condvars: 2,
    };
    let report = model
        .explore(
            S::default,
            |_| Ok(()),
            |s| {
                if s.done_work == WORKERS && s.active == 0 {
                    Ok(())
                } else {
                    Err(format!(
                        "handoff incomplete: done_work={} active={}",
                        s.done_work, s.active
                    ))
                }
            },
            2_000_000,
        )
        .expect("pool handoff must complete under every schedule");
    assert!(report.complete, "schedule space not exhausted");
}

/// Span-ring publication (crates/tripro/src/obs/trace.rs): writers claim a
/// slot index with an atomic cursor fetch_add (one indivisible step), then
/// fill the slot's record under the slot lock; the scraper reads under the
/// same lock. A record is multiple words, so lockless writes could tear —
/// the locked protocol must never expose a half-written record.
#[test]
fn span_ring_publication_is_torn_free() {
    #[derive(Default)]
    struct S {
        cursor: usize,
        claim: [usize; 2],
        /// Each slot is a two-word record; a consistent record has
        /// matching halves.
        slot: [(u32, u32); 2],
        torn_seen: Option<(u32, u32)>,
    }

    // Writer t: claim a slot (atomic step), then write both halves of the
    // record in one critical section under that slot's lock.
    let writer = |t: usize, val: u32| {
        Thread::new(vec![
            step(move |s: &mut S, _| {
                s.claim[t] = s.cursor;
                s.cursor += 1;
            }),
            Op::Lock(Box::new(move |s: &S| s.claim[t] % 2)),
            step(move |s: &mut S, _| {
                let i = s.claim[t] % 2;
                s.slot[i] = (val, val);
            }),
            Op::Unlock(Box::new(move |s: &S| s.claim[t] % 2)),
        ])
    };
    // The scraper walks both slots under their locks and records any
    // inconsistent (torn) snapshot it observes.
    let scrape_slot = |i: usize| {
        vec![
            Op::Lock(at(i)),
            step(move |s: &mut S, _| {
                if s.slot[i].0 != s.slot[i].1 {
                    s.torn_seen = Some(s.slot[i]);
                }
            }),
            Op::Unlock(at(i)),
        ]
    };
    let mut scraper_ops = scrape_slot(0);
    scraper_ops.extend(scrape_slot(1));

    let model = Model {
        threads: vec![writer(0, 7), writer(1, 9), Thread::new(scraper_ops)],
        mutexes: 2,
        condvars: 0,
    };
    let report = model
        .explore(
            S::default,
            |s| match s.torn_seen {
                None => Ok(()),
                Some(r) => Err(format!("scraper observed torn record {r:?}")),
            },
            |s| {
                if s.cursor == 2 {
                    Ok(())
                } else {
                    Err(format!("cursor={} after two claims", s.cursor))
                }
            },
            2_000_000,
        )
        .expect("locked slot publication can never tear");
    assert!(report.complete, "schedule space not exhausted");
}

/// The pipelined join executor's bounded-queue handoff
/// (crates/tripro/src/pipeline.rs): a producer claims an input token
/// (`outstanding += 1` on the hub), try-pushes into a bounded channel and —
/// on `Full` — runs the downstream stage inline instead of blocking; the
/// consumer parks on the hub condvar behind a predicate, pops, and retires
/// the token. The producer then closes the channel (queued items stay
/// poppable), helps drain the sink, and parks until `outstanding == 0`.
/// Exhaustively: every claimed item is consumed exactly once (whether it
/// travelled the queue, was drained after close, or was absorbed by the
/// inline-downstream fallback), the bound is never exceeded, and no
/// schedule strands the producer on its drain wait.
#[test]
fn pipeline_queue_close_and_drain_under_all_schedules() {
    #[derive(Default)]
    struct S {
        q: Vec<u32>,
        closed: bool,
        claimed: u32,
        outstanding: i64,
        consumed: u32,
        inline_consumed: u32,
        stalls: u32,
        /// Producer scratch: the last try_push bounced off a full queue.
        pending: bool,
        /// Per-thread scratch: item popped but not yet retired.
        popped: [Option<u32>; 2],
    }
    const CAP: usize = 1;
    const M: usize = 0; // hub mutex
    const CV: usize = 0; // hub condvar

    let mut producer_ops: Vec<Op<S>> = Vec::new();
    for _ in 0..2 {
        producer_ops.extend([
            // Claim an input token on the hub.
            step(|s: &mut S, _| {
                s.claimed += 1;
                s.outstanding += 1;
            }),
            // try_push against the bounded channel.
            step(|s: &mut S, _| {
                if !s.closed && s.q.len() < CAP {
                    s.q.push(1);
                } else {
                    s.pending = true;
                    s.stalls += 1;
                }
            }),
            // Backpressure: on Full, run the downstream stage inline
            // (never block) and retire the token ourselves.
            step(|s: &mut S, _| {
                if s.pending {
                    s.consumed += 1;
                    s.inline_consumed += 1;
                    s.outstanding -= 1;
                    s.pending = false;
                }
            }),
            Op::NotifyAll(at(CV)),
        ]);
    }
    // Producer close: queued items remain poppable until drained.
    producer_ops.push(step(|s: &mut S, _| s.closed = true));
    producer_ops.push(Op::NotifyAll(at(CV)));
    // Work-conserving drain: the producer helps empty the sink queue.
    for _ in 0..2 {
        producer_ops.extend([
            step(|s: &mut S, _| s.popped[0] = s.q.pop()),
            step(|s: &mut S, _| {
                if s.popped[0].take().is_some() {
                    s.consumed += 1;
                    s.outstanding -= 1;
                }
            }),
            Op::NotifyAll(at(CV)),
        ]);
    }
    // Completion wait: park until every claimed token is retired.
    producer_ops.extend([
        Op::Lock(at(M)),
        wait_while(CV, M, |s: &S| s.outstanding > 0),
        Op::Unlock(at(M)),
    ]);

    // Consumer: park behind the hub predicate, pop, consume, retire.
    let consumer = Thread::daemon(vec![
        Op::Lock(at(M)),
        wait_while(CV, M, |s: &S| s.q.is_empty() && !s.closed),
        Op::Unlock(at(M)),
        step(|s: &mut S, _| s.popped[1] = s.q.pop()),
        step(|s: &mut S, _| {
            if s.popped[1].take().is_some() {
                s.consumed += 1;
                s.outstanding -= 1;
            }
        }),
        Op::NotifyAll(at(CV)),
    ]);

    let model = Model {
        threads: vec![Thread::new(producer_ops), consumer],
        mutexes: 1,
        condvars: 1,
    };
    let report = model
        .explore(
            S::default,
            |s| {
                if s.q.len() > CAP {
                    return Err(format!("bound exceeded: {} queued", s.q.len()));
                }
                if s.outstanding < 0 || s.consumed > s.claimed {
                    return Err(format!(
                        "token accounting broke: outstanding={} consumed={} claimed={}",
                        s.outstanding, s.consumed, s.claimed
                    ));
                }
                Ok(())
            },
            |s| {
                if s.claimed == 2 && s.consumed == 2 && s.outstanding == 0 && s.q.is_empty() {
                    Ok(())
                } else {
                    Err(format!(
                        "handoff lost work: claimed={} consumed={} outstanding={} queued={}",
                        s.claimed,
                        s.consumed,
                        s.outstanding,
                        s.q.len()
                    ))
                }
            },
            2_000_000,
        )
        .expect("bounded-queue handoff must drain under every schedule");
    assert!(report.complete, "schedule space not exhausted");
    assert!(
        report.schedules > 100,
        "suspiciously few schedules explored"
    );
}

/// Deadline abort mid-pipeline (crates/tripro/src/pipeline.rs): a worker
/// that observes an expired deadline raises the hub abort flag and closes
/// the channels; claims after the flag return `None`, pushes against a
/// closed channel drop the item and retire its token, and queued items are
/// drained (dropped, not evaluated) rather than leaked. Exhaustively:
/// whatever the interleaving of the abort with claims, pushes and pops,
/// every claimed token is retired — so the completion wait can never
/// strand — and `consumed + dropped == claimed` at quiescence.
#[test]
fn pipeline_deadline_abort_retires_every_token() {
    #[derive(Default)]
    struct S {
        q: Vec<u32>,
        abort: bool,
        closed: bool,
        claimed: u32,
        outstanding: i64,
        consumed: u32,
        dropped: u32,
        /// Producer scratch: claimed an input but not yet handed it off.
        have: bool,
        popped: [Option<u32>; 2],
    }
    const CAP: usize = 2;
    const M: usize = 0;
    const CV: usize = 0;

    let mut producer_ops: Vec<Op<S>> = Vec::new();
    for _ in 0..2 {
        producer_ops.extend([
            // claim_input: refuses once the abort flag is up.
            step(|s: &mut S, _| {
                if !s.abort {
                    s.claimed += 1;
                    s.outstanding += 1;
                    s.have = true;
                }
            }),
            // try_push: a closed channel refuses the item.
            step(|s: &mut S, _| {
                if s.have && !s.closed && s.q.len() < CAP {
                    s.q.push(1);
                    s.have = false;
                }
            }),
            // Closed → drop the item and retire its token (no leak).
            step(|s: &mut S, _| {
                if s.have {
                    s.dropped += 1;
                    s.outstanding -= 1;
                    s.have = false;
                }
            }),
            Op::NotifyAll(at(CV)),
        ]);
    }
    // Cancellation drain: pop what remains; after abort the items are
    // discarded, not evaluated, but their tokens still retire.
    for _ in 0..2 {
        producer_ops.extend([
            step(|s: &mut S, _| s.popped[0] = s.q.pop()),
            step(|s: &mut S, _| {
                if s.popped[0].take().is_some() {
                    if s.abort {
                        s.dropped += 1;
                    } else {
                        s.consumed += 1;
                    }
                    s.outstanding -= 1;
                }
            }),
            Op::NotifyAll(at(CV)),
        ]);
    }
    producer_ops.extend([
        Op::Lock(at(M)),
        wait_while(CV, M, |s: &S| s.outstanding > 0),
        Op::Unlock(at(M)),
    ]);

    // A second worker hits the deadline: raise abort, close the channels,
    // wake everyone, then help drain.
    let aborter = Thread::new(vec![
        step(|s: &mut S, _| {
            s.abort = true;
            s.closed = true;
        }),
        Op::NotifyAll(at(CV)),
        step(|s: &mut S, _| s.popped[1] = s.q.pop()),
        step(|s: &mut S, _| {
            if s.popped[1].take().is_some() {
                s.dropped += 1;
                s.outstanding -= 1;
            }
        }),
        Op::NotifyAll(at(CV)),
    ]);

    let model = Model {
        threads: vec![Thread::new(producer_ops), aborter],
        mutexes: 1,
        condvars: 1,
    };
    let report = model
        .explore(
            S::default,
            |s| {
                if s.q.len() > CAP {
                    return Err(format!("bound exceeded: {} queued", s.q.len()));
                }
                if s.outstanding < 0 {
                    return Err("token retired twice".to_string());
                }
                Ok(())
            },
            |s| {
                if s.outstanding == 0 && s.q.is_empty() && s.consumed + s.dropped == s.claimed {
                    Ok(())
                } else {
                    Err(format!(
                        "abort leaked work: claimed={} consumed={} dropped={} \
                         outstanding={} queued={}",
                        s.claimed,
                        s.consumed,
                        s.dropped,
                        s.outstanding,
                        s.q.len()
                    ))
                }
            },
            2_000_000,
        )
        .expect("deadline abort must retire every token under every schedule");
    assert!(report.complete, "schedule space not exhausted");
    assert!(
        report.schedules > 100,
        "suspiciously few schedules explored"
    );
}

/// Seeded-bug check: remove the slot lock and split the two-word write
/// into two steps (the bug the locked protocol prevents) — the explorer
/// must find a schedule where the scraper observes a torn record. This is
/// the harness's proof-of-life: it demonstrably catches the defect class
/// the ring protocol exists to rule out.
#[test]
fn explorer_catches_lockless_torn_write() {
    #[derive(Default)]
    struct S {
        slot: (u32, u32),
        torn_seen: Option<(u32, u32)>,
    }
    let buggy_writer = Thread::new(vec![
        step(|s: &mut S, _| s.slot.0 = 7),
        step(|s: &mut S, _| s.slot.1 = 7),
    ]);
    let scraper = Thread::new(vec![step(|s: &mut S, _| {
        if s.slot.0 != s.slot.1 {
            s.torn_seen = Some(s.slot);
        }
    })]);
    let model = Model {
        threads: vec![buggy_writer, scraper],
        mutexes: 0,
        condvars: 0,
    };
    let err = model
        .explore(
            S::default,
            |s| match s.torn_seen {
                None => Ok(()),
                Some(r) => Err(format!("scraper observed torn record {r:?}")),
            },
            |_| Ok(()),
            100_000,
        )
        .expect_err("a lockless two-step write must tear under some schedule");
    assert!(err.message.contains("torn"), "{err}");
    assert!(
        !err.schedule.is_empty(),
        "violation must carry a replayable schedule"
    );
}
