//! Ground-truth checks: engine results are verified against independent
//! brute-force reference computations on the *same quantised geometry*
//! (removing the quantisation tolerance that the baseline comparison
//! needs). Every query type, paradigm, and the kNN/point extensions.

use tripro::{
    Accel, Engine, ExecStats, ObjectStore, Paradigm, PointQuery, QueryConfig, StoreConfig,
};
use tripro_geom::{vec3, Triangle, Vec3};
use tripro_index::AabbTree;
use tripro_synth::{nucleus, NucleusConfig};

/// Decode every object at full LOD via the store (the engine's own truth).
fn full_geometry(store: &ObjectStore) -> Vec<Vec<Triangle>> {
    let stats = ExecStats::new();
    (0..store.len() as u32)
        .map(|id| {
            store
                .get(id, store.max_lod(id), &stats)
                .unwrap()
                .triangles
                .as_ref()
                .clone()
        })
        .collect()
}

fn dist(a: &[Triangle], b: &[Triangle]) -> f64 {
    let ta = AabbTree::build(a.to_vec());
    let tb = AabbTree::build(b.to_vec());
    let mut n = 0;
    ta.min_dist2_tree(&tb, f64::INFINITY, &mut n).sqrt()
}

fn stores() -> (ObjectStore, ObjectStore) {
    use rand::SeedableRng;
    let cfg = NucleusConfig::default();
    let mk = |seed: u64, offset: Vec3, n: usize| -> Vec<tripro_mesh::TriMesh> {
        (0..n)
            .map(|i| {
                let mut rng = rand::rngs::StdRng::seed_from_u64(seed + i as u64);
                nucleus(
                    &mut rng,
                    &cfg,
                    offset + vec3((i % 4) as f64 * 5.0, (i / 4) as f64 * 5.0, 0.0),
                )
            })
            .collect()
    };
    let sc = StoreConfig {
        build_threads: 2,
        ..Default::default()
    };
    (
        ObjectStore::build(&mk(100, Vec3::ZERO, 12), &sc).unwrap(),
        ObjectStore::build(&mk(200, vec3(2.0, 1.5, 2.5), 12), &sc).unwrap(),
    )
}

#[test]
fn within_matches_reference_distances() {
    let (t, s) = stores();
    let geo_t = full_geometry(&t);
    let geo_s = full_geometry(&s);
    let engine = Engine::new(&t, &s);
    let d = 2.5;
    for paradigm in [Paradigm::FilterRefine, Paradigm::FilterProgressiveRefine] {
        let cfg = QueryConfig::new(paradigm, Accel::Aabb);
        let (pairs, _) = engine.within_join(d, &cfg).unwrap();
        for (tid, matches) in &pairs {
            for sid in 0..s.len() as u32 {
                let true_d = dist(&geo_t[*tid as usize], &geo_s[sid as usize]);
                let reported = matches.contains(&sid);
                // Skip knife-edge cases within float noise of the threshold.
                if (true_d - d).abs() < 1e-9 {
                    continue;
                }
                assert_eq!(
                    reported,
                    true_d <= d,
                    "{paradigm:?}: target {tid} source {sid}: dist {true_d} vs d={d}"
                );
            }
        }
    }
}

#[test]
fn nn_matches_reference() {
    let (t, s) = stores();
    let geo_t = full_geometry(&t);
    let geo_s = full_geometry(&s);
    let engine = Engine::new(&t, &s);
    let cfg = QueryConfig::new(Paradigm::FilterProgressiveRefine, Accel::Aabb);
    let (pairs, _) = engine.nn_join(&cfg).unwrap();
    for (tid, nn) in &pairs {
        let mut best = (f64::INFINITY, 0u32);
        for sid in 0..s.len() as u32 {
            let d = dist(&geo_t[*tid as usize], &geo_s[sid as usize]);
            if d < best.0 {
                best = (d, sid);
            }
        }
        let got = nn.expect("source not empty");
        let got_d = dist(&geo_t[*tid as usize], &geo_s[got as usize]);
        assert!(
            (got_d - best.0).abs() < 1e-9,
            "target {tid}: engine NN {got} at {got_d}, reference {} at {}",
            best.1,
            best.0
        );
    }
}

#[test]
fn knn_matches_reference_ordering() {
    let (t, s) = stores();
    let geo_t = full_geometry(&t);
    let geo_s = full_geometry(&s);
    let engine = Engine::new(&t, &s);
    let cfg = QueryConfig::new(Paradigm::FilterProgressiveRefine, Accel::Aabb);
    let stats = ExecStats::new();
    let k = 3;
    for tid in 0..t.len() as u32 {
        let got = engine.knn_one(tid, k, &cfg, &stats).unwrap();
        assert_eq!(got.len(), k);
        let mut scored: Vec<(f64, u32)> = (0..s.len() as u32)
            .map(|sid| (dist(&geo_t[tid as usize], &geo_s[sid as usize]), sid))
            .collect();
        scored.sort_by(|a, b| a.0.total_cmp(&b.0));
        // Distances (not necessarily ids, ties permitting) must match.
        for (i, sid) in got.iter().enumerate() {
            let got_d = dist(&geo_t[tid as usize], &geo_s[*sid as usize]);
            assert!(
                (got_d - scored[i].0).abs() < 1e-9,
                "target {tid} rank {i}: {got_d} vs reference {}",
                scored[i].0
            );
        }
    }
}

#[test]
fn intersection_matches_reference() {
    use rand::SeedableRng;
    // Overlapping configuration: second set is shifted little.
    let cfg = NucleusConfig::default();
    let sc = StoreConfig {
        build_threads: 2,
        ..Default::default()
    };
    let a: Vec<_> = (0..8)
        .map(|i| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(300 + i as u64);
            nucleus(&mut rng, &cfg, vec3(i as f64 * 4.0, 0.0, 0.0))
        })
        .collect();
    let b: Vec<_> = (0..8)
        .map(|i| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(400 + i as u64);
            nucleus(&mut rng, &cfg, vec3(i as f64 * 4.0 + 0.8, 0.3, 0.0))
        })
        .collect();
    let t = ObjectStore::build(&a, &sc).unwrap();
    let s = ObjectStore::build(&b, &sc).unwrap();
    let geo_t = full_geometry(&t);
    let geo_s = full_geometry(&s);
    let engine = Engine::new(&t, &s);
    let cfg_q = QueryConfig::new(Paradigm::FilterProgressiveRefine, Accel::Aabb);
    let (pairs, _) = engine.intersection_join(&cfg_q).unwrap();
    let mut found = 0;
    for (tid, matches) in &pairs {
        for sid in 0..s.len() as u32 {
            let d = dist(&geo_t[*tid as usize], &geo_s[sid as usize]);
            if d == 0.0 {
                assert!(
                    matches.contains(&sid),
                    "target {tid} touches source {sid} but join missed it"
                );
                found += 1;
            }
        }
    }
    assert!(found > 0, "test data must contain intersections");
}

#[test]
fn point_query_matches_reference() {
    let (t, _) = stores();
    let geo = full_geometry(&t);
    let q = PointQuery::new(&t);
    let cfg = QueryConfig::new(Paradigm::FilterProgressiveRefine, Accel::Brute);
    let stats = ExecStats::new();
    // Probe a grid of points across the store bounds.
    let bb = t.rtree().bounds();
    for i in 0..5 {
        for j in 0..5 {
            let p = bb.lo
                + vec3(
                    bb.extent().x * (i as f64 + 0.5) / 5.0,
                    bb.extent().y * (j as f64 + 0.5) / 5.0,
                    bb.extent().z * 0.5,
                );
            let got = q.containing(p, &cfg, &stats).unwrap();
            let want: Vec<u32> = (0..t.len() as u32)
                .filter(|&id| tripro_geom::point_in_mesh(p, &geo[id as usize]))
                .collect();
            assert_eq!(got, want, "point {p}");
        }
    }
}
