//! Pipelined-vs-phased equivalence: the streaming join executor
//! (crates/tripro/src/pipeline.rs) must be a pure scheduling change. For
//! every join kind and acceleration structure the pipelined driver has to
//! produce byte-identical results to the phase-sequential driver, under
//! default and pathologically tiny queue bounds, and a deadline that
//! expires mid-pipeline has to surface as the typed error while leaving
//! the shared worker pool fully reusable.

use std::time::{Duration, Instant};
use tripro::{Accel, Deadline, Engine, ExecMode, ObjectStore, Paradigm, QueryConfig, StoreConfig};
use tripro_synth::{DatasetConfig, TissueBlock, VesselConfig};

fn block() -> TissueBlock {
    tripro_synth::generate(&DatasetConfig {
        nuclei_count: 40,
        vessel_count: 2,
        vessel: VesselConfig {
            levels: 2,
            grid: 24,
            ..Default::default()
        },
        seed: 0x91BE,
        ..Default::default()
    })
}

fn store(meshes: &[tripro_mesh::TriMesh]) -> ObjectStore {
    ObjectStore::build(meshes, &StoreConfig::default()).expect("encode")
}

fn cfg(accel: Accel, exec: ExecMode) -> QueryConfig {
    QueryConfig::new(Paradigm::FilterProgressiveRefine, accel)
        .with_threads(4)
        .with_exec(exec)
}

/// Run one join kind under both drivers and demand identical output.
fn assert_equivalent(
    engine: &Engine,
    target: &ObjectStore,
    source: &ObjectStore,
    accel: Accel,
    kind: &str,
) {
    match kind {
        "intersect" => {
            target.cache().clear();
            source.cache().clear();
            let (phased, ps) = engine
                .intersection_join(&cfg(accel, ExecMode::Phased))
                .unwrap();
            target.cache().clear();
            source.cache().clear();
            let (piped, xs) = engine
                .intersection_join(&cfg(accel, ExecMode::Pipelined))
                .unwrap();
            assert_eq!(phased, piped, "{accel:?} intersect diverged");
            // The drivers differ only in scheduling: stage counters tick
            // exclusively under the pipeline.
            assert_eq!(ps.snapshot().stage_items.iter().sum::<u64>(), 0);
            assert!(xs.snapshot().stage_items.iter().sum::<u64>() > 0);
        }
        "within" => {
            let (phased, _) = engine
                .within_join(5.0, &cfg(accel, ExecMode::Phased))
                .unwrap();
            let (piped, _) = engine
                .within_join(5.0, &cfg(accel, ExecMode::Pipelined))
                .unwrap();
            assert_eq!(phased, piped, "{accel:?} within diverged");
        }
        "nn" => {
            let (phased, _) = engine.nn_join(&cfg(accel, ExecMode::Phased)).unwrap();
            let (piped, _) = engine.nn_join(&cfg(accel, ExecMode::Pipelined)).unwrap();
            assert_eq!(phased, piped, "{accel:?} nn diverged");
        }
        "knn" => {
            let (phased, _) = engine.knn_join(3, &cfg(accel, ExecMode::Phased)).unwrap();
            let (piped, _) = engine
                .knn_join(3, &cfg(accel, ExecMode::Pipelined))
                .unwrap();
            assert_eq!(phased, piped, "{accel:?} knn diverged");
        }
        other => panic!("unknown kind {other}"),
    }
}

#[test]
fn pipelined_matches_phased_on_all_join_kinds() {
    let b = block();
    let a_store = store(&b.nuclei_a);
    let b_store = store(&b.nuclei_b);
    let vessels = store(&b.vessels);

    let nn_engine = Engine::new(&a_store, &b_store);
    for accel in Accel::ALL {
        assert_equivalent(&nn_engine, &a_store, &b_store, accel, "intersect");
    }
    // Distance kinds against the vessel store (the paper's FPR showcase);
    // one tree and one decomposition accel keep the matrix affordable.
    let v_engine = Engine::new(&a_store, &vessels);
    for accel in [Accel::Aabb, Accel::Partition] {
        assert_equivalent(&v_engine, &a_store, &vessels, accel, "within");
        assert_equivalent(&v_engine, &a_store, &vessels, accel, "nn");
        assert_equivalent(&v_engine, &a_store, &vessels, accel, "knn");
    }
}

#[test]
fn tiny_queue_caps_only_change_scheduling() {
    // queue_cap=1 maximises backpressure (every stage handoff can stall
    // into the inline-downstream fallback); results must not move.
    let b = block();
    let a_store = store(&b.nuclei_a);
    let b_store = store(&b.nuclei_b);
    let engine = Engine::new(&a_store, &b_store);

    let (phased, _) = engine
        .intersection_join(&cfg(Accel::Aabb, ExecMode::Phased))
        .unwrap();
    let (piped, _) = engine
        .intersection_join(&cfg(Accel::Aabb, ExecMode::Pipelined).with_queue_cap(1))
        .unwrap();
    assert_eq!(phased, piped);
}

#[test]
fn auto_mode_agrees_with_both_explicit_modes() {
    let b = block();
    let a_store = store(&b.nuclei_a);
    let b_store = store(&b.nuclei_b);
    let engine = Engine::new(&a_store, &b_store);

    let (auto_multi, s_multi) = engine
        .intersection_join(&cfg(Accel::Aabb, ExecMode::Auto))
        .unwrap();
    // Auto resolves to pipelined at >= 2 threads...
    assert!(s_multi.snapshot().stage_items.iter().sum::<u64>() > 0);
    // ...and to phased on a single thread, where overlap buys nothing.
    let (auto_single, s_single) = engine
        .intersection_join(
            &QueryConfig::new(Paradigm::FilterProgressiveRefine, Accel::Aabb)
                .with_threads(1)
                .with_exec(ExecMode::Auto),
        )
        .unwrap();
    assert_eq!(s_single.snapshot().stage_items.iter().sum::<u64>(), 0);
    assert_eq!(auto_multi, auto_single);
}

#[test]
fn deadline_expiry_mid_pipeline_is_typed_and_leaks_no_workers() {
    let b = block();
    let a_store = store(&b.nuclei_a);
    let vessels = store(&b.vessels);
    let engine = Engine::new(&a_store, &vessels);

    // Deterministic: a deadline already in the past must refuse before any
    // stage runs.
    let expired = cfg(Accel::Aabb, ExecMode::Pipelined)
        .with_deadline(Deadline::at(Instant::now() - Duration::from_millis(1)));
    match engine.within_join(5.0, &expired) {
        Err(tripro::Error::DeadlineExceeded) => {}
        Err(e) => panic!("expired deadline surfaced as {e:?}"),
        Ok(_) => panic!("expired deadline returned Ok"),
    }

    // Mid-flight: a tiny budget on the expensive vessel join. On a slow
    // enough machine the join may still finish inside the budget, so only
    // the error *type* is pinned, never the outcome.
    for budget_us in [50, 200, 1000] {
        let tight = cfg(Accel::Aabb, ExecMode::Pipelined)
            .with_deadline(Deadline::within(Duration::from_micros(budget_us)));
        match engine.within_join(5.0, &tight) {
            Err(tripro::Error::DeadlineExceeded) | Ok(_) => {}
            Err(e) => panic!("mid-pipeline expiry surfaced as {e:?}"),
        }
    }

    // No leaked workers: the shared pool must run the same pipelined join
    // to completion afterwards, agreeing with the phased driver.
    let (piped, _) = engine
        .within_join(5.0, &cfg(Accel::Aabb, ExecMode::Pipelined))
        .unwrap();
    let (phased, _) = engine
        .within_join(5.0, &cfg(Accel::Aabb, ExecMode::Phased))
        .unwrap();
    assert_eq!(piped, phased);
}
