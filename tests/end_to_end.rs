//! End-to-end integration: generate a tissue block, compress it into object
//! stores, and check that every paradigm × acceleration combination — and
//! the PostGIS-style baseline — agrees on all three join types.

use tripro::{Accel, Engine, ObjectStore, Paradigm, QueryConfig, StoreConfig};
use tripro_baseline::BaselineDb;
use tripro_synth::{DatasetConfig, TissueBlock, VesselConfig};

fn block() -> TissueBlock {
    tripro_synth::generate(&DatasetConfig {
        nuclei_count: 40,
        vessel_count: 2,
        vessel: VesselConfig {
            levels: 2,
            grid: 24,
            ..Default::default()
        },
        seed: 0xE2E,
        ..Default::default()
    })
}

fn store(meshes: &[tripro_mesh::TriMesh]) -> ObjectStore {
    ObjectStore::build(meshes, &StoreConfig::default()).expect("encode")
}

fn configs() -> Vec<QueryConfig> {
    let mut out = Vec::new();
    for p in [Paradigm::FilterRefine, Paradigm::FilterProgressiveRefine] {
        for a in Accel::ALL {
            out.push(QueryConfig::new(p, a).with_threads(2));
        }
    }
    out
}

#[test]
fn intersection_join_consistent_across_strategies_and_baseline() {
    let b = block();
    let a_store = store(&b.nuclei_a);
    let b_store = store(&b.nuclei_b);
    let engine = Engine::new(&a_store, &b_store);

    let reference = BaselineDb::load(&b.nuclei_a).intersection_join(&BaselineDb::load(&b.nuclei_b));
    let ref_matches: usize = reference.iter().map(|(_, v)| v.len()).sum();
    assert!(ref_matches > 0, "dataset must produce intersections");

    for cfg in configs() {
        a_store.cache().clear();
        b_store.cache().clear();
        let (pairs, _) = engine.intersection_join(&cfg).unwrap();
        // Compressed stores quantise geometry, so borderline (near-touching)
        // pairs may differ from the unquantised baseline; demand agreement
        // on all but a tiny fraction.
        let diff = count_diff(&pairs, &reference);
        assert!(
            diff * 50 <= ref_matches,
            "{:?}/{:?}: {diff} of {ref_matches} matches differ from baseline",
            cfg.paradigm,
            cfg.accel
        );
    }
}

#[test]
fn within_join_consistent_across_strategies_and_baseline() {
    let b = block();
    let nuclei = store(&b.nuclei_a);
    let vessels = store(&b.vessels);
    let engine = Engine::new(&nuclei, &vessels);
    let d = 6.0;

    let reference = BaselineDb::load(&b.nuclei_a).within_join(&BaselineDb::load(&b.vessels), d);
    let ref_matches: usize = reference.iter().map(|(_, v)| v.len()).sum();

    for cfg in configs() {
        nuclei.cache().clear();
        vessels.cache().clear();
        let (pairs, _) = engine.within_join(d, &cfg).unwrap();
        let diff = count_diff(&pairs, &reference);
        assert!(
            diff * 50 <= ref_matches.max(50),
            "{:?}/{:?}: {diff} of {ref_matches} within-matches differ",
            cfg.paradigm,
            cfg.accel
        );
    }
}

#[test]
fn nn_join_consistent_across_strategies_and_baseline() {
    let b = block();
    let nuclei = store(&b.nuclei_a);
    let others = store(&b.nuclei_b);
    let engine = Engine::new(&nuclei, &others);

    let t_db = BaselineDb::load(&b.nuclei_a);
    let s_db = BaselineDb::load(&b.nuclei_b);
    let buffer = t_db.safe_nn_buffer(&s_db);
    let reference = t_db.nn_join_with_buffer(&s_db, buffer);

    for cfg in configs() {
        nuclei.cache().clear();
        others.cache().clear();
        let (pairs, _) = engine.nn_join(&cfg).unwrap();
        assert_eq!(pairs.len(), reference.len());
        let mut diff = 0;
        for ((t1, n1), (t2, n2)) in pairs.iter().zip(&reference) {
            assert_eq!(t1, t2);
            if n1 != n2 {
                diff += 1;
            }
        }
        // Quantisation can flip near-tie neighbours; tolerate a few.
        assert!(
            diff * 10 <= pairs.len(),
            "{:?}/{:?}: {diff}/{} NN results differ from baseline",
            cfg.paradigm,
            cfg.accel,
            pairs.len()
        );
    }
}

#[test]
fn fr_and_fpr_agree_exactly_on_compressed_geometry() {
    // FR and FPR run over the SAME quantised geometry, so unlike the
    // baseline comparison they must agree bit-for-bit.
    let b = block();
    let nuclei = store(&b.nuclei_a);
    let vessels = store(&b.vessels);
    let engine = Engine::new(&nuclei, &vessels);

    let fr = QueryConfig::new(Paradigm::FilterRefine, Accel::Brute);
    let fpr = QueryConfig::new(Paradigm::FilterProgressiveRefine, Accel::Brute);

    let (w1, _) = engine.within_join(5.0, &fr).unwrap();
    let (w2, _) = engine.within_join(5.0, &fpr).unwrap();
    assert_eq!(w1, w2);

    let (n1, _) = engine.nn_join(&fr).unwrap();
    let (n2, _) = engine.nn_join(&fpr).unwrap();
    assert_eq!(n1, n2);

    let a_store = store(&b.nuclei_a);
    let b_store = store(&b.nuclei_b);
    let e2 = Engine::new(&a_store, &b_store);
    let (i1, _) = e2.intersection_join(&fr).unwrap();
    let (i2, _) = e2.intersection_join(&fpr).unwrap();
    assert_eq!(i1, i2);
}

#[test]
fn persistence_preserves_query_results() {
    let b = block();
    let nuclei = store(&b.nuclei_a);
    let others = store(&b.nuclei_b);
    let dir_t = std::env::temp_dir().join(format!("tripro_e2e_t_{}", std::process::id()));
    let dir_s = std::env::temp_dir().join(format!("tripro_e2e_s_{}", std::process::id()));
    for d in [&dir_t, &dir_s] {
        let _ = std::fs::remove_dir_all(d);
    }
    nuclei.save_dir(&dir_t, 1e18).unwrap(); // one cuboid: id order preserved
    others.save_dir(&dir_s, 1e18).unwrap();
    let nuclei2 = ObjectStore::load_dir(&dir_t, 64 << 20).unwrap();
    let others2 = ObjectStore::load_dir(&dir_s, 64 << 20).unwrap();

    let cfg = QueryConfig::new(Paradigm::FilterProgressiveRefine, Accel::Brute);
    let (before, _) = Engine::new(&nuclei, &others)
        .intersection_join(&cfg)
        .unwrap();
    let (after, _) = Engine::new(&nuclei2, &others2)
        .intersection_join(&cfg)
        .unwrap();
    assert_eq!(before, after);
    for d in [&dir_t, &dir_s] {
        let _ = std::fs::remove_dir_all(d);
    }
}

fn count_diff(a: &[(u32, Vec<u32>)], b: &[(u32, Vec<u32>)]) -> usize {
    assert_eq!(a.len(), b.len());
    let mut diff = 0;
    for ((t1, v1), (t2, v2)) in a.iter().zip(b) {
        assert_eq!(t1, t2);
        let s1: std::collections::HashSet<_> = v1.iter().collect();
        let s2: std::collections::HashSet<_> = v2.iter().collect();
        diff += s1.symmetric_difference(&s2).count();
    }
    diff
}
