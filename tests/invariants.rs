//! Property tests for the two monotonicity guarantees the query processor
//! exploits (paper §3):
//!
//! * **P1 — intersection implication**: objects that intersect at a low LOD
//!   intersect at every higher LOD.
//! * **P2 — distance monotonicity**: inter-object distance never grows as
//!   LOD rises.
//!
//! Both follow from the PPVP subset property; here they are checked
//! end-to-end on the decoded triangle sets using the same geometry computer
//! the engine runs, across every adjacent LOD pair of randomly generated
//! organelle meshes. A feature-gated test additionally drives the
//! `strict-invariants` runtime checkers.

use proptest::prelude::*;
use rand::SeedableRng;
use tripro::{Accel, Computer, ExecStats, LodData};
use tripro_geom::vec3;
use tripro_mesh::{encode, EncoderConfig, TriMesh};
use tripro_synth::{nucleus, NucleusConfig};

/// Decode every LOD of `tm` into engine-ready geometry.
fn ladder(tm: &TriMesh) -> Vec<LodData> {
    let cm = encode(tm, &EncoderConfig::default()).unwrap();
    let mut dec = cm.decoder().unwrap();
    let mut out = vec![LodData::new(dec.triangles())];
    for lod in 1..=cm.max_lod() {
        dec.decode_to(lod).unwrap();
        out.push(LodData::new(dec.triangles()));
    }
    out
}

fn blob(seed: u64, radius: f64, centre_x: f64) -> TriMesh {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let cfg = NucleusConfig {
        radius,
        ..Default::default()
    };
    nucleus(&mut rng, &cfg, vec3(centre_x, 0.0, 0.0))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// P1: walk both ladders bottom-up; once any rung pair intersects,
    /// every higher rung pair must intersect too.
    #[test]
    fn p1_intersection_implies_at_higher_lods(
        seed in any::<u64>(),
        ra in 0.8f64..1.6,
        rb in 0.8f64..1.6,
    ) {
        // Deep overlap so the chain is actually exercised from some rung on.
        let gap = 0.3 * (ra + rb);
        let a = ladder(&blob(seed, ra, 0.0));
        let b = ladder(&blob(seed.wrapping_add(1), rb, gap));
        let computer = Computer::new(Accel::Brute, 1);
        let stats = ExecStats::new();
        let top = a.len().min(b.len());
        let mut seen_hit = false;
        for l in 0..top {
            let hit = computer.intersects(&a[l], &b[l], &[], &[], &stats);
            prop_assert!(
                hit || !seen_hit,
                "P1 violated: intersecting at LOD {} but disjoint at LOD {l}",
                l - 1
            );
            seen_hit = seen_hit || hit;
        }
        // With this much overlap the full-resolution pair must intersect.
        prop_assert!(seen_hit, "expected an intersection somewhere on the ladder");
    }

    /// P2: for well-separated objects the pairwise distance is
    /// non-increasing in LOD, and every rung's distance upper-bounds the
    /// full-resolution distance.
    #[test]
    fn p2_distance_never_grows_with_lod(
        seed in any::<u64>(),
        ra in 0.8f64..1.6,
        rb in 0.8f64..1.6,
        sep in 2.0f64..3.5,
    ) {
        let gap = sep * (ra + rb);
        let a = ladder(&blob(seed, ra, 0.0));
        let b = ladder(&blob(seed.wrapping_add(1), rb, gap));
        let computer = Computer::new(Accel::Brute, 1);
        let stats = ExecStats::new();
        let top = a.len().min(b.len());
        let mut prev = f64::INFINITY;
        for l in 0..top {
            let d2 = computer.min_dist2(&a[l], &b[l], &[], &[], f64::INFINITY, &stats);
            prop_assert!(d2.is_finite() && d2 > 0.0, "separated blobs must be disjoint");
            prop_assert!(
                d2 <= prev + 1e-9,
                "P2 violated: distance² grew from {prev} to {d2} at LOD {l}"
            );
            prev = d2;
        }
        // Cross-rung form: any low LOD against the full object still
        // upper-bounds the full-vs-full distance.
        let full = computer.min_dist2(
            &a[top - 1], &b[top - 1], &[], &[], f64::INFINITY, &stats,
        );
        for (l, al) in a.iter().take(top).enumerate() {
            let d2 = computer.min_dist2(al, &b[top - 1], &[], &[], f64::INFINITY, &stats);
            prop_assert!(
                full <= d2 + 1e-9,
                "P2 violated across rungs: LOD ({l}, top) gave {d2} < full {full}"
            );
        }
    }
}

/// Drive the feature-gated runtime checkers end-to-end: `encode` re-audits
/// the ladder it wrote, and the explicit checker accepts it too.
#[cfg(feature = "strict-invariants")]
#[test]
fn strict_invariants_accept_a_fresh_ladder() {
    let tm = blob(7, 1.2, 0.0);
    let cm = encode(&tm, &EncoderConfig::default()).unwrap();
    tripro_mesh::invariant::check_lod_ladder(&cm).unwrap();
}
