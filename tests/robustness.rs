//! Failure-injection tests: corrupt or truncated compressed streams must
//! never panic the decoder — they either decode (harmlessly) or return an
//! error. A storage layer that aborts the process on one bad object is not
//! production-quality.

use proptest::prelude::*;
use rand::SeedableRng;
use tripro_mesh::{encode, CompressedMesh, EncoderConfig};
use tripro_synth::{nucleus, NucleusConfig};

fn valid_blob() -> Vec<u8> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(123);
    let tm = nucleus(
        &mut rng,
        &NucleusConfig::default(),
        tripro_geom::vec3(5.0, 5.0, 5.0),
    );
    encode(&tm, &EncoderConfig::default()).unwrap().to_bytes()
}

/// Fully decode a parsed object, swallowing decode errors (but not panics).
fn try_full_decode(cm: &CompressedMesh) {
    if let Ok(mut dec) = cm.decoder() {
        let _ = dec.decode_to(cm.max_lod());
        let _ = dec.triangles();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Single-byte corruption anywhere in the container.
    #[test]
    fn corrupt_byte_never_panics(pos in 0usize..4096, val in any::<u8>()) {
        let mut blob = valid_blob();
        let pos = pos % blob.len();
        blob[pos] = val;
        if let Ok(cm) = CompressedMesh::from_bytes(&blob) {
            try_full_decode(&cm);
        }
    }

    /// Truncation at any point.
    #[test]
    fn truncation_never_panics(cut in 0usize..4096) {
        let blob = valid_blob();
        let cut = cut % blob.len();
        if let Ok(cm) = CompressedMesh::from_bytes(&blob[..cut]) {
            try_full_decode(&cm);
        }
    }

    /// Random garbage.
    #[test]
    fn garbage_never_panics(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        if let Ok(cm) = CompressedMesh::from_bytes(&data) {
            try_full_decode(&cm);
        }
    }

    /// Byte-flip bursts (simulating torn writes).
    #[test]
    fn burst_corruption_never_panics(start in 0usize..4096, len in 1usize..64) {
        let mut blob = valid_blob();
        let n = blob.len();
        for i in 0..len {
            let p = (start + i) % n;
            blob[p] ^= 0xA5;
        }
        if let Ok(cm) = CompressedMesh::from_bytes(&blob) {
            try_full_decode(&cm);
        }
    }
}

/// Corrupting only the *payload* (after the header survives parsing) is the
/// interesting case: event streams with bogus ring references must be
/// rejected by the decoder's validation, not tripped over.
#[test]
fn payload_corruption_sweep() {
    let blob = valid_blob();
    // Flip one byte at a time through a prefix of the payload region.
    for pos in 60..blob.len().min(600) {
        let mut b = blob.clone();
        b[pos] ^= 0xFF;
        if let Ok(cm) = CompressedMesh::from_bytes(&b) {
            try_full_decode(&cm);
        }
    }
}

#[test]
fn store_file_corruption_is_io_error() {
    use tripro::{ObjectStore, StoreConfig};
    use tripro_mesh::testutil::sphere;
    let store = ObjectStore::build(
        &[sphere(tripro_geom::vec3(0.0, 0.0, 0.0), 1.0, 2)],
        &StoreConfig {
            build_threads: 1,
            ..Default::default()
        },
    )
    .unwrap();
    let dir = std::env::temp_dir().join(format!("tripro_robust_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    store.save_dir(&dir, 100.0).unwrap();
    // Corrupt the file header.
    let path = std::fs::read_dir(&dir)
        .unwrap()
        .next()
        .unwrap()
        .unwrap()
        .path();
    let mut data = std::fs::read(&path).unwrap();
    data[0] ^= 0xFF;
    std::fs::write(&path, &data).unwrap();
    assert!(ObjectStore::load_dir(&dir, 0).is_err());
    let _ = std::fs::remove_dir_all(&dir);
}
