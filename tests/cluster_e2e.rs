//! Loopback cluster end-to-end tests: a coordinator fronting in-process
//! shard engines must answer **byte-identically** to a single engine for
//! every join kind — the boundary-cuboid replication property test from
//! `docs/sharding.md`. Each shard holds the full target store plus its
//! boundary-replicated slice of the source store; the coordinator's merge
//! must union, deduplicate replicas exactly once, and preserve the
//! engine's (distance, id) ranking bit-for-bit.

use std::sync::Arc;
use tripro::{ObjectStore, StoreConfig, StoredObject};
use tripro_serve::{
    partition_source, Client, Coordinator, CoordinatorConfig, QueryReply, Request, ServeConfig,
    Server, ShardMap, ShardView,
};
use tripro_synth::DatasetConfig;

const CACHE: usize = 64 << 20;

/// Build seeded target/source stores and keep the raw source objects so
/// each shard (and the single-engine reference) can be cut from the same
/// compressed bytes.
fn build_stores(seed: u64) -> (Arc<ObjectStore>, Vec<StoredObject>) {
    let block = tripro_synth::generate(&DatasetConfig {
        nuclei_count: 18,
        vessel_count: 0,
        seed,
        ..Default::default()
    });
    let target = ObjectStore::build(&block.nuclei_a, &StoreConfig::default()).expect("encode a");
    let source = ObjectStore::build(&block.nuclei_b, &StoreConfig::default()).expect("encode b");
    (Arc::new(target), source.into_objects())
}

struct Cluster {
    shards: Vec<Server>,
    coord: Coordinator,
}

fn start_cluster(
    target: &Arc<ObjectStore>,
    source_objects: &[StoredObject],
    n: u32,
    epoch: u64,
) -> Cluster {
    let map = ShardMap::new(epoch, ShardMap::cell_for(target), n);
    let source_total = source_objects.len() as u64;
    let mut shards = Vec::new();
    let mut addrs = Vec::new();
    for i in 0..n {
        let full = ObjectStore::from_objects(source_objects.to_vec(), CACHE);
        let (local, ids) = partition_source(full, &map, i, CACHE);
        let cfg = ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            shard: Some(ShardView {
                map,
                index: i,
                source_total,
            }),
            source_ids: Some(ids),
            ..Default::default()
        };
        let s = Server::start(Arc::clone(target), Arc::new(local), cfg).expect("start shard");
        addrs.push(s.addr().to_string());
        shards.push(s);
    }
    let coord = Coordinator::start(
        Arc::clone(target),
        CoordinatorConfig {
            addr: "127.0.0.1:0".to_string(),
            shards: addrs,
            epoch,
            ..Default::default()
        },
    )
    .expect("start coordinator");
    Cluster { shards, coord }
}

fn ids_of(reply: QueryReply) -> Vec<u32> {
    match reply {
        QueryReply::Ids(ids) => ids,
        QueryReply::Error { code, message, .. } => panic!("unexpected error {code:?}: {message}"),
        other => panic!("unexpected reply {other:?}"),
    }
}

/// The full request matrix for one target store: all four join kinds per
/// target object, plus a containment probe at each target's MBB centre.
fn request_matrix(target: &ObjectStore) -> Vec<Request> {
    let extent = target.rtree().bounds().extent();
    let d = extent.max_component() / 6.0;
    let mut reqs = Vec::new();
    for t in 0..target.len() as u32 {
        reqs.push(Request::Intersect {
            target: t,
            deadline_ms: u32::MAX,
        });
        reqs.push(Request::Within {
            target: t,
            d,
            deadline_ms: u32::MAX,
        });
        reqs.push(Request::Nn {
            target: t,
            deadline_ms: u32::MAX,
        });
        reqs.push(Request::Knn {
            target: t,
            k: 3,
            deadline_ms: u32::MAX,
        });
        let b = target.mbb(t);
        reqs.push(Request::Contains {
            p: [
                (b.lo.x + b.hi.x) / 2.0,
                (b.lo.y + b.hi.y) / 2.0,
                (b.lo.z + b.hi.z) / 2.0,
            ],
            deadline_ms: u32::MAX,
        });
    }
    reqs
}

/// The property test: across seeded stores, a 3-shard scatter-gather
/// cluster answers every join kind byte-identically to a single engine
/// serving the unpartitioned stores.
#[test]
fn cluster_matches_single_engine_for_all_join_kinds() {
    for seed in [0x3D5A_0001u64, 0x3D5A_0002] {
        let (target, source_objects) = build_stores(seed);

        let single = Server::start(
            Arc::clone(&target),
            Arc::new(ObjectStore::from_objects(source_objects.clone(), CACHE)),
            ServeConfig {
                addr: "127.0.0.1:0".to_string(),
                ..Default::default()
            },
        )
        .expect("start single engine");
        let cluster = start_cluster(&target, &source_objects, 3, 1);

        // Boundary replication must actually replicate: the shard-local
        // counts sum past the global store (and never exceed 3x it).
        let mut replicated = 0u64;
        for s in &cluster.shards {
            let mut probe = Client::connect(s.addr()).expect("shard probe");
            let info = probe.shard_info().expect("shard info");
            assert_eq!(info.source_total, source_objects.len() as u64);
            replicated += info.source_objects;
        }
        assert!(
            replicated > source_objects.len() as u64,
            "seed {seed:#x}: no boundary object was replicated — dedup is untested"
        );
        assert!(replicated <= 3 * source_objects.len() as u64);

        let mut direct = Client::connect(single.addr()).expect("connect single");
        let mut sharded = Client::connect(cluster.coord.addr()).expect("connect coordinator");
        for req in request_matrix(&target) {
            let want = ids_of(direct.query(&req).expect("single-engine query"));
            let got = ids_of(sharded.query(&req).expect("cluster query"));
            assert_eq!(
                got, want,
                "seed {seed:#x}: cluster diverged from single engine on {req:?}"
            );
        }

        // Per-shard scatter metrics must be visible on the coordinator.
        let text = sharded.metrics().expect("coordinator metrics");
        for family in [
            "tripro_shard_fanout",
            "tripro_shard_subquery_seconds",
            "tripro_merge_seconds",
        ] {
            assert!(
                text.contains(family),
                "metrics exposition is missing {family}"
            );
        }

        let stats = cluster.coord.stats();
        assert_eq!(stats.failed, 0, "fault-free run must not fail ({stats:?})");
        assert_eq!(stats.admitted, stats.completed, "{stats:?}");

        cluster.coord.shutdown();
        for s in cluster.shards {
            s.shutdown();
        }
        single.shutdown();
    }
}

/// The v6 tentpole, end to end: a traced join through a 3-shard cluster
/// must land in the coordinator's slow log as ONE stitched waterfall —
/// a single record, under the client's trace id, with a `shard` child
/// span for every shard that worked on the query — and the final reply
/// page must carry the aggregated span summary back to the client.
#[test]
fn traced_cluster_query_stitches_one_waterfall_in_coordinator_slow_log() {
    use tripro::obs;

    let (target, source_objects) = build_stores(0x3D5A_0005);
    let cluster = start_cluster(&target, &source_objects, 3, 1);
    obs::tracer().configure(&tripro::TraceConfig {
        enabled: true,
        slow_threshold: std::time::Duration::ZERO,
        keep: 64,
        ..Default::default()
    });

    // A distinctive id keeps this trace separable from records emitted by
    // tests sharing the process-global tracer.
    let trace = tripro_serve::TraceContext {
        trace_id: 0x7C0F_FEE0_3D5A_0005,
        parent_span_id: 0,
        sampled: true,
    };
    let mut c = Client::connect(cluster.coord.addr()).expect("connect coordinator");
    // A kNN join fans out to every shard.
    let reply = c
        .query_traced(
            &Request::Knn {
                target: 0,
                k: 3,
                deadline_ms: u32::MAX,
            },
            Some(&trace),
        )
        .expect("traced cluster query");
    assert!(matches!(reply, QueryReply::Ids(_)), "got {reply:?}");
    let summary = c.last_summary().copied();
    obs::tracer().set_enabled(false);

    // Exactly one stitched record: the coordinator's. (In-process shard
    // engines share the tracer, so their own records carry the same trace
    // id — but only the coordinator's contains `shard` spans.)
    let stitched: Vec<_> = obs::tracer()
        .slow_log()
        .into_iter()
        .filter(|r| {
            r.trace_id == trace.trace_id
                && r.spans.iter().any(|s| matches!(s.kind, obs::SpanKind::Shard))
        })
        .collect();
    assert_eq!(
        stitched.len(),
        1,
        "expected one stitched coordinator record, got {stitched:#?}"
    );
    let rec = &stitched[0];
    assert!(
        rec.spans.iter().all(|s| s.trace_id == trace.trace_id),
        "a span lost the propagated trace id: {rec:#?}"
    );
    let mut shards: Vec<u32> = rec
        .spans
        .iter()
        .filter(|s| matches!(s.kind, obs::SpanKind::Shard))
        .map(|s| s.object)
        .collect();
    shards.sort_unstable();
    assert_eq!(
        shards,
        vec![0, 1, 2],
        "waterfall must contain a child span from every shard: {}",
        rec.render()
    );

    // Cost attribution rode along: the exemplar's fanout names all shards.
    let ex = rec.exemplar.as_ref().expect("stitched cost exemplar");
    let mut fanout: Vec<u32> = ex.shards.iter().map(|&(s, _, _)| s).collect();
    fanout.sort_unstable();
    assert_eq!(fanout, vec![0, 1, 2], "exemplar fanout incomplete: {ex:?}");

    // The aggregated summary reached the client on the final reply page.
    let summary = summary.expect("v6 reply must carry a span summary");
    assert_eq!(summary.trace_id, trace.trace_id);

    obs::tracer().clear_slow_log();
    cluster.coord.shutdown();
    for s in cluster.shards {
        s.shutdown();
    }
}

/// Federated metrics exactness: the coordinator's `Metrics` exposition
/// scrapes every shard over `MetricsBin` and exact-merges — for every
/// integer-valued sample (counters, histogram `_count`/`_bucket`), the
/// `node="cluster"` aggregate equals the sum of the per-node series
/// bit-for-bit, and the whole document validates.
#[test]
fn federated_metrics_aggregate_is_the_exact_sum_of_node_series() {
    use std::collections::BTreeMap;

    let (target, source_objects) = build_stores(0x3D5A_0006);
    let cluster = start_cluster(&target, &source_objects, 3, 1);
    let mut c = Client::connect(cluster.coord.addr()).expect("connect coordinator");
    // Traffic first, so counters and latency histograms are non-zero.
    for req in request_matrix(&target).into_iter().take(10) {
        let _ = c.query(&req).expect("warm-up query");
    }

    let text = c.metrics().expect("federated metrics");
    tripro::obs::validate_exposition(&text).expect("federated exposition must validate");
    for node in ["cluster", "coordinator", "shard0", "shard1", "shard2"] {
        assert!(
            text.contains(&format!("node=\"{node}\"")),
            "exposition is missing node=\"{node}\" series"
        );
    }

    // Parse every integer sample into (series key without the node label)
    // -> node -> value, then check cluster == sum(nodes) exactly.
    let mut samples: BTreeMap<String, BTreeMap<String, u64>> = BTreeMap::new();
    for line in text.lines() {
        if line.starts_with('#') || line.trim().is_empty() {
            continue;
        }
        let (series, value) = line.rsplit_once(' ').expect("malformed sample line");
        let (name, labels) = match series.split_once('{') {
            Some((n, rest)) => (n, rest.trim_end_matches('}')),
            None => (series, ""),
        };
        if name.ends_with("_sum") {
            continue; // float-valued seconds; exactness asserted on integers
        }
        let Ok(v) = value.parse::<u64>() else {
            continue;
        };
        let mut node = None;
        let base: Vec<&str> = labels
            .split(',')
            .filter(|l| !l.is_empty())
            .filter(|l| match l.strip_prefix("node=\"") {
                Some(rest) => {
                    node = Some(rest.trim_end_matches('"').to_string());
                    false
                }
                None => true,
            })
            .collect();
        let node = node.expect("federated sample without node label");
        let key = format!("{name}{{{}}}", base.join(","));
        samples.entry(key).or_default().insert(node, v);
    }
    assert!(!samples.is_empty(), "no integer samples parsed");

    let mut checked = 0usize;
    for (key, by_node) in &samples {
        let Some(&cluster_v) = by_node.get("cluster") else {
            panic!("{key}: no node=\"cluster\" aggregate");
        };
        let sum: u64 = by_node
            .iter()
            .filter(|(n, _)| n.as_str() != "cluster")
            .map(|(_, &v)| v)
            .sum();
        assert_eq!(
            cluster_v, sum,
            "{key}: cluster aggregate {cluster_v} != exact per-node sum {sum} ({by_node:?})"
        );
        checked += 1;
    }
    assert!(checked > 10, "too few federated series checked ({checked})");

    cluster.coord.shutdown();
    for s in cluster.shards {
        s.shutdown();
    }
}

/// A coordinator must refuse a cluster whose shards were partitioned
/// under a different epoch — mixed shard maps would silently drop pairs.
#[test]
fn coordinator_refuses_mismatched_epoch() {
    let (target, source_objects) = build_stores(0x3D5A_0003);
    let cluster = start_cluster(&target, &source_objects, 2, 7);
    let addrs: Vec<String> = cluster
        .shards
        .iter()
        .map(|s| s.addr().to_string())
        .collect();

    let err = Coordinator::start(
        Arc::clone(&target),
        CoordinatorConfig {
            addr: "127.0.0.1:0".to_string(),
            shards: addrs,
            epoch: 8,
            ..Default::default()
        },
    );
    assert!(err.is_err(), "epoch 8 coordinator accepted epoch 7 shards");

    cluster.coord.shutdown();
    for s in cluster.shards {
        s.shutdown();
    }
}

/// Routed single-shard queries and scatter joins agree on an empty
/// route: a region query far outside the dataset returns empty, fast.
#[test]
fn out_of_range_target_is_rejected_before_admission() {
    let (target, source_objects) = build_stores(0x3D5A_0004);
    let n = target.len() as u32;
    let cluster = start_cluster(&target, &source_objects, 2, 1);
    let mut c = Client::connect(cluster.coord.addr()).expect("connect");
    match c
        .query(&Request::Intersect {
            target: n + 5,
            deadline_ms: u32::MAX,
        })
        .expect("transport")
    {
        QueryReply::Error { code, .. } => {
            assert_eq!(code, tripro_serve::ErrorCode::BadRequest);
        }
        other => panic!("expected BadRequest, got {other:?}"),
    }
    // The reject must not occupy a ledger slot.
    let stats = cluster.coord.stats();
    assert_eq!(stats.admitted, 0, "{stats:?}");
    cluster.coord.shutdown();
    for s in cluster.shards {
        s.shutdown();
    }
}
