//! Chaos tests: seeded fault schedules injected into loopback serve runs.
//!
//! Each test arms the process-global failpoint registry ([`tripro::fault`])
//! with a deterministic schedule, drives a real TCP server with retrying
//! clients, and asserts the three robustness invariants:
//!
//! 1. **No hangs** — every run finishes under a watchdog that aborts the
//!    process (printing the schedule) if it stalls.
//! 2. **No leaked work** — after the run drains, the admission ledger
//!    balances (`admitted == completed + deadline_expired + failed`) and
//!    the worker pool still executes fresh work.
//! 3. **Byte-identical results** — any request that resolves to `Ids`
//!    (first try or after retries) matches the fault-free reference
//!    exactly; faults may fail a request, never corrupt it.
//!
//! The registry is process-global, so every test serializes on one mutex
//! and clears the registry at entry and exit. `CHAOS_SEEDS` scales the
//! seeded-schedule sweep (default 4 locally; CI's nightly chaos job runs
//! 32).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};
use tripro::fault::{self, mix64, FaultAction, Trigger};
use tripro::{Engine, ExecStats, ObjectStore, Paradigm, QueryConfig, StoreConfig};
use tripro_serve::{
    partition_source, Client, Coordinator, CoordinatorConfig, ErrorCode, QueryReply, Request,
    RetryPolicy, RetryingClient, ServeConfig, Server, ShardMap, ShardView,
};
use tripro_synth::{DatasetConfig, VesselConfig};

/// One registry per process: chaos tests must not interleave schedules.
fn serial() -> std::sync::MutexGuard<'static, ()> {
    static SERIAL: Mutex<()> = Mutex::new(());
    // A panicking test (some deliberately panic inside server threads)
    // must not poison the suite.
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

fn stores() -> &'static (Arc<ObjectStore>, Arc<ObjectStore>) {
    static STORES: OnceLock<(Arc<ObjectStore>, Arc<ObjectStore>)> = OnceLock::new();
    STORES.get_or_init(|| {
        let block = tripro_synth::generate(&DatasetConfig {
            nuclei_count: 16,
            vessel_count: 1,
            vessel: VesselConfig {
                levels: 2,
                grid: 12,
                ..Default::default()
            },
            seed: 0xC405,
            ..Default::default()
        });
        let target =
            ObjectStore::build(&block.nuclei_a, &StoreConfig::default()).expect("encode a");
        let source =
            ObjectStore::build(&block.nuclei_b, &StoreConfig::default()).expect("encode b");
        (Arc::new(target), Arc::new(source))
    })
}

/// The request set every run drives, with fault-free reference results.
fn reference() -> &'static Vec<(Request, Vec<u32>)> {
    static REF: OnceLock<Vec<(Request, Vec<u32>)>> = OnceLock::new();
    REF.get_or_init(|| {
        let (target, source) = stores();
        let cfg = QueryConfig::new(Paradigm::FilterProgressiveRefine, tripro::Accel::Aabb);
        let stats = ExecStats::new();
        let engine = Engine::new(target, source);
        (0..target.len() as u32)
            .flat_map(|t| {
                vec![
                    (
                        Request::Intersect {
                            target: t,
                            deadline_ms: u32::MAX,
                        },
                        engine.intersect_one(t, &cfg, &stats).unwrap(),
                    ),
                    (
                        Request::Nn {
                            target: t,
                            deadline_ms: u32::MAX,
                        },
                        engine
                            .nn_one(t, &cfg, &stats)
                            .unwrap()
                            .into_iter()
                            .collect(),
                    ),
                ]
            })
            .collect()
    })
}

/// Aborts the whole process (printing `desc`) if not disarmed in time —
/// a hang in a chaos run must fail loudly, not eat the CI time budget.
struct Watchdog {
    done: Arc<AtomicBool>,
}

impl Watchdog {
    fn arm(desc: String, timeout: Duration) -> Watchdog {
        let done = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&done);
        std::thread::spawn(move || {
            let deadline = Instant::now() + timeout;
            while Instant::now() < deadline {
                if flag.load(Ordering::Relaxed) {
                    return;
                }
                std::thread::sleep(Duration::from_millis(50));
            }
            eprintln!("CHAOS WATCHDOG: hang detected — {desc}");
            eprintln!("armed schedule at hang:");
            for s in fault::snapshot() {
                eprintln!(
                    "  {} = {:?}[{:?}] hits={} fired={}",
                    s.site, s.action, s.trigger, s.hits, s.fired
                );
            }
            std::process::abort();
        });
        Watchdog { done }
    }
}

impl Drop for Watchdog {
    fn drop(&mut self) {
        self.done.store(true, Ordering::Relaxed);
    }
}

fn start_server() -> Server {
    let (target, source) = stores();
    Server::start(
        Arc::clone(target),
        Arc::clone(source),
        ServeConfig::default(),
    )
    .expect("start server")
}

/// Poll until the admission ledger balances; panics (with the snapshot)
/// if it never does — that means a response path leaked a request.
fn await_balanced_ledger(server: &Server, context: &str) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let s = server.stats();
        let accounted = s.completed + s.deadline_expired + s.failed;
        if s.admitted == accounted {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "{context}: ledger never balanced: admitted {} vs accounted {accounted} ({s:?})",
            s.admitted
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Prove the process-wide pool still has all its workers: a fresh
/// broadcast job with helpers must complete (a leaked/parked worker would
/// hang it, tripping the watchdog).
fn assert_pool_alive() {
    let hits = std::sync::atomic::AtomicUsize::new(0);
    tripro::pool::global().run_with(2, |_| {
        hits.fetch_add(1, Ordering::Relaxed);
    });
    assert!(
        hits.load(Ordering::Relaxed) >= 1,
        "pool ran no participants"
    );
}

fn connect_retrying(addr: std::net::SocketAddr, seed: u64) -> Option<RetryingClient> {
    let policy = RetryPolicy {
        max_retries: 3,
        base_backoff: Duration::from_millis(2),
        max_backoff: Duration::from_millis(50),
        seed,
    };
    // Connection setup itself can hit serve.read faults (the Hello
    // roundtrip); retry it like any transient.
    for _ in 0..30 {
        match RetryingClient::connect(addr, policy.clone()) {
            Ok(c) => return Some(c),
            Err(_) => std::thread::sleep(Duration::from_millis(3)),
        }
    }
    None
}

/// The acceptance-critical path: a deliberately panicking query must come
/// back as a typed `Internal` error over the wire while the same server
/// run keeps answering neighbouring queries correctly.
#[test]
fn panicking_query_returns_internal_and_server_keeps_serving() {
    let _guard = serial();
    fault::clear();
    let _wd = Watchdog::arm("panicking_query".into(), Duration::from_secs(120));

    let server = start_server();
    let addr = server.addr();
    // The 2nd executed request panics inside the batch executor.
    fault::set(fault::SERVE_EXEC, FaultAction::Panic, Trigger::Nth(2));

    let reference = reference();
    let mut client = Client::connect(addr).expect("connect");
    let mut internal = 0u64;
    for (req, want) in reference.iter().take(8) {
        match client.query(req).expect("query transport") {
            QueryReply::Ids(ids) => assert_eq!(&ids, want, "post-panic result diverged"),
            QueryReply::Error { code, message, .. } => {
                assert_eq!(code, ErrorCode::Internal, "unexpected error: {message}");
                internal += 1;
            }
            other => panic!("engine never answers these requests with {other:?}"),
        }
    }
    assert_eq!(internal, 1, "exactly the injected panic must surface");
    assert_eq!(fault::fired(fault::SERVE_EXEC), 1);

    fault::clear();
    await_balanced_ledger(&server, "panicking_query");
    let s = server.stats();
    assert_eq!(s.panics, 1, "contained panic must be counted ({s:?})");
    assert_eq!(s.failed, 1, "contained panic accounts as failed ({s:?})");
    server.shutdown();
    assert_pool_alive();
}

/// Regression for the short-write bug: a `write()` that accepts fewer
/// bytes than the frame must be continued, not treated as success. With
/// every first write truncated to 3 bytes, all responses must still
/// arrive byte-identical.
#[test]
fn partial_writes_are_completed_not_truncated() {
    let _guard = serial();
    fault::clear();
    let _wd = Watchdog::arm("partial_writes".into(), Duration::from_secs(120));

    let server = start_server();
    let addr = server.addr();
    fault::set(fault::SERVE_WRITE, FaultAction::Partial(3), Trigger::Always);

    let reference = reference();
    let mut client = Client::connect(addr).expect("connect");
    for (req, want) in reference.iter().take(12) {
        match client.query(req).expect("query transport") {
            QueryReply::Ids(ids) => assert_eq!(&ids, want, "truncated response for {req:?}"),
            QueryReply::Error { code, message, .. } => {
                panic!("unexpected error under partial writes: {code:?} {message}")
            }
            other => panic!("engine never answers these requests with {other:?}"),
        }
    }
    assert!(
        fault::fired(fault::SERVE_WRITE) >= 12,
        "partial-write action never fired"
    );

    fault::clear();
    await_balanced_ledger(&server, "partial_writes");
    server.shutdown();
}

/// One seeded schedule: 2–3 sites armed with actions and triggers drawn
/// from the seed's splitmix64 stream.
fn arm_schedule(seed: u64) -> String {
    let mut r = mix64(seed ^ 0x5eed_f001);
    let mut desc = String::new();
    let mut arm = |site: &str, action: FaultAction, trigger: Trigger| {
        fault::set(site, action, trigger);
        desc.push_str(&format!("{site}={action:?}[{trigger:?}]; "));
    };

    // Always one socket-level fault (the retry client's bread and butter).
    r = mix64(r);
    match r % 3 {
        0 => arm(
            fault::SERVE_READ,
            FaultAction::Err,
            Trigger::Prob {
                per_mille: 60 + (r >> 32) as u16 % 120,
                seed: r,
            },
        ),
        1 => arm(
            fault::SERVE_WRITE,
            FaultAction::Disconnect,
            Trigger::Every(7 + (r >> 16) % 6),
        ),
        _ => arm(
            fault::SERVE_WRITE,
            FaultAction::Partial(1 + (r >> 8) as usize % 6),
            Trigger::Every(2),
        ),
    }

    // Always one engine-level fault.
    r = mix64(r);
    match r % 3 {
        0 => arm(
            fault::DECODE_LOD,
            FaultAction::Err,
            Trigger::Prob {
                per_mille: 40 + (r >> 32) as u16 % 80,
                seed: r,
            },
        ),
        1 => arm(fault::CACHE_INSERT, FaultAction::Err, Trigger::Every(3)),
        _ => arm(
            fault::PIPELINE_PUSH,
            FaultAction::Err,
            Trigger::Every(4 + (r >> 16) % 4),
        ),
    }

    // Sometimes a contained panic in the executor.
    r = mix64(r);
    if r % 2 == 0 {
        arm(
            fault::SERVE_EXEC,
            FaultAction::Panic,
            Trigger::Nth(3 + (r >> 24) % 9),
        );
    }
    desc
}

/// The sweep: every seeded schedule must drain with a balanced ledger,
/// no hang, and only correct-or-failed outcomes (never corrupted ones).
#[test]
fn seeded_fault_schedules_drain_clean() {
    let _guard = serial();
    fault::clear();

    let seeds: u64 = std::env::var("CHAOS_SEEDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);

    let reference = reference();
    for i in 0..seeds {
        let seed = mix64(0xC4A0_5000 + i);
        let schedule = arm_schedule(seed);
        let _wd = Watchdog::arm(
            format!("seed {i} ({seed:#x}): {schedule}"),
            Duration::from_secs(180),
        );
        let server = start_server();
        let addr = server.addr();

        let mut resolved = 0u64;
        let mut failed = 0u64;
        let mut exhausted = 0u64;
        let mut client = connect_retrying(addr, seed);
        for (req, want) in reference.iter() {
            let Some(c) = client.as_mut() else { break };
            match c.query(req) {
                Ok((QueryReply::Ids(ids), _)) => {
                    // The core chaos invariant: a request that resolves
                    // must resolve *correctly*, retries and all.
                    assert_eq!(&ids, want, "seed {i}: corrupted result ({schedule})");
                    resolved += 1;
                }
                Ok((QueryReply::Error { .. }, _)) => failed += 1,
                Ok((other, _)) => {
                    panic!("engine never answers these requests with {other:?}")
                }
                Err(_) => {
                    // Retry budget exhausted: reconnect and move on.
                    exhausted += 1;
                    client = connect_retrying(addr, mix64(seed ^ exhausted));
                }
            }
        }
        drop(client);

        // Tear down while still armed? No: clear first so drain paths and
        // the final probe run fault-free.
        fault::clear();
        await_balanced_ledger(&server, &format!("seed {i} ({schedule})"));

        // The server must still serve correct results on a clean line.
        let mut probe = Client::connect(addr).expect("post-chaos connect");
        let (req, want) = &reference[0];
        let got = probe.query(req).expect("post-chaos query");
        assert_eq!(
            got.ids(),
            Some(want.as_slice()),
            "seed {i}: server degraded after chaos ({schedule})"
        );
        server.shutdown();
        assert_pool_alive();

        eprintln!(
            "[chaos] seed {i}: {resolved} resolved, {failed} failed, \
             {exhausted} exhausted ({schedule})"
        );
        assert!(
            resolved > 0,
            "seed {i}: nothing resolved — schedule too hostile to be useful ({schedule})"
        );
    }
}

// ---------------------------------------------------------------------
// Sharded scatter-gather chaos: a coordinator fronting loopback shards
// ---------------------------------------------------------------------

/// In-process 3-shard cluster built from fresh seeded stores (the shared
/// `stores()` keep their `Arc`s, so the cluster rebuilds its own source
/// objects to partition).
fn start_cluster() -> (Arc<ObjectStore>, Vec<Server>, Coordinator) {
    let block = tripro_synth::generate(&DatasetConfig {
        nuclei_count: 12,
        vessel_count: 0,
        seed: 0x00C4_05C1,
        ..Default::default()
    });
    let target =
        Arc::new(ObjectStore::build(&block.nuclei_a, &StoreConfig::default()).expect("encode a"));
    let objects = ObjectStore::build(&block.nuclei_b, &StoreConfig::default())
        .expect("encode b")
        .into_objects();
    let map = ShardMap::new(1, ShardMap::cell_for(&target), 3);
    let source_total = objects.len() as u64;
    let mut shards = Vec::new();
    let mut addrs = Vec::new();
    for i in 0..3 {
        let full = ObjectStore::from_objects(objects.clone(), 32 << 20);
        let (local, ids) = partition_source(full, &map, i, 32 << 20);
        let cfg = ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            shard: Some(ShardView {
                map,
                index: i,
                source_total,
            }),
            source_ids: Some(ids),
            ..Default::default()
        };
        let s = Server::start(Arc::clone(&target), Arc::new(local), cfg).expect("start shard");
        addrs.push(s.addr().to_string());
        shards.push(s);
    }
    let coord = Coordinator::start(
        Arc::clone(&target),
        CoordinatorConfig {
            addr: "127.0.0.1:0".to_string(),
            shards: addrs,
            epoch: 1,
            ..Default::default()
        },
    )
    .expect("start coordinator");
    (target, shards, coord)
}

/// Poll until the coordinator's admission ledger balances.
fn await_balanced_coordinator(coord: &Coordinator, context: &str) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let s = coord.stats();
        let accounted = s.completed + s.deadline_expired + s.failed;
        if s.admitted == accounted {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "{context}: coordinator ledger never balanced: admitted {} vs accounted \
             {accounted} ({s:?})",
            s.admitted
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Disconnect-mid-join chaos for the sharded tier: with `serve.read` and
/// `serve.write` failpoints periodically killing connections on every
/// node (shard engines *and* coordinator), scatter-gather queries must
/// resolve correctly or fail with a typed error — never hang, never
/// corrupt — and every admission ledger must balance after the run.
#[test]
fn shard_disconnects_mid_join_degrade_typed_and_ledgers_balance() {
    let _guard = serial();
    fault::clear();
    let _wd = Watchdog::arm(
        "shard disconnects mid-join".into(),
        Duration::from_secs(180),
    );

    let (target, shards, coord) = start_cluster();
    let addr = coord.addr();

    // Fault-free reference, computed through the coordinator itself.
    let mut reference = Vec::new();
    {
        let mut c = Client::connect(addr).expect("reference connect");
        for t in 0..target.len() as u32 {
            for req in [
                Request::Intersect {
                    target: t,
                    deadline_ms: u32::MAX,
                },
                Request::Nn {
                    target: t,
                    deadline_ms: u32::MAX,
                },
                Request::Knn {
                    target: t,
                    k: 3,
                    deadline_ms: u32::MAX,
                },
            ] {
                let want = match c.query(&req).expect("reference query") {
                    QueryReply::Ids(ids) => ids,
                    other => panic!("fault-free cluster answered {other:?}"),
                };
                reference.push((req, want));
            }
        }
    }

    fault::set(
        fault::SERVE_READ,
        FaultAction::Disconnect,
        Trigger::Every(5),
    );
    fault::set(fault::SERVE_WRITE, FaultAction::Err, Trigger::Every(7));

    let mut resolved = 0u64;
    let mut failed = 0u64;
    let mut exhausted = 0u64;
    let mut client = connect_retrying(addr, 0x00C4_05C2);
    for (req, want) in &reference {
        let Some(c) = client.as_mut() else { break };
        match c.query(req) {
            Ok((QueryReply::Ids(ids), _)) => {
                assert_eq!(&ids, want, "corrupted scatter-gather result for {req:?}");
                resolved += 1;
            }
            Ok((QueryReply::Error { .. }, _)) => failed += 1,
            Ok((other, _)) => panic!("unexpected reply {other:?}"),
            Err(_) => {
                exhausted += 1;
                client = connect_retrying(addr, mix64(0x00C4_05C3 ^ exhausted));
            }
        }
    }
    drop(client);
    assert!(
        fault::fired(fault::SERVE_READ) > 0,
        "disconnect schedule never fired"
    );

    fault::clear();
    await_balanced_coordinator(&coord, "shard disconnects");
    for (i, s) in shards.iter().enumerate() {
        await_balanced_ledger(s, &format!("shard {i} after disconnect chaos"));
    }

    // A clean line through the whole tier must still answer correctly.
    let mut probe = Client::connect(addr).expect("post-chaos connect");
    let (req, want) = &reference[0];
    let got = probe.query(req).expect("post-chaos query");
    assert_eq!(
        got.ids(),
        Some(want.as_slice()),
        "cluster degraded after chaos"
    );

    coord.shutdown();
    for s in shards {
        s.shutdown();
    }
    assert_pool_alive();

    eprintln!(
        "[chaos] cluster: {resolved} resolved, {failed} failed, {exhausted} exhausted \
         of {} requests",
        reference.len()
    );
    assert!(resolved > 0, "nothing resolved — schedule too hostile");
}

/// A shard process dying outright (not just flaky I/O) must degrade to a
/// typed error within the request deadline — the "no hang" acceptance
/// criterion — and the coordinator must keep serving afterwards.
#[test]
fn dead_shard_yields_typed_error_within_deadline() {
    let _guard = serial();
    fault::clear();
    let _wd = Watchdog::arm("dead shard".into(), Duration::from_secs(120));

    let (_target, mut shards, coord) = start_cluster();
    let addr = coord.addr();

    // Kill the middle shard after startup validation succeeded.
    shards.remove(1).shutdown();

    let mut c = Client::connect(addr).expect("connect");
    let t0 = Instant::now();
    // NN scatters to all shards, so it must route through the corpse.
    match c
        .query(&Request::Nn {
            target: 0,
            deadline_ms: 5_000,
        })
        .expect("transport must survive a dead backend")
    {
        QueryReply::Error { code, .. } => {
            assert!(
                matches!(
                    code,
                    ErrorCode::Internal | ErrorCode::DeadlineExceeded | ErrorCode::Overloaded
                ),
                "dead shard surfaced as {code:?}"
            );
        }
        other => panic!("dead shard must fail the scatter, got {other:?}"),
    }
    assert!(
        t0.elapsed() < Duration::from_secs(10),
        "dead-shard error took {:?} — deadline not enforced",
        t0.elapsed()
    );

    // Queries routed only to live shards must still succeed.
    let mut health = Client::connect(addr).expect("reconnect");
    health.health().expect("coordinator must stay live");

    await_balanced_coordinator(&coord, "dead shard");
    coord.shutdown();
    for s in shards {
        s.shutdown();
    }
    assert_pool_alive();
}
