//! Concurrency stress: the decode cache and parallel join driver under
//! simultaneous access from many threads. These tests verify freedom from
//! deadlock, identical results regardless of interleaving, and cache
//! invariants (capacity bound, decoder-state reuse) under contention.

use std::sync::Arc;
use tripro::{Accel, Engine, ExecStats, ObjectStore, Paradigm, QueryConfig, StoreConfig};
use tripro_geom::vec3;
use tripro_mesh::testutil::sphere;

fn store(n: usize) -> Arc<ObjectStore> {
    let meshes: Vec<_> = (0..n)
        .map(|i| {
            sphere(
                vec3((i % 8) as f64 * 6.0, (i / 8) as f64 * 6.0, 0.0),
                2.0,
                3,
            )
        })
        .collect();
    Arc::new(
        ObjectStore::build(
            &meshes,
            &StoreConfig {
                build_threads: 2,
                ..Default::default()
            },
        )
        .unwrap(),
    )
}

#[test]
fn cache_hammering_from_many_threads() {
    let s = store(16);
    let stats = ExecStats::new();
    std::thread::scope(|scope| {
        for t in 0..8 {
            let s = &s;
            let stats = &stats;
            scope.spawn(move || {
                for round in 0..40 {
                    let id = ((t * 7 + round * 3) % 16) as u32;
                    let lod = (t + round) % (s.max_lod(id) + 1);
                    let data = s.get(id, lod, stats).unwrap();
                    assert!(!data.triangles.is_empty());
                    // Trees are built lazily under contention too.
                    if round % 5 == 0 {
                        assert_eq!(data.tree().len(), data.triangles.len());
                    }
                }
            });
        }
    });
    let snap = stats.snapshot();
    assert_eq!(snap.cache_hits + snap.cache_misses, 8 * 40);
    assert!(snap.cache_hits > 0, "reuse must happen under contention");
}

#[test]
fn concurrent_decodes_agree_with_serial() {
    let s = store(8);
    let serial_stats = ExecStats::new();
    // Serial truth: face counts per (id, lod).
    let mut truth = std::collections::HashMap::new();
    for id in 0..8u32 {
        for lod in 0..=s.max_lod(id) {
            truth.insert(
                (id, lod),
                s.get(id, lod, &serial_stats).unwrap().triangles.len(),
            );
        }
    }
    s.cache().clear();
    let stats = ExecStats::new();
    std::thread::scope(|scope| {
        for t in 0..6 {
            let s = &s;
            let stats = &stats;
            let truth = &truth;
            scope.spawn(move || {
                for round in 0..30 {
                    let id = ((t + round * 5) % 8) as u32;
                    let lod = (t * 2 + round) % (s.max_lod(id) + 1);
                    let got = s.get(id, lod, stats).unwrap().triangles.len();
                    assert_eq!(got, truth[&(id, lod)], "({id},{lod}) under contention");
                }
            });
        }
    });
}

#[test]
fn tiny_cache_under_contention_stays_bounded() {
    let s = store(12);
    // Force constant eviction with a cache that fits ~2 decoded objects.
    let one = {
        let stats = ExecStats::new();
        s.get(0, 2, &stats).unwrap().bytes()
    };
    let small = tripro::DecodeCache::new(one * 2);
    let stats = ExecStats::new();
    std::thread::scope(|scope| {
        for t in 0..6 {
            let small = &small;
            let s = &s;
            let stats = &stats;
            scope.spawn(move || {
                for round in 0..30 {
                    let id = ((t + round) % 12) as u32;
                    let _ = small.get(id, 2, &s.object(id).compressed, stats).unwrap();
                }
            });
        }
    });
    assert!(
        small.used_bytes() <= one * 2,
        "capacity must hold after the storm"
    );
}

/// The sharded-cache stress of ISSUE PR 2: 8+ threads hammer overlapping
/// `(object, LOD)` keys on a cache small enough to evict constantly, then
/// every invariant is audited — exact hit+miss accounting, the global
/// capacity ceiling, and (under `strict-invariants`) the per-shard LRU
/// list / byte-counter consistency audit.
#[test]
fn sharded_cache_stress_overlapping_keys() {
    const THREADS: usize = 8;
    const ROUNDS: usize = 60;
    let s = store(16);
    let (one, top) = {
        let stats = ExecStats::new();
        (
            s.get(0, 2, &stats).unwrap().bytes(),
            s.get(0, s.max_lod(0), &stats).unwrap().bytes(),
        )
    };
    // Room for the largest single LOD plus a couple of small ones — far
    // below the 16-object × several-LOD working set, so eviction churns
    // constantly, yet no single entry can exceed the budget on its own
    // (which would legitimately hold > capacity: the cache always keeps
    // one entry). That makes the ceiling assertion below exact.
    let capacity = top + one * 2;
    let cache = tripro::DecodeCache::new(capacity);
    let stats = ExecStats::new();
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let cache = &cache;
            let s = &s;
            let stats = &stats;
            scope.spawn(move || {
                for round in 0..ROUNDS {
                    // Overlapping key schedule: a hot key every third round
                    // that all threads revisit (it is touched often enough
                    // to survive the two intervening evicting inserts, so
                    // reuse is guaranteed under any interleaving — even
                    // fully sequential), plus a spread of cold keys wide
                    // enough that eviction churns constantly.
                    let (id, lod) = if round % 3 == 0 {
                        (0u32, 0usize)
                    } else {
                        let id = ((t + round) % 16) as u32;
                        (id, round % (s.max_lod(id) + 1))
                    };
                    let data = cache.get(id, lod, &s.object(id).compressed, stats).unwrap();
                    assert!(!data.triangles.is_empty());
                }
            });
        }
    });
    let snap = stats.snapshot();
    assert_eq!(
        snap.cache_hits + snap.cache_misses,
        (THREADS * ROUNDS) as u64,
        "every get is exactly one hit or one miss"
    );
    assert_eq!(snap.decodes, snap.cache_misses, "each miss decodes once");
    assert!(snap.cache_hits > 0, "overlapping keys must produce reuse");
    assert!(snap.hit_rate() > 0.0 && snap.hit_rate() < 1.0);
    assert!(
        cache.used_bytes() <= capacity,
        "capacity ceiling must hold after the storm: {} > {capacity}",
        cache.used_bytes()
    );
    #[cfg(feature = "strict-invariants")]
    cache.check_consistency().unwrap();
    // The cache must still serve correctly after the churn.
    let before = stats.snapshot();
    let d = cache.get(3, 1, &s.object(3).compressed, &stats).unwrap();
    assert!(!d.triangles.is_empty());
    assert_eq!(
        stats.snapshot().cache_hits + stats.snapshot().cache_misses,
        before.cache_hits + before.cache_misses + 1
    );
}

#[test]
fn join_results_stable_across_thread_counts() {
    let t = store(12);
    let s = store(12);
    let engine = Engine::new(&t, &s);
    let mut reference = None;
    for threads in [1usize, 2, 4, 8] {
        t.cache().clear();
        s.cache().clear();
        let cfg =
            QueryConfig::new(Paradigm::FilterProgressiveRefine, Accel::Aabb).with_threads(threads);
        let (pairs, _) = engine.nn_join(&cfg).unwrap();
        match &reference {
            None => reference = Some(pairs),
            Some(r) => assert_eq!(&pairs, r, "threads={threads}"),
        }
    }
}
