//! Table 2: object decoding time with and without the LRU decode cache,
//! for the four distance-based tests (paper §6.4, "Efficiency of the
//! decoding cache").
//!
//! ```sh
//! cargo run --release -p tripro-bench --bin table2
//! ```

use tripro::{Accel, Engine, Paradigm, QueryConfig};
use tripro_bench::harness::{threads, Scale, TableWriter, TestId, Workloads};

fn main() {
    let scale = Scale::from_env();
    let w = Workloads::generate(scale);
    let mut out = TableWriter::new();

    out.line(format!(
        "Table 2 — decode time (seconds) with/without cache; scale={scale:?}"
    ));
    out.line(format!(
        "{:<8} {:>16} {:>16} {:>10}",
        "Test", "no cache", "with cache", "reduction"
    ));

    for test in [TestId::WnNN, TestId::WnNV, TestId::NnNN, TestId::NnNV] {
        let mut decode_s = [0.0f64; 2];
        for (i, cache_on) in [(0, false), (1, true)] {
            // Rebuild stores with/without cache capacity by toggling:
            // the cache object is fixed per store, so emulate "no cache" by
            // clearing it before every target object — equivalent to the
            // paper's disabled-cache run. Simplest faithful approach:
            // temporarily set capacity via a fresh run with cleared caches
            // and per-query clears for the "no cache" row.
            let engine = w.engine(test);
            let cfg = QueryConfig::new(Paradigm::FilterProgressiveRefine, Accel::Aabb)
                .with_threads(threads())
                .with_lods(w.profile_lods(test, Accel::Aabb));
            w.clear_caches();
            let stats = if cache_on {
                run_cached(&w, test, &engine, &cfg)
            } else {
                run_uncached(&w, test, &engine, &cfg)
            };
            decode_s[i] = stats.decode_s();
        }
        out.line(format!(
            "{:<8} {:>16.3} {:>16.3} {:>9.1}%",
            test.label(),
            decode_s[0],
            decode_s[1],
            (1.0 - decode_s[1] / decode_s[0].max(1e-12)) * 100.0
        ));
    }
    out.blank();
    out.line("Paper shape: caching removes most decode time; the reduction is");
    out.line("largest for vessel tests, where one vessel serves many nuclei.");
    out.save("table2");
}

fn run_cached(
    w: &Workloads,
    test: TestId,
    engine: &Engine<'_>,
    cfg: &QueryConfig,
) -> tripro::StatsSnapshot {
    let stats = match test {
        TestId::WnNN => {
            engine
                .within_join(w.wn_nn_distance, cfg)
                .expect("join failed")
                .1
        }
        TestId::WnNV => {
            engine
                .within_join(w.wn_nv_distance, cfg)
                .expect("join failed")
                .1
        }
        _ => engine.nn_join(cfg).expect("join failed").1,
    };
    stats.snapshot()
}

fn run_uncached(
    w: &Workloads,
    test: TestId,
    engine: &Engine<'_>,
    cfg: &QueryConfig,
) -> tripro::StatsSnapshot {
    // Per-target cache clearing turns every decode into a miss, mirroring a
    // disabled cache while reusing the same execution path.
    let stats = tripro::ExecStats::new();
    for t in 0..engine.target.len() as u32 {
        w.clear_caches();
        match test {
            TestId::WnNN => {
                let _ = engine.within_one(t, w.wn_nn_distance, cfg, &stats);
            }
            TestId::WnNV => {
                let _ = engine.within_one(t, w.wn_nv_distance, cfg, &stats);
            }
            _ => {
                let _ = engine.nn_one(t, cfg, &stats);
            }
        }
    }
    stats.snapshot()
}
