//! Table 1: execution time (seconds) of the five join tests under
//! FR and FPR, for every acceleration strategy.
//!
//! ```sh
//! TRIPRO_SCALE=small cargo run --release -p tripro-bench --bin table1
//! ```

use tripro::{Accel, Paradigm};
use tripro_bench::harness::{fmt_secs, Scale, TableWriter, TestId, Workloads};

fn main() {
    let scale = Scale::from_env();
    let w = Workloads::generate(scale);
    let mut out = TableWriter::new();

    out.line(format!(
        "Table 1 — execution time (seconds); scale={scale:?}, threads={}",
        tripro_bench::harness::threads()
    ));
    out.line(format!(
        "{:<8} {:<5} {:>12} {:>12} {:>12} {:>12} {:>14}",
        "Test", "Par.", "Brute-force", "Partition", "AABB", "GPU", "Partition+GPU"
    ));

    for test in TestId::selected() {
        let mut accels = vec![Accel::Brute, Accel::Partition, Accel::Aabb, Accel::Gpu];
        if test.has_partition_gpu_column() {
            accels.push(Accel::PartitionGpu);
        }
        let paradigms: Vec<Paradigm> = match std::env::var("TRIPRO_PARADIGMS").as_deref() {
            Ok("FR") => vec![Paradigm::FilterRefine],
            Ok("FPR") => vec![Paradigm::FilterProgressiveRefine],
            _ => vec![Paradigm::FilterRefine, Paradigm::FilterProgressiveRefine],
        };
        for paradigm in paradigms {
            let mut cells = Vec::new();
            for accel in &accels {
                // One §6.5 profiling round picks the FPR LOD list per test.
                let lods = (paradigm == Paradigm::FilterProgressiveRefine)
                    .then(|| w.profile_lods(test, *accel));
                let cell = w.run(test, paradigm, *accel, lods);
                eprintln!(
                    "[table1] {} {} {:<14} {:>8}s  ({} matches)",
                    test.label(),
                    paradigm.label(),
                    accel.label(),
                    fmt_secs(cell.seconds),
                    cell.matches
                );
                cells.push(fmt_secs(cell.seconds));
            }
            while cells.len() < 5 {
                cells.push("N/A".to_string());
            }
            out.line(format!(
                "{:<8} {:<5} {:>12} {:>12} {:>12} {:>12} {:>14}",
                test.label(),
                paradigm.label(),
                cells[0],
                cells[1],
                cells[2],
                cells[3],
                cells[4]
            ));
        }
    }
    out.blank();
    out.line("Paper shape to check: FPR beats FR in every column; partition only");
    out.line("helps vessel tests; AABB helps distance queries; on a single-core");
    out.line("host the simulated-GPU column degenerates to brute force (see");
    out.line("EXPERIMENTS.md).");
    let mut name = match std::env::var("TRIPRO_TESTS") {
        Ok(sel) => format!("table1_{}", sel.replace(',', "_")),
        Err(_) => "table1".to_string(),
    };
    if let Ok(p) = std::env::var("TRIPRO_PARADIGMS") {
        name.push('_');
        name.push_str(&p);
    }
    out.save(&name);
}
