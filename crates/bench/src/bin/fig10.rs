//! Fig 10: execution-time breakdown (filtering / decompression / geometric
//! computation) for every test × acceleration × paradigm.
//!
//! ```sh
//! cargo run --release -p tripro-bench --bin fig10
//! ```

use tripro::{Accel, Paradigm};
use tripro_bench::harness::{Scale, TableWriter, TestId, Workloads};

fn main() {
    let scale = Scale::from_env();
    let w = Workloads::generate(scale);
    let mut out = TableWriter::new();
    out.line(format!(
        "Fig 10 — time breakdown (seconds): filter / decode / geometry; scale={scale:?}"
    ));

    for test in TestId::selected() {
        out.blank();
        out.line(format!("== {} ==", test.label()));
        out.line(format!(
            "{:<16} {:<5} {:>10} {:>10} {:>10} {:>10}",
            "accel", "par.", "filter", "decode", "geometry", "total"
        ));
        let mut accels = vec![Accel::Brute, Accel::Partition, Accel::Aabb, Accel::Gpu];
        if test.has_partition_gpu_column() {
            accels.push(Accel::PartitionGpu);
        }
        let paradigms: Vec<Paradigm> = match std::env::var("TRIPRO_PARADIGMS").as_deref() {
            Ok("FR") => vec![Paradigm::FilterRefine],
            Ok("FPR") => vec![Paradigm::FilterProgressiveRefine],
            _ => vec![Paradigm::FilterRefine, Paradigm::FilterProgressiveRefine],
        };
        for accel in accels {
            for &paradigm in &paradigms {
                let cell = w.run(test, paradigm, accel, None);
                let s = &cell.stats;
                out.line(format!(
                    "{:<16} {:<5} {:>10.3} {:>10.3} {:>10.3} {:>10.3}",
                    accel.label(),
                    paradigm.label(),
                    s.filter_s(),
                    s.decode_s(),
                    s.compute_s(),
                    cell.seconds
                ));
            }
        }
    }
    out.blank();
    out.line("Paper shape: filtering is a tiny slice everywhere; decoding");
    out.line("dominates the intersection test (INT-NN) and the FPR runs of");
    out.line("WN-NN; geometry dominates the distance-based FR runs.");
    let mut name = match std::env::var("TRIPRO_TESTS") {
        Ok(sel) => format!("fig10_{}", sel.replace(',', "_")),
        Err(_) => "fig10".to_string(),
    };
    if let Ok(p) = std::env::var("TRIPRO_PARADIGMS") {
        name.push('_');
        name.push_str(&p);
    }
    out.save(&name);
}
