//! Fig 13: query latency of the PostGIS-style baseline vs 3DPro with the
//! FR and FPR paradigms — single-threaded, brute-force geometry on both
//! sides for fairness, all data in memory (paper §6.6).
//!
//! ```sh
//! cargo run --release -p tripro-bench --bin fig13
//! ```

use tripro::{Accel, Paradigm, QueryConfig};
use tripro_baseline::BaselineDb;
use tripro_bench::harness::{fmt_secs, Scale, TableWriter, TestId, Workloads};

fn main() {
    let scale = Scale::from_env();
    let w = Workloads::generate(scale);
    let mut out = TableWriter::new();
    out.line("Fig 13 — latency (seconds): PostGIS-style baseline vs 3DPro FR vs FPR");
    out.line(format!(
        "scale={scale:?}, single thread, brute-force geometry"
    ));
    out.line(format!(
        "{:<8} {:>14} {:>12} {:>12} {:>10} {:>10}",
        "Test", "baseline", "3DPro-FR", "3DPro-FPR", "FR boost", "FPR boost"
    ));

    // Baseline tables.
    let nuclei_a = BaselineDb::load(&w.raw_nuclei_a);
    let nuclei_b = BaselineDb::load(&w.raw_nuclei_b);
    let vessels = BaselineDb::load(&w.raw_vessels);

    for test in TestId::ALL {
        // Baseline timing.
        let t0 = std::time::Instant::now();
        match test {
            TestId::IntNN => {
                let _ = nuclei_a.intersection_join(&nuclei_b);
            }
            TestId::WnNN => {
                let _ = nuclei_a.within_join(&nuclei_b, w.wn_nn_distance);
            }
            TestId::WnNV => {
                let _ = nuclei_a.within_join(&vessels, w.wn_nv_distance);
            }
            TestId::NnNN => {
                let buffer = nuclei_a.safe_nn_buffer(&nuclei_b);
                let _ = nuclei_a.nn_join_with_buffer(&nuclei_b, buffer);
            }
            TestId::NnNV => {
                let buffer = nuclei_a.safe_nn_buffer(&vessels);
                let _ = nuclei_a.nn_join_with_buffer(&vessels, buffer);
            }
        }
        let base_s = t0.elapsed().as_secs_f64();
        eprintln!("[fig13] {} baseline: {}s", test.label(), fmt_secs(base_s));

        // 3DPro, single-threaded brute force, FR then FPR.
        let mut tripro_s = [0.0f64; 2];
        for (i, paradigm) in [Paradigm::FilterRefine, Paradigm::FilterProgressiveRefine]
            .into_iter()
            .enumerate()
        {
            std::env::set_var("TRIPRO_THREADS", "1");
            let engine = w.engine(test);
            let mut cfg = QueryConfig::new(paradigm, Accel::Brute).with_threads(1);
            if paradigm == Paradigm::FilterProgressiveRefine {
                cfg = cfg.with_lods(w.profile_lods(test, Accel::Brute));
            }
            w.clear_caches();
            let t0 = std::time::Instant::now();
            match test {
                TestId::IntNN => {
                    let _ = engine.intersection_join(&cfg);
                }
                TestId::WnNN => {
                    let _ = engine.within_join(w.wn_nn_distance, &cfg);
                }
                TestId::WnNV => {
                    let _ = engine.within_join(w.wn_nv_distance, &cfg);
                }
                TestId::NnNN | TestId::NnNV => {
                    let _ = engine.nn_join(&cfg);
                }
            }
            tripro_s[i] = t0.elapsed().as_secs_f64();
            eprintln!(
                "[fig13] {} 3DPro-{}: {}s",
                test.label(),
                paradigm.label(),
                fmt_secs(tripro_s[i])
            );
        }
        out.line(format!(
            "{:<8} {:>14} {:>12} {:>12} {:>9.1}x {:>9.1}x",
            test.label(),
            fmt_secs(base_s),
            fmt_secs(tripro_s[0]),
            fmt_secs(tripro_s[1]),
            base_s / tripro_s[0].max(1e-9),
            base_s / tripro_s[1].max(1e-9),
        ));
    }
    out.blank();
    out.line("Paper shape: the generic-SDBMS baseline is up to orders of magnitude");
    out.line("slower than 3DPro-FR (no LODs, no cache, per-pair brute force), and");
    out.line("FPR adds a further early-return speedup on top.");
    out.save("fig13");
}
