//! Join benchmark snapshot: wall time, face-pair tests and decode-cache
//! hit rate per paradigm × acceleration strategy, plus threads=1 vs N
//! scaling rows, emitted as machine-readable JSON for the CI artifact.
//!
//! ```sh
//! TRIPRO_SCALE=tiny cargo run --release -p tripro-bench --bin bench_joins
//! # -> target/harness/BENCH_joins.json
//! ```
//!
//! The JSON is hand-rolled (every value is a number or a fixed label, no
//! escaping needed) to keep the workspace dependency-free.

use tripro::{Accel, ExecMode, Paradigm};
use tripro_bench::harness::{threads, Scale, TestId, Workloads};

fn u64s(v: &[u64]) -> String {
    let items: Vec<String> = v.iter().map(u64::to_string).collect();
    format!("[{}]", items.join(","))
}

fn cell_json(
    test: TestId,
    paradigm: Paradigm,
    accel: Accel,
    cell: &tripro_bench::harness::CellResult,
) -> String {
    format!(
        concat!(
            "{{\"test\":\"{}\",\"paradigm\":\"{}\",\"accel\":\"{}\",",
            "\"seconds\":{:.6},\"face_pair_tests\":{},",
            "\"cache_hit_rate\":{:.4},\"decodes\":{},\"matches\":{}}}"
        ),
        test.label(),
        paradigm.label(),
        accel.label(),
        cell.seconds,
        cell.stats.face_pair_tests,
        cell.stats.hit_rate(),
        cell.stats.decodes,
        cell.matches
    )
}

fn main() {
    let scale = Scale::from_env();
    let n_threads = threads();
    let w = Workloads::generate(scale);

    // Per-paradigm / per-accel wall time at the configured thread count.
    let mut cells = Vec::new();
    for test in TestId::selected() {
        let mut accels = vec![Accel::Brute, Accel::Partition, Accel::Aabb, Accel::Gpu];
        if test.has_partition_gpu_column() {
            accels.push(Accel::PartitionGpu);
        }
        for paradigm in [Paradigm::FilterRefine, Paradigm::FilterProgressiveRefine] {
            for accel in &accels {
                let lods = (paradigm == Paradigm::FilterProgressiveRefine)
                    .then(|| w.profile_lods(test, *accel));
                let cell = w.run_with_threads(test, paradigm, *accel, lods, n_threads);
                eprintln!(
                    "[bench_joins] {} {} {:<14} {:.3}s  hit_rate={:.2}  pairs={}",
                    test.label(),
                    paradigm.label(),
                    accel.label(),
                    cell.seconds,
                    cell.stats.hit_rate(),
                    cell.stats.face_pair_tests
                );
                cells.push(cell_json(test, paradigm, *accel, &cell));
            }
        }
    }

    // Thread scaling on the representative FPR+AABB cell of each test.
    let mut scaling = Vec::new();
    for test in TestId::selected() {
        let lods = w.profile_lods(test, Accel::Aabb);
        let p = Paradigm::FilterProgressiveRefine;
        let one = w.run_with_threads(test, p, Accel::Aabb, Some(lods.clone()), 1);
        let many = w.run_with_threads(test, p, Accel::Aabb, Some(lods), n_threads);
        let speedup = if many.seconds > 0.0 {
            one.seconds / many.seconds
        } else {
            1.0
        };
        eprintln!(
            "[bench_joins] {} scaling: 1t={:.3}s {}t={:.3}s speedup={:.2}x",
            test.label(),
            one.seconds,
            n_threads,
            many.seconds,
            speedup
        );
        scaling.push(format!(
            concat!(
                "{{\"test\":\"{}\",\"paradigm\":\"FPR\",\"accel\":\"AABB\",",
                "\"seconds_1\":{:.6},\"seconds_n\":{:.6},\"threads_n\":{},",
                "\"speedup\":{:.4}}}"
            ),
            test.label(),
            one.seconds,
            many.seconds,
            n_threads,
            speedup
        ));
    }

    // Pipelined vs phase-sequential driver on the representative FPR+AABB
    // cell: the overlap win plus the per-stage occupancy evidence
    // (stage_ns summing past wall-clock = stages genuinely ran
    // concurrently; overlap_factor is that ratio).
    let mut overlap = Vec::new();
    for test in TestId::selected() {
        let lods = w.profile_lods(test, Accel::Aabb);
        let p = Paradigm::FilterProgressiveRefine;
        let phased = w.run_with_exec(
            test,
            p,
            Accel::Aabb,
            Some(lods.clone()),
            n_threads,
            ExecMode::Phased,
        );
        let piped = w.run_with_exec(
            test,
            p,
            Accel::Aabb,
            Some(lods),
            n_threads,
            ExecMode::Pipelined,
        );
        let speedup = if piped.seconds > 0.0 {
            phased.seconds / piped.seconds
        } else {
            1.0
        };
        let overlap_factor = piped
            .stats
            .overlap_factor(std::time::Duration::from_secs_f64(piped.seconds));
        eprintln!(
            "[bench_joins] {} exec: phased={:.3}s pipelined={:.3}s speedup={:.2}x overlap={:.2}",
            test.label(),
            phased.seconds,
            piped.seconds,
            speedup,
            overlap_factor
        );
        assert_eq!(
            phased.matches,
            piped.matches,
            "{}: drivers disagree on match count",
            test.label()
        );
        overlap.push(format!(
            concat!(
                "{{\"test\":\"{}\",\"paradigm\":\"FPR\",\"accel\":\"AABB\",",
                "\"seconds_phased\":{:.6},\"seconds_pipelined\":{:.6},",
                "\"speedup\":{:.4},\"overlap_factor\":{:.4},",
                "\"stage_ns\":{},\"stage_items\":{},\"queue_stalls\":{}}}"
            ),
            test.label(),
            phased.seconds,
            piped.seconds,
            speedup,
            overlap_factor,
            u64s(&piped.stats.stage_ns),
            u64s(&piped.stats.stage_items),
            u64s(&piped.stats.queue_stalls)
        ));
    }

    let json = format!(
        concat!(
            "{{\"scale\":\"{scale:?}\",\"threads\":{n_threads},\"cells\":[{cells}],",
            "\"thread_scaling\":[{scaling}],\"exec_overlap\":[{overlap}]}}\n"
        ),
        scale = scale,
        n_threads = n_threads,
        cells = cells.join(","),
        scaling = scaling.join(","),
        overlap = overlap.join(",")
    );
    let dir = std::path::Path::new("target/harness");
    std::fs::create_dir_all(dir).expect("create target/harness");
    let path = dir.join("BENCH_joins.json");
    std::fs::write(&path, &json).expect("write BENCH_joins.json");
    eprintln!("[bench_joins] wrote {}", path.display());
    println!("{json}");
}
