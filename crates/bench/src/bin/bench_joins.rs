//! Join benchmark snapshot: wall time, face-pair tests and decode-cache
//! hit rate per paradigm × acceleration strategy, plus threads=1 vs N
//! scaling rows, emitted as machine-readable JSON for the CI artifact.
//!
//! ```sh
//! TRIPRO_SCALE=tiny cargo run --release -p tripro-bench --bin bench_joins
//! # -> target/harness/BENCH_joins.json
//! ```
//!
//! The JSON is hand-rolled (every value is a number or a fixed label, no
//! escaping needed) to keep the workspace dependency-free.

use tripro::{Accel, Paradigm};
use tripro_bench::harness::{threads, Scale, TestId, Workloads};

fn cell_json(
    test: TestId,
    paradigm: Paradigm,
    accel: Accel,
    cell: &tripro_bench::harness::CellResult,
) -> String {
    format!(
        concat!(
            "{{\"test\":\"{}\",\"paradigm\":\"{}\",\"accel\":\"{}\",",
            "\"seconds\":{:.6},\"face_pair_tests\":{},",
            "\"cache_hit_rate\":{:.4},\"decodes\":{},\"matches\":{}}}"
        ),
        test.label(),
        paradigm.label(),
        accel.label(),
        cell.seconds,
        cell.stats.face_pair_tests,
        cell.stats.hit_rate(),
        cell.stats.decodes,
        cell.matches
    )
}

fn main() {
    let scale = Scale::from_env();
    let n_threads = threads();
    let w = Workloads::generate(scale);

    // Per-paradigm / per-accel wall time at the configured thread count.
    let mut cells = Vec::new();
    for test in TestId::selected() {
        let mut accels = vec![Accel::Brute, Accel::Partition, Accel::Aabb, Accel::Gpu];
        if test.has_partition_gpu_column() {
            accels.push(Accel::PartitionGpu);
        }
        for paradigm in [Paradigm::FilterRefine, Paradigm::FilterProgressiveRefine] {
            for accel in &accels {
                let lods = (paradigm == Paradigm::FilterProgressiveRefine)
                    .then(|| w.profile_lods(test, *accel));
                let cell = w.run_with_threads(test, paradigm, *accel, lods, n_threads);
                eprintln!(
                    "[bench_joins] {} {} {:<14} {:.3}s  hit_rate={:.2}  pairs={}",
                    test.label(),
                    paradigm.label(),
                    accel.label(),
                    cell.seconds,
                    cell.stats.hit_rate(),
                    cell.stats.face_pair_tests
                );
                cells.push(cell_json(test, paradigm, *accel, &cell));
            }
        }
    }

    // Thread scaling on the representative FPR+AABB cell of each test.
    let mut scaling = Vec::new();
    for test in TestId::selected() {
        let lods = w.profile_lods(test, Accel::Aabb);
        let p = Paradigm::FilterProgressiveRefine;
        let one = w.run_with_threads(test, p, Accel::Aabb, Some(lods.clone()), 1);
        let many = w.run_with_threads(test, p, Accel::Aabb, Some(lods), n_threads);
        let speedup = if many.seconds > 0.0 {
            one.seconds / many.seconds
        } else {
            1.0
        };
        eprintln!(
            "[bench_joins] {} scaling: 1t={:.3}s {}t={:.3}s speedup={:.2}x",
            test.label(),
            one.seconds,
            n_threads,
            many.seconds,
            speedup
        );
        scaling.push(format!(
            concat!(
                "{{\"test\":\"{}\",\"paradigm\":\"FPR\",\"accel\":\"AABB\",",
                "\"seconds_1\":{:.6},\"seconds_n\":{:.6},\"threads_n\":{},",
                "\"speedup\":{:.4}}}"
            ),
            test.label(),
            one.seconds,
            many.seconds,
            n_threads,
            speedup
        ));
    }

    let json = format!(
        "{{\"scale\":\"{scale:?}\",\"threads\":{n_threads},\"cells\":[{}],\"thread_scaling\":[{}]}}\n",
        cells.join(","),
        scaling.join(",")
    );
    let dir = std::path::Path::new("target/harness");
    std::fs::create_dir_all(dir).expect("create target/harness");
    let path = dir.join("BENCH_joins.json");
    std::fs::write(&path, &json).expect("write BENCH_joins.json");
    eprintln!("[bench_joins] wrote {}", path.display());
    println!("{json}");
}
