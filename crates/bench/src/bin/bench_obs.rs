//! Observability overhead guard: the same join workload with span tracing
//! disabled vs enabled, interleaved, emitted as `BENCH_obs.json`.
//!
//! ```sh
//! TRIPRO_SCALE=tiny cargo run --release -p tripro-bench --bin bench_obs
//! # -> target/harness/BENCH_obs.json
//! ```
//!
//! Registry metrics are always on (they are part of both baselines); what
//! this guard bounds is the *marginal* cost of span tracing — the budget in
//! `docs/observability.md` is under 2% on the join workload. Runs are
//! interleaved off/on so thermal or cache drift hits both sides equally,
//! and the median over several repetitions is compared (medians shrug off
//! a single noisy run where means do not).
//!
//! The same guard also bounds the fault-injection gate ([`tripro::fault`]):
//! one leg runs with a failpoint armed on an *unused* site, which forces
//! every instrumented hot-path site down its registry-lookup slow path
//! (the worst case short of actually injecting faults). Both the fully
//! disarmed gate (baseline) and the armed-on-miss case must stay inside
//! the same <2% budget.

use std::time::Duration;
use tripro::fault::{self, FaultAction, Trigger};
use tripro::obs;
use tripro::{Accel, Paradigm, TraceConfig};
use tripro_bench::harness::{threads, Scale, TestId, Workloads};

/// Overhead budget for enabled span tracing, in percent.
const BUDGET_PCT: f64 = 2.0;
/// Interleaved repetitions per side.
const REPS: usize = 5;

fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    xs.get(xs.len() / 2).copied().unwrap_or(0.0)
}

fn main() {
    let scale = Scale::from_env();
    let n_threads = threads();
    let w = Workloads::generate(scale);
    let test = TestId::IntNN;
    let paradigm = Paradigm::FilterProgressiveRefine;
    let accel = Accel::Aabb;
    let lods = w.profile_lods(test, accel);

    // A high slow threshold keeps the slow log empty (its sort is off the
    // hot path anyway, but the guard measures steady-state tracing, not
    // log churn).
    obs::tracer().configure(&TraceConfig {
        enabled: false,
        slow_threshold: Duration::from_secs(3600),
        ..TraceConfig::default()
    });

    let run = |enabled: bool| -> f64 {
        obs::tracer().set_enabled(enabled);
        w.clear_caches();
        let cell = w.run_with_threads(test, paradigm, accel, Some(lods.clone()), n_threads);
        obs::tracer().set_enabled(false);
        cell.seconds
    };
    // Arm a failpoint on a site no production code evaluates: `armed()`
    // flips true and every real site pays the registry-miss slow path.
    let run_fault_armed = || -> f64 {
        fault::set("bench.unused", FaultAction::Err, Trigger::Always);
        w.clear_caches();
        let cell = w.run_with_threads(test, paradigm, accel, Some(lods.clone()), n_threads);
        fault::clear();
        cell.seconds
    };

    // Warm all paths (allocators, decode cache shape, lazily-bound
    // metric handles) before timing.
    let _ = run(false);
    let _ = run(true);
    let _ = run_fault_armed();

    let mut off = Vec::with_capacity(REPS);
    let mut on = Vec::with_capacity(REPS);
    let mut fault_armed = Vec::with_capacity(REPS);
    for rep in 0..REPS {
        let a = run(false);
        let b = run(true);
        let c = run_fault_armed();
        eprintln!("[bench_obs] rep {rep}: disabled {a:.4}s, enabled {b:.4}s, fault-armed {c:.4}s");
        off.push(a);
        on.push(b);
        fault_armed.push(c);
    }

    let med_off = median(&mut off);
    let med_on = median(&mut on);
    let med_fault = median(&mut fault_armed);
    let pct_of = |v: f64| {
        if med_off > 0.0 {
            (v - med_off) / med_off * 100.0
        } else {
            0.0
        }
    };
    let overhead_pct = pct_of(med_on);
    let fault_overhead_pct = pct_of(med_fault);
    let pass = overhead_pct < BUDGET_PCT && fault_overhead_pct < BUDGET_PCT;
    eprintln!(
        "[bench_obs] tracing overhead: {overhead_pct:+.2}% \
         (disabled {med_off:.4}s, enabled {med_on:.4}s, budget {BUDGET_PCT}%)"
    );
    eprintln!(
        "[bench_obs] fault-gate overhead (armed, registry miss): \
         {fault_overhead_pct:+.2}% ({med_fault:.4}s, budget {BUDGET_PCT}%) -> {}",
        if pass { "PASS" } else { "OVER BUDGET" }
    );

    let json = format!(
        concat!(
            "{{\"scale\":\"{:?}\",\"threads\":{},\"test\":\"{}\",",
            "\"paradigm\":\"FPR\",\"accel\":\"AABB\",\"reps\":{},",
            "\"seconds_disabled\":{:.6},\"seconds_enabled\":{:.6},",
            "\"seconds_faults_armed\":{:.6},",
            "\"overhead_pct\":{:.4},\"fault_overhead_pct\":{:.4},",
            "\"budget_pct\":{:.1},\"pass\":{}}}\n"
        ),
        scale,
        n_threads,
        test.label(),
        REPS,
        med_off,
        med_on,
        med_fault,
        overhead_pct,
        fault_overhead_pct,
        BUDGET_PCT,
        pass
    );
    let dir = std::path::Path::new("target/harness");
    std::fs::create_dir_all(dir).expect("create target/harness");
    let path = dir.join("BENCH_obs.json");
    std::fs::write(&path, &json).expect("write BENCH_obs.json");
    eprintln!("[bench_obs] wrote {}", path.display());
    println!("{json}");
}
