//! Observability overhead guard: the same join workload with span tracing
//! disabled vs enabled, interleaved, emitted as `BENCH_obs.json`.
//!
//! ```sh
//! TRIPRO_SCALE=tiny cargo run --release -p tripro-bench --bin bench_obs
//! # -> target/harness/BENCH_obs.json
//! ```
//!
//! Registry metrics are always on (they are part of both baselines); what
//! this guard bounds is the *marginal* cost of span tracing — the budget in
//! `docs/observability.md` is under 2% on the join workload. Runs are
//! interleaved off/on so thermal or cache drift hits both sides equally,
//! and the median over several repetitions is compared (medians shrug off
//! a single noisy run where means do not).
//!
//! The same guard also bounds the fault-injection gate ([`tripro::fault`]):
//! one leg runs with a failpoint armed on an *unused* site, which forces
//! every instrumented hot-path site down its registry-lookup slow path
//! (the worst case short of actually injecting faults). Both the fully
//! disarmed gate (baseline) and the armed-on-miss case must stay inside
//! the same <2% budget.

use std::sync::Arc;
use std::time::{Duration, Instant};
use tripro::fault::{self, FaultAction, Trigger};
use tripro::obs;
use tripro::{Accel, ObjectStore, Paradigm, StoreConfig, TraceConfig};
use tripro_bench::harness::{threads, Scale, TestId, Workloads};
use tripro_serve::{
    partition_source, Client, Coordinator, CoordinatorConfig, Request, ServeConfig, Server,
    ShardMap, ShardView, TraceContext,
};

/// Overhead budget for enabled span tracing, in percent.
const BUDGET_PCT: f64 = 2.0;
/// Interleaved repetitions per side.
const REPS: usize = 5;
/// Shard fanout of the distributed leg's loopback cluster.
const CLUSTER_SHARDS: u32 = 3;

fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    xs.get(xs.len() / 2).copied().unwrap_or(0.0)
}

/// A loopback 3-shard cluster over the harness stores, for the
/// distributed tracing leg: shards + coordinator in-process, queried over
/// real TCP so the v6 trace propagation pays its true wire cost.
struct LoopCluster {
    shards: Vec<Server>,
    coord: Coordinator,
    n_targets: u32,
}

impl LoopCluster {
    fn start(w: &Workloads) -> LoopCluster {
        const CACHE: usize = 64 << 20;
        let store_cfg = StoreConfig::default();
        let target =
            Arc::new(ObjectStore::build(&w.raw_nuclei_a, &store_cfg).expect("encode target"));
        let source_objects = ObjectStore::build(&w.raw_nuclei_b, &store_cfg)
            .expect("encode source")
            .into_objects();
        let map = ShardMap::new(1, ShardMap::cell_for(&target), CLUSTER_SHARDS);
        let source_total = source_objects.len() as u64;
        let mut shards = Vec::new();
        let mut addrs = Vec::new();
        for i in 0..CLUSTER_SHARDS {
            let full = ObjectStore::from_objects(source_objects.clone(), CACHE);
            let (local, ids) = partition_source(full, &map, i, CACHE);
            let cfg = ServeConfig {
                addr: "127.0.0.1:0".to_string(),
                shard: Some(ShardView {
                    map,
                    index: i,
                    source_total,
                }),
                source_ids: Some(ids),
                ..Default::default()
            };
            let s = Server::start(Arc::clone(&target), Arc::new(local), cfg).expect("start shard");
            addrs.push(s.addr().to_string());
            shards.push(s);
        }
        let coord = Coordinator::start(
            Arc::clone(&target),
            CoordinatorConfig {
                addr: "127.0.0.1:0".to_string(),
                shards: addrs,
                epoch: 1,
                ..Default::default()
            },
        )
        .expect("start coordinator");
        let n_targets = target.len() as u32;
        LoopCluster {
            shards,
            coord,
            n_targets,
        }
    }

    /// One pass of kNN joins over every target, optionally traced.
    fn run(&self, client: &mut Client, trace: Option<&TraceContext>) -> f64 {
        let t0 = Instant::now();
        for t in 0..self.n_targets {
            client
                .query_traced(
                    &Request::Knn {
                        target: t,
                        k: 3,
                        deadline_ms: u32::MAX,
                    },
                    trace,
                )
                .expect("cluster query");
        }
        t0.elapsed().as_secs_f64()
    }

    fn shutdown(self) {
        self.coord.shutdown();
        for s in self.shards {
            s.shutdown();
        }
    }
}

fn main() {
    let scale = Scale::from_env();
    let n_threads = threads();
    let w = Workloads::generate(scale);
    let test = TestId::IntNN;
    let paradigm = Paradigm::FilterProgressiveRefine;
    let accel = Accel::Aabb;
    let lods = w.profile_lods(test, accel);

    // A high slow threshold keeps the slow log empty (its sort is off the
    // hot path anyway, but the guard measures steady-state tracing, not
    // log churn).
    obs::tracer().configure(&TraceConfig {
        enabled: false,
        slow_threshold: Duration::from_secs(3600),
        ..TraceConfig::default()
    });

    let run = |enabled: bool| -> f64 {
        obs::tracer().set_enabled(enabled);
        w.clear_caches();
        let cell = w.run_with_threads(test, paradigm, accel, Some(lods.clone()), n_threads);
        obs::tracer().set_enabled(false);
        cell.seconds
    };
    // Arm a failpoint on a site no production code evaluates: `armed()`
    // flips true and every real site pays the registry-miss slow path.
    let run_fault_armed = || -> f64 {
        fault::set("bench.unused", FaultAction::Err, Trigger::Always);
        w.clear_caches();
        let cell = w.run_with_threads(test, paradigm, accel, Some(lods.clone()), n_threads);
        fault::clear();
        cell.seconds
    };

    // Warm all paths (allocators, decode cache shape, lazily-bound
    // metric handles) before timing.
    let _ = run(false);
    let _ = run(true);
    let _ = run_fault_armed();

    let mut off = Vec::with_capacity(REPS);
    let mut on = Vec::with_capacity(REPS);
    let mut fault_armed = Vec::with_capacity(REPS);
    for rep in 0..REPS {
        let a = run(false);
        let b = run(true);
        let c = run_fault_armed();
        eprintln!("[bench_obs] rep {rep}: disabled {a:.4}s, enabled {b:.4}s, fault-armed {c:.4}s");
        off.push(a);
        on.push(b);
        fault_armed.push(c);
    }

    // Distributed leg: the same budget applied to the v6 cluster path —
    // trace-context propagation, per-shard span summaries and coordinator
    // stitching must stay inside the tracing budget end to end. The
    // untraced side sends no trace context with the tracer disabled, so
    // the coordinator skips propagation entirely; the traced side samples
    // every request.
    let cluster = LoopCluster::start(&w);
    let mut client = Client::connect(cluster.coord.addr()).expect("connect coordinator");
    let ctx = TraceContext {
        trace_id: 0x0b5_0b5,
        parent_span_id: 0,
        sampled: true,
    };
    let run_cluster = |client: &mut Client, traced: bool| -> f64 {
        obs::tracer().set_enabled(traced);
        let s = cluster.run(client, traced.then_some(&ctx));
        obs::tracer().set_enabled(false);
        s
    };
    let _ = run_cluster(&mut client, false);
    let _ = run_cluster(&mut client, true);
    let mut cl_off = Vec::with_capacity(REPS);
    let mut cl_on = Vec::with_capacity(REPS);
    for rep in 0..REPS {
        let a = run_cluster(&mut client, false);
        let b = run_cluster(&mut client, true);
        eprintln!("[bench_obs] cluster rep {rep}: untraced {a:.4}s, traced {b:.4}s");
        cl_off.push(a);
        cl_on.push(b);
    }
    drop(client);
    cluster.shutdown();

    let med_off = median(&mut off);
    let med_on = median(&mut on);
    let med_fault = median(&mut fault_armed);
    // Loopback TCP latency drifts across reps, so the cluster overhead is
    // the median of the *paired* per-rep ratios (each traced run divided
    // by the untraced run interleaved right before it), not the ratio of
    // independent medians — pairing cancels the drift both sides share.
    // (Computed before `median` sorts the sides in place.)
    let mut cl_ratio: Vec<f64> = cl_on
        .iter()
        .zip(&cl_off)
        .filter(|&(_, &a)| a > 0.0)
        .map(|(&b, &a)| (b - a) / a * 100.0)
        .collect();
    let cluster_trace_overhead_pct = median(&mut cl_ratio);
    let med_cl_off = median(&mut cl_off);
    let med_cl_on = median(&mut cl_on);
    let pct_of = |v: f64| {
        if med_off > 0.0 {
            (v - med_off) / med_off * 100.0
        } else {
            0.0
        }
    };
    let overhead_pct = pct_of(med_on);
    let fault_overhead_pct = pct_of(med_fault);
    let pass = overhead_pct < BUDGET_PCT
        && fault_overhead_pct < BUDGET_PCT
        && cluster_trace_overhead_pct < BUDGET_PCT;
    eprintln!(
        "[bench_obs] tracing overhead: {overhead_pct:+.2}% \
         (disabled {med_off:.4}s, enabled {med_on:.4}s, budget {BUDGET_PCT}%)"
    );
    eprintln!(
        "[bench_obs] fault-gate overhead (armed, registry miss): \
         {fault_overhead_pct:+.2}% ({med_fault:.4}s, budget {BUDGET_PCT}%)"
    );
    eprintln!(
        "[bench_obs] cluster tracing overhead (3-shard loopback, v6 \
         propagation + stitching): {cluster_trace_overhead_pct:+.2}% \
         (untraced {med_cl_off:.4}s, traced {med_cl_on:.4}s, budget {BUDGET_PCT}%) -> {}",
        if pass { "PASS" } else { "OVER BUDGET" }
    );

    let json = format!(
        concat!(
            "{{\"scale\":\"{:?}\",\"threads\":{},\"test\":\"{}\",",
            "\"paradigm\":\"FPR\",\"accel\":\"AABB\",\"reps\":{},",
            "\"seconds_disabled\":{:.6},\"seconds_enabled\":{:.6},",
            "\"seconds_faults_armed\":{:.6},",
            "\"seconds_cluster\":{:.6},\"seconds_cluster_traced\":{:.6},",
            "\"overhead_pct\":{:.4},\"fault_overhead_pct\":{:.4},",
            "\"cluster_trace_overhead_pct\":{:.4},",
            "\"budget_pct\":{:.1},\"pass\":{}}}\n"
        ),
        scale,
        n_threads,
        test.label(),
        REPS,
        med_off,
        med_on,
        med_fault,
        med_cl_off,
        med_cl_on,
        overhead_pct,
        fault_overhead_pct,
        cluster_trace_overhead_pct,
        BUDGET_PCT,
        pass
    );
    let dir = std::path::Path::new("target/harness");
    std::fs::create_dir_all(dir).expect("create target/harness");
    let path = dir.join("BENCH_obs.json");
    std::fs::write(&path, &json).expect("write BENCH_obs.json");
    eprintln!("[bench_obs] wrote {}", path.display());
    println!("{json}");
}
