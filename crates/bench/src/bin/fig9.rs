//! Fig 9: portion of compressed bytes taken by each LOD segment (base LOD0
//! plus each refinement level), for the nuclei and vessel datasets.
//!
//! Objects have ragged LOD ladders (decimation stalls at different depths),
//! so shares are computed per object and averaged, with the object count
//! per level reported.
//!
//! ```sh
//! cargo run --release -p tripro-bench --bin fig9
//! ```

use tripro_bench::harness::{Scale, TableWriter, Workloads};

fn main() {
    let w = Workloads::generate(Scale::from_env());
    let mut out = TableWriter::new();
    out.line("Fig 9 — share of compressed bytes per LOD segment");

    for (name, store) in [("nuclei", &w.nuclei_a), ("vessels", &w.vessels)] {
        // Per-object shares, accumulated positionally.
        let mut share_sum: Vec<f64> = Vec::new();
        let mut counts: Vec<usize> = Vec::new();
        let mut total_bytes = 0usize;
        for id in 0..store.len() as u32 {
            let sizes = store.object(id).compressed.segment_sizes();
            let total: usize = sizes.iter().sum();
            total_bytes += total;
            for (i, s) in sizes.iter().enumerate() {
                if share_sum.len() <= i {
                    share_sum.push(0.0);
                    counts.push(0);
                }
                share_sum[i] += *s as f64 / total as f64;
                counts[i] += 1;
            }
        }
        out.blank();
        out.line(format!(
            "{name}: total {} KiB across {} objects",
            total_bytes / 1024,
            store.len()
        ));
        for (lod, (sum, n)) in share_sum.iter().zip(&counts).enumerate() {
            let share = sum / *n as f64 * 100.0;
            let bar = "#".repeat((share / 2.0).round() as usize);
            out.line(format!(
                "  LOD{lod:<2} {share:>5.1}%  ({n:>4} objects)  {bar}"
            ));
        }
    }
    out.blank();
    out.line("Paper shape: higher LODs take progressively larger shares (each");
    out.line("level roughly doubles the face count it encodes); the base mesh");
    out.line("is a small fraction of the payload.");
    out.save("fig9");
}
