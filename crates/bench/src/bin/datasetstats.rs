//! Dataset statistics mirroring §6.2: protruding-vertex fractions,
//! compression ratios and cost, per-LOD size shares, and the fraction of
//! faces shared between adjacent LODs.
//!
//! ```sh
//! cargo run --release -p tripro-bench --bin datasetstats
//! ```

use tripro_bench::harness::{Scale, TableWriter, Workloads};
use tripro_mesh::{encode, lod_profile, protruding_fraction_of, raw_size, EncoderConfig};

fn main() {
    let scale = Scale::from_env();
    let w = Workloads::generate(scale);
    let mut out = TableWriter::new();
    out.line(format!("Dataset statistics (paper §6.2); scale={scale:?}"));

    // ---- protruding fractions ----
    let frac_of = |meshes: &[tripro_mesh::TriMesh]| {
        let sample = meshes.len().min(20);
        let mut acc = 0.0;
        for m in &meshes[..sample] {
            acc += protruding_fraction_of(m, 16);
        }
        acc / sample as f64
    };
    let f_nuc = frac_of(&w.raw_nuclei_a);
    let f_ves = frac_of(&w.raw_vessels);
    // Extension: red blood cells sit between the paper's two families.
    let f_rbc = {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(0x2BC);
        let cells: Vec<_> = (0..10)
            .map(|i| {
                tripro_synth::rbc(
                    &mut rng,
                    &tripro_synth::RbcConfig::default(),
                    tripro_geom::vec3(i as f64 * 4.0, 0.0, 0.0),
                )
            })
            .collect();
        frac_of(&cells)
    };
    out.blank();
    out.line("protruding-vertex fraction (paper: ~99% nuclei, ~75% vessels, 92% all):");
    out.line(format!("  nuclei:  {:.1}%", f_nuc * 100.0));
    out.line(format!("  vessels: {:.1}%", f_ves * 100.0));
    out.line(format!(
        "  RBCs:    {:.1}%  (extension dataset)",
        f_rbc * 100.0
    ));

    // ---- compression ratio and in-memory sizes ----
    let raw_total: usize = w
        .raw_nuclei_a
        .iter()
        .chain(&w.raw_nuclei_b)
        .chain(&w.raw_vessels)
        .map(raw_size)
        .sum();
    let compressed_total = w.nuclei_a.compressed_bytes()
        + w.nuclei_b.compressed_bytes()
        + w.vessels.compressed_bytes();
    // In-memory decoded structures (the paper compares CGAL polyhedra, which
    // are far heavier than flat arrays; we report the editable-Mesh size:
    // slots + incidence lists ≈ 88 bytes/face measured).
    let decoded_estimate: usize = (w.nuclei_a.total_full_faces()
        + w.nuclei_b.total_full_faces()
        + w.vessels.total_full_faces())
        * 88;
    out.blank();
    out.line("sizes:");
    out.line(format!(
        "  serialized raw geometry:   {:>10} KiB",
        raw_total / 1024
    ));
    out.line(format!(
        "  decoded in-memory (est.):  {:>10} KiB",
        decoded_estimate / 1024
    ));
    out.line(format!(
        "  PPVP compressed:           {:>10} KiB",
        compressed_total / 1024
    ));
    out.line(format!(
        "  ratio vs raw: {:.1}x, vs in-memory: {:.1}x (paper: 1.15TB -> 18.4GB = 62x vs CGAL)",
        raw_total as f64 / compressed_total as f64,
        decoded_estimate as f64 / compressed_total as f64,
    ));

    // ---- compression cost ----
    let t0 = std::time::Instant::now();
    let n_sample = w.raw_nuclei_a.len().min(50);
    for m in &w.raw_nuclei_a[..n_sample] {
        let _ = encode(m, &EncoderConfig::default()).unwrap();
    }
    let per_nucleus = t0.elapsed().as_secs_f64() / n_sample as f64;
    let t0 = std::time::Instant::now();
    let v_sample = w.raw_vessels.len().min(2);
    for m in &w.raw_vessels[..v_sample] {
        let _ = encode(m, &EncoderConfig::default()).unwrap();
    }
    let per_vessel = t0.elapsed().as_secs_f64() / v_sample.max(1) as f64;
    out.blank();
    out.line("compression cost (paper: 0.4 ms/nucleus, 36.3 ms/vessel):");
    out.line(format!("  per nucleus: {:.2} ms", per_nucleus * 1e3));
    out.line(format!("  per vessel:  {:.1} ms", per_vessel * 1e3));

    // ---- shared faces between adjacent LODs ----
    let mut shares = Vec::new();
    for id in 0..(w.nuclei_a.len().min(10) as u32) {
        let p = lod_profile(&w.nuclei_a.object(id).compressed).unwrap();
        shares.extend(p.shared_face_fractions);
    }
    let mean_share = shares.iter().sum::<f64>() / shares.len().max(1) as f64;
    out.blank();
    out.line(format!(
        "faces shared between adjacent LODs: {:.1}% (paper: ~15.6%)",
        mean_share * 100.0
    ));
    out.save("datasetstats");
}
