//! `tripro-load` — load generator for a running `tripro serve` instance.
//!
//! ```sh
//! tripro serve --target A --source B --addr 127.0.0.1:3750 &
//! tripro-load --addr 127.0.0.1:3750 --clients 8 --requests 200
//! # -> target/harness/BENCH_serve.json
//! ```
//!
//! Two driving modes:
//!
//! * **closed-loop** (default): each of `--clients` connections issues its
//!   next request as soon as the previous one completes — measures service
//!   capacity under full concurrency.
//! * **open-loop** (`--rate RPS`): requests are scheduled on a fixed global
//!   arrival clock split across clients, regardless of completions — the
//!   arrival process the admission controller is designed for. Under an
//!   offered rate beyond capacity the server must shed (`Overloaded`), not
//!   collapse.
//!
//! `Overloaded` and `DeadlineExceeded` replies are expected outcomes and
//! counted separately; transport or protocol failures make the run exit
//! nonzero. The JSON summary (hand-rolled, the workspace is
//! dependency-free) lands in `target/harness/BENCH_serve.json`.

use std::time::{Duration, Instant};
use tripro_serve::{Client, ErrorCode, QueryReply, Request, RetryPolicy, RetryingClient};

/// Request kinds the generator can mix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OpKind {
    Contains,
    Intersect,
    Within,
    Nn,
    Knn,
}

impl OpKind {
    fn parse(s: &str) -> Option<OpKind> {
        Some(match s {
            "contains" => OpKind::Contains,
            "intersect" => OpKind::Intersect,
            "within" => OpKind::Within,
            "nn" => OpKind::Nn,
            "knn" => OpKind::Knn,
            _ => return None,
        })
    }
}

/// Per-thread outcome tally.
#[derive(Default)]
struct Tally {
    ok: u64,
    /// Successful replies flagged partial (a shard failed under a
    /// coordinator's `--allow-partial` kNN).
    partial: u64,
    overloaded: u64,
    deadline_expired: u64,
    errors: u64,
    /// Retries spent across all requests (transient failures re-attempted).
    retries: u64,
    /// Reconnects after transport-level resets.
    reconnects: u64,
    /// Requests still `Overloaded` after their whole retry budget.
    gave_up: u64,
    /// Replies compared against the `--verify` reference endpoint.
    verified: u64,
    /// Compared replies that diverged from the reference (fails the run).
    mismatches: u64,
    /// Total backoff slept across all retries, seconds.
    retry_backoff_s: f64,
    /// First-attempt latencies (requests answered without a retry),
    /// seconds — comparable across runs regardless of retry policy.
    latencies: Vec<f64>,
    /// Wall-clock per request including retries and backoff, seconds.
    all_latencies: Vec<f64>,
}

struct Args {
    /// Endpoints to drive; clients round-robin across them. One entry for
    /// a single engine or coordinator, several to spread load over shards.
    addrs: Vec<String>,
    clients: usize,
    requests: usize,
    rate: f64,
    deadline_ms: u32,
    within_d: f64,
    knn_k: u32,
    mix: Vec<OpKind>,
    retries: u32,
    retry_base_ms: u64,
    retry_max_ms: u64,
    seed: u64,
    shutdown: bool,
    /// Reference endpoint: every successful reply from the driven
    /// endpoint is compared against this one's answer for the same
    /// request; any divergence fails the run. The byte-identity gate for
    /// a coordinator fronting shards vs a single engine.
    verify: Option<String>,
    out: String,
}

fn parse_args() -> Result<Args, String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut a = Args {
        addrs: vec!["127.0.0.1:3750".to_string()],
        clients: 4,
        requests: 100,
        rate: 0.0,
        deadline_ms: u32::MAX,
        within_d: 1.0,
        knn_k: 3,
        mix: vec![
            OpKind::Intersect,
            OpKind::Within,
            OpKind::Nn,
            OpKind::Knn,
            OpKind::Contains,
        ],
        retries: 4,
        retry_base_ms: 10,
        retry_max_ms: 2_000,
        seed: 0x3D50,
        shutdown: false,
        verify: None,
        out: "target/harness/BENCH_serve.json".to_string(),
    };
    let mut i = 0;
    while i < argv.len() {
        let flag = argv[i].as_str();
        let val = |i: &mut usize| -> Result<String, String> {
            *i += 1;
            argv.get(*i)
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match flag {
            "--addr" => {
                a.addrs = val(&mut i)?
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
                    .collect();
                if a.addrs.is_empty() {
                    return Err("--addr needs at least one host:port".to_string());
                }
            }
            "--clients" => a.clients = val(&mut i)?.parse().map_err(|_| "bad --clients")?,
            "--requests" => a.requests = val(&mut i)?.parse().map_err(|_| "bad --requests")?,
            "--rate" => a.rate = val(&mut i)?.parse().map_err(|_| "bad --rate")?,
            "--deadline-ms" => {
                a.deadline_ms = val(&mut i)?.parse().map_err(|_| "bad --deadline-ms")?;
            }
            "--within-d" => a.within_d = val(&mut i)?.parse().map_err(|_| "bad --within-d")?,
            "--k" => a.knn_k = val(&mut i)?.parse().map_err(|_| "bad --k")?,
            "--mix" => {
                let spec = val(&mut i)?;
                a.mix = spec
                    .split(',')
                    .map(|s| OpKind::parse(s.trim()).ok_or_else(|| format!("bad op {s:?}")))
                    .collect::<Result<_, _>>()?;
                if a.mix.is_empty() {
                    return Err("--mix needs at least one op".to_string());
                }
            }
            "--retries" => a.retries = val(&mut i)?.parse().map_err(|_| "bad --retries")?,
            "--retry-base-ms" => {
                a.retry_base_ms = val(&mut i)?.parse().map_err(|_| "bad --retry-base-ms")?;
            }
            "--retry-max-ms" => {
                a.retry_max_ms = val(&mut i)?.parse().map_err(|_| "bad --retry-max-ms")?;
            }
            "--seed" => a.seed = val(&mut i)?.parse().map_err(|_| "bad --seed")?,
            "--shutdown" => a.shutdown = true,
            "--verify" => a.verify = Some(val(&mut i)?),
            "--out" => a.out = val(&mut i)?,
            "--help" | "-h" => {
                eprintln!(
                    "usage: tripro-load --addr HOST:PORT[,HOST:PORT...] [--clients N] [--requests R] \
                     [--rate RPS] [--deadline-ms MS] [--mix a,b,...] [--within-d D] \
                     [--k K] [--retries N] [--retry-base-ms MS] [--retry-max-ms MS] \
                     [--seed S] [--shutdown] [--verify HOST:PORT] [--out FILE]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
        i += 1;
    }
    if a.clients == 0 || a.requests == 0 {
        return Err("--clients and --requests must be positive".to_string());
    }
    Ok(a)
}

/// Deterministic request stream: splitmix64 over (client, seq).
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn request_for(a: &Args, n_targets: u64, client: usize, seq: usize) -> Request {
    let r = mix64(((client as u64) << 32) ^ seq as u64);
    let kind = a.mix[seq % a.mix.len()];
    let target = (r % n_targets.max(1)) as u32;
    let deadline_ms = a.deadline_ms;
    match kind {
        OpKind::Intersect => Request::Intersect {
            target,
            deadline_ms,
        },
        OpKind::Within => Request::Within {
            target,
            d: a.within_d,
            deadline_ms,
        },
        OpKind::Nn => Request::Nn {
            target,
            deadline_ms,
        },
        OpKind::Knn => Request::Knn {
            target,
            k: a.knn_k,
            deadline_ms,
        },
        OpKind::Contains => {
            // A pseudo-random probe point in a unit-ish cube; misses are as
            // informative as hits for service latency.
            let f = |v: u64| (v & 0xFFFF) as f64 / 65536.0 * 4.0 - 2.0;
            Request::Contains {
                p: [f(r), f(r >> 16), f(r >> 32)],
                deadline_ms,
            }
        }
    }
}

fn drive_client(a: &Args, n_targets: u64, client: usize, start: Instant) -> Result<Tally, String> {
    let policy = RetryPolicy {
        max_retries: a.retries,
        base_backoff: Duration::from_millis(a.retry_base_ms),
        max_backoff: Duration::from_millis(a.retry_max_ms),
        // Per-client jitter streams stay disjoint but seed-deterministic.
        seed: a.seed ^ ((client as u64) << 17),
    };
    // Round-robin endpoint assignment: client i drives endpoint i mod N.
    let addr = &a.addrs[client % a.addrs.len()];
    let mut c =
        RetryingClient::connect(addr, policy.clone()).map_err(|e| format!("connect: {e}"))?;
    let mut verify = match &a.verify {
        Some(v) => {
            Some(RetryingClient::connect(v, policy).map_err(|e| format!("verify connect: {e}"))?)
        }
        None => None,
    };
    let mut t = Tally::default();
    // Open-loop: this client owns every a.clients-th slot of the global
    // arrival clock.
    let interval = (a.rate > 0.0).then(|| Duration::from_secs_f64(a.clients as f64 / a.rate));
    for seq in 0..a.requests {
        if let Some(iv) = interval {
            let due = start + iv.mul_f64(seq as f64) + iv.mul_f64(client as f64 / a.clients as f64);
            let now = Instant::now();
            if due > now {
                std::thread::sleep(due - now);
            }
        }
        let req = request_for(a, n_targets, client, seq);
        let t0 = Instant::now();
        match c.query(&req) {
            Ok((reply, oc)) => {
                t.retries += u64::from(oc.retries);
                t.reconnects += u64::from(oc.reconnects);
                t.retry_backoff_s += oc.backoff.as_secs_f64();
                let elapsed = t0.elapsed().as_secs_f64();
                t.all_latencies.push(elapsed);
                if oc.attempts == 1 {
                    t.latencies.push(elapsed);
                }
                // Byte-identity gate: a complete (non-partial) answer must
                // match the reference endpoint's answer exactly.
                if let (Some(v), Some(ids)) = (verify.as_mut(), reply.ids()) {
                    if !matches!(reply, QueryReply::PartialIds(_)) {
                        match v.query(&req) {
                            Ok((vreply, _)) => {
                                t.verified += 1;
                                if vreply.ids() != Some(ids) {
                                    t.mismatches += 1;
                                    eprintln!(
                                        "[tripro-load] MISMATCH on {req:?}: {:?} vs reference \
                                         {:?}",
                                        reply, vreply
                                    );
                                }
                            }
                            Err(e) => return Err(format!("verify endpoint died: {e}")),
                        }
                    }
                }
                match reply {
                    QueryReply::Ids(_) | QueryReply::Scored { partial: false, .. } => t.ok += 1,
                    QueryReply::PartialIds(_) | QueryReply::Scored { partial: true, .. } => {
                        t.ok += 1;
                        t.partial += 1;
                    }
                    QueryReply::Error { code, .. } => match code {
                        ErrorCode::Overloaded => {
                            t.overloaded += 1;
                            if oc.retries > 0 {
                                t.gave_up += 1;
                            }
                        }
                        ErrorCode::DeadlineExceeded => t.deadline_expired += 1,
                        _ => {
                            t.errors += 1;
                            eprintln!("[tripro-load] server error: {code:?}");
                        }
                    },
                }
            }
            Err(e) => return Err(format!("client {client} seq {seq}: {e}")),
        }
    }
    Ok(t)
}

/// Sum every sample of one metric family (any label set) in a Prometheus
/// text exposition; `None` when the family never appears.
fn scrape_sum(text: &str, family: &str) -> Option<f64> {
    let mut sum = 0.0;
    let mut seen = false;
    for line in text.lines() {
        if line.starts_with('#') {
            continue;
        }
        let Some((sample, value)) = line.rsplit_once(' ') else {
            continue;
        };
        let name = sample.split_once('{').map_or(sample, |(n, _)| n);
        if name == family {
            if let Ok(v) = value.trim().parse::<f64>() {
                sum += v;
                seen = true;
            }
        }
    }
    seen.then_some(sum)
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn main() {
    let a = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("tripro-load: {e}");
            std::process::exit(2);
        }
    };

    // Learn the store size (for valid target ids) and prove liveness of
    // every endpoint before spending any load.
    let n_targets = {
        let mut n = 0u64;
        for addr in &a.addrs {
            let mut probe = match Client::connect(addr) {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("tripro-load: cannot connect to {addr}: {e}");
                    std::process::exit(1);
                }
            };
            match probe.stats() {
                Ok(s) => n = s.target_objects,
                Err(e) => {
                    eprintln!("tripro-load: stats probe failed for {addr}: {e}");
                    std::process::exit(1);
                }
            }
        }
        n
    };

    let start = Instant::now();
    let mut tallies: Vec<Result<Tally, String>> = Vec::new();
    let args = &a;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..args.clients)
            .map(|client| scope.spawn(move || drive_client(args, n_targets, client, start)))
            .collect();
        for h in handles {
            tallies.push(h.join().unwrap_or_else(|_| Err("client panicked".into())));
        }
    });
    let elapsed = start.elapsed().as_secs_f64();

    let mut total = Tally::default();
    let mut transport_failures = 0u64;
    for t in tallies {
        match t {
            Ok(t) => {
                total.ok += t.ok;
                total.partial += t.partial;
                total.overloaded += t.overloaded;
                total.deadline_expired += t.deadline_expired;
                total.errors += t.errors;
                total.retries += t.retries;
                total.reconnects += t.reconnects;
                total.gave_up += t.gave_up;
                total.verified += t.verified;
                total.mismatches += t.mismatches;
                total.retry_backoff_s += t.retry_backoff_s;
                total.latencies.extend(t.latencies);
                total.all_latencies.extend(t.all_latencies);
            }
            Err(e) => {
                transport_failures += 1;
                eprintln!("[tripro-load] {e}");
            }
        }
    }
    total
        .latencies
        .sort_by(|x, y| x.partial_cmp(y).unwrap_or(std::cmp::Ordering::Equal));
    total
        .all_latencies
        .sort_by(|x, y| x.partial_cmp(y).unwrap_or(std::cmp::Ordering::Equal));
    let answered = total.all_latencies.len() as u64;
    // Percentiles over first-attempt latencies stay comparable across
    // runs regardless of retry policy; p99_with_retries is the client-felt
    // tail including re-attempts and backoff sleeps.
    let lat_ms = |q: f64| percentile(&total.latencies, q) * 1e3;
    let p99_with_retries_ms = percentile(&total.all_latencies, 0.99) * 1e3;
    let max_ms = total.all_latencies.last().copied().unwrap_or(0.0) * 1e3;
    let mode = if a.rate > 0.0 { "open" } else { "closed" };

    eprintln!(
        "[tripro-load] {} mode, {} clients x {} requests in {elapsed:.3}s \
         ({:.1} rps answered)",
        mode,
        a.clients,
        a.requests,
        answered as f64 / elapsed.max(1e-9)
    );
    eprintln!(
        "[tripro-load] ok={} overloaded={} deadline_expired={} errors={} \
         p50={:.2}ms p90={:.2}ms p99={:.2}ms max={:.2}ms",
        total.ok,
        total.overloaded,
        total.deadline_expired,
        total.errors,
        lat_ms(0.50),
        lat_ms(0.90),
        lat_ms(0.99),
        max_ms
    );
    eprintln!(
        "[tripro-load] retries={} reconnects={} gave_up={} \
         backoff={:.3}s p99_with_retries={:.2}ms",
        total.retries, total.reconnects, total.gave_up, total.retry_backoff_s, p99_with_retries_ms
    );

    // Scatter-gather columns: scrape the first endpoint (the coordinator
    // when one fronts the cluster) for fan-out, merge-latency and
    // per-shard error metrics. A plain engine reports all zeros.
    let (fanout_avg, fanout_queries, merge_ms_avg, shard_errors) = {
        let text = Client::connect(&a.addrs[0])
            .and_then(|mut c| c.metrics())
            .unwrap_or_default();
        let fo_sum = scrape_sum(&text, "tripro_shard_fanout_sum").unwrap_or(0.0);
        let fo_count = scrape_sum(&text, "tripro_shard_fanout_count").unwrap_or(0.0);
        let mg_sum = scrape_sum(&text, "tripro_merge_seconds_sum").unwrap_or(0.0);
        let mg_count = scrape_sum(&text, "tripro_merge_seconds_count").unwrap_or(0.0);
        let errs = scrape_sum(&text, "tripro_shard_errors_total").unwrap_or(0.0);
        (
            // Integer histograms expose `_sum` through the same
            // nanosecond-scaled ladder as durations; undo the 1e-9.
            if fo_count > 0.0 {
                fo_sum * 1e9 / fo_count
            } else {
                0.0
            },
            fo_count as u64,
            if mg_count > 0.0 {
                mg_sum / mg_count * 1e3
            } else {
                0.0
            },
            errs as u64,
        )
    };
    if fanout_queries > 0 {
        eprintln!(
            "[tripro-load] coordinator: {} fanned-out queries, avg fanout {:.2}, \
             avg merge {:.3}ms, {} shard errors, {} partial replies",
            fanout_queries, fanout_avg, merge_ms_avg, shard_errors, total.partial
        );
    }

    if a.shutdown {
        for addr in &a.addrs {
            match Client::connect(addr).and_then(|mut c| c.shutdown_server()) {
                Ok(()) => eprintln!("[tripro-load] {addr}: shutdown acknowledged"),
                Err(e) => {
                    eprintln!("[tripro-load] {addr}: shutdown failed: {e}");
                    transport_failures += 1;
                }
            }
        }
    }

    // -1 encodes "no per-request deadline" in the artifact.
    let deadline_field: i64 = if a.deadline_ms == u32::MAX {
        -1
    } else {
        i64::from(a.deadline_ms)
    };
    let json = format!(
        concat!(
            "{{\"addr\":\"{}\",\"endpoints\":{},\"mode\":\"{}\",\"clients\":{},",
            "\"requests_per_client\":{},",
            "\"offered_rate\":{:.3},\"deadline_ms\":{},\"seconds\":{:.6},",
            "\"answered\":{},\"ok\":{},\"partial\":{},\"overloaded\":{},\"deadline_expired\":{},",
            "\"errors\":{},\"transport_failures\":{},\"retries\":{},\"reconnects\":{},",
            "\"gave_up\":{},\"retry_budget\":{},\"retry_backoff_s\":{:.6},",
            "\"throughput_rps\":{:.3},\"p50_ms\":{:.4},\"p90_ms\":{:.4},\"p99_ms\":{:.4},",
            "\"p99_with_retries_ms\":{:.4},\"max_ms\":{:.4},",
            "\"fanout_queries\":{},\"fanout_avg\":{:.4},\"merge_ms_avg\":{:.4},",
            "\"shard_errors\":{},\"verified\":{},\"mismatches\":{}}}\n"
        ),
        a.addrs.join(","),
        a.addrs.len(),
        mode,
        a.clients,
        a.requests,
        a.rate,
        deadline_field,
        elapsed,
        answered,
        total.ok,
        total.partial,
        total.overloaded,
        total.deadline_expired,
        total.errors,
        transport_failures,
        total.retries,
        total.reconnects,
        total.gave_up,
        a.retries,
        total.retry_backoff_s,
        answered as f64 / elapsed.max(1e-9),
        lat_ms(0.50),
        lat_ms(0.90),
        lat_ms(0.99),
        p99_with_retries_ms,
        max_ms,
        fanout_queries,
        fanout_avg,
        merge_ms_avg,
        shard_errors,
        total.verified,
        total.mismatches
    );
    if let Some(dir) = std::path::Path::new(&a.out).parent() {
        std::fs::create_dir_all(dir).expect("create output dir");
    }
    std::fs::write(&a.out, &json).expect("write BENCH_serve.json");
    eprintln!("[tripro-load] wrote {}", a.out);
    println!("{json}");

    if a.verify.is_some() {
        eprintln!(
            "[tripro-load] verify: {} replies compared, {} mismatches",
            total.verified, total.mismatches
        );
    }
    if total.errors > 0 || transport_failures > 0 || total.mismatches > 0 {
        std::process::exit(1);
    }
}
