//! Fig 12: number of object pairs evaluated and pruned by refinements at
//! each LOD, per query type, plus the pruned fraction and the §6.5 LOD
//! choice (pruned fraction > 1/r² = 25% for r = 2).
//!
//! ```sh
//! cargo run --release -p tripro-bench --bin fig12
//! ```

use tripro::{choose_lods, Accel, QueryKind};
use tripro_bench::harness::{Scale, TableWriter, TestId, Workloads};

fn main() {
    let scale = Scale::from_env();
    let w = Workloads::generate(scale);
    let mut out = TableWriter::new();
    out.line(format!(
        "Fig 12 — object pairs evaluated/pruned per LOD (profiling round, scale={scale:?})"
    ));

    for test in TestId::ALL {
        let engine = w.engine(test);
        let kind = match test {
            TestId::IntNN => QueryKind::Intersection,
            TestId::WnNN => QueryKind::Within(w.wn_nn_distance),
            TestId::WnNV => QueryKind::Within(w.wn_nv_distance),
            TestId::NnNN | TestId::NnNV => QueryKind::NearestNeighbour,
        };
        w.clear_caches();
        let choice = choose_lods(&engine, kind, engine.target.len(), Accel::Brute)
            .expect("profiling failed");
        out.blank();
        out.line(format!(
            "== {} ==  (r = {:.2}, refine when pruned fraction > {:.0}%)",
            test.label(),
            choice.r,
            choice.threshold * 100.0
        ));
        out.line(format!(
            "{:>4} {:>10} {:>10} {:>8}  chosen",
            "LOD", "evaluated", "pruned", "frac"
        ));
        for a in &choice.activity {
            out.line(format!(
                "{:>4} {:>10} {:>10} {:>7.1}%  {}",
                a.lod,
                a.evaluated,
                a.pruned,
                a.pruned_fraction * 100.0,
                if choice.chosen.contains(&a.lod) {
                    "*"
                } else {
                    ""
                }
            ));
        }
        out.line(format!("chosen LOD list: {:?}", choice.chosen));
    }
    out.blank();
    out.line("(fractions can exceed 100%: MINDIST-range pruning also resolves");
    out.line("candidates that were never geometrically evaluated at that LOD)");
    out.line("Paper shape: intersection and generous within joins resolve large");
    out.line("fractions at LOD 0–1; highly selective joins concentrate pruning");
    out.line("at the top LOD, and profiling then refines only there.");
    out.save("fig12");
}
