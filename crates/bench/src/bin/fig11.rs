//! Fig 11: number of remaining faces vs decimation rounds, for a nucleus
//! and a vessel. The paper observes the face count halving every two rounds
//! (hence r = 2 per LOD step) and nuclei bottoming out near ~10 faces.
//!
//! ```sh
//! cargo run --release -p tripro-bench --bin fig11
//! ```

use rand::SeedableRng;
use tripro_bench::harness::TableWriter;
use tripro_mesh::{decimation_profile, quantize_mesh, PruneMode};
use tripro_synth::{nucleus, vessel, NucleusConfig, VesselConfig};

fn main() {
    let mut out = TableWriter::new();
    out.line("Fig 11 — remaining faces vs decimation rounds (PPVP pruning)");

    let mut rng = rand::rngs::StdRng::seed_from_u64(11);
    let nuc = nucleus(
        &mut rng,
        &NucleusConfig::default(),
        tripro_geom::vec3(5.0, 5.0, 5.0),
    );
    let ves = vessel(
        &mut rng,
        &VesselConfig {
            levels: 3,
            grid: 40,
            ..Default::default()
        },
        tripro_geom::Vec3::ZERO,
    )
    .mesh;

    for (name, tm) in [("nucleus", &nuc), ("vessel", &ves)] {
        let (mesh, _) = quantize_mesh(tm, 16).expect("quantize");
        let profile = decimation_profile(&mesh, PruneMode::ProtrudingOnly, 14);
        out.blank();
        out.line(format!("{name} ({} faces):", tm.faces.len()));
        out.line(format!(
            "{:>6} {:>9} {:>18}",
            "round", "faces", "ratio to 2 rounds ago"
        ));
        for (round, faces) in profile.iter().enumerate() {
            let r2 = if round >= 2 {
                format!("{:.2}", profile[round - 2] as f64 / *faces as f64)
            } else {
                "-".to_string()
            };
            out.line(format!("{round:>6} {faces:>9} {r2:>18}"));
        }
    }
    out.blank();
    out.line("Paper shape: the face count decays geometrically; the ratio over");
    out.line("two rounds (the paper's r) hovers around 2. PPVP on strongly");
    out.line("recessing regions (vessel joints) stalls earlier than on convex");
    out.line("nuclei.");
    out.save("fig11");
}
