//! # tripro-bench
//!
//! Benchmark harness for every table and figure in the 3DPro paper's
//! evaluation (§6). Criterion microbenches live in `benches/`; the
//! table/figure harness binaries live in `src/bin/` (one per table/figure,
//! see DESIGN.md's experiment index).

pub mod harness;

#[cfg(test)]
mod smoke {
    use rand::SeedableRng;
    use tripro_mesh::{encode, EncoderConfig};
    use tripro_synth::{vessel, VesselConfig};

    #[test]
    fn vessel_ppvp_end_to_end() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(77);
        let cfg = VesselConfig {
            levels: 3,
            grid: 40,
            ..Default::default()
        };
        let v = vessel(&mut rng, &cfg, tripro_geom::Vec3::ZERO);
        let cm = encode(&v.mesh, &EncoderConfig::default()).expect("encode");
        let mut dec = cm.decoder().unwrap();
        let mut prev = dec.mesh().signed_volume6();
        for lod in 1..=dec.max_lod() {
            dec.decode_to(lod).unwrap();
            let vol = dec.mesh().signed_volume6();
            assert!(vol >= prev, "subset property at lod {lod}");
            prev = vol;
        }
        assert_eq!(dec.mesh().face_count(), v.mesh.faces.len());
        dec.mesh().validate_closed_manifold().unwrap();
    }
}
