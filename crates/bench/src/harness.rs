//! Shared infrastructure for the table/figure harness binaries: scaled
//! dataset construction, the five paper test workloads (Table 1's rows),
//! and plain-text table printing.
//!
//! The paper's datasets (10M nuclei / 50k vessels on a 24-core + GPU node)
//! are scaled down to laptop size; set `TRIPRO_SCALE=tiny|small|medium` to
//! trade fidelity for runtime (default: `small`).

use tripro::{
    Accel, Engine, ExecMode, ObjectStore, Paradigm, QueryConfig, StatsSnapshot, StoreConfig,
};
use tripro_mesh::TriMesh;
use tripro_synth::{DatasetConfig, VesselConfig};

/// Dataset scale selected via `TRIPRO_SCALE`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    Tiny,
    Small,
    Medium,
}

impl Scale {
    pub fn from_env() -> Scale {
        match std::env::var("TRIPRO_SCALE").as_deref() {
            Ok("tiny") => Scale::Tiny,
            Ok("medium") => Scale::Medium,
            _ => Scale::Small,
        }
    }

    pub fn dataset_config(self) -> DatasetConfig {
        match self {
            Scale::Tiny => DatasetConfig {
                nuclei_count: 40,
                vessel_count: 1,
                vessel: VesselConfig {
                    levels: 2,
                    grid: 24,
                    ..Default::default()
                },
                ..Default::default()
            },
            Scale::Small => DatasetConfig {
                nuclei_count: 150,
                vessel_count: 2,
                vessel: VesselConfig {
                    levels: 3,
                    grid: 30,
                    ..Default::default()
                },
                ..Default::default()
            },
            Scale::Medium => DatasetConfig {
                nuclei_count: 600,
                vessel_count: 4,
                vessel: VesselConfig {
                    levels: 4,
                    grid: 44,
                    ..Default::default()
                },
                ..Default::default()
            },
        }
    }
}

/// Worker threads for join drivers (`TRIPRO_THREADS`, default: all cores).
pub fn threads() -> usize {
    std::env::var("TRIPRO_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// The five experiment workloads of Table 1 / Fig 10.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TestId {
    /// Intersection join, nuclei segmentation A vs B.
    IntNN,
    /// Within join, nuclei vs nuclei.
    WnNN,
    /// Within join, nuclei vs vessels.
    WnNV,
    /// Nearest-neighbour join, nuclei vs nuclei.
    NnNN,
    /// Nearest-neighbour join, nuclei vs vessels.
    NnNV,
}

impl TestId {
    pub const ALL: [TestId; 5] = [
        TestId::IntNN,
        TestId::WnNN,
        TestId::WnNV,
        TestId::NnNN,
        TestId::NnNV,
    ];

    /// The tests selected by `TRIPRO_TESTS` (comma-separated labels, e.g.
    /// `TRIPRO_TESTS=WN-NV,NN-NV`); all five when unset. Lets long harness
    /// runs be split across invocations.
    pub fn selected() -> Vec<TestId> {
        match std::env::var("TRIPRO_TESTS") {
            Err(_) => Self::ALL.to_vec(),
            Ok(list) => {
                let wanted: Vec<String> = list
                    .split(',')
                    .map(|s| s.trim().to_ascii_uppercase())
                    .collect();
                Self::ALL
                    .into_iter()
                    .filter(|t| wanted.iter().any(|w| w == t.label()))
                    .collect()
            }
        }
    }

    pub fn label(&self) -> &'static str {
        match self {
            TestId::IntNN => "INT-NN",
            TestId::WnNN => "WN-NN",
            TestId::WnNV => "WN-NV",
            TestId::NnNN => "NN-NN",
            TestId::NnNV => "NN-NV",
        }
    }

    /// Does the partition+GPU combination apply (vessel-involving tests,
    /// as in Table 1's last column)?
    pub fn has_partition_gpu_column(&self) -> bool {
        matches!(self, TestId::WnNV | TestId::NnNV)
    }
}

/// The compressed datasets shared by all harness binaries.
pub struct Workloads {
    pub nuclei_a: ObjectStore,
    pub nuclei_b: ObjectStore,
    pub vessels: ObjectStore,
    pub raw_nuclei_a: Vec<TriMesh>,
    pub raw_nuclei_b: Vec<TriMesh>,
    pub raw_vessels: Vec<TriMesh>,
    /// Within-join distances (nuclei-nuclei, nuclei-vessel), sized so a
    /// healthy fraction of candidates matches — the regime where the paper's
    /// within results live.
    pub wn_nn_distance: f64,
    pub wn_nv_distance: f64,
}

impl Workloads {
    pub fn generate(scale: Scale) -> Workloads {
        let cfg = scale.dataset_config();
        eprintln!(
            "[harness] generating tissue block ({} nuclei, {} vessels)...",
            cfg.nuclei_count, cfg.vessel_count
        );
        let block = tripro_synth::generate(&cfg);
        let store_cfg = StoreConfig::default();
        eprintln!("[harness] compressing with PPVP...");
        let t0 = std::time::Instant::now();
        let nuclei_a = ObjectStore::build(&block.nuclei_a, &store_cfg).expect("encode A");
        let nuclei_b = ObjectStore::build(&block.nuclei_b, &store_cfg).expect("encode B");
        let vessels = ObjectStore::build(&block.vessels, &store_cfg).expect("encode vessels");
        eprintln!("[harness] compression took {:?}", t0.elapsed());
        Workloads {
            nuclei_a,
            nuclei_b,
            vessels,
            raw_nuclei_a: block.nuclei_a,
            raw_nuclei_b: block.nuclei_b,
            raw_vessels: block.vessels,
            wn_nn_distance: 2.0 * cfg.nucleus.radius,
            wn_nv_distance: 5.0 * cfg.nucleus.radius,
        }
    }

    /// Engine for a test (target store, source store).
    pub fn engine(&self, test: TestId) -> Engine<'_> {
        match test {
            TestId::IntNN => Engine::new(&self.nuclei_a, &self.nuclei_b),
            TestId::WnNN | TestId::NnNN => Engine::new(&self.nuclei_a, &self.nuclei_b),
            TestId::WnNV | TestId::NnNV => Engine::new(&self.nuclei_a, &self.vessels),
        }
    }

    /// Clear every decode cache (between timed runs).
    pub fn clear_caches(&self) {
        self.nuclei_a.cache().clear();
        self.nuclei_b.cache().clear();
        self.vessels.cache().clear();
    }

    /// Run one Table-1 cell; returns wall seconds, the stats snapshot and
    /// the number of result matches. For FPR the LOD list is chosen by the
    /// automatic profiling round of §6.5 (`lods` may pre-supply it to avoid
    /// re-profiling).
    pub fn run(
        &self,
        test: TestId,
        paradigm: Paradigm,
        accel: Accel,
        lods: Option<Vec<usize>>,
    ) -> CellResult {
        self.run_with_threads(test, paradigm, accel, lods, threads())
    }

    /// [`run`](Workloads::run) with an explicit driver thread count
    /// (used by the thread-scaling rows of the bench snapshot).
    pub fn run_with_threads(
        &self,
        test: TestId,
        paradigm: Paradigm,
        accel: Accel,
        lods: Option<Vec<usize>>,
        driver_threads: usize,
    ) -> CellResult {
        self.run_with_exec(test, paradigm, accel, lods, driver_threads, ExecMode::Auto)
    }

    /// [`run`](Workloads::run) with an explicit thread count *and* driver
    /// paradigm (used by the pipelined-vs-phased overlap rows).
    pub fn run_with_exec(
        &self,
        test: TestId,
        paradigm: Paradigm,
        accel: Accel,
        lods: Option<Vec<usize>>,
        driver_threads: usize,
        exec: ExecMode,
    ) -> CellResult {
        let engine = self.engine(test);
        let mut cfg = QueryConfig::new(paradigm, accel)
            .with_threads(driver_threads)
            .with_exec(exec);
        if paradigm == Paradigm::FilterProgressiveRefine {
            let lods = lods.unwrap_or_else(|| self.profile_lods(test, accel));
            cfg = cfg.with_lods(lods);
        }
        self.clear_caches();
        let t0 = std::time::Instant::now();
        let (matches, stats) = match test {
            TestId::IntNN => {
                let (pairs, stats) = engine.intersection_join(&cfg).expect("join failed");
                (pairs.iter().map(|(_, v)| v.len()).sum::<usize>(), stats)
            }
            TestId::WnNN => {
                let (pairs, stats) = engine
                    .within_join(self.wn_nn_distance, &cfg)
                    .expect("join failed");
                (pairs.iter().map(|(_, v)| v.len()).sum::<usize>(), stats)
            }
            TestId::WnNV => {
                let (pairs, stats) = engine
                    .within_join(self.wn_nv_distance, &cfg)
                    .expect("join failed");
                (pairs.iter().map(|(_, v)| v.len()).sum::<usize>(), stats)
            }
            TestId::NnNN | TestId::NnNV => {
                let (pairs, stats) = engine.nn_join(&cfg).expect("join failed");
                (pairs.iter().filter(|(_, n)| n.is_some()).count(), stats)
            }
        };
        CellResult {
            seconds: t0.elapsed().as_secs_f64(),
            stats: stats.snapshot(),
            matches,
        }
    }

    /// §6.5: profile on a sample to pick the FPR LOD list for a test.
    pub fn profile_lods(&self, test: TestId, accel: Accel) -> Vec<usize> {
        let engine = self.engine(test);
        let kind = match test {
            TestId::IntNN => tripro::QueryKind::Intersection,
            TestId::WnNN => tripro::QueryKind::Within(self.wn_nn_distance),
            TestId::WnNV => tripro::QueryKind::Within(self.wn_nv_distance),
            TestId::NnNN | TestId::NnNV => tripro::QueryKind::NearestNeighbour,
        };
        let sample = (engine.target.len() / 10).clamp(10, 50);
        self.clear_caches();
        let choice = tripro::choose_lods(&engine, kind, sample, accel);
        choice.expect("profiling failed").chosen
    }
}

/// One timed harness cell.
#[derive(Debug, Clone)]
pub struct CellResult {
    pub seconds: f64,
    pub stats: StatsSnapshot,
    pub matches: usize,
}

/// Fixed-width plain-text table writer (prints to stdout and collects the
/// same text so binaries can tee it into a file).
pub struct TableWriter {
    out: String,
}

impl Default for TableWriter {
    fn default() -> Self {
        Self::new()
    }
}

impl TableWriter {
    pub fn new() -> Self {
        Self { out: String::new() }
    }

    pub fn line(&mut self, s: impl AsRef<str>) {
        println!("{}", s.as_ref());
        self.out.push_str(s.as_ref());
        self.out.push('\n');
    }

    pub fn blank(&mut self) {
        self.line("");
    }

    /// Write accumulated text to `target/<name>.txt` as well.
    pub fn save(&self, name: &str) {
        let dir = std::path::Path::new("target/harness");
        let _ = std::fs::create_dir_all(dir);
        let path = dir.join(format!("{name}.txt"));
        if std::fs::write(&path, &self.out).is_ok() {
            eprintln!("[harness] saved {}", path.display());
        }
    }
}

/// Format seconds with adaptive precision (paper prints 1 decimal).
pub fn fmt_secs(s: f64) -> String {
    if s < 0.01 {
        format!("{:.4}", s)
    } else if s < 1.0 {
        format!("{:.3}", s)
    } else {
        format!("{:.1}", s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parses_env_values() {
        // from_env reads the live environment; exercise the mapping table
        // through the match arms directly instead.
        assert_eq!(Scale::Tiny.dataset_config().nuclei_count, 40);
        assert!(
            Scale::Medium.dataset_config().nuclei_count
                > Scale::Small.dataset_config().nuclei_count
        );
    }

    #[test]
    fn test_ids_are_complete_and_labelled() {
        assert_eq!(TestId::ALL.len(), 5);
        let labels: Vec<&str> = TestId::ALL.iter().map(|t| t.label()).collect();
        assert_eq!(labels, vec!["INT-NN", "WN-NN", "WN-NV", "NN-NN", "NN-NV"]);
        assert!(TestId::WnNV.has_partition_gpu_column());
        assert!(!TestId::IntNN.has_partition_gpu_column());
    }

    #[test]
    fn fmt_secs_precision_bands() {
        assert_eq!(fmt_secs(0.0012), "0.0012");
        assert_eq!(fmt_secs(0.123), "0.123");
        assert_eq!(fmt_secs(12.34), "12.3");
    }

    #[test]
    fn tiny_workload_runs_one_cell() {
        let w = Workloads::generate(Scale::Tiny);
        let cell = w.run(
            TestId::IntNN,
            tripro::Paradigm::FilterProgressiveRefine,
            tripro::Accel::Brute,
            Some(vec![0]),
        );
        assert!(cell.seconds >= 0.0);
        assert!(cell.matches > 0, "tiny INT-NN must find intersections");
        // Engine wiring per test id.
        assert_eq!(w.engine(TestId::WnNV).source.len(), w.vessels.len());
        assert_eq!(w.engine(TestId::NnNN).source.len(), w.nuclei_b.len());
    }
}
