//! Criterion benches for the PPVP codec: encode, progressive decode per
//! LOD, and the entropy-coder backend.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use tripro_mesh::{encode, EncoderConfig};
use tripro_synth::{nucleus, vessel, NucleusConfig, VesselConfig};

fn bench_encode(c: &mut Criterion) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let nuc = nucleus(
        &mut rng,
        &NucleusConfig::default(),
        tripro_geom::vec3(5.0, 5.0, 5.0),
    );
    let ves = vessel(
        &mut rng,
        &VesselConfig {
            levels: 3,
            grid: 32,
            ..Default::default()
        },
        tripro_geom::Vec3::ZERO,
    )
    .mesh;
    let cfg = EncoderConfig::default();
    let mut g = c.benchmark_group("ppvp_encode");
    g.sample_size(20);
    g.bench_function("nucleus_320f", |b| {
        b.iter(|| encode(black_box(&nuc), &cfg).unwrap())
    });
    g.bench_function(format!("vessel_{}f", ves.faces.len()), |b| {
        b.iter(|| encode(black_box(&ves), &cfg).unwrap())
    });
    g.finish();
}

fn bench_progressive_decode(c: &mut Criterion) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let ves = vessel(
        &mut rng,
        &VesselConfig {
            levels: 3,
            grid: 32,
            ..Default::default()
        },
        tripro_geom::Vec3::ZERO,
    )
    .mesh;
    let cm = encode(&ves, &EncoderConfig::default()).unwrap();
    let mut g = c.benchmark_group("ppvp_decode");
    g.sample_size(20);
    for lod in 0..=cm.max_lod() {
        g.bench_with_input(BenchmarkId::new("to_lod", lod), &lod, |b, &lod| {
            b.iter(|| {
                let mut dec = cm.decoder().unwrap();
                dec.decode_to(lod).unwrap();
                dec.mesh().face_count()
            })
        });
    }
    // Incremental refinement (the FPR access pattern): one step from below.
    if cm.max_lod() >= 1 {
        let top = cm.max_lod();
        g.bench_function("incremental_last_step", |b| {
            b.iter_batched(
                || {
                    let mut dec = cm.decoder().unwrap();
                    dec.decode_to(top - 1).unwrap();
                    dec
                },
                |mut dec| {
                    dec.decode_to(top).unwrap();
                    dec.mesh().face_count()
                },
                criterion::BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

fn bench_range_coder(c: &mut Criterion) {
    // Mixed-entropy payload.
    let mut data = Vec::new();
    let mut x: u64 = 99;
    for _ in 0..65536 {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
        data.push(if x % 4 == 0 { (x >> 33) as u8 } else { 7 });
    }
    let compressed = tripro_coder::compress(&data);
    let mut g = c.benchmark_group("range_coder");
    g.sample_size(20);
    g.throughput(criterion::Throughput::Bytes(data.len() as u64));
    g.bench_function("compress_64k", |b| {
        b.iter(|| tripro_coder::compress(black_box(&data)))
    });
    g.bench_function("decompress_64k", |b| {
        b.iter(|| tripro_coder::decompress(black_box(&compressed)).unwrap())
    });
    g.finish();
}

criterion_group!(
    codec,
    bench_encode,
    bench_progressive_decode,
    bench_range_coder
);
criterion_main!(codec);
