//! Criterion microbenches for the hot geometry kernels that dominate the
//! refinement step: triangle–triangle intersection and distance, the
//! AABB-tree traversals, and point-in-polyhedron.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::SeedableRng;
use tripro_geom::{tri_tri_dist2, tri_tri_intersect, vec3, Triangle};
use tripro_index::AabbTree;
use tripro_synth::{icosphere, nucleus, NucleusConfig};

fn tri_pair_far() -> (Triangle, Triangle) {
    (
        Triangle::new(
            vec3(0.0, 0.0, 0.0),
            vec3(1.0, 0.0, 0.0),
            vec3(0.0, 1.0, 0.0),
        ),
        Triangle::new(
            vec3(3.0, 1.0, 2.0),
            vec3(4.0, 1.5, 2.0),
            vec3(3.0, 2.0, 2.5),
        ),
    )
}

fn tri_pair_crossing() -> (Triangle, Triangle) {
    (
        Triangle::new(
            vec3(0.0, 0.0, 0.0),
            vec3(2.0, 0.0, 0.0),
            vec3(0.0, 2.0, 0.0),
        ),
        Triangle::new(
            vec3(0.5, 0.5, -1.0),
            vec3(0.5, 0.5, 1.0),
            vec3(1.5, 0.5, 0.0),
        ),
    )
}

fn bench_tri_tri(c: &mut Criterion) {
    let far = tri_pair_far();
    let cross = tri_pair_crossing();
    c.bench_function("tri_tri_intersect/disjoint", |b| {
        b.iter(|| tri_tri_intersect(black_box(&far.0), black_box(&far.1)))
    });
    c.bench_function("tri_tri_intersect/crossing", |b| {
        b.iter(|| tri_tri_intersect(black_box(&cross.0), black_box(&cross.1)))
    });
    c.bench_function("tri_tri_dist2/disjoint", |b| {
        b.iter(|| tri_tri_dist2(black_box(&far.0), black_box(&far.1)))
    });
}

fn bench_aabbtree(c: &mut Criterion) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let cfg = NucleusConfig {
        subdivs: 3,
        ..Default::default()
    }; // 1280 faces
    let a = nucleus(&mut rng, &cfg, vec3(0.0, 0.0, 0.0)).triangles();
    let b = nucleus(&mut rng, &cfg, vec3(4.0, 0.0, 0.0)).triangles();
    c.bench_function("aabbtree/build_1280", |bch| {
        bch.iter(|| AabbTree::build(black_box(a.clone())))
    });
    let ta = AabbTree::build(a.clone());
    let tb = AabbTree::build(b.clone());
    c.bench_function("aabbtree/min_dist_1280x1280", |bch| {
        bch.iter(|| {
            let mut n = 0;
            ta.min_dist2_tree(black_box(&tb), f64::INFINITY, &mut n)
        })
    });
    c.bench_function("brute/min_dist_1280x1280", |bch| {
        bch.iter(|| {
            let mut best = f64::INFINITY;
            for x in &a {
                for y in &b {
                    best = best.min(tri_tri_dist2(x, y));
                }
            }
            best
        })
    });
}

fn bench_point_in_mesh(c: &mut Criterion) {
    let s = icosphere(3);
    let tris = s.triangles();
    c.bench_function("point_in_mesh/1280_faces", |b| {
        b.iter(|| tripro_geom::point_in_mesh(black_box(vec3(0.2, 0.1, 0.3)), &tris))
    });
}

criterion_group! {
    name = kernels;
    config = Criterion::default().sample_size(20);
    targets = bench_tri_tri, bench_aabbtree, bench_point_in_mesh
}
criterion_main!(kernels);
