//! Criterion benches for the spatial indexes: R-tree bulk load, window
//! queries, within and NN candidate traversals.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use tripro_geom::{vec3, Aabb};
use tripro_index::RTree;

fn boxes(n: usize) -> Vec<(Aabb, u32)> {
    let side = (n as f64).cbrt().ceil() as usize;
    let mut out = Vec::with_capacity(n);
    let mut id = 0;
    'outer: for x in 0..side {
        for y in 0..side {
            for z in 0..side {
                let lo = vec3(3.0 * x as f64, 3.0 * y as f64, 3.0 * z as f64);
                out.push((Aabb::from_corners(lo, lo + vec3(1.2, 1.2, 1.2)), id));
                id += 1;
                if out.len() == n {
                    break 'outer;
                }
            }
        }
    }
    out
}

fn bench_rtree(c: &mut Criterion) {
    let items = boxes(10_000);
    let mut g = c.benchmark_group("rtree");
    g.sample_size(20);
    g.bench_function("bulk_load_10k", |b| {
        b.iter(|| RTree::bulk_load(black_box(items.clone())))
    });
    let tree = RTree::bulk_load(items.clone());
    let window = Aabb::from_corners(vec3(10.0, 10.0, 10.0), vec3(25.0, 25.0, 25.0));
    g.bench_function("window_query_10k", |b| {
        b.iter(|| tree.query_intersects(black_box(&window)))
    });
    let probe = Aabb::from_point(vec3(31.4, 15.9, 26.5));
    g.bench_function("nn_candidates_10k", |b| {
        b.iter(|| tree.nn_candidates(black_box(&probe)))
    });
    g.bench_function("within_10k", |b| {
        b.iter(|| tree.within(black_box(&probe), 5.0))
    });
    g.bench_function("knn8_candidates_10k", |b| {
        b.iter(|| tree.knn_candidates(black_box(&probe), 8))
    });
    g.finish();
}

fn bench_insert(c: &mut Criterion) {
    let items = boxes(2_000);
    c.bench_function("rtree/incremental_insert_2k", |b| {
        b.iter(|| {
            let mut t = RTree::new();
            for (bb, id) in &items {
                t.insert(*bb, *id);
            }
            t.len()
        })
    });
}

criterion_group! {
    name = indexes;
    config = Criterion::default().sample_size(20);
    targets = bench_rtree, bench_insert
}
criterion_main!(indexes);
