//! Criterion bench for the §5.2 resource manager: CPU-only vs device-only
//! vs hybrid task draining on one face-pair workload.

use criterion::{criterion_group, criterion_main, Criterion};
use tripro::{BatchExecutor, ResourceManager};
use tripro_geom::{vec3, Triangle};

fn sheet(n: usize, z: f64) -> Vec<Triangle> {
    let mut tris = Vec::new();
    for x in 0..n {
        for y in 0..n {
            let p = vec3(x as f64, y as f64, z);
            tris.push(Triangle::new(
                p,
                p + vec3(1.0, 0.0, 0.0),
                p + vec3(0.0, 1.0, 0.0),
            ));
            tris.push(Triangle::new(
                p + vec3(1.0, 0.0, 0.0),
                p + vec3(1.0, 1.0, 0.0),
                p + vec3(0.0, 1.0, 0.0),
            ));
        }
    }
    tris
}

fn bench_resource_manager(c: &mut Criterion) {
    let a = sheet(16, 0.0);
    let b = sheet(16, 3.0);
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(2);
    let mut g = c.benchmark_group("resource_manager");
    g.sample_size(10);
    g.bench_function("device_only", |bench| {
        let ex = BatchExecutor::new(cores);
        bench.iter(|| ex.min_dist2(&a, &b, f64::INFINITY).0)
    });
    g.bench_function("cpu_only_tasks", |bench| {
        let rm = ResourceManager::new(cores, 1);
        bench.iter(|| rm.min_dist2(&a, &b, f64::INFINITY).0)
    });
    g.bench_function("hybrid_split", |bench| {
        let rm = ResourceManager::new((cores / 2).max(1), (cores / 2).max(1));
        bench.iter(|| rm.min_dist2(&a, &b, f64::INFINITY).0)
    });
    g.finish();
}

criterion_group!(resource, bench_resource_manager);
criterion_main!(resource);
