//! Criterion benches for the end-to-end joins at reduced scale: the
//! FR-vs-FPR comparison of Table 1 / Fig 10 in micro form (one benchmark
//! per join type and paradigm), plus the Fig 13 baseline comparison.

use criterion::{criterion_group, criterion_main, Criterion};
use tripro::{Accel, Engine, ObjectStore, Paradigm, QueryConfig, StoreConfig};
use tripro_baseline::BaselineDb;
use tripro_synth::{DatasetConfig, VesselConfig};

struct Fixture {
    a: ObjectStore,
    b: ObjectStore,
    vessels: ObjectStore,
    raw_a: Vec<tripro_mesh::TriMesh>,
    raw_b: Vec<tripro_mesh::TriMesh>,
}

fn fixture() -> Fixture {
    let block = tripro_synth::generate(&DatasetConfig {
        nuclei_count: 30,
        vessel_count: 1,
        vessel: VesselConfig {
            levels: 2,
            grid: 24,
            ..Default::default()
        },
        seed: 0xBE7C,
        ..Default::default()
    });
    let cfg = StoreConfig::default();
    Fixture {
        a: ObjectStore::build(&block.nuclei_a, &cfg).unwrap(),
        b: ObjectStore::build(&block.nuclei_b, &cfg).unwrap(),
        vessels: ObjectStore::build(&block.vessels, &cfg).unwrap(),
        raw_a: block.nuclei_a,
        raw_b: block.nuclei_b,
    }
}

fn bench_joins(c: &mut Criterion) {
    let f = fixture();
    let mut g = c.benchmark_group("joins_30n");
    g.sample_size(10);

    for paradigm in [Paradigm::FilterRefine, Paradigm::FilterProgressiveRefine] {
        let cfg = QueryConfig::new(paradigm, Accel::Brute);
        let engine = Engine::new(&f.a, &f.b);
        g.bench_function(format!("intersection/{}", paradigm.label()), |bch| {
            bch.iter(|| {
                f.a.cache().clear();
                f.b.cache().clear();
                engine.intersection_join(&cfg).expect("join").0.len()
            })
        });
        g.bench_function(format!("within/{}", paradigm.label()), |bch| {
            bch.iter(|| {
                f.a.cache().clear();
                f.b.cache().clear();
                engine.within_join(2.0, &cfg).expect("join").0.len()
            })
        });
        g.bench_function(format!("nn/{}", paradigm.label()), |bch| {
            bch.iter(|| {
                f.a.cache().clear();
                f.b.cache().clear();
                engine.nn_join(&cfg).expect("join").0.len()
            })
        });
        let ev = Engine::new(&f.a, &f.vessels);
        g.bench_function(format!("within_vessel/{}", paradigm.label()), |bch| {
            bch.iter(|| {
                f.a.cache().clear();
                f.vessels.cache().clear();
                ev.within_join(5.0, &cfg).expect("join").0.len()
            })
        });
    }
    g.finish();
}

fn bench_baseline(c: &mut Criterion) {
    let f = fixture();
    let ta = BaselineDb::load(&f.raw_a);
    let tb = BaselineDb::load(&f.raw_b);
    let mut g = c.benchmark_group("baseline_30n");
    g.sample_size(10);
    g.bench_function("intersection/postgis_sim", |bch| {
        bch.iter(|| ta.intersection_join(&tb).len())
    });
    g.bench_function("within/postgis_sim", |bch| {
        bch.iter(|| ta.within_join(&tb, 2.0).len())
    });
    g.finish();
}

criterion_group!(joins, bench_joins, bench_baseline);
criterion_main!(joins);
