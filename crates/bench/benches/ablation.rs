//! Ablation benches for the design choices DESIGN.md calls out:
//! quantisation bits (size/speed), LOD-ladder depth (rounds per LOD),
//! decode-cache capacity, and PPVP vs the PPMC-like unconstrained coder.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use tripro::{DecodeCache, ExecStats};
use tripro_mesh::{encode, EncoderConfig, PruneMode};
use tripro_synth::{nucleus, vessel, NucleusConfig, VesselConfig};

fn test_vessel() -> tripro_mesh::TriMesh {
    let mut rng = rand::rngs::StdRng::seed_from_u64(4);
    vessel(
        &mut rng,
        &VesselConfig {
            levels: 2,
            grid: 28,
            ..Default::default()
        },
        tripro_geom::Vec3::ZERO,
    )
    .mesh
}

fn bench_quant_bits(c: &mut Criterion) {
    let tm = test_vessel();
    let mut g = c.benchmark_group("ablation_quant_bits");
    g.sample_size(10);
    for bits in [12u32, 14, 16, 20] {
        let cfg = EncoderConfig {
            bits,
            ..Default::default()
        };
        // Report compressed size and base-LOD distortion alongside speed,
        // so the bits/size/error trade-off reads off the bench ids.
        let cm = encode(&tm, &cfg).unwrap();
        let size = cm.payload_size();
        let err = tripro_mesh::distortion_profile(&cm)
            .ok()
            .and_then(|p| p.per_lod.first().map(|(_, _, rel)| *rel))
            .unwrap_or(0.0);
        g.bench_with_input(
            BenchmarkId::new(format!("encode_{size}B_err{:.4}", err), bits),
            &bits,
            |b, _| b.iter(|| encode(&tm, &cfg).unwrap().payload_size()),
        );
    }
    g.finish();
}

fn bench_lod_ladder(c: &mut Criterion) {
    let tm = test_vessel();
    let mut g = c.benchmark_group("ablation_lod_ladder");
    g.sample_size(10);
    for rounds_per_lod in [1usize, 2, 3] {
        let cfg = EncoderConfig {
            rounds_per_lod,
            max_lod: 10 / rounds_per_lod,
            ..Default::default()
        };
        g.bench_with_input(
            BenchmarkId::new("encode_rounds_per_lod", rounds_per_lod),
            &rounds_per_lod,
            |b, _| b.iter(|| encode(&tm, &cfg).unwrap().max_lod()),
        );
    }
    g.finish();
}

fn bench_cache_capacity(c: &mut Criterion) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(6);
    let objects: Vec<_> = (0..12)
        .map(|i| {
            let n = nucleus(
                &mut rng,
                &NucleusConfig::default(),
                tripro_geom::vec3(i as f64 * 5.0, 0.0, 0.0),
            );
            encode(&n, &EncoderConfig::default()).unwrap()
        })
        .collect();
    let mut g = c.benchmark_group("ablation_cache");
    g.sample_size(10);
    for (name, capacity) in [
        ("disabled", 0usize),
        ("two_objects", 80_000),
        ("ample", 64 << 20),
    ] {
        g.bench_function(BenchmarkId::new("reuse_heavy_access", name), |b| {
            b.iter(|| {
                let cache = DecodeCache::new(capacity);
                let stats = ExecStats::new();
                // Access pattern with heavy reuse (each object hit 5 times).
                let mut total = 0usize;
                for _round in 0..5 {
                    for (id, cm) in objects.iter().enumerate() {
                        total += cache
                            .get(id as u32, 2, cm, &stats)
                            .expect("decode")
                            .triangles
                            .len();
                    }
                }
                total
            })
        });
    }
    g.finish();
}

fn bench_ppvp_vs_ppmc(c: &mut Criterion) {
    let tm = test_vessel();
    let mut g = c.benchmark_group("ablation_prune_mode");
    g.sample_size(10);
    for (name, mode) in [
        ("ppvp", PruneMode::ProtrudingOnly),
        ("ppmc_like", PruneMode::Any),
    ] {
        let cfg = EncoderConfig {
            mode,
            ..Default::default()
        };
        let cm = encode(&tm, &cfg).unwrap();
        let base_faces = {
            let dec = cm.decoder().unwrap();
            dec.mesh().face_count()
        };
        g.bench_function(
            BenchmarkId::new(format!("encode_base{base_faces}f"), name),
            |b| b.iter(|| encode(&tm, &cfg).unwrap().payload_size()),
        );
    }
    g.finish();
}

fn bench_aabb_vs_obb(c: &mut Criterion) {
    use tripro_index::{AabbTree, ObbTree};
    let mut rng1 = rand::rngs::StdRng::seed_from_u64(41);
    let mut rng2 = rand::rngs::StdRng::seed_from_u64(42);
    let cfg = VesselConfig {
        levels: 2,
        grid: 26,
        ..Default::default()
    };
    let a = vessel(&mut rng1, &cfg, tripro_geom::Vec3::ZERO)
        .mesh
        .triangles();
    let b = vessel(&mut rng2, &cfg, tripro_geom::vec3(6.0, 2.0, 0.0))
        .mesh
        .triangles();
    let ta = AabbTree::build(a.clone());
    let tb = AabbTree::build(b.clone());
    let oa = ObbTree::build(a.clone());
    let ob = ObbTree::build(b.clone());
    let mut g = c.benchmark_group("ablation_tree_kind");
    g.sample_size(10);
    g.bench_function("aabb_tree_distance", |bench| {
        bench.iter(|| {
            let mut n = 0;
            ta.min_dist2_tree(&tb, f64::INFINITY, &mut n)
        })
    });
    g.bench_function("obb_tree_distance", |bench| {
        bench.iter(|| {
            let mut n = 0;
            oa.min_dist2_tree(&ob, f64::INFINITY, &mut n)
        })
    });
    g.bench_function("aabb_tree_build", |bench| {
        bench.iter(|| AabbTree::build(a.clone()).len())
    });
    g.bench_function("obb_tree_build", |bench| {
        bench.iter(|| ObbTree::build(a.clone()).len())
    });
    g.finish();
}

criterion_group!(
    ablation,
    bench_quant_bits,
    bench_lod_ladder,
    bench_cache_capacity,
    bench_ppvp_vs_ppmc,
    bench_aabb_vs_obb
);
criterion_main!(ablation);
