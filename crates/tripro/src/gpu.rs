//! GPU-style batch executor (paper §5.1, "GPU-based Parallelization").
//!
//! **Substitution note (see DESIGN.md):** this environment has no CUDA
//! device, so the GPU path is simulated by a data-parallel batch executor
//! that preserves the GPU code path's structure: face pairs are packed into
//! a flat computation buffer, split into fixed-size *kernel launches*, and
//! each launch is executed by a worker over contiguous memory with no
//! per-pair dispatch overhead. Early exit happens only at launch
//! granularity, exactly like polling a device-side flag between kernels.
//!
//! Workers come from the process-wide [`crate::pool`] — launching a batch
//! wakes parked threads instead of spawning fresh ones, so the per-call
//! cost is a condvar signal rather than thread creation.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use tripro_geom::{tri_tri_dist2, tri_tri_intersect, Triangle};

/// Number of face pairs evaluated per simulated kernel launch.
pub const KERNEL_SIZE: usize = 8192;

/// Batch executor configuration.
#[derive(Debug, Clone, Copy)]
pub struct BatchExecutor {
    /// Worker count (the simulated device's parallelism).
    pub threads: usize,
    /// Pairs per kernel launch.
    pub kernel_size: usize,
}

impl Default for BatchExecutor {
    fn default() -> Self {
        Self {
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            kernel_size: KERNEL_SIZE,
        }
    }
}

impl BatchExecutor {
    pub fn new(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
            kernel_size: KERNEL_SIZE,
        }
    }

    /// `true` if any pair `(a[i], b[j])` over the full cross product
    /// intersects. Returns `(result, pairs_tested)`.
    // ORDERING: every atomic in this kernel is Relaxed on purpose — `found`
    // and the claim counter are advisory early-exit/work-claiming hints
    // with no data published under them; the pool's `run_with` join is the
    // happens-before edge that makes all results visible to the caller.
    pub fn any_intersect(&self, a: &[Triangle], b: &[Triangle]) -> (bool, u64) {
        let total = a.len() * b.len();
        if total == 0 {
            return (false, 0);
        }
        let found = AtomicBool::new(false);
        let tested = AtomicU64::new(0);
        let next = AtomicUsize::new(0);
        let kernels = total.div_ceil(self.kernel_size);
        let workers = self.threads.min(kernels);
        crate::pool::global().run_with(workers - 1, |_| loop {
            if found.load(Ordering::Relaxed) {
                return;
            }
            let k = next.fetch_add(1, Ordering::Relaxed);
            if k >= kernels {
                return;
            }
            let start = k * self.kernel_size;
            let end = (start + self.kernel_size).min(total);
            let mut local = 0u64;
            for idx in start..end {
                let (i, j) = (idx / b.len(), idx % b.len());
                local += 1;
                if tri_tri_intersect(&a[i], &b[j]) {
                    found.store(true, Ordering::Relaxed);
                    break;
                }
            }
            tested.fetch_add(local, Ordering::Relaxed);
        });
        (
            found.load(Ordering::Relaxed),
            tested.load(Ordering::Relaxed),
        )
    }

    /// Minimum squared distance over the full cross product, clamped below
    /// by nothing (exact). `upper` seeds the running bound so kernels can
    /// skip pairs whose result cannot improve it. Returns
    /// `(min(upper, true minimum), pairs_tested)`.
    // ORDERING: Relaxed throughout — `zero` is an advisory early-exit hint,
    // `best_bits` is a monotone minimum maintained by a CAS loop that
    // re-validates against the current value, and the pool's `run_with`
    // join publishes the final values to the caller.
    pub fn min_dist2(&self, a: &[Triangle], b: &[Triangle], upper: f64) -> (f64, u64) {
        let total = a.len() * b.len();
        if total == 0 {
            return (upper, 0);
        }
        let tested = AtomicU64::new(0);
        let next = AtomicUsize::new(0);
        let zero = AtomicBool::new(false);
        let kernels = total.div_ceil(self.kernel_size);
        let workers = self.threads.min(kernels);
        let best_bits = AtomicU64::new(upper.to_bits());
        crate::pool::global().run_with(workers - 1, |_| loop {
            if zero.load(Ordering::Relaxed) {
                return;
            }
            let k = next.fetch_add(1, Ordering::Relaxed);
            if k >= kernels {
                return;
            }
            let start = k * self.kernel_size;
            let end = (start + self.kernel_size).min(total);
            let mut local_best = f64::INFINITY;
            let mut local = 0u64;
            for idx in start..end {
                let (i, j) = (idx / b.len(), idx % b.len());
                local += 1;
                let d2 = tri_tri_dist2(&a[i], &b[j]);
                if d2 < local_best {
                    local_best = d2;
                    if tripro_geom::is_exactly_zero(d2) {
                        zero.store(true, Ordering::Relaxed);
                        break;
                    }
                }
            }
            tested.fetch_add(local, Ordering::Relaxed);
            // Lock-free running minimum (f64 bits are monotone
            // for non-negative values).
            let mut cur = best_bits.load(Ordering::Relaxed);
            while f64::from_bits(cur) > local_best {
                match best_bits.compare_exchange_weak(
                    cur,
                    local_best.to_bits(),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => break,
                    Err(c) => cur = c,
                }
            }
        });
        if zero.load(Ordering::Relaxed) {
            return (0.0, tested.load(Ordering::Relaxed));
        }
        (
            f64::from_bits(best_bits.load(Ordering::Relaxed)),
            tested.load(Ordering::Relaxed),
        )
    }

    /// Minimum squared distance over an explicit packed pair buffer
    /// (used by the partition+GPU combination where only surviving group
    /// pairs are packed).
    // ORDERING: same Relaxed discipline as `min_dist2` — advisory hints
    // plus a monotone CAS minimum; `run_with`'s join is the sync point.
    pub fn min_dist2_pairs(
        &self,
        a: &[Triangle],
        b: &[Triangle],
        pairs: &[(u32, u32)],
        upper: f64,
    ) -> (f64, u64) {
        if pairs.is_empty() {
            return (upper, 0);
        }
        let tested = AtomicU64::new(0);
        let next = AtomicUsize::new(0);
        let kernels = pairs.len().div_ceil(self.kernel_size);
        let workers = self.threads.min(kernels);
        let best_bits = AtomicU64::new(upper.to_bits());
        let zero = AtomicBool::new(false);
        crate::pool::global().run_with(workers - 1, |_| loop {
            if zero.load(Ordering::Relaxed) {
                return;
            }
            let k = next.fetch_add(1, Ordering::Relaxed);
            if k >= kernels {
                return;
            }
            let start = k * self.kernel_size;
            let end = (start + self.kernel_size).min(pairs.len());
            let mut local_best = f64::INFINITY;
            let mut local = 0u64;
            for &(i, j) in &pairs[start..end] {
                local += 1;
                let d2 = tri_tri_dist2(&a[i as usize], &b[j as usize]);
                if d2 < local_best {
                    local_best = d2;
                    if tripro_geom::is_exactly_zero(d2) {
                        zero.store(true, Ordering::Relaxed);
                        break;
                    }
                }
            }
            tested.fetch_add(local, Ordering::Relaxed);
            let mut cur = best_bits.load(Ordering::Relaxed);
            while f64::from_bits(cur) > local_best {
                match best_bits.compare_exchange_weak(
                    cur,
                    local_best.to_bits(),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => break,
                    Err(c) => cur = c,
                }
            }
        });
        if zero.load(Ordering::Relaxed) {
            return (0.0, tested.load(Ordering::Relaxed));
        }
        (
            f64::from_bits(best_bits.load(Ordering::Relaxed)),
            tested.load(Ordering::Relaxed),
        )
    }

    /// `true` if any pair in the packed buffer intersects.
    // ORDERING: same Relaxed discipline as `any_intersect` — advisory
    // early-exit flag only; `run_with`'s join is the sync point.
    pub fn any_intersect_pairs(
        &self,
        a: &[Triangle],
        b: &[Triangle],
        pairs: &[(u32, u32)],
    ) -> (bool, u64) {
        if pairs.is_empty() {
            return (false, 0);
        }
        let found = AtomicBool::new(false);
        let tested = AtomicU64::new(0);
        let next = AtomicUsize::new(0);
        let kernels = pairs.len().div_ceil(self.kernel_size);
        let workers = self.threads.min(kernels);
        crate::pool::global().run_with(workers - 1, |_| loop {
            if found.load(Ordering::Relaxed) {
                return;
            }
            let k = next.fetch_add(1, Ordering::Relaxed);
            if k >= kernels {
                return;
            }
            let start = k * self.kernel_size;
            let end = (start + self.kernel_size).min(pairs.len());
            let mut local = 0u64;
            for &(i, j) in &pairs[start..end] {
                local += 1;
                if tri_tri_intersect(&a[i as usize], &b[j as usize]) {
                    found.store(true, Ordering::Relaxed);
                    break;
                }
            }
            tested.fetch_add(local, Ordering::Relaxed);
        });
        (
            found.load(Ordering::Relaxed),
            tested.load(Ordering::Relaxed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tripro_geom::vec3;

    fn sheet(n: usize, z: f64) -> Vec<Triangle> {
        let mut tris = Vec::new();
        for x in 0..n {
            for y in 0..n {
                let p = vec3(x as f64, y as f64, z);
                tris.push(Triangle::new(
                    p,
                    p + vec3(1.0, 0.0, 0.0),
                    p + vec3(0.0, 1.0, 0.0),
                ));
                tris.push(Triangle::new(
                    p + vec3(1.0, 0.0, 0.0),
                    p + vec3(1.0, 1.0, 0.0),
                    p + vec3(0.0, 1.0, 0.0),
                ));
            }
        }
        tris
    }

    #[test]
    fn intersect_detects() {
        let ex = BatchExecutor::new(4);
        let a = sheet(6, 0.0);
        let poker = vec![Triangle::new(
            vec3(3.2, 3.2, -1.0),
            vec3(3.3, 3.2, 1.0),
            vec3(3.2, 3.4, 1.0),
        )];
        let (hit, tested) = ex.any_intersect(&a, &poker);
        assert!(hit);
        assert!(tested > 0);
        let b = sheet(6, 5.0);
        let (miss, tested2) = ex.any_intersect(&a, &b);
        assert!(!miss);
        assert_eq!(tested2, (a.len() * b.len()) as u64, "no early exit on miss");
    }

    #[test]
    fn min_dist_matches_brute() {
        let ex = BatchExecutor::new(4);
        let a = sheet(5, 0.0);
        let b = sheet(5, 2.5);
        let brute = a
            .iter()
            .flat_map(|x| b.iter().map(move |y| tri_tri_dist2(x, y)))
            .fold(f64::INFINITY, f64::min);
        let (d2, _) = ex.min_dist2(&a, &b, f64::INFINITY);
        assert!((d2 - brute).abs() < 1e-12);
        assert!((d2 - 6.25).abs() < 1e-12);
    }

    #[test]
    fn min_dist_zero_short_circuits() {
        let ex = BatchExecutor::new(2);
        let a = sheet(4, 0.0);
        let (d2, _) = ex.min_dist2(&a, &a, f64::INFINITY);
        assert_eq!(d2, 0.0);
    }

    #[test]
    fn upper_seed_is_respected() {
        let ex = BatchExecutor::new(2);
        let a = sheet(3, 0.0);
        let b = sheet(3, 10.0);
        // True d2 = 100; a seed of 50 stays (nothing improves it).
        let (d2, _) = ex.min_dist2(&a, &b, 50.0);
        assert_eq!(d2, 50.0);
    }

    #[test]
    fn pair_buffer_variants() {
        let ex = BatchExecutor::new(3);
        let a = sheet(3, 0.0);
        let b = sheet(3, 2.0);
        let all: Vec<(u32, u32)> = (0..a.len() as u32)
            .flat_map(|i| (0..b.len() as u32).map(move |j| (i, j)))
            .collect();
        let (d2, n) = ex.min_dist2_pairs(&a, &b, &all, f64::INFINITY);
        assert!((d2 - 4.0).abs() < 1e-12);
        assert_eq!(n, all.len() as u64);
        let (hit, _) = ex.any_intersect_pairs(&a, &b, &all);
        assert!(!hit);
        let (hit2, _) = ex.any_intersect_pairs(&a, &a, &all[..5]);
        assert!(hit2);
        // Empty buffers.
        assert_eq!(ex.min_dist2_pairs(&a, &b, &[], 7.0), (7.0, 0));
        assert_eq!(ex.any_intersect_pairs(&a, &b, &[]), (false, 0));
    }

    #[test]
    fn empty_inputs() {
        let ex = BatchExecutor::new(2);
        assert_eq!(ex.any_intersect(&[], &sheet(2, 0.0)), (false, 0));
        assert_eq!(ex.min_dist2(&sheet(2, 0.0), &[], 3.0), (3.0, 0));
    }
}
