//! Small synchronisation helpers shared across the engine.

pub use std::sync::Mutex;
use std::sync::MutexGuard;

/// Acquire a mutex, recovering from poisoning instead of panicking.
///
/// A poisoned mutex means another thread panicked while holding the guard.
/// The data this crate protects with mutexes (cache maps, decoder states,
/// result accumulators) is kept internally consistent at every await-free
/// mutation step, so continuing with the inner value is sound — and the
/// no-panic discipline of the query path (xtask lint L1) must not be
/// undermined by the lock acquisition itself.
pub fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}
