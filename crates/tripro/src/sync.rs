//! Synchronisation helpers shared across the engine, plus the
//! deterministic interleaving harness that model-checks the protocols
//! built on them.
//!
//! Three layers live here:
//!
//! * [`lock`]/[`wait`] — the poison-recovering `Mutex`/`Condvar` wrappers
//!   every non-test module uses instead of raw `.lock()`. They are also
//!   the anchor the `lock_order`/`condvar_wait_loop` lints key on.
//! * [`model`] — a dependency-free, loom-in-spirit bounded-exhaustive
//!   schedule explorer. Concurrency protocols (cache shard accounting,
//!   pool job handoff, span-ring publication) are written as small op
//!   programs over virtual threads, and every interleaving up to a bound
//!   is executed with invariants checked after each atomic step. The
//!   model is sequentially consistent — weak-memory effects are covered
//!   statically by the `atomic_ordering` lint and dynamically by the
//!   Miri/ThreadSanitizer CI jobs.
//! * A `tripro_shuttle` stress shim — compiled only under
//!   `RUSTFLAGS="--cfg tripro_shuttle"`, it injects seeded yield/spin
//!   jitter into `lock`/`wait` so the real-thread stress tests explore
//!   more interleavings per run (`TRIPRO_SCHED_SEED` picks the schedule).

use std::sync::MutexGuard;
pub use std::sync::{Condvar, Mutex};

/// Acquire a mutex, recovering from poisoning instead of panicking.
///
/// A poisoned mutex means another thread panicked while holding the guard.
/// The data this crate protects with mutexes (cache maps, decoder states,
/// result accumulators) is kept internally consistent at every await-free
/// mutation step, so continuing with the inner value is sound — and the
/// no-panic discipline of the query path (xtask lint L1) must not be
/// undermined by the lock acquisition itself.
pub fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    #[cfg(tripro_shuttle)]
    shuttle::yield_point();
    mutex
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Block on a condition variable, recovering from poisoning like [`lock`].
pub fn wait<'a, T>(cv: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    #[cfg(tripro_shuttle)]
    shuttle::yield_point();
    // tripro_lint::allow(condvar_wait_loop): this IS the wait primitive —
    // the predicate loop lives at every call site, where L7 enforces it.
    let waited = cv.wait(guard);
    let guard = waited.unwrap_or_else(std::sync::PoisonError::into_inner);
    #[cfg(tripro_shuttle)]
    shuttle::yield_point();
    guard
}

/// Block on a condition variable with a timeout, recovering from poisoning
/// like [`lock`]. Returns the re-acquired guard and whether the wait timed
/// out (no notification arrived within `dur`). Callers use the timeout to
/// poll cooperative deadlines while parked — the pipeline scheduler's idle
/// workers are the canonical site.
pub fn wait_timeout<'a, T>(
    cv: &Condvar,
    guard: MutexGuard<'a, T>,
    dur: std::time::Duration,
) -> (MutexGuard<'a, T>, bool) {
    #[cfg(tripro_shuttle)]
    shuttle::yield_point();
    // tripro_lint::allow(condvar_wait_loop): this IS the wait primitive —
    // the predicate loop lives at every call site, where L7 enforces it.
    let waited = cv.wait_timeout(guard, dur);
    let (guard, timed_out) = match waited {
        Ok((g, t)) => (g, t.timed_out()),
        Err(poisoned) => {
            let (g, t) = poisoned.into_inner();
            (g, t.timed_out())
        }
    };
    #[cfg(tripro_shuttle)]
    shuttle::yield_point();
    (guard, timed_out)
}

/// Seeded schedule-perturbation shim for real-thread stress runs.
///
/// Gated behind `--cfg tripro_shuttle` so release binaries never pay for
/// it. Each call advances a global xorshift-style state and occasionally
/// yields the OS scheduler or spins, which de-correlates thread timing
/// and drives stress tests through interleavings the fair scheduler would
/// rarely produce. `TRIPRO_SCHED_SEED` (u64) selects the jitter schedule.
#[cfg(tripro_shuttle)]
mod shuttle {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::OnceLock;

    static STATE: AtomicU64 = AtomicU64::new(0x243f_6a88_85a3_08d3);

    fn seed() -> u64 {
        static SEED: OnceLock<u64> = OnceLock::new();
        *SEED.get_or_init(|| {
            std::env::var("TRIPRO_SCHED_SEED")
                .ok()
                .and_then(|s| s.parse().ok())
                .unwrap_or(0x9e37_79b9_7f4a_7c15)
        })
    }

    pub(super) fn yield_point() {
        // ORDERING: Relaxed — the state is a jitter source; losing or
        // reordering an update only changes which pseudo-random schedule
        // is explored, never correctness.
        let raw = STATE.fetch_add(seed() | 1, Ordering::Relaxed);
        let mut x = raw ^ (raw >> 33);
        x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
        x ^= x >> 29;
        match x % 8 {
            0..=2 => std::thread::yield_now(),
            3 => {
                for _ in 0..(x % 64) {
                    std::hint::spin_loop();
                }
            }
            _ => {}
        }
    }
}

pub mod model {
    //! Bounded-exhaustive deterministic interleaving explorer.
    //!
    //! A protocol under test is expressed as a [`Model`]: a set of virtual
    //! threads, each a straight-line program of [`Op`]s over a shared
    //! state `S`. [`Model::explore`] then runs *every* schedule (which
    //! enabled thread takes the next atomic step) up to a bound, checking
    //! a per-step invariant and an end-of-run check, and reports the first
    //! failing schedule as a replayable thread-index trace.
    //!
    //! The memory model is sequential consistency: an [`Op::Step`] closure
    //! is one indivisible action. Model fine-grained races by splitting
    //! them into several steps (e.g. a read step and a write step); weak
    //! memory reordering is out of scope here and covered by the
    //! `atomic_ordering` lint plus the TSan/Miri CI jobs.
    //!
    //! Deadlocks are detected structurally: a state where no thread can
    //! run but a non-daemon thread is unfinished is reported with every
    //! thread's position. Condvars have no spurious wakeups in the model —
    //! [`Op::WaitWhile`] encodes the predicate re-check loop that real
    //! call sites are required (by lint L7) to have, and the harness's own
    //! tests show a naked single-shot wait losing a notification.

    /// Selects a mutex or condvar index from the current state, so ops can
    /// address e.g. `slots[claimed % N]` where `claimed` was chosen at
    /// runtime. Use [`at`] for a constant index.
    pub type Sel<S> = Box<dyn Fn(&S) -> usize>;

    /// Constant index selector.
    pub fn at<S>(i: usize) -> Sel<S> {
        Box::new(move |_| i)
    }

    /// An indivisible state mutation: `(state, thread_id)`.
    pub type StepFn<S> = Box<dyn Fn(&mut S, usize)>;

    /// One atomic action of a virtual thread.
    pub enum Op<S> {
        /// Acquire the selected mutex (blocks while another thread owns
        /// it; re-entry by the owner is reported as a violation).
        Lock(Sel<S>),
        /// Release the selected mutex (a violation if not held).
        Unlock(Sel<S>),
        /// One indivisible state mutation; receives `(state, thread_id)`.
        Step(StepFn<S>),
        /// The predicate wait loop: while `parked_while` holds, release
        /// the mutex and park on the condvar; on each wakeup re-acquire
        /// and re-check. Advances only once the predicate is false while
        /// the mutex is held. Must be executed with the mutex held.
        WaitWhile {
            cv: Sel<S>,
            mutex: Sel<S>,
            parked_while: Box<dyn Fn(&S) -> bool>,
        },
        /// A single-shot wait with no predicate re-check — the bug class
        /// L7 forbids. Exists so tests can prove the explorer catches the
        /// lost-wakeup it allows.
        WaitNaked { cv: Sel<S>, mutex: Sel<S> },
        /// Wake every thread parked on the condvar.
        NotifyAll(Sel<S>),
        /// Wake the longest-parked thread on the condvar.
        NotifyOne(Sel<S>),
    }

    /// Build a [`Op::Step`].
    pub fn step<S>(f: impl Fn(&mut S, usize) + 'static) -> Op<S> {
        Op::Step(Box::new(f))
    }

    /// Build a [`Op::WaitWhile`] with constant condvar/mutex indices.
    pub fn wait_while<S>(
        cv: usize,
        mutex: usize,
        parked_while: impl Fn(&S) -> bool + 'static,
    ) -> Op<S> {
        Op::WaitWhile {
            cv: at(cv),
            mutex: at(mutex),
            parked_while: Box::new(parked_while),
        }
    }

    /// One virtual thread: a straight-line op program. Daemon threads
    /// (e.g. pool workers that would park forever) may be left parked or
    /// unfinished at the end of a run without it counting as a deadlock.
    pub struct Thread<S> {
        pub ops: Vec<Op<S>>,
        pub daemon: bool,
    }

    impl<S> Thread<S> {
        pub fn new(ops: Vec<Op<S>>) -> Self {
            Self { ops, daemon: false }
        }

        pub fn daemon(ops: Vec<Op<S>>) -> Self {
            Self { ops, daemon: true }
        }
    }

    /// A protocol model: virtual threads over `mutexes` locks and
    /// `condvars` condition variables.
    pub struct Model<S> {
        pub threads: Vec<Thread<S>>,
        pub mutexes: usize,
        pub condvars: usize,
    }

    /// A schedule that broke an invariant, deadlocked, or misused a
    /// primitive. `schedule` lists the thread index that took each step,
    /// so the failure replays deterministically.
    #[derive(Debug, Clone)]
    pub struct Violation {
        pub schedule: Vec<usize>,
        pub message: String,
    }

    impl std::fmt::Display for Violation {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "{} (schedule {:?})", self.message, self.schedule)
        }
    }

    /// Outcome of an exhaustive exploration.
    #[derive(Debug, Clone, Copy)]
    pub struct Report {
        /// Complete schedules executed.
        pub schedules: usize,
        /// False if `max_schedules` stopped the search before the
        /// schedule space was exhausted.
        pub complete: bool,
    }

    /// Per-run status of one virtual thread.
    #[derive(Clone, Copy, PartialEq)]
    enum RunState {
        Ready,
        /// Parked on (condvar, mutex-to-reacquire).
        Parked(usize, usize),
        /// Woken; must re-acquire the mutex before continuing.
        Reacquire(usize),
    }

    /// Ceiling on steps within a single run — a backstop against model
    /// bugs; legitimate finite programs sit far below it.
    const STEP_CAP: usize = 100_000;

    impl<S> Model<S> {
        /// Run every schedule (up to `max_schedules`), checking
        /// `invariant` after each step of each run and `final_check` at
        /// each run's quiescence. Returns the first violating schedule,
        /// or a [`Report`] if all explored schedules pass.
        pub fn explore(
            &self,
            init: impl Fn() -> S,
            invariant: impl Fn(&S) -> Result<(), String>,
            final_check: impl Fn(&S) -> Result<(), String>,
            max_schedules: usize,
        ) -> Result<Report, Violation> {
            let mut prefix: Vec<usize> = Vec::new();
            let mut schedules = 0usize;
            loop {
                let run = self.run_one(&prefix, &init, &invariant, &final_check);
                match run {
                    RunOutcome::Violation(v) => return Err(v),
                    RunOutcome::Done(chosen) => {
                        schedules += 1;
                        if schedules >= max_schedules {
                            return Ok(Report {
                                schedules,
                                complete: false,
                            });
                        }
                        // Advance to the lexicographically next schedule:
                        // bump the deepest choice point that still has an
                        // untried alternative.
                        let mut next = chosen;
                        let mut advanced = false;
                        while let Some((n, c)) = next.pop() {
                            if c + 1 < n {
                                next.push((n, c + 1));
                                advanced = true;
                                break;
                            }
                        }
                        if !advanced {
                            return Ok(Report {
                                schedules,
                                complete: true,
                            });
                        }
                        prefix = next.iter().map(|&(_, c)| c).collect();
                    }
                }
            }
        }

        fn run_one(
            &self,
            prefix: &[usize],
            init: &impl Fn() -> S,
            invariant: &impl Fn(&S) -> Result<(), String>,
            final_check: &impl Fn(&S) -> Result<(), String>,
        ) -> RunOutcome {
            let n = self.threads.len();
            let mut state = init();
            let mut pc = vec![0usize; n];
            let mut status = vec![RunState::Ready; n];
            let mut owner: Vec<Option<usize>> = vec![None; self.mutexes];
            // FIFO waitsets per condvar.
            let mut waitset: Vec<Vec<usize>> = vec![Vec::new(); self.condvars];
            let mut chosen: Vec<(usize, usize)> = Vec::new();
            let mut schedule: Vec<usize> = Vec::new();

            let finished = |pc: &[usize], t: usize| pc[t] >= self.threads[t].ops.len();

            for step_no in 0..STEP_CAP {
                let runnable: Vec<usize> = (0..n)
                    .filter(|&t| {
                        if finished(&pc, t) {
                            return false;
                        }
                        match status[t] {
                            RunState::Parked(_, _) => false,
                            RunState::Reacquire(m) => owner[m].is_none(),
                            RunState::Ready => match self.threads[t].ops.get(pc[t]) {
                                Some(Op::Lock(sel)) => {
                                    let m = sel(&state);
                                    // Enabled when free — or when self-owned,
                                    // so the re-entry violation surfaces.
                                    owner.get(m).is_some_and(|o| o.is_none() || *o == Some(t))
                                }
                                Some(_) => true,
                                None => false,
                            },
                        }
                    })
                    .collect();

                if runnable.is_empty() {
                    let stuck: Vec<usize> = (0..n)
                        .filter(|&t| !self.threads[t].daemon && !finished(&pc, t))
                        .collect();
                    if stuck.is_empty() {
                        break; // quiescent: all non-daemons done, daemons parked
                    }
                    let detail: Vec<String> = stuck
                        .iter()
                        .map(|&t| match status[t] {
                            RunState::Parked(cv, _) => {
                                format!("t{t} parked on cv{cv} at op {}", pc[t])
                            }
                            RunState::Reacquire(m) => {
                                format!("t{t} blocked re-acquiring m{m} at op {}", pc[t])
                            }
                            RunState::Ready => format!("t{t} blocked at op {}", pc[t]),
                        })
                        .collect();
                    return RunOutcome::Violation(Violation {
                        schedule,
                        message: format!("deadlock: {}", detail.join("; ")),
                    });
                }

                let pick = prefix
                    .get(step_no)
                    .copied()
                    .unwrap_or(0)
                    .min(runnable.len() - 1);
                chosen.push((runnable.len(), pick));
                let t = runnable[pick];
                schedule.push(t);

                if let Some(v) = self.exec_step(
                    t,
                    &mut state,
                    &mut pc,
                    &mut status,
                    &mut owner,
                    &mut waitset,
                ) {
                    return RunOutcome::Violation(Violation {
                        schedule,
                        message: v,
                    });
                }
                if let Err(msg) = invariant(&state) {
                    return RunOutcome::Violation(Violation {
                        schedule,
                        message: format!("invariant violated: {msg}"),
                    });
                }
            }

            if let Err(msg) = final_check(&state) {
                return RunOutcome::Violation(Violation {
                    schedule,
                    message: format!("final check failed: {msg}"),
                });
            }
            RunOutcome::Done(chosen)
        }

        /// Execute one atomic step of thread `t`. Returns an error message
        /// on primitive misuse (re-entry, unlock-without-hold, …).
        fn exec_step(
            &self,
            t: usize,
            state: &mut S,
            pc: &mut [usize],
            status: &mut [RunState],
            owner: &mut [Option<usize>],
            waitset: &mut [Vec<usize>],
        ) -> Option<String> {
            if let RunState::Reacquire(m) = status[t] {
                owner[m] = Some(t);
                status[t] = RunState::Ready;
                // A woken WaitWhile re-checks its predicate under the lock
                // and may park again; WaitNaked just proceeds.
                if let Some(Op::WaitWhile {
                    cv, parked_while, ..
                }) = self.threads[t].ops.get(pc[t])
                {
                    if parked_while(state) {
                        let cvi = cv(state);
                        owner[m] = None;
                        waitset.get_mut(cvi)?.push(t);
                        status[t] = RunState::Parked(cvi, m);
                        return None;
                    }
                }
                pc[t] += 1;
                return None;
            }

            let op = self.threads[t].ops.get(pc[t])?;
            match op {
                Op::Lock(sel) => {
                    let m = sel(state);
                    match owner.get(m).copied() {
                        Some(Some(o)) if o == t => {
                            return Some(format!(
                                "t{t} re-locks m{m} it already holds (self-deadlock)"
                            ))
                        }
                        Some(None) => owner[m] = Some(t),
                        _ => return Some(format!("t{t} locks unknown or busy m{m}")),
                    }
                    pc[t] += 1;
                }
                Op::Unlock(sel) => {
                    let m = sel(state);
                    if owner.get(m).copied() != Some(Some(t)) {
                        return Some(format!("t{t} unlocks m{m} it does not hold"));
                    }
                    owner[m] = None;
                    pc[t] += 1;
                }
                Op::Step(f) => {
                    f(state, t);
                    pc[t] += 1;
                }
                Op::WaitWhile {
                    cv,
                    mutex,
                    parked_while,
                } => {
                    let m = mutex(state);
                    if owner.get(m).copied() != Some(Some(t)) {
                        return Some(format!("t{t} waits without holding m{m}"));
                    }
                    if parked_while(state) {
                        let cvi = cv(state);
                        owner[m] = None;
                        waitset.get_mut(cvi)?.push(t);
                        status[t] = RunState::Parked(cvi, m);
                    } else {
                        pc[t] += 1;
                    }
                }
                Op::WaitNaked { cv, mutex } => {
                    let m = mutex(state);
                    if owner.get(m).copied() != Some(Some(t)) {
                        return Some(format!("t{t} waits without holding m{m}"));
                    }
                    let cvi = cv(state);
                    owner[m] = None;
                    waitset.get_mut(cvi)?.push(t);
                    status[t] = RunState::Parked(cvi, m);
                    pc[t] += 1; // a naked wait proceeds on any wakeup
                }
                Op::NotifyAll(sel) => {
                    let cvi = sel(state);
                    if let Some(ws) = waitset.get_mut(cvi) {
                        for w in ws.drain(..) {
                            if let RunState::Parked(_, m) = status[w] {
                                status[w] = RunState::Reacquire(m);
                            }
                        }
                    }
                    pc[t] += 1;
                }
                Op::NotifyOne(sel) => {
                    let cvi = sel(state);
                    if let Some(ws) = waitset.get_mut(cvi) {
                        if !ws.is_empty() {
                            let w = ws.remove(0);
                            if let RunState::Parked(_, m) = status[w] {
                                status[w] = RunState::Reacquire(m);
                            }
                        }
                    }
                    pc[t] += 1;
                }
            }
            None
        }
    }

    enum RunOutcome {
        Done(Vec<(usize, usize)>),
        Violation(Violation),
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        /// Two threads taking two locks in opposite orders: the explorer
        /// must find the deadlocking interleaving.
        #[test]
        fn finds_lock_order_deadlock() {
            let model: Model<()> = Model {
                threads: vec![
                    Thread::new(vec![
                        Op::Lock(at(0)),
                        Op::Lock(at(1)),
                        Op::Unlock(at(1)),
                        Op::Unlock(at(0)),
                    ]),
                    Thread::new(vec![
                        Op::Lock(at(1)),
                        Op::Lock(at(0)),
                        Op::Unlock(at(0)),
                        Op::Unlock(at(1)),
                    ]),
                ],
                mutexes: 2,
                condvars: 0,
            };
            let err = model
                .explore(|| (), |_| Ok(()), |_| Ok(()), 10_000)
                .expect_err("opposite lock orders must deadlock somewhere");
            assert!(err.message.contains("deadlock"), "{err}");
            assert!(!err.schedule.is_empty());
        }

        /// Same locks, same order: exhaustively clean.
        #[test]
        fn consistent_order_is_clean() {
            let mk = || {
                Thread::new(vec![
                    Op::Lock(at(0)),
                    Op::Lock(at(1)),
                    Op::Unlock(at(1)),
                    Op::Unlock(at(0)),
                ])
            };
            let model: Model<()> = Model {
                threads: vec![mk(), mk()],
                mutexes: 2,
                condvars: 0,
            };
            let report = model
                .explore(|| (), |_| Ok(()), |_| Ok(()), 100_000)
                .expect("consistent order cannot deadlock");
            assert!(report.complete, "space must be exhausted");
            assert!(report.schedules > 1);
        }

        /// A naked single-shot wait loses the notification when the
        /// producer runs first; the predicate-loop version cannot.
        #[test]
        fn naked_wait_loses_wakeup_and_wait_while_does_not() {
            let consumer_naked = Thread::new(vec![
                Op::Lock(at(0)),
                Op::WaitNaked {
                    cv: at(0),
                    mutex: at(0),
                },
                Op::Unlock(at(0)),
            ]);
            let producer = || {
                Thread::new(vec![
                    Op::Lock(at(0)),
                    step(|s: &mut bool, _| *s = true),
                    Op::NotifyAll(at(0)),
                    Op::Unlock(at(0)),
                ])
            };
            let model = Model {
                threads: vec![consumer_naked, producer()],
                mutexes: 1,
                condvars: 1,
            };
            let err = model
                .explore(|| false, |_| Ok(()), |_| Ok(()), 10_000)
                .expect_err("producer-first schedule must strand the consumer");
            assert!(err.message.contains("deadlock"), "{err}");

            let consumer_loop = Thread::new(vec![
                Op::Lock(at(0)),
                wait_while(0, 0, |s: &bool| !*s),
                Op::Unlock(at(0)),
            ]);
            let model = Model {
                threads: vec![consumer_loop, producer()],
                mutexes: 1,
                condvars: 1,
            };
            let report = model
                .explore(|| false, |_| Ok(()), |_| Ok(()), 10_000)
                .expect("predicate loop never strands");
            assert!(report.complete);
        }

        /// An unlocked read-modify-write (two separate steps) loses an
        /// update under some schedule; the locked version never does.
        #[test]
        fn detects_lost_update_and_validates_locked_version() {
            #[derive(Default)]
            struct S {
                counter: u32,
                scratch: [u32; 2],
            }
            let racy = |_t: usize| {
                Thread::new(vec![
                    step(move |s: &mut S, t| s.scratch[t] = s.counter),
                    step(move |s: &mut S, t| s.counter = s.scratch[t] + 1),
                ])
            };
            let model = Model {
                threads: vec![racy(0), racy(1)],
                mutexes: 0,
                condvars: 0,
            };
            let err = model
                .explore(
                    S::default,
                    |_| Ok(()),
                    |s| {
                        if s.counter == 2 {
                            Ok(())
                        } else {
                            Err(format!("lost update: counter={}", s.counter))
                        }
                    },
                    10_000,
                )
                .expect_err("unlocked RMW must lose an update somewhere");
            assert!(err.message.contains("lost update"), "{err}");

            let locked = || {
                Thread::new(vec![
                    Op::Lock(at(0)),
                    step(move |s: &mut S, t| s.scratch[t] = s.counter),
                    step(move |s: &mut S, t| s.counter = s.scratch[t] + 1),
                    Op::Unlock(at(0)),
                ])
            };
            let model = Model {
                threads: vec![locked(), locked()],
                mutexes: 1,
                condvars: 0,
            };
            let report = model
                .explore(
                    S::default,
                    |_| Ok(()),
                    |s| {
                        if s.counter == 2 {
                            Ok(())
                        } else {
                            Err(format!("lost update: counter={}", s.counter))
                        }
                    },
                    100_000,
                )
                .expect("locked RMW is atomic");
            assert!(report.complete);
        }

        /// Misuse diagnostics: re-entry and unlock-without-hold.
        #[test]
        fn reports_primitive_misuse() {
            let model: Model<()> = Model {
                threads: vec![Thread::new(vec![Op::Lock(at(0)), Op::Lock(at(0))])],
                mutexes: 1,
                condvars: 0,
            };
            let err = model
                .explore(|| (), |_| Ok(()), |_| Ok(()), 100)
                .expect_err("re-entry must be reported");
            assert!(err.message.contains("re-locks"), "{err}");

            let model: Model<()> = Model {
                threads: vec![Thread::new(vec![Op::Unlock(at(0))])],
                mutexes: 1,
                condvars: 0,
            };
            let err = model
                .explore(|| (), |_| Ok(()), |_| Ok(()), 100)
                .expect_err("unlock without hold must be reported");
            assert!(err.message.contains("does not hold"), "{err}");
        }

        /// Daemon threads left parked do not count as deadlock.
        #[test]
        fn parked_daemons_are_quiescent() {
            let model: Model<bool> = Model {
                threads: vec![
                    Thread::daemon(vec![
                        Op::Lock(at(0)),
                        wait_while(0, 0, |_s: &bool| true), // parks forever
                        Op::Unlock(at(0)),
                    ]),
                    Thread::new(vec![Op::Lock(at(0)), Op::Unlock(at(0))]),
                ],
                mutexes: 1,
                condvars: 1,
            };
            let report = model
                .explore(|| false, |_| Ok(()), |_| Ok(()), 10_000)
                .expect("a parked daemon is not a deadlock");
            assert!(report.complete);
        }
    }
}
