//! Small synchronisation helpers shared across the engine.

use std::sync::MutexGuard;
pub use std::sync::{Condvar, Mutex};

/// Acquire a mutex, recovering from poisoning instead of panicking.
///
/// A poisoned mutex means another thread panicked while holding the guard.
/// The data this crate protects with mutexes (cache maps, decoder states,
/// result accumulators) is kept internally consistent at every await-free
/// mutation step, so continuing with the inner value is sound — and the
/// no-panic discipline of the query path (xtask lint L1) must not be
/// undermined by the lock acquisition itself.
pub fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Block on a condition variable, recovering from poisoning like [`lock`].
pub fn wait<'a, T>(cv: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cv.wait(guard)
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}
