//! Skeleton-based object partitioning (paper §5.1): a complex object is
//! split into simple sub-objects, each approximated by its own box, which
//! tightens filtering and restricts refinement to relevant face groups.
//!
//! Skeleton points come from farthest-point sampling of the full-resolution
//! surface; every face (at any LOD) is assigned to its nearest skeleton
//! point, so face groups are stable across the LOD ladder and decoded faces
//! can be "assigned to proper candidate boxes" during progressive
//! refinement, exactly as §5.1 describes.

use tripro_geom::{Aabb, Triangle, Vec3};

/// Farthest-point sampling of `k` skeleton points from `points`.
///
/// Deterministic: starts from the point closest to the centroid, then
/// repeatedly picks the point farthest from the chosen set.
pub fn sample_skeleton(points: &[Vec3], k: usize) -> Vec<Vec3> {
    if points.is_empty() || k == 0 {
        return Vec::new();
    }
    let k = k.min(points.len());
    let centroid = points.iter().fold(Vec3::ZERO, |s, p| s + *p) / points.len() as f64;
    let first = points
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.dist2(centroid).total_cmp(&b.1.dist2(centroid)))
        .map_or(0, |(i, _)| i);
    let mut chosen = vec![points[first]];
    // dist2 to nearest chosen point, updated incrementally.
    let mut best: Vec<f64> = points.iter().map(|p| p.dist2(points[first])).collect();
    while chosen.len() < k {
        let Some((idx, _)) = best.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1)) else {
            break;
        };
        let p = points[idx];
        chosen.push(p);
        for (b, q) in best.iter_mut().zip(points) {
            *b = b.min(q.dist2(p));
        }
    }
    chosen
}

/// Default skeleton size for an object with `full_faces` faces at full
/// resolution: one sub-object per ~500 faces, at least 1.
pub fn default_skeleton_size(full_faces: usize) -> usize {
    (full_faces / 500).max(1)
}

/// Faces of one LOD grouped by nearest skeleton point.
#[derive(Debug, Clone)]
pub struct GroupedFaces {
    /// Face indices ordered by group.
    pub order: Vec<u32>,
    /// Group `g` spans `order[offsets[g]..offsets[g+1]]`.
    pub offsets: Vec<usize>,
    /// Bounding box per group (empty groups have `Aabb::EMPTY`).
    pub boxes: Vec<Aabb>,
}

impl GroupedFaces {
    /// Number of groups (including empty ones).
    pub fn group_count(&self) -> usize {
        self.boxes.len()
    }

    /// Face indices of group `g`.
    pub fn group(&self, g: usize) -> &[u32] {
        &self.order[self.offsets[g]..self.offsets[g + 1]]
    }

    /// Iterator over non-empty `(group index, box)` pairs.
    pub fn non_empty(&self) -> impl Iterator<Item = (usize, &Aabb)> + '_ {
        self.boxes
            .iter()
            .enumerate()
            .filter(|(g, bb)| !bb.is_empty() && !self.group(*g).is_empty())
    }
}

/// Assign each triangle to its nearest skeleton point by centroid.
pub fn group_faces(tris: &[Triangle], skeleton: &[Vec3]) -> GroupedFaces {
    let k = skeleton.len().max(1);
    let mut assignment = vec![0usize; tris.len()];
    if skeleton.len() > 1 {
        for (i, t) in tris.iter().enumerate() {
            let c = t.centroid();
            let mut best = 0;
            let mut bd = f64::INFINITY;
            for (g, s) in skeleton.iter().enumerate() {
                let d = c.dist2(*s);
                if d < bd {
                    bd = d;
                    best = g;
                }
            }
            assignment[i] = best;
        }
    }
    // Counting sort into groups.
    let mut counts = vec![0usize; k];
    for &g in &assignment {
        counts[g] += 1;
    }
    let mut offsets = vec![0usize; k + 1];
    for g in 0..k {
        offsets[g + 1] = offsets[g] + counts[g];
    }
    let mut order = vec![0u32; tris.len()];
    let mut cursor = offsets.clone();
    let mut boxes = vec![Aabb::EMPTY; k];
    for (i, &g) in assignment.iter().enumerate() {
        order[cursor[g]] = i as u32;
        cursor[g] += 1;
        boxes[g] = boxes[g].union(&tris[i].aabb());
    }
    GroupedFaces {
        order,
        offsets,
        boxes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tripro_geom::vec3;

    #[test]
    fn skeleton_sampling_spreads() {
        // Points along a line: FPS should pick spread-out points.
        let pts: Vec<Vec3> = (0..100).map(|i| vec3(i as f64, 0.0, 0.0)).collect();
        let sk = sample_skeleton(&pts, 3);
        assert_eq!(sk.len(), 3);
        // Should include (near) both extremes.
        let xs: Vec<f64> = sk.iter().map(|p| p.x).collect();
        assert!(xs.iter().any(|&x| x < 5.0));
        assert!(xs.iter().any(|&x| x > 95.0));
    }

    #[test]
    fn skeleton_edge_cases() {
        assert!(sample_skeleton(&[], 5).is_empty());
        assert!(sample_skeleton(&[vec3(1.0, 1.0, 1.0)], 0).is_empty());
        let one = sample_skeleton(&[vec3(1.0, 1.0, 1.0)], 5);
        assert_eq!(one.len(), 1);
    }

    fn two_cluster_tris() -> Vec<Triangle> {
        let mut out = Vec::new();
        for cx in [0.0, 100.0] {
            for i in 0..10 {
                let p = vec3(cx + i as f64 * 0.1, 0.0, 0.0);
                out.push(Triangle::new(
                    p,
                    p + vec3(0.05, 0.0, 0.0),
                    p + vec3(0.0, 0.05, 0.0),
                ));
            }
        }
        out
    }

    #[test]
    fn grouping_separates_clusters() {
        let tris = two_cluster_tris();
        let sk = vec![vec3(0.5, 0.0, 0.0), vec3(100.5, 0.0, 0.0)];
        let g = group_faces(&tris, &sk);
        assert_eq!(g.group_count(), 2);
        assert_eq!(g.group(0).len(), 10);
        assert_eq!(g.group(1).len(), 10);
        // Boxes are tight around their cluster.
        assert!(g.boxes[0].hi.x < 50.0);
        assert!(g.boxes[1].lo.x > 50.0);
        // Every face appears exactly once.
        let mut all: Vec<u32> = g.order.clone();
        all.sort_unstable();
        assert_eq!(all, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn single_group_fallback() {
        let tris = two_cluster_tris();
        let g = group_faces(&tris, &[vec3(0.0, 0.0, 0.0)]);
        assert_eq!(g.group_count(), 1);
        assert_eq!(g.group(0).len(), 20);
        let g2 = group_faces(&tris, &[]);
        assert_eq!(g2.group_count(), 1);
    }

    #[test]
    fn default_sizes() {
        assert_eq!(default_skeleton_size(300), 1);
        assert_eq!(default_skeleton_size(30_000), 60);
    }

    #[test]
    fn non_empty_iterator_skips_empty_groups() {
        let tris = two_cluster_tris();
        // A skeleton point far from everything gets no faces.
        let sk = vec![
            vec3(0.5, 0.0, 0.0),
            vec3(100.5, 0.0, 0.0),
            vec3(0.0, 1e6, 0.0),
        ];
        let g = group_faces(&tris, &sk);
        let ids: Vec<usize> = g.non_empty().map(|(i, _)| i).collect();
        assert_eq!(ids, vec![0, 1]);
    }
}
