//! Computation-resource management (paper §5.2): geometric computations are
//! grouped into small tasks of a fixed number of face-pair evaluations, and
//! the tasks are drained by whichever execution resource is free — CPU
//! worker threads or the (simulated) GPU device — so all capacity is used.
//!
//! In this reproduction both resources are thread pools over the same
//! cores, so the performance effect of mixing them is muted on small
//! machines; the point is the *code path*: one shared task queue, two
//! heterogeneous consumers, results merged lock-free.

use crate::gpu::BatchExecutor;
use crate::obs;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use tripro_geom::{tri_tri_dist2, tri_tri_intersect, Triangle};

/// A hybrid executor: a CPU worker pool and a batch device share one task
/// queue of fixed-size face-pair chunks.
#[derive(Debug, Clone, Copy)]
pub struct ResourceManager {
    /// CPU workers draining the task queue one chunk at a time.
    pub cpu_workers: usize,
    /// The simulated device; it drains chunks in kernel-sized groups.
    pub device: BatchExecutor,
    /// Face pairs per task (the paper's "fixed number of face pair
    /// evaluations" per task).
    pub task_size: usize,
}

impl Default for ResourceManager {
    fn default() -> Self {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(2);
        Self {
            cpu_workers: (cores / 2).max(1),
            device: BatchExecutor::new((cores / 2).max(1)),
            task_size: 2048,
        }
    }
}

impl ResourceManager {
    pub fn new(cpu_workers: usize, device_workers: usize) -> Self {
        Self {
            cpu_workers: cpu_workers.max(1),
            device: BatchExecutor::new(device_workers.max(1)),
            task_size: 2048,
        }
    }

    /// Minimum squared distance over the cross product `a × b`, evaluated
    /// cooperatively by CPU workers and the device. Returns
    /// `(min(upper, true minimum), pairs_tested, cpu_tasks, device_tasks)`.
    // ORDERING: Relaxed throughout — `zero` is an advisory early-exit
    // hint, `best_bits` is a monotone CAS minimum re-validated on every
    // exchange, and the pool's `run_with` join publishes all results.
    pub fn min_dist2(&self, a: &[Triangle], b: &[Triangle], upper: f64) -> (f64, u64, u64, u64) {
        let total = a.len() * b.len();
        if total == 0 {
            return (upper, 0, 0, 0);
        }
        let tasks = total.div_ceil(self.task_size);
        let next = AtomicUsize::new(0);
        let tested = AtomicU64::new(0);
        let cpu_tasks = AtomicU64::new(0);
        let dev_tasks = AtomicU64::new(0);
        let zero = AtomicBool::new(false);
        let best_bits = AtomicU64::new(upper.to_bits());

        let run_task = |t: usize| -> f64 {
            let start = t * self.task_size;
            let end = (start + self.task_size).min(total);
            let mut local = f64::INFINITY;
            for idx in start..end {
                let (i, j) = (idx / b.len(), idx % b.len());
                let d2 = tri_tri_dist2(&a[i], &b[j]);
                if d2 < local {
                    local = d2;
                    if tripro_geom::is_exactly_zero(d2) {
                        break;
                    }
                }
            }
            tested.fetch_add((end - start) as u64, Ordering::Relaxed);
            local
        };
        let fold = |local: f64| {
            let mut cur = best_bits.load(Ordering::Relaxed);
            while f64::from_bits(cur) > local {
                match best_bits.compare_exchange_weak(
                    cur,
                    local.to_bits(),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => break,
                    Err(c) => cur = c,
                }
            }
            if tripro_geom::is_exactly_zero(local) {
                zero.store(true, Ordering::Relaxed);
            }
        };

        // One pool region, two consumer roles decided by participant index:
        // the first `cpu_workers` participants (including the caller) drain
        // one task per claim; the rest act as the device, grabbing a
        // *kernel* worth of tasks per claim to model batch submission
        // latency amortisation.
        let per_launch = (self.device.kernel_size / self.task_size).max(1);
        let participants = self.cpu_workers + self.device.threads;
        crate::pool::global().run_with(participants - 1, |w| {
            if w < self.cpu_workers {
                loop {
                    if zero.load(Ordering::Relaxed) {
                        return;
                    }
                    let t = next.fetch_add(1, Ordering::Relaxed);
                    if t >= tasks {
                        return;
                    }
                    cpu_tasks.fetch_add(1, Ordering::Relaxed);
                    fold(run_task(t));
                }
            }
            loop {
                if zero.load(Ordering::Relaxed) {
                    return;
                }
                let t0 = next.fetch_add(per_launch, Ordering::Relaxed);
                if t0 >= tasks {
                    return;
                }
                let t1 = (t0 + per_launch).min(tasks);
                dev_tasks.fetch_add((t1 - t0) as u64, Ordering::Relaxed);
                let mut local = f64::INFINITY;
                for t in t0..t1 {
                    local = local.min(run_task(t));
                    if tripro_geom::is_exactly_zero(local) {
                        break;
                    }
                }
                fold(local);
            }
        });

        let best = if zero.load(Ordering::Relaxed) {
            0.0
        } else {
            f64::from_bits(best_bits.load(Ordering::Relaxed))
        };
        let (cpu, dev) = (
            cpu_tasks.load(Ordering::Relaxed),
            dev_tasks.load(Ordering::Relaxed),
        );
        // One registry resolution per call, not per task.
        obs::resource_task_counter("cpu").fetch_add(cpu, Ordering::Relaxed);
        obs::resource_task_counter("accel").fetch_add(dev, Ordering::Relaxed);
        (best, tested.load(Ordering::Relaxed), cpu, dev)
    }

    /// Cooperative any-intersection over the cross product.
    // ORDERING: Relaxed — `found` is an advisory early-exit flag with no
    // data published under it; `run_with`'s join is the sync point.
    pub fn any_intersect(&self, a: &[Triangle], b: &[Triangle]) -> (bool, u64) {
        let total = a.len() * b.len();
        if total == 0 {
            return (false, 0);
        }
        let tasks = total.div_ceil(self.task_size);
        let next = AtomicUsize::new(0);
        let tested = AtomicU64::new(0);
        let found = AtomicBool::new(false);
        let run_task = |t: usize| {
            let start = t * self.task_size;
            let end = (start + self.task_size).min(total);
            let mut n = 0u64;
            for idx in start..end {
                let (i, j) = (idx / b.len(), idx % b.len());
                n += 1;
                if tri_tri_intersect(&a[i], &b[j]) {
                    found.store(true, Ordering::Relaxed);
                    break;
                }
            }
            tested.fetch_add(n, Ordering::Relaxed);
        };
        crate::pool::global().run_with(self.cpu_workers + self.device.threads - 1, |_| loop {
            if found.load(Ordering::Relaxed) {
                return;
            }
            let t = next.fetch_add(1, Ordering::Relaxed);
            if t >= tasks {
                return;
            }
            run_task(t);
        });
        (
            found.load(Ordering::Relaxed),
            tested.load(Ordering::Relaxed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tripro_geom::vec3;

    fn sheet(n: usize, z: f64) -> Vec<Triangle> {
        let mut tris = Vec::new();
        for x in 0..n {
            for y in 0..n {
                let p = vec3(x as f64, y as f64, z);
                tris.push(Triangle::new(
                    p,
                    p + vec3(1.0, 0.0, 0.0),
                    p + vec3(0.0, 1.0, 0.0),
                ));
            }
        }
        tris
    }

    #[test]
    fn hybrid_distance_matches_truth() {
        let rm = ResourceManager::new(2, 2);
        let a = sheet(10, 0.0);
        let b = sheet(10, 3.5);
        let (d2, tested, cpu, dev) = rm.min_dist2(&a, &b, f64::INFINITY);
        assert!((d2 - 12.25).abs() < 1e-12);
        assert_eq!(tested, (a.len() * b.len()) as u64);
        // Both resources must have drained some tasks... unless one raced
        // through everything; at minimum all tasks were consumed exactly once.
        let tasks = (a.len() * b.len()).div_ceil(rm.task_size) as u64;
        assert_eq!(cpu + dev, tasks);
    }

    #[test]
    fn hybrid_zero_distance_short_circuits() {
        let rm = ResourceManager::new(1, 1);
        let a = sheet(6, 0.0);
        let (d2, _, _, _) = rm.min_dist2(&a, &a, f64::INFINITY);
        assert_eq!(d2, 0.0);
    }

    #[test]
    fn hybrid_upper_seed() {
        let rm = ResourceManager::new(1, 1);
        let a = sheet(3, 0.0);
        let b = sheet(3, 9.0);
        let (d2, _, _, _) = rm.min_dist2(&a, &b, 4.0);
        assert_eq!(d2, 4.0, "nothing beats the seed");
    }

    #[test]
    fn hybrid_intersection() {
        let rm = ResourceManager::new(2, 1);
        let a = sheet(6, 0.0);
        let poker = vec![Triangle::new(
            vec3(3.2, 3.2, -1.0),
            vec3(3.3, 3.2, 1.0),
            vec3(3.2, 3.4, 1.0),
        )];
        let (hit, _) = rm.any_intersect(&a, &poker);
        assert!(hit);
        let b = sheet(6, 5.0);
        let (miss, tested) = rm.any_intersect(&a, &b);
        assert!(!miss);
        assert_eq!(tested, (a.len() * b.len()) as u64);
    }

    #[test]
    fn empty_inputs() {
        let rm = ResourceManager::default();
        assert_eq!(rm.min_dist2(&[], &sheet(2, 0.0), 5.0).0, 5.0);
        assert!(!rm.any_intersect(&sheet(2, 0.0), &[]).0);
    }
}
