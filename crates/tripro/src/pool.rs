//! Persistent worker pool: the concurrency backbone for the batch executor
//! (`gpu`), the join driver (`query::Engine::drive`), store construction and
//! the hybrid resource manager.
//!
//! The seed implementation spawned a fresh `std::thread::scope` for every
//! kernel launch and every join, which put thread spawn/teardown on the
//! exact path the paper's §5.3 amortisation argument claims is cheap. This
//! pool is built once per process (the resident "device" plus driver
//! workers) and parks its threads between parallel regions, so a join pays
//! only a condvar wake per region instead of N `clone()`d thread stacks.
//!
//! ## Execution model: help-first broadcast
//!
//! [`WorkerPool::run_with`] runs a closure on the *calling* thread plus up
//! to `helpers` idle pool workers. Work distribution inside the closure is
//! the caller's business (all call sites claim chunks off an atomic
//! counter), so a helper that never wakes costs nothing but parallelism.
//! Two properties make this deadlock-free under nesting:
//!
//! * the caller always participates, so a region completes even when every
//!   pool worker is busy in an enclosing region;
//! * a nested `run_with` that finds the broadcast slot occupied simply runs
//!   inline — it never waits for workers that may transitively wait on it.

use crate::fault;
use crate::obs;
use crate::sync::{lock, wait, Condvar, Mutex};
use std::any::Any;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Erased pointer to the region closure. Only ever dereferenced through
/// [`Job::call`] while the owning [`WorkerPool::run_with`] frame is alive.
#[derive(Clone, Copy)]
struct JobPtr(*const ());

// The pointee is a `Sync` closure borrowed by `run_with`, which does not
// return until every worker that claimed the job has finished running it
// (tracked by `Job::active`).
// SAFETY: the pointer never dangles while a worker can observe it.
unsafe impl Send for JobPtr {}

/// One broadcast parallel region.
struct Job {
    ptr: JobPtr,
    /// Monomorphised trampoline that re-types `ptr` and calls the closure.
    call: unsafe fn(JobPtr, usize),
    /// Region identity; guards against a worker finishing into a newer job.
    epoch: u64,
    /// Still accepting helper claims.
    open: bool,
    /// Next helper index to hand out (the caller owns index 0).
    next_idx: usize,
    /// Helper indices are handed out in `1..limit`.
    limit: usize,
    /// Helpers currently executing the closure.
    active: usize,
    /// First panic payload observed in a helper, re-raised by the caller.
    panic: Option<Box<dyn Any + Send>>,
    /// When the region was posted — each helper claim records the post→claim
    /// gap into the pool queue-wait histogram.
    posted: Instant,
    /// Trace id of the posting request (0 = none), propagated so helper
    /// task spans attribute to the request they serve.
    trace_id: u64,
}

#[derive(Default)]
struct State {
    job: Option<Job>,
    epoch: u64,
    /// Live worker threads (spawned lazily, never torn down).
    workers: usize,
}

struct Shared {
    // LOCK-RANK(40): the pool's single job/worker mutex; above the serve
    // tier's locks (10–30) because workers are dispatched from there, and
    // below the cache locks (50–70) that job closures may take.
    state: Mutex<State>,
    /// Workers park here between regions.
    work_cv: Condvar,
    /// The caller parks here while helpers drain.
    done_cv: Condvar,
}

/// A persistent pool of parked worker threads executing broadcast regions.
pub struct WorkerPool {
    shared: Arc<Shared>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = lock(&self.shared.state);
        f.debug_struct("WorkerPool")
            .field("workers", &st.workers)
            .field("busy", &st.job.is_some())
            .finish()
    }
}

impl WorkerPool {
    /// An empty pool; workers are spawned on demand by [`run_with`].
    ///
    /// [`run_with`]: WorkerPool::run_with
    pub fn new() -> Self {
        Self {
            shared: Arc::new(Shared {
                state: Mutex::new(State::default()),
                work_cv: Condvar::new(),
                done_cv: Condvar::new(),
            }),
        }
    }

    /// Number of live worker threads.
    pub fn workers(&self) -> usize {
        lock(&self.shared.state).workers
    }

    /// Grow the pool to at least `n` workers (best effort: a failed spawn
    /// leaves the pool smaller, never broken, because the caller of every
    /// region participates in it).
    fn ensure_workers(&self, n: usize) {
        let mut st = lock(&self.shared.state);
        while st.workers < n {
            let shared = Arc::clone(&self.shared);
            let spawned = std::thread::Builder::new()
                .name("tripro-pool".into())
                .spawn(move || worker_loop(&shared));
            if spawned.is_err() {
                break;
            }
            st.workers += 1;
        }
    }

    /// Run `f` on the calling thread plus up to `helpers` pool workers.
    ///
    /// `f` is invoked once per participating thread with a distinct index
    /// (the caller gets 0, helpers get `1..=helpers`); indices say nothing
    /// about work division — call sites claim work via shared atomics.
    /// Returns once every participant has finished. If the broadcast slot
    /// is occupied by another region (nested use), `f(0)` runs inline.
    pub fn run_with<F: Fn(usize) + Sync>(&self, helpers: usize, f: F) {
        if helpers == 0 {
            f(0);
            return;
        }
        self.ensure_workers(helpers);

        /// Re-type the erased pointer and run the closure.
        unsafe fn trampoline<F: Fn(usize) + Sync>(ptr: JobPtr, idx: usize) {
            // SAFETY: `ptr` was derived from `&f` in the `run_with` frame
            // below, which outlives every call (it blocks on `done_cv`
            // until `active == 0` and the job is closed to new claims).
            let f = unsafe { &*(ptr.0 as *const F) };
            f(idx);
        }

        let epoch = {
            let mut st = lock(&self.shared.state);
            if st.job.is_some() || st.workers == 0 {
                // Slot busy (nested region) or no workers could spawn:
                // degrade to inline execution rather than queueing.
                drop(st);
                f(0);
                return;
            }
            st.epoch += 1;
            let epoch = st.epoch;
            st.job = Some(Job {
                ptr: JobPtr(&f as *const F as *const ()),
                call: trampoline::<F>,
                epoch,
                open: true,
                next_idx: 1,
                limit: helpers + 1,
                active: 0,
                panic: None,
                posted: Instant::now(),
                trace_id: obs::current_trace_id(),
            });
            self.shared.work_cv.notify_all();
            epoch
        };

        // The caller is participant 0. Panics are deferred until helpers
        // have drained — unwinding past the wait would dangle `ptr`.
        let caller_result = catch_unwind(AssertUnwindSafe(|| f(0)));

        let helper_panic = {
            let mut st = lock(&self.shared.state);
            if let Some(job) = st.job.as_mut() {
                if job.epoch == epoch {
                    job.open = false;
                }
            }
            while st
                .job
                .as_ref()
                .is_some_and(|j| j.epoch == epoch && j.active > 0)
            {
                st = wait(&self.shared.done_cv, st);
            }
            match st.job.take() {
                Some(job) if job.epoch == epoch => job.panic,
                other => {
                    st.job = other;
                    None
                }
            }
        };

        if let Err(payload) = caller_result {
            resume_unwind(payload);
        }
        if let Some(payload) = helper_panic {
            resume_unwind(payload);
        }
    }
}

impl Default for WorkerPool {
    fn default() -> Self {
        Self::new()
    }
}

fn worker_loop(shared: &Shared) {
    let mut st = lock(&shared.state);
    loop {
        let claim = match st.job.as_mut() {
            Some(job) if job.open && job.next_idx < job.limit => {
                let idx = job.next_idx;
                job.next_idx += 1;
                job.active += 1;
                // Queue wait (post → claim) and occupancy (workers active
                // on the job at this claim, caller included) — §5.2
                // pipelining telemetry, recorded once per claim.
                obs::pool_wait_histogram().record_duration(job.posted.elapsed());
                obs::pool_occupancy_histogram().record(job.active as u64 + 1);
                Some((job.ptr, job.call, job.epoch, idx, job.trace_id))
            }
            _ => None,
        };
        match claim {
            Some((ptr, call, epoch, idx, trace_id)) => {
                drop(st);
                let _task = obs::span_for(trace_id, obs::SpanKind::PoolTask);
                // The claim above incremented `active` under the lock, so
                // the `run_with` frame owning `ptr` cannot return (and the
                // closure cannot be dropped) until the decrement below.
                let result = catch_unwind(AssertUnwindSafe(|| {
                    // An Err-armed dispatch failpoint makes this helper
                    // decline the claim (the caller participant still
                    // completes the region); Delay models queue latency
                    // and Panic a worker dying mid-job, contained here.
                    if fault::failpoint(fault::POOL_DISPATCH).is_ok() {
                        // SAFETY: `ptr` outlives this call per the above,
                        // and the closure is `Sync` so concurrent worker
                        // calls are allowed.
                        unsafe { call(ptr, idx) }
                    }
                }));
                if result.is_err() {
                    // The worker thread survives the panic (contained by
                    // the catch above); the payload is re-raised in the
                    // region's caller, never lost.
                    obs::panic_counter("pool").fetch_add(1, Ordering::Relaxed);
                }
                st = lock(&shared.state);
                if let Some(job) = st.job.as_mut() {
                    if job.epoch == epoch {
                        job.active -= 1;
                        if let Err(payload) = result {
                            job.panic.get_or_insert(payload);
                        }
                        shared.done_cv.notify_all();
                    }
                }
            }
            None => {
                st = wait(&shared.work_cv, st);
            }
        }
    }
}

/// The process-wide pool shared by the batch executor, the join driver,
/// store construction and the resource manager. One resident set of worker
/// threads per process mirrors the paper's §5.2 setup — a fixed CPU pool
/// plus device — and lets the decode cache stay warm across joins without
/// any per-call thread churn.
pub fn global() -> &'static WorkerPool {
    static POOL: OnceLock<WorkerPool> = OnceLock::new();
    POOL.get_or_init(WorkerPool::new)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

    #[test]
    fn runs_all_participants_work() {
        let pool = WorkerPool::new();
        let next = AtomicUsize::new(0);
        let sum = AtomicU64::new(0);
        pool.run_with(3, |_| loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= 1000 {
                return;
            }
            sum.fetch_add(i as u64 + 1, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 500_500);
        assert!(pool.workers() >= 1);
    }

    #[test]
    fn zero_helpers_runs_inline() {
        let pool = WorkerPool::new();
        let hits = AtomicUsize::new(0);
        pool.run_with(0, |idx| {
            assert_eq!(idx, 0);
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 1);
        assert_eq!(pool.workers(), 0, "no threads spawned for inline runs");
    }

    #[test]
    fn pool_is_reused_across_regions() {
        let pool = WorkerPool::new();
        for _ in 0..50 {
            let next = AtomicUsize::new(0);
            pool.run_with(2, |_| while next.fetch_add(1, Ordering::Relaxed) < 10 {});
        }
        // Lazily grown once, then parked and reused: never more threads
        // than the widest region requested.
        assert!(pool.workers() <= 2, "workers: {}", pool.workers());
    }

    #[test]
    fn nested_regions_complete() {
        let pool = WorkerPool::new();
        let total = AtomicU64::new(0);
        let outer_next = AtomicUsize::new(0);
        pool.run_with(3, |_| loop {
            let i = outer_next.fetch_add(1, Ordering::Relaxed);
            if i >= 8 {
                return;
            }
            // Nested region: must run (inline or helped), never deadlock.
            let inner_next = AtomicUsize::new(0);
            pool.run_with(2, |_| {
                while inner_next.fetch_add(1, Ordering::Relaxed) < 25 {
                    total.fetch_add(1, Ordering::Relaxed);
                }
            });
        });
        assert_eq!(total.load(Ordering::Relaxed), 8 * 25);
    }

    #[test]
    fn distinct_indices_handed_out() {
        let pool = WorkerPool::new();
        let seen = Mutex::new(Vec::new());
        pool.run_with(3, |idx| {
            lock(&seen).push(idx);
        });
        let mut ids = lock(&seen).clone();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), lock(&seen).len(), "duplicate participant idx");
        assert!(ids.contains(&0), "caller participates");
    }

    #[test]
    fn helper_panic_propagates_to_caller() {
        let pool = WorkerPool::new();
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run_with(2, |idx| {
                if idx == 0 {
                    // Caller waits for helpers to finish first.
                    std::thread::sleep(std::time::Duration::from_millis(20));
                } else {
                    panic!("helper boom");
                }
            });
        }));
        // The panic may have run on a helper (propagated) or the helpers
        // may never have woken in time (region completes cleanly) — but the
        // pool itself must stay usable either way.
        let _ = result;
        let next = AtomicUsize::new(0);
        pool.run_with(2, |_| while next.fetch_add(1, Ordering::Relaxed) < 5 {});
        assert!(next.load(Ordering::Relaxed) >= 5);
    }
}
