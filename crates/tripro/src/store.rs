//! The memory-centred object store (paper §5.3): PPVP-compressed objects
//! live in memory, the global R-tree indexes their MBBs (readable straight
//! from the compressed header), a second R-tree indexes the partition
//! sub-object boxes (§5.1), and all decoding goes through the LRU decode
//! cache. Objects are grouped into fixed-size cuboids for persistence and
//! batched query execution.

use crate::cache::{DecodeCache, LodData};
use crate::error::{Error, Result};
use crate::partition::{default_skeleton_size, group_faces, sample_skeleton};
use crate::stats::ExecStats;
use crate::sync::lock;
use std::sync::Arc;
use tripro_geom::{vec3, Aabb, Kdop, Vec3};
use tripro_index::RTree;
use tripro_mesh::{CompressedMesh, EncoderConfig, MeshError, TriMesh};

/// Object identifier within one store.
pub type ObjectId = u32;

/// One compressed object plus its precomputed partition metadata.
#[derive(Clone)]
pub struct StoredObject {
    pub mbb: Aabb,
    pub compressed: CompressedMesh,
    /// Skeleton points (farthest-point sampled at full resolution).
    pub skeleton: Vec<Vec3>,
    /// Boxes of the skeleton groups at full resolution — indexed in the
    /// partition R-tree for finer filtering.
    pub group_boxes: Vec<Aabb>,
    /// 13-direction conservative approximation of the full-resolution
    /// object (§2.2's conservative family): tighter rejection than the MBB.
    pub kdop: Kdop,
    /// Full-resolution face count (for cost accounting).
    pub full_faces: usize,
}

/// Store configuration.
#[derive(Debug, Clone, Copy)]
pub struct StoreConfig {
    pub encoder: EncoderConfig,
    /// Decode-cache capacity in bytes (0 disables the cache).
    pub cache_bytes: usize,
    /// Worker threads used while building (encode is embarrassingly
    /// parallel, mirroring the paper's 48-thread preprocessing).
    pub build_threads: usize,
}

impl Default for StoreConfig {
    fn default() -> Self {
        Self {
            encoder: EncoderConfig::default(),
            cache_bytes: 256 << 20,
            build_threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
        }
    }
}

/// A queryable dataset of compressed 3D objects.
pub struct ObjectStore {
    objects: Vec<StoredObject>,
    rtree: RTree<ObjectId>,
    partition_rtree: RTree<ObjectId>,
    cache: DecodeCache,
}

impl ObjectStore {
    /// Compress and index a set of meshes.
    pub fn build(meshes: &[TriMesh], cfg: &StoreConfig) -> Result<Self> {
        let n = meshes.len();
        let mut slots: Vec<Option<std::result::Result<StoredObject, MeshError>>> =
            (0..n).map(|_| None).collect();
        let next = std::sync::atomic::AtomicUsize::new(0);
        // LOCK-RANK(80): build-time slot accumulator — a leaf lock; the
        // encode workers hold nothing else when they store a result.
        let slots_ref: std::sync::Mutex<
            &mut Vec<Option<std::result::Result<StoredObject, MeshError>>>,
        > = std::sync::Mutex::new(&mut slots);
        let threads = cfg.build_threads.max(1).min(n.max(1));
        // Encode on the persistent pool (the caller participates too).
        crate::pool::global().run_with(threads.saturating_sub(1), |_| loop {
            let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            if i >= n {
                return;
            }
            let built = build_object(&meshes[i], &cfg.encoder);
            let mut guard = lock(&slots_ref);
            guard[i] = Some(built);
        });
        let mut objects = Vec::with_capacity(n);
        for (index, s) in slots.into_iter().enumerate() {
            match s {
                Some(built) => objects.push(built?),
                None => return Err(Error::BuildIncomplete { index }),
            }
        }
        Ok(Self::from_objects(objects, cfg.cache_bytes))
    }

    /// Assemble a store from prebuilt objects (used by persistence).
    pub fn from_objects(objects: Vec<StoredObject>, cache_bytes: usize) -> Self {
        let rtree = RTree::bulk_load(
            objects
                .iter()
                .enumerate()
                .map(|(i, o)| (o.mbb, i as ObjectId))
                .collect(),
        );
        let partition_rtree = RTree::bulk_load(
            objects
                .iter()
                .enumerate()
                .flat_map(|(i, o)| o.group_boxes.iter().map(move |bb| (*bb, i as ObjectId)))
                .collect(),
        );
        Self {
            objects,
            rtree,
            partition_rtree,
            cache: DecodeCache::new(cache_bytes),
        }
    }

    /// Tear the store back down into its object records (used by shard
    /// partitioning to rebuild per-shard stores without re-compressing).
    pub fn into_objects(self) -> Vec<StoredObject> {
        self.objects
    }

    /// Number of objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// `true` when no objects are stored.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Object MBB (no decoding needed).
    #[inline]
    pub fn mbb(&self, id: ObjectId) -> &Aabb {
        &self.objects[id as usize].mbb
    }

    /// The stored object record.
    #[inline]
    pub fn object(&self, id: ObjectId) -> &StoredObject {
        &self.objects[id as usize]
    }

    /// Skeleton points of an object.
    #[inline]
    pub fn skeleton(&self, id: ObjectId) -> &[Vec3] {
        &self.objects[id as usize].skeleton
    }

    /// The highest LOD this object supports.
    #[inline]
    pub fn max_lod(&self, id: ObjectId) -> usize {
        self.objects[id as usize].compressed.max_lod()
    }

    /// Highest LOD over the whole store (the ladder top used by queries).
    pub fn max_lod_overall(&self) -> usize {
        self.objects
            .iter()
            .map(|o| o.compressed.max_lod())
            .max()
            .unwrap_or(0)
    }

    /// Global R-tree over object MBBs.
    pub fn rtree(&self) -> &RTree<ObjectId> {
        &self.rtree
    }

    /// R-tree over partition sub-object boxes (values are object ids and
    /// may repeat; callers dedup).
    pub fn partition_rtree(&self) -> &RTree<ObjectId> {
        &self.partition_rtree
    }

    /// Decode an object to (at most) `lod`, via the cache. Fails only when
    /// the stored payload is corrupt ([`Error::Decode`]).
    pub fn get(&self, id: ObjectId, lod: usize, stats: &ExecStats) -> Result<Arc<LodData>> {
        let lod = lod.min(self.max_lod(id));
        self.cache
            .get(id, lod, &self.objects[id as usize].compressed, stats)
    }

    /// The decode cache (for clearing / instrumentation).
    pub fn cache(&self) -> &DecodeCache {
        &self.cache
    }

    /// Total compressed payload bytes.
    pub fn compressed_bytes(&self) -> usize {
        self.objects
            .iter()
            .map(|o| o.compressed.payload_size())
            .sum()
    }

    /// Sum of full-resolution face counts.
    pub fn total_full_faces(&self) -> usize {
        self.objects.iter().map(|o| o.full_faces).sum()
    }

    /// Group object ids into cuboids of side `cell` by MBB centre —
    /// the batching unit for parallel query execution (§5.3).
    pub fn cuboids(&self, cell: f64) -> Vec<Vec<ObjectId>> {
        let mut map: std::collections::HashMap<(i64, i64, i64), Vec<ObjectId>> =
            std::collections::HashMap::new();
        for (i, o) in self.objects.iter().enumerate() {
            let c = o.mbb.center();
            let key = (
                (c.x / cell).floor() as i64,
                (c.y / cell).floor() as i64,
                (c.z / cell).floor() as i64,
            );
            map.entry(key).or_default().push(i as ObjectId);
        }
        let mut tiles: Vec<_> = map.into_iter().collect();
        tiles.sort_unstable_by_key(|(k, _)| *k);
        tiles.into_iter().map(|(_, ids)| ids).collect()
    }
}

fn build_object(tm: &TriMesh, enc: &EncoderConfig) -> std::result::Result<StoredObject, MeshError> {
    let compressed = tripro_mesh::encode(tm, enc)?;
    let mbb = tm.aabb();
    // Skeleton from the full-resolution surface.
    let k = default_skeleton_size(tm.faces.len());
    let skeleton = sample_skeleton(&tm.vertices, k);
    let tris = tm.triangles();
    let groups = group_faces(&tris, &skeleton);
    let group_boxes = groups.non_empty().map(|(_, bb)| *bb).collect::<Vec<_>>();
    Ok(StoredObject {
        mbb,
        compressed,
        skeleton,
        group_boxes,
        kdop: Kdop::from_points(tm.vertices.iter().cloned()),
        full_faces: tm.faces.len(),
    })
}

// ---------------------------------------------------------------------------
// Persistence: one file per cuboid, objects framed with their metadata.
// ---------------------------------------------------------------------------

const FILE_MAGIC: &[u8; 4] = b"3DP2";

impl ObjectStore {
    /// Persist to `dir`, one file per cuboid of side `cell`. Files are named
    /// by cuboid coordinate so reloading is deterministic.
    pub fn save_dir(&self, dir: &std::path::Path, cell: f64) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        for (ci, ids) in self.cuboids(cell).into_iter().enumerate() {
            let mut buf = Vec::new();
            buf.extend_from_slice(FILE_MAGIC);
            tripro_coder::write_u64(&mut buf, ids.len() as u64);
            for id in ids {
                let o = &self.objects[id as usize];
                let blob = o.compressed.to_bytes();
                tripro_coder::write_u64(&mut buf, blob.len() as u64);
                buf.extend_from_slice(&blob);
                tripro_coder::write_u64(&mut buf, o.skeleton.len() as u64);
                for p in &o.skeleton {
                    tripro_coder::write_f64(&mut buf, p.x);
                    tripro_coder::write_f64(&mut buf, p.y);
                    tripro_coder::write_f64(&mut buf, p.z);
                }
                tripro_coder::write_u64(&mut buf, o.group_boxes.len() as u64);
                for bb in &o.group_boxes {
                    for v in [bb.lo, bb.hi] {
                        tripro_coder::write_f64(&mut buf, v.x);
                        tripro_coder::write_f64(&mut buf, v.y);
                        tripro_coder::write_f64(&mut buf, v.z);
                    }
                }
                for i in 0..tripro_geom::kdop::K {
                    tripro_coder::write_f64(&mut buf, o.kdop.lo[i]);
                    tripro_coder::write_f64(&mut buf, o.kdop.hi[i]);
                }
                tripro_coder::write_u64(&mut buf, o.full_faces as u64);
            }
            std::fs::write(dir.join(format!("cuboid_{ci:06}.3dp")), &buf)?;
        }
        Ok(())
    }

    /// Load a store persisted by [`ObjectStore::save_dir`]. Object ids are
    /// reassigned in file order.
    pub fn load_dir(dir: &std::path::Path, cache_bytes: usize) -> std::io::Result<Self> {
        let mut paths: Vec<_> = std::fs::read_dir(dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|x| x == "3dp"))
            .collect();
        paths.sort();
        let bad = |m: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, m.to_string());
        let mut objects = Vec::new();
        for path in paths {
            let data = std::fs::read(&path)?;
            let mut r = tripro_coder::ByteReader::new(&data);
            if r.read_exact(4).map_err(|_| bad("truncated"))? != FILE_MAGIC {
                return Err(bad("bad magic"));
            }
            let count = r.read_usize().map_err(|_| bad("truncated"))?;
            for _ in 0..count {
                let len = r.read_usize().map_err(|_| bad("truncated"))?;
                let blob = r.read_exact(len).map_err(|_| bad("truncated"))?;
                let compressed = CompressedMesh::from_bytes(blob).map_err(|_| bad("bad object"))?;
                let nsk = r.read_usize().map_err(|_| bad("truncated"))?;
                let mut skeleton = Vec::with_capacity(nsk);
                for _ in 0..nsk {
                    let x = r.read_f64().map_err(|_| bad("truncated"))?;
                    let y = r.read_f64().map_err(|_| bad("truncated"))?;
                    let z = r.read_f64().map_err(|_| bad("truncated"))?;
                    skeleton.push(vec3(x, y, z));
                }
                let ngb = r.read_usize().map_err(|_| bad("truncated"))?;
                let mut group_boxes = Vec::with_capacity(ngb);
                for _ in 0..ngb {
                    let mut c = [0.0f64; 6];
                    for v in &mut c {
                        *v = r.read_f64().map_err(|_| bad("truncated"))?;
                    }
                    group_boxes.push(Aabb::new(vec3(c[0], c[1], c[2]), vec3(c[3], c[4], c[5])));
                }
                let mut kdop = Kdop::EMPTY;
                for i in 0..tripro_geom::kdop::K {
                    kdop.lo[i] = r.read_f64().map_err(|_| bad("truncated"))?;
                    kdop.hi[i] = r.read_f64().map_err(|_| bad("truncated"))?;
                }
                let full_faces = r.read_usize().map_err(|_| bad("truncated"))?;
                let mbb = compressed.aabb();
                objects.push(StoredObject {
                    mbb,
                    compressed,
                    skeleton,
                    group_boxes,
                    kdop,
                    full_faces,
                });
            }
        }
        Ok(Self::from_objects(objects, cache_bytes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tripro_mesh::testutil::sphere;

    fn spheres(n: usize) -> Vec<TriMesh> {
        (0..n)
            .map(|i| sphere(vec3(i as f64 * 10.0, 0.0, 0.0), 2.0, 2))
            .collect()
    }

    fn cfg() -> StoreConfig {
        StoreConfig {
            build_threads: 2,
            ..Default::default()
        }
    }

    #[test]
    fn build_and_query_index() {
        let store = ObjectStore::build(&spheres(5), &cfg()).unwrap();
        assert_eq!(store.len(), 5);
        // MBB of object 2 centred at x=20.
        assert!((store.mbb(2).center() - vec3(20.0, 0.0, 0.0)).norm() < 1e-6);
        let hits = store.rtree().query_intersects(store.mbb(3));
        assert_eq!(hits, vec![3]);
        assert!(store.max_lod_overall() >= 1);
        assert!(store.compressed_bytes() > 0);
        assert_eq!(store.total_full_faces(), 5 * 128);
    }

    #[test]
    fn decode_via_cache() {
        let store = ObjectStore::build(&spheres(2), &cfg()).unwrap();
        let stats = ExecStats::new();
        let top = store.max_lod(0);
        let full = store.get(0, top, &stats).unwrap();
        assert_eq!(full.triangles.len(), 128);
        let base = store.get(0, 0, &stats).unwrap();
        assert!(base.triangles.len() < full.triangles.len());
        // Requesting beyond the max clamps (and hits the cache).
        let again = store.get(0, 99, &stats).unwrap();
        assert!(Arc::ptr_eq(&full.triangles, &again.triangles) || again.triangles.len() == 128);
        assert!(stats.snapshot().cache_hits >= 1);
    }

    #[test]
    fn skeleton_and_partition_index() {
        let store = ObjectStore::build(&spheres(3), &cfg()).unwrap();
        for id in 0..3 {
            assert!(!store.skeleton(id).is_empty());
            assert!(!store.object(id).group_boxes.is_empty());
        }
        // The partition R-tree must find object 1's groups near x=10.
        let probe = Aabb::from_point(vec3(10.0, 0.0, 2.0));
        let mut hits = store
            .partition_rtree()
            .query_intersects(&probe.inflate(0.5));
        hits.dedup();
        assert!(hits.contains(&1));
    }

    #[test]
    fn cuboid_batching() {
        let store = ObjectStore::build(&spheres(6), &cfg()).unwrap();
        let tiles = store.cuboids(25.0);
        let total: usize = tiles.iter().map(Vec::len).sum();
        assert_eq!(total, 6);
        assert!(tiles.len() >= 2, "objects span multiple cuboids");
    }

    #[test]
    fn persistence_roundtrip() {
        let store = ObjectStore::build(&spheres(4), &cfg()).unwrap();
        let dir = std::env::temp_dir().join(format!("tripro_store_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        store.save_dir(&dir, 25.0).unwrap();
        let loaded = ObjectStore::load_dir(&dir, 64 << 20).unwrap();
        assert_eq!(loaded.len(), 4);
        assert_eq!(loaded.compressed_bytes(), store.compressed_bytes());
        // Geometry decodes identically (volumes match object-by-object after
        // sorting, since ids may be permuted by cuboid order).
        let stats = ExecStats::new();
        let vols = |s: &ObjectStore| {
            let mut v: Vec<i64> = (0..s.len() as u32)
                .map(|id| {
                    let d = s.get(id, s.max_lod(id), &stats).unwrap();
                    tripro_geom::mesh_volume(&d.triangles) as i64
                })
                .collect();
            v.sort_unstable();
            v
        };
        assert_eq!(vols(&store), vols(&loaded));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_store() {
        let store = ObjectStore::build(&[], &cfg()).unwrap();
        assert!(store.is_empty());
        assert_eq!(store.max_lod_overall(), 0);
        assert!(store.cuboids(10.0).is_empty());
    }
}
