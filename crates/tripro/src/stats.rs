//! Execution statistics: the time breakdown (filter / decode / geometry)
//! behind Fig 10, the per-LOD evaluated/pruned pair counts behind Fig 12,
//! and the cache counters behind Table 2.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Maximum LOD index tracked by the per-LOD counters.
pub const MAX_TRACKED_LOD: usize = 15;

/// Number of stages in the pipelined join executor (generate / decode /
/// build / eval — see [`crate::pipeline`]).
pub const PIPELINE_STAGES: usize = 4;

/// Number of bounded inter-stage queues (one between each adjacent stage
/// pair: gen→decode, decode→build, build→eval).
pub const PIPELINE_QUEUES: usize = PIPELINE_STAGES - 1;

/// Human-readable stage names, indexed like the `stage_*` arrays.
pub const STAGE_NAMES: [&str; PIPELINE_STAGES] = ["generate", "decode", "build", "eval"];

/// Thread-safe accumulator for one query execution.
#[derive(Debug, Default)]
pub struct ExecStats {
    /// Nanoseconds spent querying the global index.
    pub filter_ns: AtomicU64,
    /// Nanoseconds spent decompressing objects.
    pub decode_ns: AtomicU64,
    /// Nanoseconds spent in geometric computation.
    pub compute_ns: AtomicU64,
    /// Triangle-pair predicate evaluations.
    pub face_pair_tests: AtomicU64,
    /// Object pairs evaluated at each LOD (Fig 12).
    pub pairs_evaluated: [AtomicU64; MAX_TRACKED_LOD + 1],
    /// Object pairs resolved (pruned from further refinement) at each LOD.
    pub pairs_pruned: [AtomicU64; MAX_TRACKED_LOD + 1],
    /// Decode-cache hits and misses.
    pub cache_hits: AtomicU64,
    pub cache_misses: AtomicU64,
    /// Number of object decodes performed (cache misses materialised).
    pub decodes: AtomicU64,
    /// Bytes of geometry materialised by decodes (triangle payloads).
    /// Decoded-bytes-per-resolved-pair is the margin planner's input
    /// signal (ROADMAP), so it is tracked at the source rather than
    /// estimated from decode counts.
    pub decoded_bytes: AtomicU64,
    /// Progressive refinement rounds executed (one per LOD the driver
    /// actually visited, across all paradigms).
    pub lod_rounds: AtomicU64,
    /// Pair records whose LOD exceeded [`MAX_TRACKED_LOD`] and were merged
    /// into the top bucket. Silent clamping would make the Fig 12 per-LOD
    /// breakdown lie for deep ladders; this counter is the signal.
    pub lod_overflow: AtomicU64,
    /// Busy nanoseconds per pipeline stage (generate/decode/build/eval).
    /// Summed across workers, so `sum(stage_ns) / wall_ns > 1` is the
    /// direct witness that stages overlapped (see docs/performance.md).
    pub stage_ns: [AtomicU64; PIPELINE_STAGES],
    /// Items processed per pipeline stage.
    pub stage_items: [AtomicU64; PIPELINE_STAGES],
    /// Times a producer found its downstream queue full and had to run the
    /// consumer stage inline (backpressure events, per queue).
    pub queue_stalls: [AtomicU64; PIPELINE_QUEUES],
}

impl ExecStats {
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub fn add_filter(&self, d: Duration) {
        self.filter_ns
            .fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
    }

    #[inline]
    pub fn add_decode(&self, d: Duration) {
        self.decode_ns
            .fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
    }

    #[inline]
    pub fn add_compute(&self, d: Duration) {
        self.compute_ns
            .fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
    }

    #[inline]
    pub fn add_face_pairs(&self, n: u64) {
        self.face_pair_tests.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn record_pair_evaluated(&self, lod: usize) {
        if lod > MAX_TRACKED_LOD {
            self.lod_overflow.fetch_add(1, Ordering::Relaxed);
        }
        self.pairs_evaluated[lod.min(MAX_TRACKED_LOD)].fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub fn record_pair_pruned(&self, lod: usize) {
        if lod > MAX_TRACKED_LOD {
            self.lod_overflow.fetch_add(1, Ordering::Relaxed);
        }
        self.pairs_pruned[lod.min(MAX_TRACKED_LOD)].fetch_add(1, Ordering::Relaxed);
    }

    /// Record busy time and one processed item for pipeline stage `stage`
    /// (clamped into the last slot — the stage set is fixed at compile
    /// time, so out-of-range only happens on caller bugs).
    #[inline]
    pub fn add_stage(&self, stage: usize, d: Duration) {
        let s = stage.min(PIPELINE_STAGES - 1);
        self.stage_ns[s].fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
        self.stage_items[s].fetch_add(1, Ordering::Relaxed);
    }

    /// Record a backpressure stall on inter-stage queue `queue`
    /// (0 = gen→decode, 1 = decode→build, 2 = build→eval).
    #[inline]
    pub fn record_stall(&self, queue: usize) {
        self.queue_stalls[queue.min(PIPELINE_QUEUES - 1)].fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub fn add_decoded_bytes(&self, n: u64) {
        self.decoded_bytes.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn record_lod_round(&self) {
        self.lod_rounds.fetch_add(1, Ordering::Relaxed);
    }

    /// Fold a snapshot into this accumulator. Used by the serve layer to
    /// account a per-request `ExecStats` (needed for exact per-query cost
    /// attribution) back into the long-lived aggregate, so `StatsEx`
    /// totals are unchanged by whether a request was traced.
    pub fn merge_from(&self, s: &StatsSnapshot) {
        self.filter_ns.fetch_add(s.filter_ns, Ordering::Relaxed);
        self.decode_ns.fetch_add(s.decode_ns, Ordering::Relaxed);
        self.compute_ns.fetch_add(s.compute_ns, Ordering::Relaxed);
        self.face_pair_tests
            .fetch_add(s.face_pair_tests, Ordering::Relaxed);
        for (a, v) in self.pairs_evaluated.iter().zip(&s.pairs_evaluated) {
            a.fetch_add(*v, Ordering::Relaxed);
        }
        for (a, v) in self.pairs_pruned.iter().zip(&s.pairs_pruned) {
            a.fetch_add(*v, Ordering::Relaxed);
        }
        self.cache_hits.fetch_add(s.cache_hits, Ordering::Relaxed);
        self.cache_misses.fetch_add(s.cache_misses, Ordering::Relaxed);
        self.decodes.fetch_add(s.decodes, Ordering::Relaxed);
        self.decoded_bytes
            .fetch_add(s.decoded_bytes, Ordering::Relaxed);
        self.lod_rounds.fetch_add(s.lod_rounds, Ordering::Relaxed);
        self.lod_overflow.fetch_add(s.lod_overflow, Ordering::Relaxed);
        for (a, v) in self.stage_ns.iter().zip(&s.stage_ns) {
            a.fetch_add(*v, Ordering::Relaxed);
        }
        for (a, v) in self.stage_items.iter().zip(&s.stage_items) {
            a.fetch_add(*v, Ordering::Relaxed);
        }
        for (a, v) in self.queue_stalls.iter().zip(&s.queue_stalls) {
            a.fetch_add(*v, Ordering::Relaxed);
        }
    }

    /// Snapshot into a plain, serialisable struct.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            filter_ns: self.filter_ns.load(Ordering::Relaxed),
            decode_ns: self.decode_ns.load(Ordering::Relaxed),
            compute_ns: self.compute_ns.load(Ordering::Relaxed),
            face_pair_tests: self.face_pair_tests.load(Ordering::Relaxed),
            pairs_evaluated: self
                .pairs_evaluated
                .iter()
                .map(|a| a.load(Ordering::Relaxed))
                .collect(),
            pairs_pruned: self
                .pairs_pruned
                .iter()
                .map(|a| a.load(Ordering::Relaxed))
                .collect(),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            decodes: self.decodes.load(Ordering::Relaxed),
            decoded_bytes: self.decoded_bytes.load(Ordering::Relaxed),
            lod_rounds: self.lod_rounds.load(Ordering::Relaxed),
            lod_overflow: self.lod_overflow.load(Ordering::Relaxed),
            stage_ns: self
                .stage_ns
                .iter()
                .map(|a| a.load(Ordering::Relaxed))
                .collect(),
            stage_items: self
                .stage_items
                .iter()
                .map(|a| a.load(Ordering::Relaxed))
                .collect(),
            queue_stalls: self
                .queue_stalls
                .iter()
                .map(|a| a.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

/// Plain-data snapshot of [`ExecStats`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StatsSnapshot {
    pub filter_ns: u64,
    pub decode_ns: u64,
    pub compute_ns: u64,
    pub face_pair_tests: u64,
    pub pairs_evaluated: Vec<u64>,
    pub pairs_pruned: Vec<u64>,
    pub cache_hits: u64,
    pub cache_misses: u64,
    pub decodes: u64,
    /// Bytes of geometry materialised by decodes.
    pub decoded_bytes: u64,
    /// Progressive refinement rounds executed.
    pub lod_rounds: u64,
    /// Pair records clamped into the top LOD bucket (see
    /// [`ExecStats::lod_overflow`]); nonzero means `pairs_evaluated[15]` /
    /// `pairs_pruned[15]` aggregate more than one real LOD.
    pub lod_overflow: u64,
    /// Busy nanoseconds per pipeline stage ([`STAGE_NAMES`] order); all
    /// zero under the phase-sequential driver.
    pub stage_ns: Vec<u64>,
    /// Items processed per pipeline stage.
    pub stage_items: Vec<u64>,
    /// Backpressure stalls per inter-stage queue.
    pub queue_stalls: Vec<u64>,
}

impl StatsSnapshot {
    /// Filter time in seconds.
    pub fn filter_s(&self) -> f64 {
        self.filter_ns as f64 / 1e9
    }

    /// Decode time in seconds.
    pub fn decode_s(&self) -> f64 {
        self.decode_ns as f64 / 1e9
    }

    /// Geometry time in seconds.
    pub fn compute_s(&self) -> f64 {
        self.compute_ns as f64 / 1e9
    }

    /// Decode-cache hit rate in `[0, 1]`; 0.0 when nothing was requested.
    pub fn hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Fraction of object pairs pruned at each LOD that saw evaluations —
    /// the quantity §4.4 compares against `1/r²` to pick refinement LODs.
    ///
    /// Clamped to `[0, 1]`: some resolution paths (NN/kNN threshold prunes,
    /// the containment fallback at top LOD) record a prune without a
    /// matching evaluation at that LOD, so the raw ratio can exceed 1.
    /// The profiler's break-even thresholds are always `< 1`, so clamping
    /// never changes an LOD choice — it only keeps the reported fraction a
    /// fraction.
    /// Pipeline overlap factor: total per-stage busy time divided by the
    /// join's wall-clock time. Values above 1.0 prove stages ran
    /// concurrently (e.g. batch N's kernel evaluation overlapping batch
    /// N+1's decode); the theoretical ceiling is the worker count. Returns
    /// 0.0 for `wall == 0` or when no stage time was recorded (phased run).
    pub fn overlap_factor(&self, wall: Duration) -> f64 {
        let busy: u64 = self.stage_ns.iter().sum();
        let wall_ns = wall.as_nanos() as u64;
        if wall_ns == 0 || busy == 0 {
            0.0
        } else {
            busy as f64 / wall_ns as f64
        }
    }

    /// Object pairs resolved (pruned from further refinement) across all
    /// LODs — the denominator of the decoded-bytes-per-resolved-pair
    /// attribution ratio.
    pub fn resolved_pairs(&self) -> u64 {
        self.pairs_pruned.iter().sum()
    }

    /// Decoded bytes per resolved pair; 0.0 when nothing was resolved.
    pub fn bytes_per_resolved_pair(&self) -> f64 {
        let pairs = self.resolved_pairs();
        if pairs == 0 {
            0.0
        } else {
            self.decoded_bytes as f64 / pairs as f64
        }
    }

    pub fn pruned_fractions(&self) -> Vec<(usize, f64)> {
        self.pairs_evaluated
            .iter()
            .zip(&self.pairs_pruned)
            .enumerate()
            .filter(|(_, (&e, _))| e > 0)
            .map(|(lod, (&e, &p))| (lod, (p as f64 / e as f64).min(1.0)))
            .collect()
    }
}

/// Request-lifecycle counters for a long-lived query service: how many
/// requests were admitted, shed at admission control, expired against their
/// deadline, completed, or rejected as protocol errors. Lives here (rather
/// than in the server crate) so the engine, CLI and any future front end
/// report overload behaviour through one vocabulary.
#[derive(Debug, Default)]
pub struct ServiceStats {
    /// Requests accepted past admission control.
    pub admitted: AtomicU64,
    /// Requests refused with an `Overloaded` response.
    pub shed: AtomicU64,
    /// Admitted requests whose deadline expired before refinement finished.
    pub deadline_expired: AtomicU64,
    /// Admitted requests answered successfully.
    pub completed: AtomicU64,
    /// Admitted requests that failed in execution (answered with an
    /// internal error). Without this bucket, `admitted` could not be
    /// reconciled against terminal outcomes — see
    /// [`ServiceSnapshot::accounted`].
    pub failed: AtomicU64,
    /// Frames rejected as malformed/oversized/unsupported.
    pub protocol_errors: AtomicU64,
    /// Panics caught by the serve containment boundary while executing a
    /// request. A subset of `failed` (every contained panic is also
    /// recorded as failed, so the accounting identity is unchanged);
    /// tracked separately because a panic is a bug signal, not a
    /// data-dependent failure.
    pub panics: AtomicU64,
}

impl ServiceStats {
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub fn record_admitted(&self) {
        self.admitted.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub fn record_shed(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub fn record_deadline_expired(&self) {
        self.deadline_expired.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub fn record_completed(&self) {
        self.completed.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub fn record_failed(&self) {
        self.failed.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub fn record_protocol_error(&self) {
        self.protocol_errors.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub fn record_panic(&self) {
        self.panics.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot into a plain, serialisable struct.
    pub fn snapshot(&self) -> ServiceSnapshot {
        ServiceSnapshot {
            admitted: self.admitted.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            deadline_expired: self.deadline_expired.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            protocol_errors: self.protocol_errors.load(Ordering::Relaxed),
            panics: self.panics.load(Ordering::Relaxed),
        }
    }
}

/// Plain-data snapshot of [`ServiceStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceSnapshot {
    pub admitted: u64,
    pub shed: u64,
    pub deadline_expired: u64,
    pub completed: u64,
    pub failed: u64,
    pub protocol_errors: u64,
    /// Contained request panics (a subset of `failed`).
    pub panics: u64,
}

impl ServiceSnapshot {
    /// Admitted requests that reached a terminal outcome. At any quiescent
    /// point (no request queued or executing) this must equal `admitted`;
    /// mid-flight, `admitted - accounted()` is the in-flight count. The
    /// serve layer asserts this identity at snapshot time under
    /// `strict-invariants`.
    #[must_use]
    pub fn accounted(&self) -> u64 {
        self.completed + self.deadline_expired + self.failed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulate_and_snapshot() {
        let s = ExecStats::new();
        s.add_filter(Duration::from_millis(2));
        s.add_decode(Duration::from_millis(3));
        s.add_compute(Duration::from_millis(5));
        s.add_face_pairs(100);
        s.record_pair_evaluated(0);
        s.record_pair_evaluated(0);
        s.record_pair_pruned(0);
        s.record_pair_evaluated(5);
        let snap = s.snapshot();
        assert_eq!(snap.filter_ns, 2_000_000);
        assert_eq!(snap.face_pair_tests, 100);
        assert_eq!(snap.pairs_evaluated[0], 2);
        assert_eq!(snap.pairs_pruned[0], 1);
        assert_eq!(snap.pairs_evaluated[5], 1);
        assert!((snap.compute_s() - 0.005).abs() < 1e-9);
    }

    #[test]
    fn pruned_fractions_skip_empty_lods() {
        let s = ExecStats::new();
        s.record_pair_evaluated(1);
        s.record_pair_evaluated(1);
        s.record_pair_pruned(1);
        s.record_pair_evaluated(3);
        let f = s.snapshot().pruned_fractions();
        assert_eq!(f, vec![(1, 0.5), (3, 0.0)]);
    }

    #[test]
    fn service_stats_roundtrip() {
        let s = ServiceStats::new();
        s.record_admitted();
        s.record_admitted();
        s.record_admitted();
        s.record_shed();
        s.record_deadline_expired();
        s.record_completed();
        s.record_failed();
        s.record_protocol_error();
        let snap = s.snapshot();
        assert_eq!(snap.admitted, 3);
        assert_eq!(snap.shed, 1);
        assert_eq!(snap.deadline_expired, 1);
        assert_eq!(snap.completed, 1);
        assert_eq!(snap.failed, 1);
        assert_eq!(snap.protocol_errors, 1);
        // Every admitted request reached a terminal outcome.
        assert_eq!(snap.accounted(), snap.admitted);
    }

    #[test]
    fn lod_overflow_clamps_and_counts() {
        let s = ExecStats::new();
        s.record_pair_evaluated(999);
        s.record_pair_pruned(16);
        s.record_pair_evaluated(MAX_TRACKED_LOD); // boundary: not an overflow
        let snap = s.snapshot();
        assert_eq!(snap.pairs_evaluated[MAX_TRACKED_LOD], 2);
        assert_eq!(snap.pairs_pruned[MAX_TRACKED_LOD], 1);
        assert_eq!(snap.lod_overflow, 2, "overflowing records are signalled");
    }

    #[test]
    fn stage_counters_accumulate_and_overlap_factor() {
        let s = ExecStats::new();
        s.add_stage(1, Duration::from_millis(6));
        s.add_stage(3, Duration::from_millis(6));
        s.add_stage(3, Duration::from_millis(6));
        s.record_stall(2);
        s.record_stall(99); // clamped into the last queue slot
        let snap = s.snapshot();
        assert_eq!(snap.stage_ns[1], 6_000_000);
        assert_eq!(snap.stage_ns[3], 12_000_000);
        assert_eq!(snap.stage_items, vec![0, 1, 0, 2]);
        assert_eq!(snap.queue_stalls, vec![0, 0, 2]);
        // 18ms of busy time over a 9ms wall clock = 2x overlap.
        let f = snap.overlap_factor(Duration::from_millis(9));
        assert!((f - 2.0).abs() < 1e-9, "overlap {f}");
        assert_eq!(snap.overlap_factor(Duration::ZERO), 0.0);
        assert_eq!(
            StatsSnapshot::default().overlap_factor(Duration::from_secs(1)),
            0.0
        );
    }

    #[test]
    fn merge_from_folds_every_counter() {
        let a = ExecStats::new();
        a.add_filter(Duration::from_millis(1));
        a.record_pair_evaluated(2);
        a.record_pair_pruned(2);
        a.add_decoded_bytes(100);
        a.record_lod_round();
        a.add_stage(0, Duration::from_millis(1));
        a.record_stall(0);
        let b = ExecStats::new();
        b.add_filter(Duration::from_millis(2));
        b.add_decoded_bytes(50);
        b.record_lod_round();
        b.record_lod_round();
        b.merge_from(&a.snapshot());
        let snap = b.snapshot();
        assert_eq!(snap.filter_ns, 3_000_000);
        assert_eq!(snap.pairs_evaluated[2], 1);
        assert_eq!(snap.pairs_pruned[2], 1);
        assert_eq!(snap.decoded_bytes, 150);
        assert_eq!(snap.lod_rounds, 3);
        assert_eq!(snap.stage_ns[0], 1_000_000);
        assert_eq!(snap.queue_stalls[0], 1);
        assert_eq!(snap.resolved_pairs(), 1);
        assert!((snap.bytes_per_resolved_pair() - 150.0).abs() < 1e-9);
        assert_eq!(StatsSnapshot::default().bytes_per_resolved_pair(), 0.0);
    }

    #[test]
    fn pruned_fractions_are_clamped_to_unit_interval() {
        let s = ExecStats::new();
        // NN-style pattern: more prunes than evaluations at one LOD.
        s.record_pair_evaluated(2);
        s.record_pair_pruned(2);
        s.record_pair_pruned(2);
        s.record_pair_pruned(2);
        let f = s.snapshot().pruned_fractions();
        assert_eq!(f, vec![(2, 1.0)]);
    }
}
