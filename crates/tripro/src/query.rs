//! The query processor: intersection, within and nearest-neighbour spatial
//! joins under both paradigms (paper §4):
//!
//! * **Filter-Refine (FR)** — R-tree filter, then refinement on fully
//!   decoded geometry (the classical baseline).
//! * **Filter-Progressive-Refine (FPR)** — the paper's contribution:
//!   candidates are decoded and refined at increasing LODs; the PPVP subset
//!   guarantee lets results return early (Alg. 1–3), skipping most
//!   high-LOD decoding and geometry.

use crate::compute::{Accel, Computer};
use crate::deadline::Deadline;
use crate::error::Result;
use crate::obs::{self, QueryOp, SpanKind};
use crate::stats::ExecStats;
use crate::store::{ObjectId, ObjectStore};
use crate::sync::lock;
use std::collections::BinaryHeap;
use std::time::Instant;
use tripro_geom::DistRange;

/// Total-order f64 wrapper so a [`BinaryHeap`] can hold distances.
#[derive(PartialEq)]
struct OrdF64(f64);

impl Eq for OrdF64 {}

impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Bounded max-heap over the `k` smallest values pushed so far: `kth()` is
/// the k-th smallest in O(1), each `push` is O(log k). Replaces re-sorting
/// the whole candidate list per evaluated pair in the kNN inner loop.
struct KthSmallest {
    k: usize,
    heap: BinaryHeap<OrdF64>,
}

impl KthSmallest {
    fn new(k: usize) -> Self {
        Self {
            k,
            heap: BinaryHeap::with_capacity(k + 1),
        }
    }

    fn push(&mut self, v: f64) {
        if self.heap.len() < self.k {
            self.heap.push(OrdF64(v));
        } else if self.heap.peek().is_some_and(|top| v < top.0) {
            self.heap.pop();
            self.heap.push(OrdF64(v));
        }
    }

    /// The k-th smallest value pushed so far; ∞ until `k` values are seen
    /// (matching the "cannot tighten before k candidates settle" rule).
    fn kth(&self) -> f64 {
        if self.heap.len() < self.k {
            f64::INFINITY
        } else {
            self.heap.peek().map_or(f64::INFINITY, |top| top.0)
        }
    }
}

/// Per-join context built **once** and shared by every target evaluation:
/// the geometry computer (with its batch executor) and the LOD ladder.
/// The seed rebuilt both per target object, which put allocation and
/// `available_parallelism` queries on the per-candidate hot path.
struct JoinCtx {
    computer: Computer,
    lods: Vec<usize>,
    /// Cooperative deadline/cancel token, polled between refinement rounds.
    deadline: Deadline,
    /// Paradigm flag for the pre-bound latency histograms (`true` = FPR).
    fpr: bool,
}

/// Query processing paradigm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Paradigm {
    /// Decode to the highest LOD immediately (classical Filter-Refine).
    FilterRefine,
    /// Refine progressively from low LODs (the paper's FPR).
    FilterProgressiveRefine,
}

impl Paradigm {
    pub fn label(&self) -> &'static str {
        match self {
            Paradigm::FilterRefine => "FR",
            Paradigm::FilterProgressiveRefine => "FPR",
        }
    }
}

/// How the whole-join driver schedules its four execution stages
/// (candidate generation, LOD decode, accelerator build, kernel
/// evaluation) across workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// Pick per query: the streaming pipeline when more than one worker
    /// is configured, the phase-sequential driver otherwise (a single
    /// worker gains nothing from stage overlap).
    #[default]
    Auto,
    /// Phase-sequential: workers claim whole cuboids and run every stage
    /// of a cuboid to completion before the next (the pre-pipeline
    /// driver; kept as the equivalence and bench baseline).
    Phased,
    /// Streaming pipeline on bounded inter-stage queues: batch N's
    /// kernel evaluation overlaps batch N+1's decode (see
    /// [`crate::pipeline`]).
    Pipelined,
}

impl ExecMode {
    /// Stable lowercase label for metrics and bench output.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            ExecMode::Auto => "auto",
            ExecMode::Phased => "phased",
            ExecMode::Pipelined => "pipelined",
        }
    }

    /// Resolve `Auto` against the configured worker count.
    fn is_pipelined(self, threads: usize) -> bool {
        match self {
            ExecMode::Phased => false,
            ExecMode::Pipelined => true,
            ExecMode::Auto => threads >= 2,
        }
    }
}

/// Query configuration.
#[derive(Debug, Clone)]
pub struct QueryConfig {
    pub paradigm: Paradigm,
    pub accel: Accel,
    /// Worker threads for the join driver (cuboid-level parallelism).
    pub threads: usize,
    /// LODs the progressive refinement visits, ascending. Empty = every
    /// LOD from 0 to the ladder top (§4.4/§6.5 discuss better choices).
    pub lod_list: Vec<usize>,
    /// Cuboid edge length for batched execution; `None` derives one from
    /// the target extent.
    pub cuboid_cell: Option<f64>,
    /// Extension beyond the paper (see §2.2's *conservative* approximation
    /// family): prune candidates with the precomputed 13-DOPs — reject
    /// intersection candidates whose DOPs are disjoint, and tighten
    /// distance lower bounds with DOP gaps. Off by default so the paper's
    /// comparisons stay faithful.
    pub conservative_prefilter: bool,
    /// Cooperative deadline/cancellation token. The refinement loops poll
    /// it between LOD rounds and bail with
    /// [`Error::DeadlineExceeded`](crate::Error::DeadlineExceeded), so an
    /// expiring request stops paying for higher-LOD decode (the service
    /// path's P1/P2 early-out). Defaults to unbounded.
    pub deadline: Deadline,
    /// Stage scheduling for whole-join drivers (see [`ExecMode`]).
    pub exec: ExecMode,
    /// Bound for each inter-stage queue of the pipelined executor, in
    /// items; backpressure engages when a queue fills.
    pub queue_cap: usize,
}

impl QueryConfig {
    pub fn new(paradigm: Paradigm, accel: Accel) -> Self {
        Self {
            paradigm,
            accel,
            threads: 1,
            lod_list: Vec::new(),
            cuboid_cell: None,
            conservative_prefilter: false,
            deadline: Deadline::none(),
            exec: ExecMode::Auto,
            queue_cap: crate::pipeline::DEFAULT_QUEUE_CAP,
        }
    }

    /// Select the whole-join stage scheduler (see [`ExecMode`]).
    pub fn with_exec(mut self, exec: ExecMode) -> Self {
        self.exec = exec;
        self
    }

    /// Bound each pipelined inter-stage queue at `cap` items (minimum 1).
    pub fn with_queue_cap(mut self, cap: usize) -> Self {
        self.queue_cap = cap.max(1);
        self
    }

    pub fn with_conservative_prefilter(mut self) -> Self {
        self.conservative_prefilter = true;
        self
    }

    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    pub fn with_lods(mut self, lods: Vec<usize>) -> Self {
        self.lod_list = lods;
        self
    }

    pub fn with_deadline(mut self, deadline: Deadline) -> Self {
        self.deadline = deadline;
        self
    }
}

/// Result of a join: per target object, the matched source objects.
pub type JoinPairs = Vec<(ObjectId, Vec<ObjectId>)>;

/// Result of a NN join: per target object, its nearest source object.
pub type NnPairs = Vec<(ObjectId, Option<ObjectId>)>;

/// A spatial-join engine over a target dataset `D₁` and source dataset `D₂`.
pub struct Engine<'a> {
    pub target: &'a ObjectStore,
    pub source: &'a ObjectStore,
}

impl<'a> Engine<'a> {
    pub fn new(target: &'a ObjectStore, source: &'a ObjectStore) -> Self {
        Self { target, source }
    }

    /// The LOD ladder a query under `cfg` visits, ascending and ending at
    /// the ladder top.
    fn lods(&self, cfg: &QueryConfig) -> Vec<usize> {
        let top = self
            .target
            .max_lod_overall()
            .max(self.source.max_lod_overall());
        match cfg.paradigm {
            Paradigm::FilterRefine => vec![top],
            Paradigm::FilterProgressiveRefine => {
                let mut lods = if cfg.lod_list.is_empty() {
                    (0..=top).collect::<Vec<_>>()
                } else {
                    cfg.lod_list.clone()
                };
                lods.retain(|&l| l <= top);
                lods.sort_unstable();
                lods.dedup();
                if lods.last() != Some(&top) {
                    lods.push(top);
                }
                lods
            }
        }
    }

    fn computer(&self, cfg: &QueryConfig) -> Computer {
        // The computer's executor parallelism is independent of the join
        // driver's thread count: it models the device.
        Computer::new(
            cfg.accel,
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
        )
    }

    fn join_ctx(&self, cfg: &QueryConfig) -> JoinCtx {
        JoinCtx {
            computer: self.computer(cfg),
            lods: self.lods(cfg),
            deadline: cfg.deadline.clone(),
            fpr: matches!(cfg.paradigm, Paradigm::FilterProgressiveRefine),
        }
    }

    // -----------------------------------------------------------------
    // Intersection join (paper §4.1, Alg. 1)
    // -----------------------------------------------------------------

    /// Source objects whose geometry intersects target object `t`.
    pub fn intersect_one(
        &self,
        t: ObjectId,
        cfg: &QueryConfig,
        stats: &ExecStats,
    ) -> Result<Vec<ObjectId>> {
        self.intersect_one_in(&self.join_ctx(cfg), t, cfg, stats)
    }

    fn intersect_one_in(
        &self,
        ctx: &JoinCtx,
        t: ObjectId,
        cfg: &QueryConfig,
        stats: &ExecStats,
    ) -> Result<Vec<ObjectId>> {
        let _lat = obs::time(obs::query_latency_histogram(QueryOp::Intersect, ctx.fpr));
        // An already-expired request does no work at all, even when the
        // filter alone could answer it — uniform service semantics.
        ctx.deadline.check()?;
        let computer = &ctx.computer;
        let lods = &ctx.lods;

        // Filter: MBB intersection against the global index. With the
        // partition strategies the finer sub-object boxes filter instead.
        let filter_span = obs::span(SpanKind::Filter);
        let t0 = Instant::now();
        let mut candidates = match cfg.accel {
            Accel::Partition | Accel::PartitionGpu => {
                let mut c = self
                    .source
                    .partition_rtree()
                    .query_intersects(self.target.mbb(t));
                c.sort_unstable();
                c.dedup();
                c
            }
            _ => self.source.rtree().query_intersects(self.target.mbb(t)),
        };
        if cfg.conservative_prefilter {
            let kt = &self.target.object(t).kdop;
            candidates.retain(|&c| kt.intersects(&self.source.object(c).kdop));
        }
        stats.add_filter(t0.elapsed());
        drop(filter_span);

        let mut results = Vec::new();
        let t_max = self.target.max_lod(t);
        for &lod in lods {
            if candidates.is_empty() {
                break;
            }
            ctx.deadline.check()?;
            let _round = obs::span_at(SpanKind::RefineRound, obs::trace::NO_OBJECT, lod as u32);
            stats.record_lod_round();
            let geom_t = self.target.get(t, lod, stats)?;
            let sk_t = self.target.skeleton(t);
            let mut remaining = Vec::with_capacity(candidates.len());
            for c in candidates {
                let geom_c = self.source.get(c, lod, stats)?;
                stats.record_pair_evaluated(lod);
                let hit =
                    computer.intersects(&geom_t, &geom_c, sk_t, self.source.skeleton(c), stats);
                if hit {
                    // Early accept (P1: intersection at a lower LOD implies
                    // intersection at every higher LOD).
                    results.push(c);
                    stats.record_pair_pruned(lod);
                } else {
                    remaining.push(c);
                }
            }
            candidates = remaining;
        }

        // Containment fallback at the highest LOD (Alg. 1 steps 8–12):
        // surfaces may be disjoint while one solid contains the other.
        ctx.deadline.check()?;
        let top = lods.last().copied().unwrap_or(0);
        for c in candidates {
            stats.record_pair_pruned(top);
            let c_in_t = self.target.mbb(t).contains_box(self.source.mbb(c));
            let t_in_c = self.source.mbb(c).contains_box(self.target.mbb(t));
            if c_in_t {
                let geom_t = self.target.get(t, t_max, stats)?;
                let geom_c = self.source.get(c, 0, stats)?;
                let v = geom_c.triangles[0].a;
                let t1 = Instant::now();
                let inside = tripro_geom::point_in_mesh(v, &geom_t.triangles);
                stats.add_compute(t1.elapsed());
                if inside {
                    results.push(c);
                    continue;
                }
            }
            if t_in_c {
                let geom_c = self.source.get(c, self.source.max_lod(c), stats)?;
                let geom_t = self.target.get(t, 0, stats)?;
                let v = geom_t.triangles[0].a;
                let t1 = Instant::now();
                let inside = tripro_geom::point_in_mesh(v, &geom_c.triangles);
                stats.add_compute(t1.elapsed());
                if inside {
                    results.push(c);
                }
            }
        }
        results.sort_unstable();
        Ok(results)
    }

    /// Intersection spatial join `D₁ ⋈ D₂` over all target objects.
    pub fn intersection_join(&self, cfg: &QueryConfig) -> Result<(JoinPairs, ExecStats)> {
        let stats = ExecStats::new();
        let ctx = self.join_ctx(cfg);
        let out = self.drive(
            cfg,
            &stats,
            |t| self.intersect_hints(t, cfg),
            |t, stats| self.intersect_one_in(&ctx, t, cfg, stats),
        )?;
        Ok((out, stats))
    }

    // -----------------------------------------------------------------
    // Within join (paper §4.2, Alg. 2)
    // -----------------------------------------------------------------

    /// Source objects whose distance to target `t` is at most `d`.
    pub fn within_one(
        &self,
        t: ObjectId,
        d: f64,
        cfg: &QueryConfig,
        stats: &ExecStats,
    ) -> Result<Vec<ObjectId>> {
        self.within_one_in(&self.join_ctx(cfg), t, d, cfg, stats)
    }

    fn within_one_in(
        &self,
        ctx: &JoinCtx,
        t: ObjectId,
        d: f64,
        cfg: &QueryConfig,
        stats: &ExecStats,
    ) -> Result<Vec<ObjectId>> {
        let _lat = obs::time(obs::query_latency_histogram(QueryOp::Within, ctx.fpr));
        ctx.deadline.check()?;
        let computer = &ctx.computer;
        let lods = &ctx.lods;

        let filter_span = obs::span(SpanKind::Filter);
        let t0 = Instant::now();
        let filtered = self.source.rtree().within(self.target.mbb(t), d);

        // Objects proven within by MBB bounds alone need no geometry.
        let mut results = filtered.definite;
        let mut candidates = filtered.candidates;
        if cfg.conservative_prefilter {
            // §2.2 conservative rejection: a 13-DOP gap exceeding `d`
            // proves the objects are farther than `d` apart.
            let kt = &self.target.object(t).kdop;
            candidates.retain(|&c| kt.min_dist(&self.source.object(c).kdop) <= d);
        }
        // The partition strategies re-examine candidates with the finer
        // sub-object boxes (§5.1): the min-over-groups MAXDIST can prove
        // "within" and the min-over-groups MINDIST can disprove it, both
        // without touching geometry.
        if matches!(cfg.accel, Accel::Partition | Accel::PartitionGpu) {
            let tm = self.target.mbb(t);
            candidates.retain(|&c| {
                let boxes = &self.source.object(c).group_boxes;
                if boxes.is_empty() {
                    return true;
                }
                let min = boxes
                    .iter()
                    .map(|b| b.min_dist(tm))
                    .fold(f64::INFINITY, f64::min);
                if min > d {
                    return false; // certainly too far
                }
                let max = boxes
                    .iter()
                    .map(|b| b.max_dist(tm))
                    .fold(f64::INFINITY, f64::min);
                if max <= d {
                    results.push(c); // certainly within
                    return false;
                }
                true
            });
        }
        stats.add_filter(t0.elapsed());
        drop(filter_span);
        let d2 = d * d;
        let seed = d2 * (1.0 + 1e-9) + f64::MIN_POSITIVE;

        let t_max = self.target.max_lod(t);
        for &lod in lods {
            if candidates.is_empty() {
                break;
            }
            ctx.deadline.check()?;
            let _round = obs::span_at(SpanKind::RefineRound, obs::trace::NO_OBJECT, lod as u32);
            stats.record_lod_round();
            let geom_t = self.target.get(t, lod, stats)?;
            let sk_t = self.target.skeleton(t);
            let mut remaining = Vec::with_capacity(candidates.len());
            for c in candidates {
                let exact = lod >= t_max && lod >= self.source.max_lod(c);
                let geom_c = self.source.get(c, lod, stats)?;
                stats.record_pair_evaluated(lod);
                let dist2 = computer.min_dist2(
                    &geom_t,
                    &geom_c,
                    sk_t,
                    self.source.skeleton(c),
                    seed,
                    stats,
                );
                if dist2 <= d2 {
                    // P2: the LOD distance upper-bounds the true distance.
                    results.push(c);
                    stats.record_pair_pruned(lod);
                } else if exact {
                    // The exact distance exceeds d: reject.
                    stats.record_pair_pruned(lod);
                } else {
                    remaining.push(c);
                }
            }
            candidates = remaining;
        }
        results.sort_unstable();
        Ok(results)
    }

    /// Within spatial join: all source objects within `d` of each target.
    pub fn within_join(&self, d: f64, cfg: &QueryConfig) -> Result<(JoinPairs, ExecStats)> {
        let stats = ExecStats::new();
        let ctx = self.join_ctx(cfg);
        let out = self.drive(
            cfg,
            &stats,
            |t| self.within_hints(t, d),
            |t, stats| self.within_one_in(&ctx, t, d, cfg, stats),
        )?;
        Ok((out, stats))
    }

    // -----------------------------------------------------------------
    // Nearest-neighbour join (paper §4.3, Alg. 3)
    // -----------------------------------------------------------------

    /// The nearest source object to target `t` (`None` for an empty source).
    pub fn nn_one(
        &self,
        t: ObjectId,
        cfg: &QueryConfig,
        stats: &ExecStats,
    ) -> Result<Option<ObjectId>> {
        self.nn_one_in(&self.join_ctx(cfg), t, cfg, stats)
    }

    fn nn_one_in(
        &self,
        ctx: &JoinCtx,
        t: ObjectId,
        cfg: &QueryConfig,
        stats: &ExecStats,
    ) -> Result<Option<ObjectId>> {
        let _lat = obs::time(obs::query_latency_histogram(QueryOp::Nn, ctx.fpr));
        ctx.deadline.check()?;
        let computer = &ctx.computer;
        let lods = &ctx.lods;

        let filter_span = obs::span(SpanKind::Filter);
        let t0 = Instant::now();
        let mut candidates: Vec<(ObjectId, DistRange)> =
            self.source.rtree().nn_candidates(self.target.mbb(t));
        // Partition strategies tighten the initial ranges with the finer
        // sub-object boxes (min over groups is valid for both bounds).
        if matches!(cfg.accel, Accel::Partition | Accel::PartitionGpu) {
            for (c, r) in &mut candidates {
                let boxes = &self.source.object(*c).group_boxes;
                if !boxes.is_empty() {
                    let tm = self.target.mbb(t);
                    r.min = boxes
                        .iter()
                        .map(|b| b.min_dist(tm))
                        .fold(f64::INFINITY, f64::min);
                    r.max = boxes
                        .iter()
                        .map(|b| b.max_dist(tm))
                        .fold(f64::INFINITY, f64::min);
                }
            }
        }
        if cfg.conservative_prefilter {
            let kt = &self.target.object(t).kdop;
            for (c, r) in &mut candidates {
                r.min = r.min.max(kt.min_dist(&self.source.object(*c).kdop));
            }
        }
        stats.add_filter(t0.elapsed());
        drop(filter_span);
        if candidates.is_empty() {
            return Ok(None);
        }

        let mut minmax = candidates
            .iter()
            .map(|(_, r)| r.max)
            .fold(f64::INFINITY, f64::min);
        let t_max = self.target.max_lod(t);

        for &lod in lods {
            if candidates.len() <= 1 {
                break;
            }
            ctx.deadline.check()?;
            let _round = obs::span_at(SpanKind::RefineRound, obs::trace::NO_OBJECT, lod as u32);
            stats.record_lod_round();
            let geom_t = self.target.get(t, lod, stats)?;
            let sk_t = self.target.skeleton(t);
            let mut next = Vec::with_capacity(candidates.len());
            for (c, mut r) in candidates {
                // Alg. 3 step 5: MINMAXDIST keeps decreasing, re-check.
                if r.min > minmax {
                    stats.record_pair_pruned(lod);
                    continue;
                }
                let exact = lod >= t_max && lod >= self.source.max_lod(c);
                let geom_c = self.source.get(c, lod, stats)?;
                stats.record_pair_evaluated(lod);
                let seed = minmax * minmax * (1.0 + 1e-9) + f64::MIN_POSITIVE;
                let dist2 = computer.min_dist2(
                    &geom_t,
                    &geom_c,
                    sk_t,
                    self.source.skeleton(c),
                    seed,
                    stats,
                );
                if dist2 < seed {
                    // Exact LOD distance obtained: tighten MAXDIST (step 9);
                    // at the highest LOD the range collapses (step 11).
                    let dist = dist2.sqrt();
                    r.max = dist;
                    if exact {
                        r.min = dist;
                    }
                    minmax = minmax.min(r.max);
                    next.push((c, r));
                } else if exact {
                    // Cut off above MINMAXDIST at the exact LOD: this
                    // candidate cannot beat the current best (ties break
                    // toward the earlier winner).
                    stats.record_pair_pruned(lod);
                } else {
                    // LOD distance exceeds the bound but the true distance
                    // may still be smaller; keep with MBB-derived range.
                    next.push((c, r));
                }
            }
            // Post-pass prune with the settled MINMAXDIST (steps 14–16).
            candidates = next
                .into_iter()
                .filter(|(_, r)| {
                    let keep = r.min <= minmax;
                    if !keep {
                        stats.record_pair_pruned(lod);
                    }
                    keep
                })
                .collect();
        }

        Ok(candidates
            .into_iter()
            .min_by(|a, b| a.1.max.total_cmp(&b.1.max).then(a.0.cmp(&b.0)))
            .map(|(c, _)| c))
    }

    /// Nearest-neighbour join (ANN query): the nearest source object for
    /// every target object.
    pub fn nn_join(&self, cfg: &QueryConfig) -> Result<(NnPairs, ExecStats)> {
        let stats = ExecStats::new();
        let ctx = self.join_ctx(cfg);
        let out = self.drive(
            cfg,
            &stats,
            |t| self.nn_hints(t),
            |t, stats| self.nn_one_in(&ctx, t, cfg, stats),
        )?;
        Ok((out, stats))
    }

    /// The `k` nearest source objects to target `t`, closest first
    /// (§4.3's kNN extension: the candidate list keeps at least `k`
    /// entries, pruning against the k-th smallest MAXDIST).
    pub fn knn_one(
        &self,
        t: ObjectId,
        k: usize,
        cfg: &QueryConfig,
        stats: &ExecStats,
    ) -> Result<Vec<ObjectId>> {
        self.knn_one_in(&self.join_ctx(cfg), t, k, stats)
    }

    fn knn_one_in(
        &self,
        ctx: &JoinCtx,
        t: ObjectId,
        k: usize,
        stats: &ExecStats,
    ) -> Result<Vec<ObjectId>> {
        if k == 0 {
            return Ok(Vec::new());
        }
        let _lat = obs::time(obs::query_latency_histogram(QueryOp::Knn, ctx.fpr));
        ctx.deadline.check()?;
        let computer = &ctx.computer;
        let lods = &ctx.lods;

        let filter_span = obs::span(SpanKind::Filter);
        let t0 = Instant::now();
        let mut candidates: Vec<(ObjectId, DistRange)> =
            self.source.rtree().knn_candidates(self.target.mbb(t), k);
        stats.add_filter(t0.elapsed());
        drop(filter_span);
        if candidates.is_empty() {
            return Ok(Vec::new());
        }

        let t_max = self.target.max_lod(t);
        // The pruning threshold is the k-th smallest MAXDIST, maintained
        // with a bounded max-heap over the surviving candidates instead of
        // re-sorting the whole list for every evaluated pair (the seed's
        // inner loop was O(n·k log n) per LOD; this is O(n log k)).
        let mut threshold = {
            let mut kth = KthSmallest::new(k);
            for (_, r) in &candidates {
                kth.push(r.max);
            }
            kth.kth()
        };

        for &lod in lods {
            if candidates.len() <= k {
                break;
            }
            ctx.deadline.check()?;
            let _round = obs::span_at(SpanKind::RefineRound, obs::trace::NO_OBJECT, lod as u32);
            stats.record_lod_round();
            let geom_t = self.target.get(t, lod, stats)?;
            let sk_t = self.target.skeleton(t);
            let mut next = Vec::with_capacity(candidates.len());
            let mut kth = KthSmallest::new(k);
            for (c, mut r) in candidates {
                if r.min > threshold {
                    stats.record_pair_pruned(lod);
                    continue;
                }
                let exact = lod >= t_max && lod >= self.source.max_lod(c);
                let geom_c = self.source.get(c, lod, stats)?;
                stats.record_pair_evaluated(lod);
                let seed = threshold * threshold * (1.0 + 1e-9) + f64::MIN_POSITIVE;
                let dist2 = computer.min_dist2(
                    &geom_t,
                    &geom_c,
                    sk_t,
                    self.source.skeleton(c),
                    seed,
                    stats,
                );
                if dist2 < seed {
                    let dist = dist2.sqrt();
                    r.max = dist;
                    if exact {
                        r.min = dist;
                    }
                    kth.push(r.max);
                    next.push((c, r));
                } else if exact {
                    stats.record_pair_pruned(lod);
                } else {
                    kth.push(r.max);
                    next.push((c, r));
                }
                // Until k candidates are settled the threshold cannot
                // tighten below the k-th best seen (kth() is ∞ until then).
                threshold = threshold.min(kth.kth().max(0.0));
            }
            threshold = kth.kth();
            candidates = next
                .into_iter()
                .filter(|(_, r)| {
                    let keep = r.min <= threshold;
                    if !keep {
                        stats.record_pair_pruned(lod);
                    }
                    keep
                })
                .collect();
        }

        // Exact distances for whatever remains (bounded by the filter), then
        // take the k best.
        ctx.deadline.check()?;
        let top = lods.last().copied().unwrap_or(0);
        let geom_t = self.target.get(t, top, stats)?;
        let sk_t = self.target.skeleton(t);
        let mut scored: Vec<(f64, ObjectId)> = Vec::with_capacity(candidates.len());
        for (c, r) in candidates {
            // A collapsed range is an exact distance already in hand; compare
            // bitwise (eps would falsely collapse nearly-settled ranges).
            if tripro_geom::is_exactly(r.min, r.max) {
                scored.push((r.max, c));
            } else {
                let geom_c = self.source.get(c, top, stats)?;
                stats.record_pair_evaluated(top);
                let d2 = computer.min_dist2(
                    &geom_t,
                    &geom_c,
                    sk_t,
                    self.source.skeleton(c),
                    f64::INFINITY,
                    stats,
                );
                scored.push((d2.sqrt(), c));
            }
        }
        scored.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        scored.truncate(k);
        Ok(scored.into_iter().map(|(_, c)| c).collect())
    }

    /// k-nearest-neighbour join: the `k` nearest source objects for every
    /// target object, closest first.
    pub fn knn_join(&self, k: usize, cfg: &QueryConfig) -> Result<(JoinPairs, ExecStats)> {
        let stats = ExecStats::new();
        let ctx = self.join_ctx(cfg);
        let out = self.drive(
            cfg,
            &stats,
            |t| self.nn_hints(t),
            |t, stats| self.knn_one_in(&ctx, t, k, stats),
        )?;
        Ok((out, stats))
    }

    /// Exact distance between target `t` and source `c`, scored exactly
    /// the way `knn_one`'s final pass scores survivors: `min_dist2` at
    /// the ladder top with an infinite seed. A shard coordinator uses
    /// this to merge per-shard kNN winners on exact distances, so the
    /// merged ranking is bit-identical to a single-engine run.
    pub fn pair_distance(
        &self,
        t: ObjectId,
        c: ObjectId,
        cfg: &QueryConfig,
        stats: &ExecStats,
    ) -> Result<f64> {
        let ctx = self.join_ctx(cfg);
        let top = ctx.lods.last().copied().unwrap_or(0);
        let geom_t = self.target.get(t, top, stats)?;
        let geom_c = self.source.get(c, top, stats)?;
        stats.record_pair_evaluated(top);
        let d2 = ctx.computer.min_dist2(
            &geom_t,
            &geom_c,
            self.target.skeleton(t),
            self.source.skeleton(c),
            f64::INFINITY,
            stats,
        );
        Ok(d2.sqrt())
    }

    // -----------------------------------------------------------------
    // Parallel join driver: batch target objects by cuboid (§5.3) and let
    // workers claim cuboids, preserving decode-cache locality. Under
    // `ExecMode::Pipelined` the cuboid batches instead stream through the
    // four-stage pipeline in `crate::pipeline`.
    // -----------------------------------------------------------------

    /// Cap on prefetch hints per target: bounds the decode stage's
    /// speculative work for pathologically wide candidate sets (the eval
    /// stage decodes anything the hint missed, so this only shifts work
    /// between stages, never changes results).
    const HINT_CAP: usize = 64;

    /// Candidate source ids the filter will probe for target `t`, reused
    /// by the pipelined decode stage to warm the cache ahead of
    /// evaluation. Best effort: over- or under-approximation is safe.
    fn intersect_hints(&self, t: ObjectId, cfg: &QueryConfig) -> Vec<ObjectId> {
        let mut c = match cfg.accel {
            Accel::Partition | Accel::PartitionGpu => {
                let mut c = self
                    .source
                    .partition_rtree()
                    .query_intersects(self.target.mbb(t));
                c.sort_unstable();
                c.dedup();
                c
            }
            _ => self.source.rtree().query_intersects(self.target.mbb(t)),
        };
        c.truncate(Self::HINT_CAP);
        c
    }

    /// Prefetch hints for a within-join: the filter's indefinite
    /// candidates (definite hits never touch geometry).
    fn within_hints(&self, t: ObjectId, d: f64) -> Vec<ObjectId> {
        let mut c = self.source.rtree().within(self.target.mbb(t), d).candidates;
        c.truncate(Self::HINT_CAP);
        c
    }

    /// Prefetch hints for the bounds-first join kinds (NN/kNN): none.
    /// Their evaluation resolves most pairs from MBB MINDIST/MAXDIST
    /// separation without ever touching geometry, so speculative lod-0
    /// decode of the candidate ring is a net loss (measured two orders of
    /// magnitude on well-separated stores, where the phased driver decodes
    /// nothing at all). Decode happens lazily inside eval exactly when the
    /// bounds fail to separate.
    fn nn_hints(&self, _t: ObjectId) -> Vec<ObjectId> {
        Vec::new()
    }

    fn drive<R: Send>(
        &self,
        cfg: &QueryConfig,
        stats: &ExecStats,
        hints: impl Fn(ObjectId) -> Vec<ObjectId> + Sync,
        per_object: impl Fn(ObjectId, &ExecStats) -> Result<R> + Sync,
    ) -> Result<Vec<(ObjectId, R)>> {
        let cell = cfg.cuboid_cell.unwrap_or_else(|| {
            let e = self.target.rtree().bounds().extent();
            (e.max_component() / 4.0).max(1e-9)
        });
        let cuboids = self.target.cuboids(cell);
        if cfg.exec.is_pipelined(cfg.threads) {
            return self.drive_pipelined(cfg, &cuboids, stats, &hints, &per_object);
        }
        let next = std::sync::atomic::AtomicUsize::new(0);
        // LOCK-RANK(80): per-drive result accumulator — a leaf below the
        // cache locks (50–70); workers take it briefly after finishing a
        // cuboid, never while holding any other lock.
        let results: std::sync::Mutex<Vec<(ObjectId, Result<R>)>> =
            std::sync::Mutex::new(Vec::with_capacity(self.target.len()));
        let workers = cfg.threads.max(1).min(cuboids.len().max(1));
        // Workers come from the persistent process-wide pool (the caller is
        // one of them); each claims whole cuboids so decode-cache locality
        // is preserved (§5.3).
        crate::pool::global().run_with(workers - 1, |_| loop {
            let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            if i >= cuboids.len() {
                return;
            }
            let mut local = Vec::with_capacity(cuboids[i].len());
            for &t in &cuboids[i] {
                local.push((t, per_object(t, stats)));
            }
            lock(&results).extend(local);
        });
        let gathered = results
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut out = Vec::with_capacity(gathered.len());
        for (t, r) in gathered {
            out.push((t, r?));
        }
        out.sort_by_key(|(t, _)| *t);
        Ok(out)
    }

    /// Streaming drive: cuboid batches flow through the four-stage
    /// pipeline (generate → decode → build → eval) on bounded queues, so
    /// one batch's kernel evaluation overlaps the next batch's decode.
    ///
    /// Evaluation items are *per target object* rather than per cuboid,
    /// so parallelism is no longer capped by the cuboid count — the
    /// wall-clock win on coarse cuboid grids. Results are byte-identical
    /// to the phased driver: the eval stage runs the same `per_object`
    /// closure, and the gather/sort tail is shared.
    fn drive_pipelined<R: Send>(
        &self,
        cfg: &QueryConfig,
        cuboids: &[Vec<ObjectId>],
        stats: &ExecStats,
        hints: &(impl Fn(ObjectId) -> Vec<ObjectId> + Sync),
        per_object: &(impl Fn(ObjectId, &ExecStats) -> Result<R> + Sync),
    ) -> Result<Vec<(ObjectId, R)>> {
        use std::sync::Arc;
        /// Decoded geometry pinned between the decode and eval stages so
        /// cache eviction cannot undo the prefetch: (is_target, id, data).
        type Pins = Vec<(bool, ObjectId, Arc<crate::cache::LodData>)>;

        let lods = self.lods(cfg);
        let lod0 = lods.first().copied().unwrap_or(0);
        // LOCK-RANK(80): per-drive result accumulator — a leaf below the
        // cache locks (50–70); the eval stage takes it briefly per item,
        // never while holding any other lock.
        let results: std::sync::Mutex<Vec<(ObjectId, Result<R>)>> =
            std::sync::Mutex::new(Vec::with_capacity(self.target.len()));

        crate::pipeline::run_pipeline(
            cuboids.len(),
            cfg.threads.max(1),
            cfg.queue_cap.max(1),
            &cfg.deadline,
            stats,
            // Stage 1 — generate: one cuboid becomes one batch of
            // (target, prefetch hints), in cuboid order (§5.3 locality).
            |i| {
                let cuboid = cuboids.get(i)?;
                if cuboid.is_empty() {
                    return None;
                }
                Some(
                    cuboid
                        .iter()
                        .map(|&t| (t, hints(t)))
                        .collect::<Vec<(ObjectId, Vec<ObjectId>)>>(),
                )
            },
            // Stage 2 — batched LOD decode through the sharded cache:
            // warm the first ladder rung for the whole batch so eval's
            // gets are hits. Best effort — a failed or missing prefetch
            // simply resurfaces as a decode inside eval.
            |batch| {
                let mut pins: Pins = Vec::new();
                for (t, cands) in &batch {
                    // No candidates = the filter answers this target
                    // without geometry; decoding it would be pure waste.
                    if cands.is_empty() {
                        continue;
                    }
                    if let Ok(g) = self.target.get(*t, lod0, stats) {
                        pins.push((true, *t, g));
                    }
                    for &c in cands {
                        if let Ok(g) = self.source.get(c, lod0, stats) {
                            pins.push((false, c, g));
                        }
                    }
                }
                (batch, pins)
            },
            // Stage 3 — accelerator build: materialise the lazy structure
            // the configured strategy evaluates with (AABB/OBB tree or
            // skeleton groups). The structures live in the cache-shared
            // `LodData`, so eval reuses them without rebuild.
            |(batch, pins): (Vec<(ObjectId, Vec<ObjectId>)>, Pins)| {
                for (is_target, id, g) in &pins {
                    match cfg.accel {
                        Accel::Aabb => {
                            let _ = g.tree();
                        }
                        Accel::ObbTree => {
                            let _ = g.obb_tree();
                        }
                        Accel::Partition | Accel::PartitionGpu => {
                            let sk = if *is_target {
                                self.target.skeleton(*id)
                            } else {
                                self.source.skeleton(*id)
                            };
                            let _ = g.groups(sk);
                        }
                        _ => {}
                    }
                }
                let pins = Arc::new(pins);
                batch
                    .into_iter()
                    .map(|(t, _)| (t, Arc::clone(&pins)))
                    .collect()
            },
            // Stage 4 — kernel evaluation, one item per target object
            // (GPU-chunk flushing happens inside the computer).
            |(t, _pins): (ObjectId, Arc<Pins>)| {
                let r = per_object(t, stats);
                lock(&results).push((t, r));
            },
        )?;

        let gathered = results
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut out = Vec::with_capacity(gathered.len());
        for (t, r) in gathered {
            out.push((t, r?));
        }
        out.sort_by_key(|(t, _)| *t);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::StoreConfig;
    use tripro_geom::vec3;
    use tripro_mesh::testutil::sphere;
    use tripro_mesh::TriMesh;

    fn store_of(meshes: Vec<TriMesh>) -> ObjectStore {
        ObjectStore::build(
            &meshes,
            &StoreConfig {
                build_threads: 2,
                ..Default::default()
            },
        )
        .unwrap()
    }

    /// Targets: spheres along x at 0, 10, 20. Sources: spheres at 0.5
    /// (overlaps t0), 13 (3 away from t1's surface), 40 (far).
    fn setup() -> (ObjectStore, ObjectStore) {
        let targets = store_of(vec![
            sphere(vec3(0.0, 0.0, 0.0), 2.0, 3),
            sphere(vec3(10.0, 0.0, 0.0), 2.0, 3),
            sphere(vec3(20.0, 0.0, 0.0), 2.0, 3),
        ]);
        let sources = store_of(vec![
            sphere(vec3(0.5, 0.0, 0.0), 2.0, 3),
            sphere(vec3(13.0, 0.0, 0.0), 1.0, 3),
            sphere(vec3(40.0, 0.0, 0.0), 2.0, 3),
        ]);
        (targets, sources)
    }

    fn all_configs() -> Vec<QueryConfig> {
        let mut out = Vec::new();
        for p in [Paradigm::FilterRefine, Paradigm::FilterProgressiveRefine] {
            // Table 1's five strategies plus the OBB-tree extension.
            for a in Accel::ALL.into_iter().chain([Accel::ObbTree]) {
                out.push(QueryConfig::new(p, a));
            }
        }
        out
    }

    #[test]
    fn intersection_join_all_strategies_agree() {
        let (t, s) = setup();
        let engine = Engine::new(&t, &s);
        for cfg in all_configs() {
            let (pairs, _) = engine.intersection_join(&cfg).unwrap();
            assert_eq!(pairs.len(), 3);
            assert_eq!(pairs[0].1, vec![0], "{:?} {:?}", cfg.paradigm, cfg.accel);
            assert!(pairs[1].1.is_empty(), "{:?} {:?}", cfg.paradigm, cfg.accel);
            assert!(pairs[2].1.is_empty());
        }
    }

    #[test]
    fn containment_counts_as_intersection() {
        // Small sphere strictly inside a big one.
        let t = store_of(vec![sphere(vec3(0.0, 0.0, 0.0), 4.0, 3)]);
        let s = store_of(vec![sphere(vec3(0.0, 0.0, 0.0), 1.0, 2)]);
        let engine = Engine::new(&t, &s);
        for cfg in all_configs() {
            let stats = ExecStats::new();
            let hits = engine.intersect_one(0, &cfg, &stats).unwrap();
            assert_eq!(hits, vec![0], "{:?} {:?}", cfg.paradigm, cfg.accel);
        }
    }

    #[test]
    fn within_join_all_strategies_agree() {
        let (t, s) = setup();
        let engine = Engine::new(&t, &s);
        // t1 (at x=10, r=2) to s1 (at x=13, r=1): surface gap = 0.
        // Actually: centres 3 apart, radii sum 3 ⇒ touching; use d = 0.5.
        for cfg in all_configs() {
            let (pairs, _) = engine.within_join(0.5, &cfg).unwrap();
            assert_eq!(pairs[0].1, vec![0], "{:?} {:?}", cfg.paradigm, cfg.accel);
            assert_eq!(pairs[1].1, vec![1], "{:?} {:?}", cfg.paradigm, cfg.accel);
            assert!(pairs[2].1.is_empty(), "{:?} {:?}", cfg.paradigm, cfg.accel);
        }
    }

    #[test]
    fn within_respects_distance_threshold() {
        let (t, s) = setup();
        let engine = Engine::new(&t, &s);
        let cfg = QueryConfig::new(Paradigm::FilterProgressiveRefine, Accel::Brute);
        let stats = ExecStats::new();
        // t2 at x=20 to s1 at x=13 (r=1): gap = 20-2 - 14 = 4.
        assert!(engine.within_one(2, 3.9, &cfg, &stats).unwrap().is_empty());
        assert_eq!(engine.within_one(2, 4.2, &cfg, &stats).unwrap(), vec![1]);
    }

    #[test]
    fn nn_join_all_strategies_agree() {
        let (t, s) = setup();
        let engine = Engine::new(&t, &s);
        for cfg in all_configs() {
            let (pairs, _) = engine.nn_join(&cfg).unwrap();
            assert_eq!(pairs[0].1, Some(0), "{:?} {:?}", cfg.paradigm, cfg.accel);
            assert_eq!(pairs[1].1, Some(1), "{:?} {:?}", cfg.paradigm, cfg.accel);
            assert_eq!(pairs[2].1, Some(1), "{:?} {:?}", cfg.paradigm, cfg.accel);
        }
    }

    #[test]
    fn fpr_decodes_less_than_fr() {
        let (t, s) = setup();
        let engine = Engine::new(&t, &s);
        let fr = QueryConfig::new(Paradigm::FilterRefine, Accel::Brute);
        let fpr = QueryConfig::new(Paradigm::FilterProgressiveRefine, Accel::Brute);
        let (_, st_fr) = engine.within_join(0.5, &fr).unwrap();
        t.cache().clear();
        s.cache().clear();
        let (_, st_fpr) = engine.within_join(0.5, &fpr).unwrap();
        let fr_pairs = st_fr.snapshot().face_pair_tests;
        let fpr_pairs = st_fpr.snapshot().face_pair_tests;
        assert!(
            fpr_pairs < fr_pairs,
            "FPR should test fewer face pairs: {fpr_pairs} vs {fr_pairs}"
        );
    }

    #[test]
    fn parallel_driver_matches_serial() {
        let (t, s) = setup();
        let engine = Engine::new(&t, &s);
        let serial = QueryConfig::new(Paradigm::FilterProgressiveRefine, Accel::Brute);
        let parallel = serial.clone().with_threads(4);
        let (a, _) = engine.nn_join(&serial).unwrap();
        let (b, _) = engine.nn_join(&parallel).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn lod_list_is_respected() {
        let (t, s) = setup();
        let engine = Engine::new(&t, &s);
        let cfg =
            QueryConfig::new(Paradigm::FilterProgressiveRefine, Accel::Brute).with_lods(vec![1, 3]);
        let lods = engine.lods(&cfg);
        let top = t.max_lod_overall().max(s.max_lod_overall());
        assert_eq!(*lods.last().unwrap(), top);
        assert!(lods.contains(&1));
        // FR ignores the list entirely.
        let fr = QueryConfig::new(Paradigm::FilterRefine, Accel::Brute).with_lods(vec![0, 1]);
        assert_eq!(engine.lods(&fr), vec![top]);
    }

    #[test]
    fn conservative_prefilter_preserves_results_and_prunes() {
        let (t, s) = setup();
        let engine = Engine::new(&t, &s);
        for accel in [Accel::Brute, Accel::Partition] {
            let plain = QueryConfig::new(Paradigm::FilterProgressiveRefine, accel);
            let dop = plain.clone().with_conservative_prefilter();

            let (i1, _) = engine.intersection_join(&plain).unwrap();
            let (i2, _) = engine.intersection_join(&dop).unwrap();
            assert_eq!(i1, i2, "{accel:?} intersection");

            let (w1, _) = engine.within_join(0.5, &plain).unwrap();
            let (w2, _) = engine.within_join(0.5, &dop).unwrap();
            assert_eq!(w1, w2, "{accel:?} within");

            let (n1, _) = engine.nn_join(&plain).unwrap();
            let (n2, _) = engine.nn_join(&dop).unwrap();
            assert_eq!(n1, n2, "{accel:?} nn");
        }
        // The DOP bound must never exceed the true distance: compare the
        // kdop gap against the MBB MINDIST for every store pair.
        for a in 0..t.len() as u32 {
            for b in 0..s.len() as u32 {
                let dop_gap = t.object(a).kdop.min_dist(&s.object(b).kdop);
                let mbb_gap = t.mbb(a).min_dist(s.mbb(b));
                assert!(
                    dop_gap >= mbb_gap - 1e-9,
                    "13 directions include the 3 axes, so the DOP bound dominates"
                );
            }
        }
    }

    #[test]
    fn knn_returns_ordered_neighbours() {
        let (t, s) = setup();
        let engine = Engine::new(&t, &s);
        for cfg in all_configs() {
            let stats = ExecStats::new();
            // Target 1 (x=10): nearest is s1 (x=13), then s0 (x=0.5), then s2.
            let knn = engine.knn_one(1, 2, &cfg, &stats).unwrap();
            assert_eq!(knn.len(), 2, "{:?} {:?}", cfg.paradigm, cfg.accel);
            assert_eq!(knn[0], 1, "{:?} {:?}", cfg.paradigm, cfg.accel);
            assert_eq!(knn[1], 0, "{:?} {:?}", cfg.paradigm, cfg.accel);
            // k=1 agrees with nn_one; k larger than the dataset returns all.
            assert_eq!(engine.knn_one(1, 1, &cfg, &stats).unwrap(), vec![1]);
            assert_eq!(engine.knn_one(1, 99, &cfg, &stats).unwrap().len(), 3);
            assert!(engine.knn_one(1, 0, &cfg, &stats).unwrap().is_empty());
        }
    }

    #[test]
    fn kth_smallest_matches_sort_reference() {
        // Deterministic LCG stream, checked against a full sort after
        // every push.
        let mut x = 7u64;
        let mut vals: Vec<f64> = Vec::new();
        let mut kth = KthSmallest::new(4);
        for _ in 0..100 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let v = (x >> 11) as f64 / (1u64 << 53) as f64 * 100.0;
            vals.push(v);
            kth.push(v);
            let mut sorted = vals.clone();
            sorted.sort_by(f64::total_cmp);
            let expect = if sorted.len() < 4 {
                f64::INFINITY
            } else {
                sorted[3]
            };
            assert_eq!(
                kth.kth().total_cmp(&expect),
                std::cmp::Ordering::Equal,
                "after {} pushes",
                vals.len()
            );
        }
    }

    #[test]
    fn knn_heap_threshold_matches_exhaustive_reference() {
        // Enough sources that the bounded heap actually churns, pinned
        // against exact top-LOD distances computed independently.
        let targets = store_of(vec![sphere(vec3(0.0, 0.0, 0.0), 2.0, 3)]);
        let mut srcs = Vec::new();
        for i in 0..10 {
            srcs.push(sphere(
                vec3(3.0 + 2.5 * i as f64, (i % 3) as f64, 0.0),
                1.0,
                2,
            ));
        }
        let sources = store_of(srcs);
        let engine = Engine::new(&targets, &sources);
        let cfg = QueryConfig::new(Paradigm::FilterProgressiveRefine, Accel::Brute);
        let stats = ExecStats::new();
        let computer = engine.computer(&cfg);
        let top = targets.max_lod_overall().max(sources.max_lod_overall());
        let geom_t = targets.get(0, top, &stats).unwrap();
        let mut reference: Vec<(f64, ObjectId)> = (0..sources.len() as u32)
            .map(|c| {
                let geom_c = sources.get(c, top, &stats).unwrap();
                let d2 = computer.min_dist2(&geom_t, &geom_c, &[], &[], f64::INFINITY, &stats);
                (d2.sqrt(), c)
            })
            .collect();
        reference.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        for k in [1usize, 3, 5, 9, 10, 12] {
            let got = engine.knn_one(0, k, &cfg, &stats).unwrap();
            let want: Vec<ObjectId> = reference.iter().take(k).map(|&(_, c)| c).collect();
            assert_eq!(got, want, "k={k}");
        }
    }

    #[test]
    fn knn_join_shapes() {
        let (t, s) = setup();
        let engine = Engine::new(&t, &s);
        let cfg = QueryConfig::new(Paradigm::FilterProgressiveRefine, Accel::Brute);
        let (pairs, _) = engine.knn_join(2, &cfg).unwrap();
        assert_eq!(pairs.len(), 3);
        for (tid, nns) in &pairs {
            assert_eq!(nns.len(), 2, "target {tid}");
            // First entry must equal the NN join's answer.
            let stats = ExecStats::new();
            assert_eq!(Some(nns[0]), engine.nn_one(*tid, &cfg, &stats).unwrap());
        }
    }

    #[test]
    fn expired_deadline_returns_typed_error() {
        let (t, s) = setup();
        let engine = Engine::new(&t, &s);
        let expired = QueryConfig::new(Paradigm::FilterProgressiveRefine, Accel::Brute)
            .with_deadline(Deadline::within(std::time::Duration::ZERO));
        let stats = ExecStats::new();
        assert!(matches!(
            engine.intersect_one(0, &expired, &stats),
            Err(crate::Error::DeadlineExceeded)
        ));
        assert!(matches!(
            engine.within_one(0, 1.0, &expired, &stats),
            Err(crate::Error::DeadlineExceeded)
        ));
        assert!(matches!(
            engine.nn_one(0, &expired, &stats),
            Err(crate::Error::DeadlineExceeded)
        ));
        assert!(matches!(
            engine.knn_one(0, 2, &expired, &stats),
            Err(crate::Error::DeadlineExceeded)
        ));
        // An expired deadline must abort before any full-LOD decode: the
        // only decodes on record happened during the filter-free early
        // bail, i.e. none at all.
        assert_eq!(stats.snapshot().decodes, 0, "no decode after expiry");
        // The whole-join drivers propagate the same error.
        assert!(matches!(
            engine.intersection_join(&expired),
            Err(crate::Error::DeadlineExceeded)
        ));
        // A generous deadline changes nothing.
        let live = QueryConfig::new(Paradigm::FilterProgressiveRefine, Accel::Brute)
            .with_deadline(Deadline::within(std::time::Duration::from_secs(3600)));
        let plain = QueryConfig::new(Paradigm::FilterProgressiveRefine, Accel::Brute);
        let st = ExecStats::new();
        assert_eq!(
            engine.intersect_one(0, &live, &st).unwrap(),
            engine.intersect_one(0, &plain, &st).unwrap()
        );
    }

    #[test]
    fn cancel_flag_aborts_mid_join() {
        let (t, s) = setup();
        let engine = Engine::new(&t, &s);
        let flag = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(true));
        let cfg = QueryConfig::new(Paradigm::FilterProgressiveRefine, Accel::Brute)
            .with_deadline(Deadline::none().with_cancel(flag));
        let stats = ExecStats::new();
        assert!(matches!(
            engine.within_one(0, 1.0, &cfg, &stats),
            Err(crate::Error::DeadlineExceeded)
        ));
    }

    #[test]
    fn empty_source() {
        let (t, _) = setup();
        let s = store_of(vec![]);
        let engine = Engine::new(&t, &s);
        let cfg = QueryConfig::new(Paradigm::FilterProgressiveRefine, Accel::Brute);
        let stats = ExecStats::new();
        assert!(engine.intersect_one(0, &cfg, &stats).unwrap().is_empty());
        assert!(engine.within_one(0, 5.0, &cfg, &stats).unwrap().is_empty());
        assert_eq!(engine.nn_one(0, &cfg, &stats).unwrap(), None);
    }

    #[test]
    fn stats_track_lod_activity() {
        let (t, s) = setup();
        let engine = Engine::new(&t, &s);
        let cfg = QueryConfig::new(Paradigm::FilterProgressiveRefine, Accel::Brute);
        let (_, stats) = engine.nn_join(&cfg).unwrap();
        let snap = stats.snapshot();
        assert!(snap.pairs_evaluated.iter().sum::<u64>() > 0);
        assert!(snap.decode_ns > 0);
        assert!(snap.compute_ns > 0);
    }
}
