//! # tripro
//!
//! The 3DPro system: a spatial query engine for large collections of
//! complex 3D polyhedra, built on progressive (PPVP) compression and the
//! **Filter-Progressive-Refine** paradigm (Teng et al., EDBT 2022).
//!
//! ## The idea
//!
//! 3D spatial joins are dominated by the *refinement* step: decoding
//! full-resolution geometry and evaluating millions of triangle pairs.
//! 3DPro stores every object as a PPVP-compressed LOD ladder in which each
//! level is a guaranteed **subset** of the next. Two properties follow:
//!
//! * objects intersecting at a low LOD intersect at every higher LOD;
//! * inter-object distances only shrink as LOD rises.
//!
//! The query processor exploits them to return results **early** — most
//! candidate pairs are resolved on small, cheap, low-LOD meshes, and only
//! the stubborn remainder pays for full resolution.
//!
//! ## Walkthrough
//!
//! ```no_run
//! use tripro::{Engine, ObjectStore, StoreConfig, QueryConfig, Paradigm, Accel};
//!
//! // Closed, consistently oriented triangle meshes from anywhere
//! // (tripro_mesh::io loads OBJ/OFF; tripro_synth generates test tissue).
//! let targets: Vec<tripro_mesh::TriMesh> = vec![];
//! let sources: Vec<tripro_mesh::TriMesh> = vec![];
//!
//! // Compress into multi-LOD stores with a global R-tree.
//! let t = ObjectStore::build(&targets, &StoreConfig::default()).unwrap();
//! let s = ObjectStore::build(&sources, &StoreConfig::default()).unwrap();
//!
//! // Progressive nearest-neighbour join, AABB-tree accelerated, 8 threads.
//! let engine = Engine::new(&t, &s);
//! let cfg = QueryConfig::new(Paradigm::FilterProgressiveRefine, Accel::Aabb)
//!     .with_threads(8);
//! let (pairs, stats) = engine.nn_join(&cfg).unwrap();
//! # let _ = (pairs, stats);
//! ```
//!
//! ## Module map (mirrors the paper's architecture, Fig 8)
//!
//! | module | role |
//! |---|---|
//! | [`store`] | compressed objects in memory, global + partition R-trees, cuboid batching, persistence |
//! | [`cache`] | LRU decode cache with progressive decoder-state reuse (§5.3) |
//! | [`query`] | the query processor: FR & FPR intersection / within / NN / kNN joins (§4) |
//! | [`compute`] | the geometry computer and its acceleration strategies (§5.1) |
//! | [`gpu`] | the batched data-parallel executor standing in for GPU kernels (§5.1) |
//! | [`pool`] | persistent worker pool shared by the executor, driver and resource manager |
//! | [`pipeline`] | bounded inter-stage queues + streaming stage scheduler for pipelined joins |
//! | [`partition`] | skeleton-based object partitioning (§5.1) |
//! | [`resource`] | shared task queue drained by CPU pool + device (§5.2) |
//! | [`profiler`] | LOD-list selection by pruned-fraction profiling (§4.4, §6.5) |
//! | [`point`] | progressive point-containment queries |
//! | [`deadline`] | cooperative deadline/cancel tokens polled between refinement rounds |
//! | [`fault`] | deterministic fault-injection failpoints for chaos testing |
//! | [`stats`] | filter/decode/compute breakdowns and per-LOD pair counters (§6) |
//! | [`obs`] | span tracing, latency histograms, metrics registry + Prometheus exposition |

pub mod cache;
pub mod compute;
pub mod deadline;
pub mod error;
pub mod fault;
pub mod gpu;
pub mod obs;
pub mod partition;
pub mod pipeline;
pub mod point;
pub mod pool;
pub mod profiler;
pub mod query;
pub mod resource;
pub mod stats;
pub mod store;
pub mod sync;

pub use cache::{DecodeCache, LodData};
pub use compute::{Accel, Computer};
pub use deadline::Deadline;
pub use error::{Error, Result};
pub use fault::{FaultAction, Trigger};
pub use gpu::BatchExecutor;
pub use obs::{CostExemplar, Histogram, MetricsRegistry, SpanSummary, TraceConfig};
pub use pipeline::{run_pipeline, Channel};
pub use point::PointQuery;
pub use pool::WorkerPool;
pub use profiler::{choose_lods, measure_r, LodActivity, LodChoice, QueryKind};
pub use query::{Engine, ExecMode, JoinPairs, NnPairs, Paradigm, QueryConfig};
pub use resource::ResourceManager;
pub use stats::{ExecStats, ServiceSnapshot, ServiceStats, StatsSnapshot};
pub use store::{ObjectId, ObjectStore, StoreConfig, StoredObject};
