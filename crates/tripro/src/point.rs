//! Progressive point-containment queries.
//!
//! Paper §4.1 notes that point-in-polyhedron checks can themselves be
//! accelerated by the Filter-Progressive-Refine paradigm: because every
//! lower LOD is a subset of the full object, *"inside at a lower LOD"*
//! already proves *"inside at the highest LOD"* — only points outside all
//! lower LODs need the full-resolution parity test.

use crate::error::Result;
use crate::obs::{self, QueryOp, SpanKind};
use crate::query::{Paradigm, QueryConfig};
use crate::stats::ExecStats;
use crate::store::{ObjectId, ObjectStore};
use std::time::Instant;
use tripro_geom::{Aabb, Vec3};

/// Point-query interface over one object store.
pub struct PointQuery<'a> {
    pub store: &'a ObjectStore,
}

impl<'a> PointQuery<'a> {
    pub fn new(store: &'a ObjectStore) -> Self {
        Self { store }
    }

    /// Ids of all objects whose solid contains `p`.
    pub fn containing(
        &self,
        p: Vec3,
        cfg: &QueryConfig,
        stats: &ExecStats,
    ) -> Result<Vec<ObjectId>> {
        cfg.deadline.check()?;
        let fpr = matches!(cfg.paradigm, Paradigm::FilterProgressiveRefine);
        let _lat = obs::time(obs::query_latency_histogram(QueryOp::Contains, fpr));
        let t0 = Instant::now();
        let filter_span = obs::span(SpanKind::Filter);
        let probe = Aabb::from_point(p);
        let candidates = self.store.rtree().query_intersects(&probe);
        drop(filter_span);
        stats.add_filter(t0.elapsed());

        let mut out = Vec::new();
        for c in candidates {
            if self.contains(c, p, cfg, stats)? {
                out.push(c);
            }
        }
        out.sort_unstable();
        Ok(out)
    }

    /// Does object `id` contain point `p`?
    pub fn contains(
        &self,
        id: ObjectId,
        p: Vec3,
        cfg: &QueryConfig,
        stats: &ExecStats,
    ) -> Result<bool> {
        if !self.store.mbb(id).contains_point(p) {
            return Ok(false);
        }
        let top = self.store.max_lod(id);
        let lods: Vec<usize> = match cfg.paradigm {
            Paradigm::FilterRefine => vec![top],
            Paradigm::FilterProgressiveRefine => {
                let mut l: Vec<usize> = if cfg.lod_list.is_empty() {
                    (0..=top).collect()
                } else {
                    cfg.lod_list.iter().cloned().filter(|&x| x <= top).collect()
                };
                if l.last() != Some(&top) {
                    l.push(top);
                }
                l
            }
        };
        for &lod in &lods {
            cfg.deadline.check()?;
            let _round = obs::span_at(SpanKind::RefineRound, id, lod as u32);
            stats.record_lod_round();
            let geom = self.store.get(id, lod, stats)?;
            stats.record_pair_evaluated(lod);
            let t1 = Instant::now();
            let inside = tripro_geom::point_in_mesh(p, &geom.triangles);
            stats.add_compute(t1.elapsed());
            if inside {
                // Subset property: inside a lower LOD ⇒ inside the object.
                stats.record_pair_pruned(lod);
                return Ok(true);
            }
            if lod == top {
                // Outside at full resolution: definitive.
                stats.record_pair_pruned(lod);
                return Ok(false);
            }
        }
        Ok(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compute::Accel;
    use crate::store::StoreConfig;
    use tripro_geom::vec3;
    use tripro_mesh::testutil::sphere;

    fn store() -> ObjectStore {
        let meshes = vec![
            sphere(vec3(0.0, 0.0, 0.0), 2.0, 3),
            sphere(vec3(10.0, 0.0, 0.0), 2.0, 3),
        ];
        ObjectStore::build(
            &meshes,
            &StoreConfig {
                build_threads: 1,
                ..Default::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn containing_finds_the_right_object() {
        let s = store();
        let q = PointQuery::new(&s);
        let stats = ExecStats::new();
        for paradigm in [Paradigm::FilterRefine, Paradigm::FilterProgressiveRefine] {
            let cfg = QueryConfig::new(paradigm, Accel::Brute);
            assert_eq!(
                q.containing(vec3(0.0, 0.0, 0.0), &cfg, &stats).unwrap(),
                vec![0]
            );
            assert_eq!(
                q.containing(vec3(10.0, 0.5, 0.0), &cfg, &stats).unwrap(),
                vec![1]
            );
            assert!(q
                .containing(vec3(5.0, 0.0, 0.0), &cfg, &stats)
                .unwrap()
                .is_empty());
            assert!(q
                .containing(vec3(0.0, 0.0, 50.0), &cfg, &stats)
                .unwrap()
                .is_empty());
        }
    }

    #[test]
    fn deep_interior_accepts_at_low_lod() {
        let s = store();
        let q = PointQuery::new(&s);
        let cfg = QueryConfig::new(Paradigm::FilterProgressiveRefine, Accel::Brute);
        let stats = ExecStats::new();
        // Deep inside: some lower LOD already contains it, so FPR resolves
        // before reaching full resolution.
        assert!(q.contains(0, vec3(0.0, 0.0, 0.0), &cfg, &stats).unwrap());
        let snap = stats.snapshot();
        let top = s.max_lod(0);
        let early: u64 = snap.pairs_pruned[..top].iter().sum();
        assert_eq!(early, 1, "centre must resolve below LOD {top}: {snap:?}");
    }

    #[test]
    fn near_surface_point_needs_high_lod() {
        let s = store();
        let q = PointQuery::new(&s);
        let cfg = QueryConfig::new(Paradigm::FilterProgressiveRefine, Accel::Brute);
        let fr = QueryConfig::new(Paradigm::FilterRefine, Accel::Brute);
        let stats = ExecStats::new();
        // A point just inside the sphere surface: low LODs (slimmer) exclude
        // it, so FPR walks up the ladder — and must agree with FR.
        let p = vec3(1.98, 0.0, 0.0);
        assert_eq!(
            q.contains(0, p, &cfg, &stats).unwrap(),
            q.contains(0, p, &fr, &stats).unwrap()
        );
        // Just outside: both must reject.
        let p = vec3(2.01, 0.0, 0.0);
        assert!(!q.contains(0, p, &cfg, &stats).unwrap());
        assert!(!q.contains(0, p, &fr, &stats).unwrap());
    }
}
