//! The crate-wide error type. Introduced so the query/decode hot path can
//! propagate failures instead of panicking (lint rule `no_panic`, see
//! `docs/invariants.md`).

use tripro_coder::DecodeError;
use tripro_mesh::MeshError;

/// Errors surfaced by the store, cache and query engine.
#[derive(Debug)]
pub enum Error {
    /// A stored object failed to decode. Stored payloads are produced by
    /// our own encoder, so this indicates corruption (bad load, truncated
    /// file) rather than a caller mistake.
    Decode { object: u32, source: DecodeError },
    /// A mesh was rejected while building a store.
    Mesh(MeshError),
    /// Persistence I/O failed.
    Io(std::io::Error),
    /// A parallel build worker died before filling its slot.
    BuildIncomplete { index: usize },
    /// A query's [`Deadline`](crate::Deadline) expired (or its cancel flag
    /// was raised) before refinement completed. The partial answer is
    /// discarded rather than returned as if it were exact.
    DeadlineExceeded,
    /// An internal invariant failed: a contained panic inside a worker or
    /// pipeline stage, or a fault injected through a
    /// [`fault`](crate::fault) failpoint. `context` names the containment
    /// site (`"pipeline"`, failpoint site, ...), `message` carries the
    /// panic payload or injected-fault description.
    Internal {
        /// Containment site or failpoint name.
        context: &'static str,
        /// Panic payload / fault description.
        message: String,
    },
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, Error>;

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Decode { object, source } => {
                write!(f, "object {object} failed to decode: {source}")
            }
            Error::Mesh(e) => write!(f, "mesh rejected: {e}"),
            Error::Io(e) => write!(f, "i/o error: {e}"),
            Error::BuildIncomplete { index } => {
                write!(f, "store build incomplete: object {index} was never built")
            }
            Error::DeadlineExceeded => {
                write!(f, "deadline exceeded before refinement completed")
            }
            Error::Internal { context, message } => {
                write!(f, "internal error in {context}: {message}")
            }
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Decode { source, .. } => Some(source),
            Error::Mesh(source) => Some(source),
            Error::Io(e) => Some(e),
            Error::BuildIncomplete { .. } | Error::DeadlineExceeded | Error::Internal { .. } => {
                None
            }
        }
    }
}

impl From<MeshError> for Error {
    fn from(e: MeshError) -> Self {
        Error::Mesh(e)
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = Error::Decode {
            object: 7,
            source: DecodeError,
        };
        assert!(e.to_string().contains("object 7"));
        assert!(std::error::Error::source(&e).is_some());
        let e: Error = MeshError::DegenerateFace.into();
        assert!(matches!(e, Error::Mesh(_)));
        let e: Error = std::io::Error::other("x").into();
        assert!(matches!(e, Error::Io(_)));
        assert!(Error::BuildIncomplete { index: 3 }
            .to_string()
            .contains("3"));
        let e = Error::DeadlineExceeded;
        assert!(e.to_string().contains("deadline"));
        assert!(std::error::Error::source(&e).is_none());
        let e = Error::Internal {
            context: "pipeline",
            message: "stage panicked".into(),
        };
        assert!(e.to_string().contains("pipeline"));
        assert!(e.to_string().contains("stage panicked"));
        assert!(std::error::Error::source(&e).is_none());
    }
}
