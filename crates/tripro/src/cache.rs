//! LRU decode cache (paper §5.3): decoded faces for `(object, LOD)` pairs
//! are kept for reuse, because decompression is compute-intensive and one
//! source object (e.g. a vessel) is typically a candidate for hundreds of
//! target objects.
//!
//! Decoder *states* are also retained so that refining an object from LOD
//! `k` to `k+1` replays only the missing segments — the progressive decode
//! the paper's FPR paradigm depends on.
//!
//! ## Sharding
//!
//! The cache is split into [`SHARD_COUNT`] independently locked shards,
//! each holding its own hash map and an intrusive doubly-linked LRU list
//! (O(1) touch on hit, O(1) unlink on evict). A hit therefore contends
//! only with other accesses that hash to the same shard — the seed's
//! single global mutex serialised *every* lookup of the multi-threaded
//! join driver on the path that is supposed to be nearly free.
//!
//! Recency is a global atomic tick stamped on each touch, and byte usage
//! is tracked per shard (summing to an atomic global counter), so the
//! capacity budget stays a *global* bound: eviction walks the shard tails
//! — each tail is its shard's least-recent entry, so the globally oldest
//! entry is always one of them — and removes the oldest until the budget
//! holds. Eviction only runs on the miss path, which just paid for a
//! decode anyway.

use crate::error::{Error, Result};
use crate::fault;
use crate::obs;
use crate::obs::SpanKind;
use crate::stats::ExecStats;
use crate::sync::{lock, Mutex};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;
use tripro_geom::Triangle;
use tripro_index::{AabbTree, ObbTree};
use tripro_mesh::{CompressedMesh, ProgressiveMesh};

/// Decoded geometry of one object at one LOD, plus lazily built per-LOD
/// acceleration structures.
pub struct LodData {
    /// Dequantised faces.
    pub triangles: Arc<Vec<Triangle>>,
    /// Lazily built AABB-tree over the faces (accel `Aabb`).
    tree: OnceLock<Arc<AabbTree>>,
    /// Lazily built OBB-tree over the faces (accel `ObbTree`).
    obb_tree: OnceLock<Arc<ObbTree>>,
    /// Lazily built partition grouping (accel `Partition`).
    groups: OnceLock<Arc<crate::partition::GroupedFaces>>,
}

impl LodData {
    pub fn new(triangles: Vec<Triangle>) -> Self {
        Self {
            triangles: Arc::new(triangles),
            tree: OnceLock::new(),
            obb_tree: OnceLock::new(),
            groups: OnceLock::new(),
        }
    }

    /// Approximate memory footprint in bytes. The acceleration structures
    /// share the triangle buffer (index-based nodes over the same `Arc`),
    /// so the faces dominate.
    pub fn bytes(&self) -> usize {
        self.triangles.len() * std::mem::size_of::<Triangle>() + 64
    }

    /// The AABB-tree over this LOD's faces, built on first use directly
    /// over the shared triangle buffer (no copy).
    pub fn tree(&self) -> &Arc<AabbTree> {
        self.tree
            .get_or_init(|| Arc::new(AabbTree::build_shared(Arc::clone(&self.triangles))))
    }

    /// The OBB-tree over this LOD's faces, built on first use directly
    /// over the shared triangle buffer (no copy).
    pub fn obb_tree(&self) -> &Arc<ObbTree> {
        self.obb_tree
            .get_or_init(|| Arc::new(ObbTree::build_shared(Arc::clone(&self.triangles))))
    }

    /// Partition grouping against `skeleton`, built on first use. The
    /// skeleton is fixed per object, so the grouping is stable across calls.
    pub fn groups(&self, skeleton: &[tripro_geom::Vec3]) -> &Arc<crate::partition::GroupedFaces> {
        self.groups
            .get_or_init(|| Arc::new(crate::partition::group_faces(&self.triangles, skeleton)))
    }
}

type Key = (u32, u8);

/// Number of independently locked cache shards (power of two).
pub const SHARD_COUNT: usize = 16;

/// Sentinel for "no slot" in the intrusive list.
const NIL: u32 = u32::MAX;

/// One cached entry, a node of its shard's intrusive LRU list.
struct Slot {
    key: Key,
    data: Arc<LodData>,
    bytes: usize,
    /// Global recency stamp (larger = more recent).
    tick: u64,
    prev: u32,
    next: u32,
}

/// One cache shard: hash map + intrusive LRU list over a slot arena.
#[derive(Default)]
struct Shard {
    map: HashMap<Key, u32>,
    slots: Vec<Option<Slot>>,
    free: Vec<u32>,
    /// Most-recently-used slot.
    head: Option<u32>,
    /// Least-recently-used slot.
    tail: Option<u32>,
    used_bytes: usize,
}

impl Shard {
    fn slot(&self, i: u32) -> Option<&Slot> {
        self.slots.get(i as usize).and_then(Option::as_ref)
    }

    fn slot_mut(&mut self, i: u32) -> Option<&mut Slot> {
        self.slots.get_mut(i as usize).and_then(Option::as_mut)
    }

    /// Detach slot `i` from the LRU list (O(1)).
    fn unlink(&mut self, i: u32) {
        let (prev, next) = match self.slot(i) {
            Some(s) => (s.prev, s.next),
            None => return,
        };
        match prev {
            NIL => self.head = (next != NIL).then_some(next),
            p => {
                if let Some(s) = self.slot_mut(p) {
                    s.next = next;
                }
                if self.head == Some(i) {
                    self.head = Some(p);
                }
            }
        }
        match next {
            NIL => self.tail = (prev != NIL).then_some(prev),
            n => {
                if let Some(s) = self.slot_mut(n) {
                    s.prev = prev;
                }
            }
        }
        if let Some(s) = self.slot_mut(i) {
            s.prev = NIL;
            s.next = NIL;
        }
    }

    /// Make slot `i` the most-recent entry (O(1)).
    fn push_front(&mut self, i: u32) {
        let old_head = self.head;
        if let Some(s) = self.slot_mut(i) {
            s.prev = NIL;
            s.next = old_head.unwrap_or(NIL);
        }
        if let Some(h) = old_head {
            if let Some(s) = self.slot_mut(h) {
                s.prev = i;
            }
        }
        self.head = Some(i);
        if self.tail.is_none() {
            self.tail = Some(i);
        }
    }

    /// Hit path: refresh recency and return the data.
    fn touch(&mut self, key: Key, tick: u64) -> Option<Arc<LodData>> {
        let i = *self.map.get(&key)?;
        self.unlink(i);
        self.push_front(i);
        let s = self.slot_mut(i)?;
        s.tick = tick;
        Some(Arc::clone(&s.data))
    }

    /// Insert (or replace) `key`; returns the net byte delta for the
    /// global counter.
    fn insert(&mut self, key: Key, data: Arc<LodData>, tick: u64) -> isize {
        let mut delta = 0isize;
        if let Some(&old) = self.map.get(&key) {
            delta -= self.remove_slot(old) as isize;
        }
        let bytes = data.bytes();
        let slot = Slot {
            key,
            data,
            bytes,
            tick,
            prev: NIL,
            next: NIL,
        };
        let i = match self.free.pop() {
            Some(i) => {
                self.slots[i as usize] = Some(slot);
                i
            }
            None => {
                self.slots.push(Some(slot));
                (self.slots.len() - 1) as u32
            }
        };
        self.map.insert(key, i);
        self.push_front(i);
        self.used_bytes += bytes;
        delta += bytes as isize;
        delta
    }

    /// Remove slot `i` entirely; returns its byte size.
    fn remove_slot(&mut self, i: u32) -> usize {
        self.unlink(i);
        let Some(slot) = self.slots.get_mut(i as usize).and_then(Option::take) else {
            return 0;
        };
        self.map.remove(&slot.key);
        self.free.push(i);
        self.used_bytes -= slot.bytes;
        slot.bytes
    }

    /// Recency stamp of the least-recent entry.
    fn tail_tick(&self) -> Option<u64> {
        self.tail.and_then(|t| self.slot(t)).map(|s| s.tick)
    }

    /// Evict the least-recent entry; returns the bytes freed.
    fn evict_tail(&mut self) -> usize {
        match self.tail {
            Some(t) => self.remove_slot(t),
            None => 0,
        }
    }

    fn clear(&mut self) {
        self.map.clear();
        self.slots.clear();
        self.free.clear();
        self.head = None;
        self.tail = None;
        self.used_bytes = 0;
    }
}

/// Thread-safe sharded LRU cache of decoded LODs with progressive
/// decoder-state reuse. A `capacity_bytes` of 0 disables caching entirely
/// (every request decodes from scratch) — the paper's Table 2 baseline.
pub struct DecodeCache {
    // LOCK-RANK(60): entry shards; after a per-object decode lock (50),
    // never while a decoder-state shard (70) is held.
    shards: Vec<Mutex<Shard>>,
    /// Bytes currently held, summed over all shards.
    used: AtomicUsize,
    /// Global recency clock; `fetch_add` gives every touch a unique stamp.
    clock: AtomicU64,
    /// Retained decoder states for incremental refinement, sharded by id.
    // LOCK-RANK(70): decoder-state shards; the innermost cache lock.
    states: Vec<Mutex<HashMap<u32, ProgressiveMesh>>>,
    /// Per-object decode locks (sharded) so two threads don't decode the
    /// same object twice; mirrors the paper's cuboid-level locks.
    // LOCK-RANK(50): per-object decode locks; held (cross-function, via
    // `get`) around lookup/decode/insert, so ranked below both shard tiers.
    locks: Vec<Mutex<()>>,
    capacity_bytes: usize,
}

/// Cheap deterministic shard hash (Fibonacci multiply on the object id,
/// xor-folded with the LOD) — `DefaultHasher` would dominate the hit path.
fn shard_of(key: Key) -> usize {
    let mixed = (u64::from(key.0))
        .wrapping_add(u64::from(key.1) << 32)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15);
    ((mixed >> 48) as usize) & (SHARD_COUNT - 1)
}

impl DecodeCache {
    pub fn new(capacity_bytes: usize) -> Self {
        Self {
            shards: (0..SHARD_COUNT)
                .map(|_| Mutex::new(Shard::default()))
                .collect(),
            used: AtomicUsize::new(0),
            clock: AtomicU64::new(0),
            states: (0..SHARD_COUNT)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
            locks: (0..64).map(|_| Mutex::new(())).collect(),
            capacity_bytes,
        }
    }

    /// `true` when caching is enabled.
    pub fn enabled(&self) -> bool {
        self.capacity_bytes > 0
    }

    /// Bytes currently held.
    pub fn used_bytes(&self) -> usize {
        self.used.load(Ordering::Relaxed)
    }

    /// Fetch `(id, lod)`, decoding from `compressed` on a miss. Decode time
    /// and hit/miss counters are recorded into `stats`. Fails only when the
    /// stored payload is corrupt (see [`Error::Decode`]).
    pub fn get(
        &self,
        id: u32,
        lod: usize,
        compressed: &CompressedMesh,
        stats: &ExecStats,
    ) -> Result<Arc<LodData>> {
        let key: Key = (id, lod as u8);
        let shard = shard_of(key);
        if self.enabled() {
            if let Some(hit) = self.lookup(key) {
                stats.cache_hits.fetch_add(1, Ordering::Relaxed);
                obs::cache_hit_counter(shard).fetch_add(1, Ordering::Relaxed);
                return Ok(hit);
            }
            // Miss path only: the hit path above stays span-free so the
            // nearly-free case (PR 2's de-contention story) is untouched.
            let _touch = obs::span_at(SpanKind::CacheTouch, id, lod as u32);
            // Serialise decodes of the same object.
            let _guard = lock(&self.locks[id as usize % self.locks.len()]);
            if let Some(hit) = self.lookup(key) {
                stats.cache_hits.fetch_add(1, Ordering::Relaxed);
                obs::cache_hit_counter(shard).fetch_add(1, Ordering::Relaxed);
                return Ok(hit);
            }
            stats.cache_misses.fetch_add(1, Ordering::Relaxed);
            obs::cache_miss_counter(shard).fetch_add(1, Ordering::Relaxed);
            let data = Arc::new(self.decode(id, lod, compressed, stats)?);
            self.insert(key, Arc::clone(&data));
            Ok(data)
        } else {
            stats.cache_misses.fetch_add(1, Ordering::Relaxed);
            obs::cache_miss_counter(shard).fetch_add(1, Ordering::Relaxed);
            Ok(Arc::new(self.decode_fresh(id, lod, compressed, stats)?))
        }
    }

    fn lookup(&self, key: Key) -> Option<Arc<LodData>> {
        let tick = self.clock.fetch_add(1, Ordering::Relaxed);
        lock(&self.shards[shard_of(key)]).touch(key, tick)
    }

    fn insert(&self, key: Key, data: Arc<LodData>) {
        // An injected insert fault degrades the cache (the entry is
        // simply not retained) without affecting query correctness —
        // chaos schedules use this to prove results don't depend on
        // cache residency.
        if fault::failpoint(fault::CACHE_INSERT).is_err() {
            return;
        }
        let tick = self.clock.fetch_add(1, Ordering::Relaxed);
        let delta = lock(&self.shards[shard_of(key)]).insert(key, data, tick);
        if delta >= 0 {
            self.used.fetch_add(delta as usize, Ordering::Relaxed);
        } else {
            self.used.fetch_sub(delta.unsigned_abs(), Ordering::Relaxed);
        }
        self.enforce_capacity();
    }

    /// Evict globally-least-recent entries until the byte budget holds
    /// (keeping at least one entry overall, so a single object larger than
    /// the whole budget still caches). Locks one shard at a time — shard
    /// tails are per-shard LRU minima, so the globally oldest entry is
    /// always one of the tails.
    fn enforce_capacity(&self) {
        // ORDERING: Relaxed is enough for the budget check — `used` is
        // only advisory here; the authoritative per-entry accounting sits
        // behind the shard locks, and an overshoot observed late is
        // corrected on the next pass around this loop.
        while self.used.load(Ordering::Relaxed) > self.capacity_bytes {
            let mut victim: Option<(usize, u64)> = None;
            let mut entries = 0usize;
            for (i, shard) in self.shards.iter().enumerate() {
                let guard = lock(shard);
                entries += guard.map.len();
                if let Some(t) = guard.tail_tick() {
                    if victim.map_or(true, |(_, best)| t < best) {
                        victim = Some((i, t));
                    }
                }
            }
            if entries <= 1 {
                break;
            }
            let Some((vi, _)) = victim else { break };
            let freed = lock(&self.shards[vi]).evict_tail();
            if freed == 0 {
                // The shard emptied under us (concurrent clear); rescan.
                continue;
            }
            obs::cache_evict_counter(vi).fetch_add(1, Ordering::Relaxed);
            self.used.fetch_sub(freed, Ordering::Relaxed);
        }
    }

    /// Internal-consistency audit for the `strict-invariants` test feature.
    /// Per shard: the LRU list must be a well-formed chain covering exactly
    /// the mapped slots with strictly decreasing recency stamps, and the
    /// recomputed byte sum must equal the shard counter. Globally: shard
    /// counters must sum to the atomic total and no stamp may exceed the
    /// clock. Intended for quiescent moments (between operations or after
    /// worker threads join).
    #[cfg(feature = "strict-invariants")]
    pub fn check_consistency(&self) -> std::result::Result<(), String> {
        let mut total = 0usize;
        for (si, shard) in self.shards.iter().enumerate() {
            let guard = lock(shard);
            let mut bytes = 0usize;
            let mut seen = 0usize;
            let mut cursor = guard.head;
            let mut last_tick = u64::MAX;
            let mut prev = NIL;
            while let Some(i) = cursor {
                let Some(slot) = guard.slot(i) else {
                    return Err(format!("shard {si}: list points at empty slot {i}"));
                };
                if guard.map.get(&slot.key) != Some(&i) {
                    return Err(format!("shard {si}: slot {i} not mapped to its key"));
                }
                if slot.prev != prev {
                    return Err(format!("shard {si}: slot {i} has a broken prev link"));
                }
                if slot.tick >= last_tick {
                    return Err(format!(
                        "shard {si}: recency not strictly decreasing at slot {i}"
                    ));
                }
                last_tick = slot.tick;
                bytes += slot.bytes;
                seen += 1;
                if seen > guard.map.len() {
                    return Err(format!("shard {si}: LRU list longer than map (cycle?)"));
                }
                prev = i;
                cursor = (slot.next != NIL).then_some(slot.next);
            }
            if seen != guard.map.len() {
                return Err(format!(
                    "shard {si}: list covers {seen} of {} mapped entries",
                    guard.map.len()
                ));
            }
            if guard.tail != ((prev != NIL).then_some(prev)) {
                return Err(format!("shard {si}: tail does not terminate the list"));
            }
            if bytes != guard.used_bytes {
                return Err(format!(
                    "shard {si}: byte accounting drifted: counter {} vs recomputed {bytes}",
                    guard.used_bytes
                ));
            }
            // ORDERING: Relaxed — ticks were written under this shard's
            // lock, which we hold; the clock only moves forward, so a
            // stale read can only make this check more permissive, never
            // produce a false failure.
            if last_tick != u64::MAX && last_tick > self.clock.load(Ordering::Relaxed) {
                return Err(format!("shard {si}: entry tick exceeds the clock"));
            }
            total += guard.used_bytes;
        }
        let counter = self.used.load(Ordering::Relaxed);
        if total != counter {
            return Err(format!(
                "global byte counter drifted: {counter} vs shard sum {total}"
            ));
        }
        Ok(())
    }

    /// Decode with decoder-state reuse: resume the retained state when it is
    /// at or below the requested LOD, otherwise start from the base.
    fn decode(
        &self,
        id: u32,
        lod: usize,
        compressed: &CompressedMesh,
        stats: &ExecStats,
    ) -> Result<LodData> {
        let _span = obs::span_at(SpanKind::Decode, id, lod as u32);
        fault::failpoint(fault::DECODE_LOD)?;
        let t0 = Instant::now();
        let state_shard = &self.states[id as usize % self.states.len()];
        // Take the state out so the decode itself runs without the map lock.
        let state = lock(state_shard).remove(&id);
        let decode_err = |source| Error::Decode { object: id, source };
        let mut pm = match state {
            Some(pm) if pm.current_lod() <= lod => pm,
            _ => compressed.decoder().map_err(decode_err)?,
        };
        pm.decode_to(lod).map_err(decode_err)?;
        let tris = pm.triangles();
        lock(state_shard).insert(id, pm);
        let took = t0.elapsed();
        stats.add_decode(took);
        stats.decodes.fetch_add(1, Ordering::Relaxed);
        stats.add_decoded_bytes(std::mem::size_of_val(tris.as_slice()) as u64);
        obs::decode_histogram(lod).record_duration(took);
        Ok(LodData::new(tris))
    }

    fn decode_fresh(
        &self,
        id: u32,
        lod: usize,
        compressed: &CompressedMesh,
        stats: &ExecStats,
    ) -> Result<LodData> {
        let _span = obs::span_at(SpanKind::Decode, id, lod as u32);
        fault::failpoint(fault::DECODE_LOD)?;
        let t0 = Instant::now();
        let decode_err = |source| Error::Decode { object: id, source };
        let mut pm = compressed.decoder().map_err(decode_err)?;
        pm.decode_to(lod).map_err(decode_err)?;
        let tris = pm.triangles();
        let took = t0.elapsed();
        stats.add_decode(took);
        stats.decodes.fetch_add(1, Ordering::Relaxed);
        stats.add_decoded_bytes(std::mem::size_of_val(tris.as_slice()) as u64);
        obs::decode_histogram(lod).record_duration(took);
        Ok(LodData::new(tris))
    }

    /// Drop all cached data and decoder states.
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut guard = lock(shard);
            let freed = guard.used_bytes;
            guard.clear();
            self.used.fetch_sub(freed, Ordering::Relaxed);
        }
        for states in &self.states {
            lock(states).clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tripro_geom::vec3;
    use tripro_mesh::{encode, testutil::sphere, EncoderConfig};

    fn compressed_sphere() -> CompressedMesh {
        let tm = sphere(vec3(0.0, 0.0, 0.0), 2.0, 3);
        encode(&tm, &EncoderConfig::default()).unwrap()
    }

    #[test]
    fn hit_after_miss() {
        let cm = compressed_sphere();
        let cache = DecodeCache::new(64 << 20);
        let stats = ExecStats::new();
        let a = cache.get(0, 1, &cm, &stats).unwrap();
        let b = cache.get(0, 1, &cm, &stats).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        let s = stats.snapshot();
        assert_eq!(s.cache_misses, 1);
        assert_eq!(s.cache_hits, 1);
        assert_eq!(s.decodes, 1);
    }

    #[test]
    fn progressive_state_reuse_decodes_incrementally() {
        let cm = compressed_sphere();
        let cache = DecodeCache::new(64 << 20);
        let stats = ExecStats::new();
        let max = cm.max_lod();
        for lod in 0..=max {
            let d = cache.get(7, lod, &cm, &stats).unwrap();
            assert!(!d.triangles.is_empty());
        }
        // Face counts at successive LODs must strictly grow.
        let c0 = cache.get(7, 0, &cm, &stats).unwrap().triangles.len();
        let cm_ = cache.get(7, max, &cm, &stats).unwrap().triangles.len();
        assert!(cm_ > c0);
    }

    #[test]
    fn disabled_cache_always_decodes() {
        let cm = compressed_sphere();
        let cache = DecodeCache::new(0);
        let stats = ExecStats::new();
        let _ = cache.get(0, 1, &cm, &stats).unwrap();
        let _ = cache.get(0, 1, &cm, &stats).unwrap();
        let s = stats.snapshot();
        assert_eq!(s.cache_hits, 0);
        assert_eq!(s.decodes, 2);
        assert_eq!(cache.used_bytes(), 0);
    }

    #[test]
    fn eviction_respects_capacity() {
        let cm = compressed_sphere();
        // Tiny capacity: roughly one decoded LOD.
        let one = {
            let cache = DecodeCache::new(usize::MAX);
            let stats = ExecStats::new();
            cache.get(0, 2, &cm, &stats).unwrap().bytes()
        };
        let cache = DecodeCache::new(one + one / 2);
        let stats = ExecStats::new();
        for id in 0..6 {
            let _ = cache.get(id, 2, &cm, &stats).unwrap();
        }
        assert!(cache.used_bytes() <= one + one / 2);
        // Recently used id=5 should still hit; id=0 should have been evicted.
        let before = stats.snapshot();
        let _ = cache.get(5, 2, &cm, &stats).unwrap();
        let after = stats.snapshot();
        assert_eq!(after.cache_hits, before.cache_hits + 1);
        let _ = cache.get(0, 2, &cm, &stats).unwrap();
        assert_eq!(stats.snapshot().cache_misses, after.cache_misses + 1);
    }

    #[test]
    fn eviction_is_globally_lru_across_shards() {
        let cm = compressed_sphere();
        let one = {
            let cache = DecodeCache::new(usize::MAX);
            let stats = ExecStats::new();
            cache.get(0, 2, &cm, &stats).unwrap().bytes()
        };
        // Room for three entries. Insert four across (almost surely)
        // different shards, touching id=0 in between: id=1 must be the
        // victim even though shard occupancies differ.
        let cache = DecodeCache::new(3 * one + one / 2);
        let stats = ExecStats::new();
        for id in 0..3 {
            let _ = cache.get(id, 2, &cm, &stats).unwrap();
        }
        let _ = cache.get(0, 2, &cm, &stats).unwrap(); // refresh id=0
        let _ = cache.get(3, 2, &cm, &stats).unwrap(); // forces one eviction
        let before = stats.snapshot();
        let _ = cache.get(0, 2, &cm, &stats).unwrap();
        assert_eq!(
            stats.snapshot().cache_hits,
            before.cache_hits + 1,
            "id=0 refreshed"
        );
        let mid = stats.snapshot();
        let _ = cache.get(1, 2, &cm, &stats).unwrap();
        assert_eq!(
            stats.snapshot().cache_misses,
            mid.cache_misses + 1,
            "id=1 evicted"
        );
    }

    /// Churn the cache through misses, hits and evictions, auditing the
    /// byte accounting and list structure after every step.
    #[cfg(feature = "strict-invariants")]
    #[test]
    fn consistency_audit_survives_churn() {
        let cm = compressed_sphere();
        let one = {
            let cache = DecodeCache::new(usize::MAX);
            let stats = ExecStats::new();
            cache.get(0, 2, &cm, &stats).unwrap().bytes()
        };
        let cache = DecodeCache::new(2 * one);
        let stats = ExecStats::new();
        for round in 0..3 {
            for id in 0..8u32 {
                let lod = (id as usize + round) % (cm.max_lod() + 1);
                let _ = cache.get(id, lod, &cm, &stats).unwrap();
                cache.check_consistency().unwrap();
            }
        }
        cache.clear();
        cache.check_consistency().unwrap();
    }

    #[test]
    fn tree_is_memoized_and_zero_copy() {
        let cm = compressed_sphere();
        let cache = DecodeCache::new(64 << 20);
        let stats = ExecStats::new();
        let d = cache.get(0, 0, &cm, &stats).unwrap();
        let t1 = d.tree().clone();
        let t2 = d.tree().clone();
        assert!(Arc::ptr_eq(&t1, &t2));
        assert_eq!(t1.len(), d.triangles.len());
        // The tree references the cached buffer, not a copy.
        assert!(Arc::ptr_eq(t1.shared_triangles(), &d.triangles));
        assert!(Arc::ptr_eq(d.obb_tree().shared_triangles(), &d.triangles));
    }

    #[test]
    fn clear_empties() {
        let cm = compressed_sphere();
        let cache = DecodeCache::new(64 << 20);
        let stats = ExecStats::new();
        let _ = cache.get(0, 0, &cm, &stats).unwrap();
        assert!(cache.used_bytes() > 0);
        cache.clear();
        assert_eq!(cache.used_bytes(), 0);
    }

    #[test]
    fn shard_hash_is_spread_and_stable() {
        let mut hit = [false; SHARD_COUNT];
        for id in 0..256u32 {
            for lod in 0..4u8 {
                let s = shard_of((id, lod));
                assert!(s < SHARD_COUNT);
                assert_eq!(s, shard_of((id, lod)), "deterministic");
                hit[s] = true;
            }
        }
        assert!(hit.iter().all(|&h| h), "all shards reachable");
    }
}
