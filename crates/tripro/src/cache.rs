//! LRU decode cache (paper §5.3): decoded faces for `(object, LOD)` pairs
//! are kept for reuse, because decompression is compute-intensive and one
//! source object (e.g. a vessel) is typically a candidate for hundreds of
//! target objects.
//!
//! Decoder *states* are also retained so that refining an object from LOD
//! `k` to `k+1` replays only the missing segments — the progressive decode
//! the paper's FPR paradigm depends on.

use crate::error::{Error, Result};
use crate::stats::ExecStats;
use crate::sync::{lock, Mutex};
use std::collections::HashMap;
use std::sync::atomic::Ordering;
use std::sync::{Arc, OnceLock};
use std::time::Instant;
use tripro_geom::Triangle;
use tripro_index::{AabbTree, ObbTree};
use tripro_mesh::{CompressedMesh, ProgressiveMesh};

/// Decoded geometry of one object at one LOD, plus lazily built per-LOD
/// acceleration structures.
pub struct LodData {
    /// Dequantised faces.
    pub triangles: Arc<Vec<Triangle>>,
    /// Lazily built AABB-tree over the faces (accel `Aabb`).
    tree: OnceLock<Arc<AabbTree>>,
    /// Lazily built OBB-tree over the faces (accel `ObbTree`).
    obb_tree: OnceLock<Arc<ObbTree>>,
    /// Lazily built partition grouping (accel `Partition`).
    groups: OnceLock<Arc<crate::partition::GroupedFaces>>,
}

impl LodData {
    pub fn new(triangles: Vec<Triangle>) -> Self {
        Self {
            triangles: Arc::new(triangles),
            tree: OnceLock::new(),
            obb_tree: OnceLock::new(),
            groups: OnceLock::new(),
        }
    }

    /// Approximate memory footprint in bytes (triangles dominate).
    pub fn bytes(&self) -> usize {
        self.triangles.len() * std::mem::size_of::<Triangle>() + 64
    }

    /// The AABB-tree over this LOD's faces, built on first use.
    pub fn tree(&self) -> &Arc<AabbTree> {
        self.tree
            .get_or_init(|| Arc::new(AabbTree::build(self.triangles.as_ref().clone())))
    }

    /// The OBB-tree over this LOD's faces, built on first use.
    pub fn obb_tree(&self) -> &Arc<ObbTree> {
        self.obb_tree
            .get_or_init(|| Arc::new(ObbTree::build(self.triangles.as_ref().clone())))
    }

    /// Partition grouping against `skeleton`, built on first use. The
    /// skeleton is fixed per object, so the grouping is stable across calls.
    pub fn groups(&self, skeleton: &[tripro_geom::Vec3]) -> &Arc<crate::partition::GroupedFaces> {
        self.groups
            .get_or_init(|| Arc::new(crate::partition::group_faces(&self.triangles, skeleton)))
    }
}

type Key = (u32, u8);

struct CacheInner {
    map: HashMap<Key, (Arc<LodData>, u64)>,
    used_bytes: usize,
    tick: u64,
}

/// Thread-safe LRU cache of decoded LODs with progressive decoder-state
/// reuse. A `capacity_bytes` of 0 disables caching entirely (every request
/// decodes from scratch) — the paper's Table 2 baseline.
pub struct DecodeCache {
    inner: Mutex<CacheInner>,
    /// Retained decoder states for incremental refinement.
    states: Mutex<HashMap<u32, ProgressiveMesh>>,
    /// Per-object decode locks (sharded) so two threads don't decode the
    /// same object twice; mirrors the paper's cuboid-level locks.
    locks: Vec<Mutex<()>>,
    capacity_bytes: usize,
}

impl DecodeCache {
    pub fn new(capacity_bytes: usize) -> Self {
        Self {
            inner: Mutex::new(CacheInner {
                map: HashMap::new(),
                used_bytes: 0,
                tick: 0,
            }),
            states: Mutex::new(HashMap::new()),
            locks: (0..64).map(|_| Mutex::new(())).collect(),
            capacity_bytes,
        }
    }

    /// `true` when caching is enabled.
    pub fn enabled(&self) -> bool {
        self.capacity_bytes > 0
    }

    /// Bytes currently held.
    pub fn used_bytes(&self) -> usize {
        lock(&self.inner).used_bytes
    }

    /// Fetch `(id, lod)`, decoding from `compressed` on a miss. Decode time
    /// and hit/miss counters are recorded into `stats`. Fails only when the
    /// stored payload is corrupt (see [`Error::Decode`]).
    pub fn get(
        &self,
        id: u32,
        lod: usize,
        compressed: &CompressedMesh,
        stats: &ExecStats,
    ) -> Result<Arc<LodData>> {
        let key: Key = (id, lod as u8);
        if self.enabled() {
            if let Some(hit) = self.lookup(key) {
                stats.cache_hits.fetch_add(1, Ordering::Relaxed);
                return Ok(hit);
            }
            // Serialise decodes of the same object.
            let _guard = lock(&self.locks[id as usize % self.locks.len()]);
            if let Some(hit) = self.lookup(key) {
                stats.cache_hits.fetch_add(1, Ordering::Relaxed);
                return Ok(hit);
            }
            stats.cache_misses.fetch_add(1, Ordering::Relaxed);
            let data = Arc::new(self.decode(id, lod, compressed, stats)?);
            self.insert(key, data.clone());
            Ok(data)
        } else {
            stats.cache_misses.fetch_add(1, Ordering::Relaxed);
            Ok(Arc::new(self.decode_fresh(id, lod, compressed, stats)?))
        }
    }

    fn lookup(&self, key: Key) -> Option<Arc<LodData>> {
        let mut inner = lock(&self.inner);
        inner.tick += 1;
        let tick = inner.tick;
        if let Some((data, last)) = inner.map.get_mut(&key) {
            *last = tick;
            return Some(data.clone());
        }
        None
    }

    fn insert(&self, key: Key, data: Arc<LodData>) {
        let mut inner = lock(&self.inner);
        inner.tick += 1;
        let tick = inner.tick;
        inner.used_bytes += data.bytes();
        inner.map.insert(key, (data, tick));
        // Evict least-recently-used entries until under capacity.
        while inner.used_bytes > self.capacity_bytes && inner.map.len() > 1 {
            let Some(victim) = inner
                .map
                .iter()
                .min_by_key(|(_, (_, t))| *t)
                .map(|(k, _)| *k)
            else {
                break;
            };
            if let Some((data, _)) = inner.map.remove(&victim) {
                inner.used_bytes -= data.bytes();
            }
        }
    }

    /// Internal-consistency audit for the `strict-invariants` test feature:
    /// recomputed byte usage must equal the running counter, and LRU ticks
    /// must be unique (two entries sharing a tick would make eviction order
    /// ill-defined).
    #[cfg(feature = "strict-invariants")]
    pub fn check_consistency(&self) -> std::result::Result<(), String> {
        let inner = lock(&self.inner);
        let recomputed: usize = inner.map.values().map(|(d, _)| d.bytes()).sum();
        if recomputed != inner.used_bytes {
            return Err(format!(
                "cache byte accounting drifted: counter {} vs recomputed {}",
                inner.used_bytes, recomputed
            ));
        }
        let mut ticks: Vec<u64> = inner.map.values().map(|(_, t)| *t).collect();
        ticks.sort_unstable();
        if ticks.windows(2).any(|w| w[0] == w[1]) {
            return Err("duplicate LRU ticks".to_string());
        }
        if let Some(&max_tick) = ticks.last() {
            if max_tick > inner.tick {
                return Err(format!(
                    "entry tick {} exceeds clock {}",
                    max_tick, inner.tick
                ));
            }
        }
        Ok(())
    }

    /// Decode with decoder-state reuse: resume the retained state when it is
    /// at or below the requested LOD, otherwise start from the base.
    fn decode(
        &self,
        id: u32,
        lod: usize,
        compressed: &CompressedMesh,
        stats: &ExecStats,
    ) -> Result<LodData> {
        let t0 = Instant::now();
        // Take the state out so the decode itself runs without the map lock.
        let state = {
            let mut states = lock(&self.states);
            states.remove(&id)
        };
        let decode_err = |source| Error::Decode { object: id, source };
        let mut pm = match state {
            Some(pm) if pm.current_lod() <= lod => pm,
            _ => compressed.decoder().map_err(decode_err)?,
        };
        pm.decode_to(lod).map_err(decode_err)?;
        let tris = pm.triangles();
        {
            let mut states = lock(&self.states);
            states.insert(id, pm);
        }
        stats.add_decode(t0.elapsed());
        stats.decodes.fetch_add(1, Ordering::Relaxed);
        Ok(LodData::new(tris))
    }

    fn decode_fresh(
        &self,
        id: u32,
        lod: usize,
        compressed: &CompressedMesh,
        stats: &ExecStats,
    ) -> Result<LodData> {
        let t0 = Instant::now();
        let decode_err = |source| Error::Decode { object: id, source };
        let mut pm = compressed.decoder().map_err(decode_err)?;
        pm.decode_to(lod).map_err(decode_err)?;
        let tris = pm.triangles();
        stats.add_decode(t0.elapsed());
        stats.decodes.fetch_add(1, Ordering::Relaxed);
        Ok(LodData::new(tris))
    }

    /// Drop all cached data and decoder states.
    pub fn clear(&self) {
        let mut inner = lock(&self.inner);
        inner.map.clear();
        inner.used_bytes = 0;
        lock(&self.states).clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tripro_geom::vec3;
    use tripro_mesh::{encode, testutil::sphere, EncoderConfig};

    fn compressed_sphere() -> CompressedMesh {
        let tm = sphere(vec3(0.0, 0.0, 0.0), 2.0, 3);
        encode(&tm, &EncoderConfig::default()).unwrap()
    }

    #[test]
    fn hit_after_miss() {
        let cm = compressed_sphere();
        let cache = DecodeCache::new(64 << 20);
        let stats = ExecStats::new();
        let a = cache.get(0, 1, &cm, &stats).unwrap();
        let b = cache.get(0, 1, &cm, &stats).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        let s = stats.snapshot();
        assert_eq!(s.cache_misses, 1);
        assert_eq!(s.cache_hits, 1);
        assert_eq!(s.decodes, 1);
    }

    #[test]
    fn progressive_state_reuse_decodes_incrementally() {
        let cm = compressed_sphere();
        let cache = DecodeCache::new(64 << 20);
        let stats = ExecStats::new();
        let max = cm.max_lod();
        for lod in 0..=max {
            let d = cache.get(7, lod, &cm, &stats).unwrap();
            assert!(!d.triangles.is_empty());
        }
        // Face counts at successive LODs must strictly grow.
        let c0 = cache.get(7, 0, &cm, &stats).unwrap().triangles.len();
        let cm_ = cache.get(7, max, &cm, &stats).unwrap().triangles.len();
        assert!(cm_ > c0);
    }

    #[test]
    fn disabled_cache_always_decodes() {
        let cm = compressed_sphere();
        let cache = DecodeCache::new(0);
        let stats = ExecStats::new();
        let _ = cache.get(0, 1, &cm, &stats).unwrap();
        let _ = cache.get(0, 1, &cm, &stats).unwrap();
        let s = stats.snapshot();
        assert_eq!(s.cache_hits, 0);
        assert_eq!(s.decodes, 2);
        assert_eq!(cache.used_bytes(), 0);
    }

    #[test]
    fn eviction_respects_capacity() {
        let cm = compressed_sphere();
        // Tiny capacity: roughly one decoded LOD.
        let one = {
            let cache = DecodeCache::new(usize::MAX);
            let stats = ExecStats::new();
            cache.get(0, 2, &cm, &stats).unwrap().bytes()
        };
        let cache = DecodeCache::new(one + one / 2);
        let stats = ExecStats::new();
        for id in 0..6 {
            let _ = cache.get(id, 2, &cm, &stats).unwrap();
        }
        assert!(cache.used_bytes() <= one + one / 2);
        // Recently used id=5 should still hit; id=0 should have been evicted.
        let before = stats.snapshot();
        let _ = cache.get(5, 2, &cm, &stats).unwrap();
        let after = stats.snapshot();
        assert_eq!(after.cache_hits, before.cache_hits + 1);
        let _ = cache.get(0, 2, &cm, &stats).unwrap();
        assert_eq!(stats.snapshot().cache_misses, after.cache_misses + 1);
    }

    /// Churn the cache through misses, hits and evictions, auditing the
    /// byte accounting and LRU tick uniqueness after every step.
    #[cfg(feature = "strict-invariants")]
    #[test]
    fn consistency_audit_survives_churn() {
        let cm = compressed_sphere();
        let one = {
            let cache = DecodeCache::new(usize::MAX);
            let stats = ExecStats::new();
            cache.get(0, 2, &cm, &stats).unwrap().bytes()
        };
        let cache = DecodeCache::new(2 * one);
        let stats = ExecStats::new();
        for round in 0..3 {
            for id in 0..8u32 {
                let lod = (id as usize + round) % (cm.max_lod() + 1);
                let _ = cache.get(id, lod, &cm, &stats).unwrap();
                cache.check_consistency().unwrap();
            }
        }
        cache.clear();
        cache.check_consistency().unwrap();
    }

    #[test]
    fn tree_is_memoized() {
        let cm = compressed_sphere();
        let cache = DecodeCache::new(64 << 20);
        let stats = ExecStats::new();
        let d = cache.get(0, 0, &cm, &stats).unwrap();
        let t1 = d.tree().clone();
        let t2 = d.tree().clone();
        assert!(Arc::ptr_eq(&t1, &t2));
        assert_eq!(t1.len(), d.triangles.len());
    }

    #[test]
    fn clear_empties() {
        let cm = compressed_sphere();
        let cache = DecodeCache::new(64 << 20);
        let stats = ExecStats::new();
        let _ = cache.get(0, 0, &cm, &stats).unwrap();
        assert!(cache.used_bytes() > 0);
        cache.clear();
        assert_eq!(cache.used_bytes(), 0);
    }
}
