//! LOD-choice profiling (paper §4.4 and §6.5): run a sampled join visiting
//! every LOD, measure the fraction of object pairs each LOD prunes, and keep
//! only the LODs whose pruned fraction beats `1/r²` — the break-even point
//! where the work a refinement level saves at higher LODs exceeds the work
//! it costs (with `r` the face-count growth ratio between adjacent LODs;
//! the paper measures r = 2 for two decimation rounds per level).

use crate::compute::Accel;
use crate::error::Result;
use crate::query::{Engine, Paradigm, QueryConfig};
use crate::stats::ExecStats;
use crate::store::ObjectId;

/// Which join to profile.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum QueryKind {
    Intersection,
    Within(f64),
    NearestNeighbour,
}

impl QueryKind {
    pub fn label(&self) -> &'static str {
        match self {
            QueryKind::Intersection => "intersection",
            QueryKind::Within(_) => "within",
            QueryKind::NearestNeighbour => "nearest-neighbour",
        }
    }
}

/// Per-LOD refinement activity measured by a profiling run (Fig 12 rows).
#[derive(Debug, Clone, PartialEq)]
pub struct LodActivity {
    pub lod: usize,
    pub evaluated: u64,
    pub pruned: u64,
    pub pruned_fraction: f64,
}

/// Result of a profiling run.
#[derive(Debug, Clone, PartialEq)]
pub struct LodChoice {
    /// Per-LOD evaluated/pruned counts (Fig 12).
    pub activity: Vec<LodActivity>,
    /// Face-count growth ratio between adjacent LODs, measured on a sample.
    pub r: f64,
    /// The break-even pruned fraction `1/r²` (25% for r = 2, §6.5).
    pub threshold: f64,
    /// LODs worth refining at (always ends with the ladder top so results
    /// stay exact, §4.4).
    pub chosen: Vec<usize>,
}

/// Profile `kind` on up to `sample` target objects and derive the LOD list.
pub fn choose_lods(
    engine: &Engine<'_>,
    kind: QueryKind,
    sample: usize,
    accel: Accel,
) -> Result<LodChoice> {
    let cfg = QueryConfig::new(Paradigm::FilterProgressiveRefine, accel);
    let stats = ExecStats::new();
    let n = engine.target.len().min(sample) as ObjectId;
    for t in 0..n {
        match kind {
            QueryKind::Intersection => {
                let _ = engine.intersect_one(t, &cfg, &stats)?;
            }
            QueryKind::Within(d) => {
                let _ = engine.within_one(t, d, &cfg, &stats)?;
            }
            QueryKind::NearestNeighbour => {
                let _ = engine.nn_one(t, &cfg, &stats)?;
            }
        }
    }
    let snap = stats.snapshot();
    let top = engine
        .target
        .max_lod_overall()
        .max(engine.source.max_lod_overall());

    let activity: Vec<LodActivity> = (0..=top)
        .map(|lod| {
            let evaluated = *snap.pairs_evaluated.get(lod).unwrap_or(&0);
            let pruned = *snap.pairs_pruned.get(lod).unwrap_or(&0);
            LodActivity {
                lod,
                evaluated,
                pruned,
                pruned_fraction: if evaluated > 0 {
                    pruned as f64 / evaluated as f64
                } else {
                    0.0
                },
            }
        })
        .collect();

    let r = measure_r(engine, sample)?;
    let threshold = 1.0 / (r * r);
    let mut chosen: Vec<usize> = activity
        .iter()
        .filter(|a| a.evaluated > 0 && a.pruned_fraction > threshold)
        .map(|a| a.lod)
        .collect();
    if chosen.last() != Some(&top) {
        chosen.push(top);
    }
    Ok(LodChoice {
        activity,
        r,
        threshold,
        chosen,
    })
}

/// Measure the average face-count growth ratio between adjacent LODs over a
/// sample of source objects (the paper's Fig 11 measures ≈2 per level).
pub fn measure_r(engine: &Engine<'_>, sample: usize) -> Result<f64> {
    let stats = ExecStats::new();
    let n = engine.source.len().min(sample.max(1)) as ObjectId;
    let mut ratios = Vec::new();
    for id in 0..n {
        let top = engine.source.max_lod(id);
        let mut prev = engine.source.get(id, 0, &stats)?.triangles.len();
        for lod in 1..=top {
            let cur = engine.source.get(id, lod, &stats)?.triangles.len();
            if prev > 0 {
                ratios.push(cur as f64 / prev as f64);
            }
            prev = cur;
        }
    }
    Ok(if ratios.is_empty() {
        2.0
    } else {
        ratios.iter().sum::<f64>() / ratios.len() as f64
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{ObjectStore, StoreConfig};
    use tripro_geom::vec3;
    use tripro_mesh::testutil::sphere;

    fn stores() -> (ObjectStore, ObjectStore) {
        let cfg = StoreConfig {
            build_threads: 2,
            ..Default::default()
        };
        let targets: Vec<_> = (0..6)
            .map(|i| sphere(vec3(i as f64 * 8.0, 0.0, 0.0), 2.0, 3))
            .collect();
        let sources: Vec<_> = (0..6)
            .map(|i| sphere(vec3(i as f64 * 8.0 + 3.0, 4.0, 0.0), 1.5, 3))
            .collect();
        (
            ObjectStore::build(&targets, &cfg).unwrap(),
            ObjectStore::build(&sources, &cfg).unwrap(),
        )
    }

    #[test]
    fn r_is_about_two() {
        let (t, s) = stores();
        let engine = Engine::new(&t, &s);
        let r = measure_r(&engine, 3).unwrap();
        assert!(r > 1.3 && r < 3.5, "r = {r}");
    }

    #[test]
    fn choice_ends_at_top_and_reports_activity() {
        let (t, s) = stores();
        let engine = Engine::new(&t, &s);
        let choice = choose_lods(&engine, QueryKind::NearestNeighbour, 6, Accel::Brute).unwrap();
        let top = t.max_lod_overall().max(s.max_lod_overall());
        assert_eq!(*choice.chosen.last().unwrap(), top);
        assert!(choice.threshold > 0.0 && choice.threshold < 1.0);
        assert_eq!(choice.activity.len(), top + 1);
        assert!(choice.activity.iter().any(|a| a.evaluated > 0));
    }

    #[test]
    fn within_profile_prunes_early() {
        let (t, s) = stores();
        let engine = Engine::new(&t, &s);
        // Generous distance: everything within → early accepts at low LODs.
        let choice = choose_lods(&engine, QueryKind::Within(10.0), 6, Accel::Brute).unwrap();
        let low: u64 = choice.activity[0].pruned;
        assert!(
            low > 0,
            "low LODs should prune within-pairs: {:?}",
            choice.activity
        );
    }

    #[test]
    fn chosen_list_usable_by_engine() {
        let (t, s) = stores();
        let engine = Engine::new(&t, &s);
        let choice = choose_lods(&engine, QueryKind::NearestNeighbour, 6, Accel::Brute).unwrap();
        let cfg = QueryConfig::new(Paradigm::FilterProgressiveRefine, Accel::Brute)
            .with_lods(choice.chosen.clone());
        let (with_choice, _) = engine.nn_join(&cfg).unwrap();
        let all = QueryConfig::new(Paradigm::FilterProgressiveRefine, Accel::Brute);
        let (with_all, _) = engine.nn_join(&all).unwrap();
        assert_eq!(with_choice, with_all, "LOD choice must not change results");
    }
}
