//! LOD-choice profiling (paper §4.4 and §6.5): run a sampled join visiting
//! every LOD, measure the fraction of object pairs each LOD prunes, and keep
//! only the LODs whose pruned fraction beats `1/r²` — the break-even point
//! where the work a refinement level saves at higher LODs exceeds the work
//! it costs (with `r` the face-count growth ratio between adjacent LODs;
//! the paper measures r = 2 for two decimation rounds per level).

use crate::compute::Accel;
use crate::error::Result;
use crate::query::{Engine, Paradigm, QueryConfig};
use crate::stats::ExecStats;
use crate::store::ObjectId;

/// Which join to profile.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum QueryKind {
    Intersection,
    Within(f64),
    NearestNeighbour,
}

impl QueryKind {
    pub fn label(&self) -> &'static str {
        match self {
            QueryKind::Intersection => "intersection",
            QueryKind::Within(_) => "within",
            QueryKind::NearestNeighbour => "nearest-neighbour",
        }
    }
}

/// Per-LOD refinement activity measured by a profiling run (Fig 12 rows).
#[derive(Debug, Clone, PartialEq)]
pub struct LodActivity {
    pub lod: usize,
    pub evaluated: u64,
    pub pruned: u64,
    pub pruned_fraction: f64,
}

/// Result of a profiling run.
#[derive(Debug, Clone, PartialEq)]
pub struct LodChoice {
    /// Per-LOD evaluated/pruned counts (Fig 12).
    pub activity: Vec<LodActivity>,
    /// Face-count growth ratio between adjacent LODs, measured on a sample.
    pub r: f64,
    /// The break-even pruned fraction `1/r²` (25% for r = 2, §6.5).
    pub threshold: f64,
    /// LODs worth refining at (always ends with the ladder top so results
    /// stay exact, §4.4).
    pub chosen: Vec<usize>,
}

/// Profile `kind` on up to `sample` target objects and derive the LOD list.
pub fn choose_lods(
    engine: &Engine<'_>,
    kind: QueryKind,
    sample: usize,
    accel: Accel,
) -> Result<LodChoice> {
    let cfg = QueryConfig::new(Paradigm::FilterProgressiveRefine, accel);
    let stats = ExecStats::new();
    let n = engine.target.len().min(sample) as ObjectId;
    for t in 0..n {
        match kind {
            QueryKind::Intersection => {
                let _ = engine.intersect_one(t, &cfg, &stats)?;
            }
            QueryKind::Within(d) => {
                let _ = engine.within_one(t, d, &cfg, &stats)?;
            }
            QueryKind::NearestNeighbour => {
                let _ = engine.nn_one(t, &cfg, &stats)?;
            }
        }
    }
    let snap = stats.snapshot();
    let top = engine
        .target
        .max_lod_overall()
        .max(engine.source.max_lod_overall());

    let activity: Vec<LodActivity> = (0..=top)
        .map(|lod| {
            let evaluated = *snap.pairs_evaluated.get(lod).unwrap_or(&0);
            let pruned = *snap.pairs_pruned.get(lod).unwrap_or(&0);
            LodActivity {
                lod,
                evaluated,
                pruned,
                pruned_fraction: if evaluated > 0 {
                    pruned as f64 / evaluated as f64
                } else {
                    0.0
                },
            }
        })
        .collect();

    let r = measure_r(engine, sample)?;
    let threshold = 1.0 / (r * r);
    let chosen = select_lods(&activity, threshold, top);
    Ok(LodChoice {
        activity,
        r,
        threshold,
        chosen,
    })
}

/// Apply the `1/r²` break-even rule (§4.4) to measured per-LOD activity:
/// keep every LOD whose pruned fraction strictly beats `threshold` (LODs
/// that saw no evaluations carry no evidence and are skipped), and always
/// end with `top` so the refinement ladder stays exact.
///
/// Pure function over the measured activity — separated from
/// [`choose_lods`] so the selection rule is testable without running a
/// profiling join.
#[must_use]
pub fn select_lods(activity: &[LodActivity], threshold: f64, top: usize) -> Vec<usize> {
    let mut chosen: Vec<usize> = activity
        .iter()
        .filter(|a| a.evaluated > 0 && a.pruned_fraction > threshold)
        .map(|a| a.lod)
        .collect();
    if chosen.last() != Some(&top) {
        chosen.push(top);
    }
    chosen
}

/// Measure the average face-count growth ratio between adjacent LODs over a
/// sample of source objects (the paper's Fig 11 measures ≈2 per level).
pub fn measure_r(engine: &Engine<'_>, sample: usize) -> Result<f64> {
    let stats = ExecStats::new();
    let n = engine.source.len().min(sample.max(1)) as ObjectId;
    let mut ratios = Vec::new();
    for id in 0..n {
        let top = engine.source.max_lod(id);
        let mut prev = engine.source.get(id, 0, &stats)?.triangles.len();
        for lod in 1..=top {
            let cur = engine.source.get(id, lod, &stats)?.triangles.len();
            if prev > 0 {
                ratios.push(cur as f64 / prev as f64);
            }
            prev = cur;
        }
    }
    Ok(if ratios.is_empty() {
        2.0
    } else {
        ratios.iter().sum::<f64>() / ratios.len() as f64
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{ObjectStore, StoreConfig};
    use tripro_geom::vec3;
    use tripro_mesh::testutil::sphere;

    fn stores() -> (ObjectStore, ObjectStore) {
        let cfg = StoreConfig {
            build_threads: 2,
            ..Default::default()
        };
        let targets: Vec<_> = (0..6)
            .map(|i| sphere(vec3(i as f64 * 8.0, 0.0, 0.0), 2.0, 3))
            .collect();
        let sources: Vec<_> = (0..6)
            .map(|i| sphere(vec3(i as f64 * 8.0 + 3.0, 4.0, 0.0), 1.5, 3))
            .collect();
        (
            ObjectStore::build(&targets, &cfg).unwrap(),
            ObjectStore::build(&sources, &cfg).unwrap(),
        )
    }

    #[test]
    fn r_is_about_two() {
        let (t, s) = stores();
        let engine = Engine::new(&t, &s);
        let r = measure_r(&engine, 3).unwrap();
        assert!(r > 1.3 && r < 3.5, "r = {r}");
    }

    #[test]
    fn choice_ends_at_top_and_reports_activity() {
        let (t, s) = stores();
        let engine = Engine::new(&t, &s);
        let choice = choose_lods(&engine, QueryKind::NearestNeighbour, 6, Accel::Brute).unwrap();
        let top = t.max_lod_overall().max(s.max_lod_overall());
        assert_eq!(*choice.chosen.last().unwrap(), top);
        assert!(choice.threshold > 0.0 && choice.threshold < 1.0);
        assert_eq!(choice.activity.len(), top + 1);
        assert!(choice.activity.iter().any(|a| a.evaluated > 0));
    }

    #[test]
    fn within_profile_prunes_early() {
        let (t, s) = stores();
        let engine = Engine::new(&t, &s);
        // Generous distance: everything within → early accepts at low LODs.
        let choice = choose_lods(&engine, QueryKind::Within(10.0), 6, Accel::Brute).unwrap();
        let low: u64 = choice.activity[0].pruned;
        assert!(
            low > 0,
            "low LODs should prune within-pairs: {:?}",
            choice.activity
        );
    }

    fn activity(rows: &[(usize, u64, u64)]) -> Vec<LodActivity> {
        rows.iter()
            .map(|&(lod, evaluated, pruned)| LodActivity {
                lod,
                evaluated,
                pruned,
                pruned_fraction: if evaluated > 0 {
                    pruned as f64 / evaluated as f64
                } else {
                    0.0
                },
            })
            .collect()
    }

    #[test]
    fn break_even_rule_picks_known_subset() {
        // r = 2 ⇒ threshold 1/r² = 0.25 (§6.5). LODs 0 and 2 beat it,
        // LOD 1 sits below, LOD 3 is exactly at break-even (strict
        // comparison excludes it), LOD 4 is the exact top.
        let act = activity(&[
            (0, 100, 90), // 0.90 → chosen
            (1, 100, 10), // 0.10 → dropped
            (2, 100, 30), // 0.30 → chosen
            (3, 100, 25), // 0.25 → dropped (strictly-greater rule)
            (4, 100, 0),  // top → always appended
        ]);
        assert_eq!(select_lods(&act, 0.25, 4), vec![0, 2, 4]);
    }

    #[test]
    fn break_even_rule_skips_unobserved_lods_and_keeps_top() {
        // An LOD with a high fraction but zero evaluations carries no
        // evidence; an empty ladder still ends at the top.
        let act = activity(&[(0, 0, 0), (1, 50, 50), (2, 0, 0)]);
        assert_eq!(select_lods(&act, 0.25, 2), vec![1, 2]);
        assert_eq!(select_lods(&[], 0.25, 3), vec![3]);
        // Top already chosen on its own merits: not duplicated.
        let act = activity(&[(0, 10, 9), (1, 10, 9)]);
        assert_eq!(select_lods(&act, 0.25, 1), vec![0, 1]);
    }

    mod prop {
        use crate::stats::ExecStats;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]
            #[test]
            fn pruned_fractions_stay_in_unit_interval(
                rows in proptest::collection::vec(
                    (0usize..24, 0u32..20, 0u32..40),
                    0..12,
                )
            ) {
                let s = ExecStats::new();
                for &(lod, evaluated, pruned) in &rows {
                    for _ in 0..evaluated {
                        s.record_pair_evaluated(lod);
                    }
                    for _ in 0..pruned {
                        s.record_pair_pruned(lod);
                    }
                }
                for (lod, f) in s.snapshot().pruned_fractions() {
                    prop_assert!(
                        (0.0..=1.0).contains(&f),
                        "LOD {lod} fraction {f} out of [0, 1]"
                    );
                    prop_assert!(f.is_finite());
                }
            }
        }
    }

    #[test]
    fn chosen_list_usable_by_engine() {
        let (t, s) = stores();
        let engine = Engine::new(&t, &s);
        let choice = choose_lods(&engine, QueryKind::NearestNeighbour, 6, Accel::Brute).unwrap();
        let cfg = QueryConfig::new(Paradigm::FilterProgressiveRefine, Accel::Brute)
            .with_lods(choice.chosen.clone());
        let (with_choice, _) = engine.nn_join(&cfg).unwrap();
        let all = QueryConfig::new(Paradigm::FilterProgressiveRefine, Accel::Brute);
        let (with_all, _) = engine.nn_join(&all).unwrap();
        assert_eq!(with_choice, with_all, "LOD choice must not change results");
    }
}
