//! Streaming pipeline plumbing for the join executor: bounded MPMC
//! channels plus a work-conserving stage scheduler on [`crate::pool`].
//!
//! The phase-sequential driver runs candidate generation, PPVP decode,
//! accelerator build and kernel evaluation as strict barriers per batch,
//! so decode stalls geometry work and vice versa. This module connects
//! the four stages with bounded queues so batch N's kernel evaluation
//! overlaps batch N+1's decode (the 3DPipe observation — see
//! docs/performance.md §7 for the stage diagram and tuning knobs):
//!
//! ```text
//!   generate ──qa──▶ decode ──qb──▶ build ──qc──▶ eval
//!   (cuboid     (batched LOD     (AABB/OBB      (face-pair kernels,
//!    order)      cache fill)      tree touch)    GPU-chunk flushing)
//! ```
//!
//! ## Execution model
//!
//! There are no dedicated per-stage threads. Every pool participant runs
//! the same loop: drain the *latest* stage with work available (sink
//! first, so finished work retires before new work is admitted), else
//! claim the next generator input, else park on the hub condvar. This
//! keeps the pipeline work-conserving — a single participant completes
//! the whole pipeline alone, which the help-first pool requires (helpers
//! may never wake).
//!
//! ## Backpressure
//!
//! Queues are bounded. A producer that finds its downstream queue full
//! does not block and does not drop: it runs the downstream stage
//! *inline* on the item it holds (recorded as a stall in
//! [`ExecStats::queue_stalls`]). A slow kernel stage therefore throttles
//! decode to its own pace instead of ballooning decoded geometry in
//! memory — and inline fallback cannot deadlock because it never waits.
//!
//! ## Cancellation
//!
//! The shared [`Deadline`] token is polled at every stage boundary and
//! while parked. On expiry one worker flips the hub abort flag, closes
//! every queue and wakes all parkers; in-flight items are dropped, every
//! participant returns promptly, and [`run_pipeline`] surfaces the typed
//! [`Error::DeadlineExceeded`].
//!
//! ## Panic containment
//!
//! Every unit of stage work runs inside `catch_unwind`. Without it, a
//! panicking stage closure would leak its hub token (`outstanding` never
//! drains) and park every other participant forever. A contained panic
//! aborts the pipeline exactly like a deadline expiry — tokens stop
//! mattering once the exit condition is "aborted" — and [`run_pipeline`]
//! returns [`Error::Internal`] carrying the first panic's message
//! (counted in `tripro_panics_total{context="pipeline"}`).

use crate::deadline::Deadline;
use crate::error::{Error, Result};
use crate::fault;
use crate::fault::FaultAction;
use crate::obs;
use crate::stats::ExecStats;
use crate::sync::{lock, wait_timeout, Condvar, Mutex};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Default bound for each inter-stage queue, in items. Deep enough to
/// absorb stage-latency jitter, shallow enough that backpressure engages
/// before decoded geometry balloons (each item is a cuboid batch or a
/// single evaluation target).
pub const DEFAULT_QUEUE_CAP: usize = 8;

/// How long a parked worker sleeps before re-polling the shared
/// [`Deadline`]; bounds cancellation latency while parked.
const PARK_POLL: Duration = Duration::from_millis(1);

/// Outcome of a non-blocking push; `Full`/`Closed` hand the item back so
/// the producer can run the downstream stage inline or drop it.
pub enum PushOutcome<T> {
    /// Enqueued; carries the queue depth after the push.
    Pushed(usize),
    /// Queue at capacity — backpressure the producer.
    Full(T),
    /// Queue closed (pipeline aborting) — drop the item.
    Closed(T),
}

/// Outcome of a non-blocking pop.
pub enum PopOutcome<T> {
    /// An item.
    Item(T),
    /// Nothing queued right now.
    Empty,
    /// Closed and drained: no item will ever arrive.
    Closed,
}

struct ChanState<T> {
    q: VecDeque<T>,
    closed: bool,
}

/// A bounded multi-producer multi-consumer queue connecting two pipeline
/// stages. Non-blocking by design: waiting is centralised on the
/// pipeline hub condvar, so the channel itself needs no condition
/// variables and its mutex is only ever held for O(1) queue operations.
pub struct Channel<T> {
    // LOCK-RANK(45): inter-stage queue lock; above the pipeline hub (44)
    // because the hub's park predicate inspects queue depths while
    // holding the hub mutex, and below the cache locks (50+) because no
    // decode work ever runs under a channel guard.
    chan: Mutex<ChanState<T>>,
    cap: usize,
}

impl<T> Channel<T> {
    /// A channel bounded at `cap` items (minimum 1).
    #[must_use]
    pub fn new(cap: usize) -> Self {
        Self {
            chan: Mutex::new(ChanState {
                q: VecDeque::with_capacity(cap.max(1)),
                closed: false,
            }),
            cap: cap.max(1),
        }
    }

    /// Try to enqueue without blocking.
    pub fn try_push(&self, item: T) -> PushOutcome<T> {
        // Injected push faults (evaluated before the queue lock): Delay
        // models a slow consumer; every erroring action maps to `Full`,
        // which forces the inline-downstream backpressure path — the item
        // is never lost, only rerouted; Panic exercises the stage
        // containment boundary in `run_pipeline`'s workers.
        match fault::hit(fault::PIPELINE_PUSH) {
            None => {}
            Some(FaultAction::Delay(ms)) => std::thread::sleep(Duration::from_millis(ms)),
            Some(FaultAction::Panic) => {
                // tripro_lint::allow(no_panic): deliberate injected panic —
                // chaos schedules fire this inside the pipeline's
                // catch_unwind containment, which is what's under test.
                panic!("injected panic at failpoint pipeline.chan.push")
            }
            Some(_) => return PushOutcome::Full(item),
        }
        let mut st = lock(&self.chan);
        if st.closed {
            return PushOutcome::Closed(item);
        }
        if st.q.len() >= self.cap {
            return PushOutcome::Full(item);
        }
        st.q.push_back(item);
        PushOutcome::Pushed(st.q.len())
    }

    /// Try to dequeue without blocking.
    pub fn try_pop(&self) -> PopOutcome<T> {
        let mut st = lock(&self.chan);
        match st.q.pop_front() {
            Some(item) => PopOutcome::Item(item),
            None if st.closed => PopOutcome::Closed,
            None => PopOutcome::Empty,
        }
    }

    /// Close the channel: future pushes are refused, queued items remain
    /// poppable until drained (consumers distinguish `Empty` from
    /// `Closed`, so a close never strands work).
    pub fn close(&self) {
        lock(&self.chan).closed = true;
    }

    /// Current queue depth.
    #[must_use]
    pub fn len(&self) -> usize {
        lock(&self.chan).q.len()
    }

    /// Whether the queue is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        lock(&self.chan).q.is_empty()
    }

    /// Whether the channel has been closed.
    #[must_use]
    pub fn is_closed(&self) -> bool {
        lock(&self.chan).closed
    }
}

/// Pipeline stage indices, used for stats/metrics attribution.
const STAGE_GEN: usize = 0;
const STAGE_DECODE: usize = 1;
const STAGE_BUILD: usize = 2;
const STAGE_EVAL: usize = 3;

struct HubState {
    /// Next generator input to hand out.
    next_input: usize,
    /// Items in flight anywhere in the pipeline (claimed inputs that have
    /// not yet retired through eval). `next_input == n_inputs` and
    /// `outstanding == 0` together mean the pipeline is drained.
    outstanding: usize,
    /// Deadline expired or cancelled: every participant exits promptly.
    abort: bool,
}

struct Hub {
    // LOCK-RANK(44): pipeline completion/claim hub; below the channel
    // locks (45) so the park predicate may read queue depths under it,
    // and above the pool's own state lock (40) which is never held while
    // pipeline code runs.
    hub: Mutex<HubState>,
    /// Parked workers wait here; producers notify under the hub mutex so
    /// a park-predicate check can never miss a wakeup.
    cv: Condvar,
}

/// The shared state of one pipelined join execution. `G` produces an
/// input batch, `D` decodes it, `K` expands a decoded batch into
/// evaluation items, `E` evaluates one item.
struct Pipe<'a, A, B, C, G, D, K, E> {
    qa: Channel<A>,
    qb: Channel<B>,
    qc: Channel<C>,
    hub: Hub,
    n_inputs: usize,
    deadline: &'a Deadline,
    stats: &'a ExecStats,
    gen: G,
    decode: D,
    build: K,
    eval: E,
    /// Workers currently busy per stage, for the concurrent-stage
    /// occupancy histogram (the direct overlap witness).
    busy: [AtomicU64; 4],
    /// First contained stage panic, surfaced as [`Error::Internal`].
    // LOCK-RANK(46): panic note; a leaf lock touched only on the (cold)
    // contained-panic path and once at pipeline exit, with no other
    // pipeline lock held.
    panic_note: Mutex<Option<String>>,
}

impl<A, B, C, G, D, K, E> Pipe<'_, A, B, C, G, D, K, E>
where
    A: Send,
    B: Send,
    C: Send,
    G: Fn(usize) -> Option<A> + Sync,
    D: Fn(A) -> B + Sync,
    K: Fn(B) -> Vec<C> + Sync,
    E: Fn(C) + Sync,
{
    /// Enter stage `stage`: bump its busy count and sample how many
    /// distinct stages are busy right now (≥2 proves overlap).
    fn enter_stage(&self, stage: usize) -> Instant {
        // ORDERING: Relaxed — the busy counters feed a telemetry
        // histogram only; a momentarily stale count skews one sample,
        // never correctness.
        self.busy[stage.min(3)].fetch_add(1, Ordering::Relaxed);
        let distinct = self
            .busy
            .iter()
            .filter(|b| b.load(Ordering::Relaxed) > 0)
            .count();
        obs::pipeline_concurrency_histogram().record(distinct as u64);
        Instant::now()
    }

    /// Leave stage `stage`: record busy time into stats and obs.
    fn leave_stage(&self, stage: usize, started: Instant) {
        let d = started.elapsed();
        // ORDERING: Relaxed — telemetry decrement paired with
        // `enter_stage`; see above.
        self.busy[stage.min(3)].fetch_sub(1, Ordering::Relaxed);
        self.stats.add_stage(stage, d);
        obs::pipeline_stage_histogram(stage).record_duration(d);
    }

    /// Flip the abort flag, close every queue and wake all parkers.
    fn abort_all(&self) {
        let mut h = lock(&self.hub.hub);
        if !h.abort {
            h.abort = true;
            self.qa.close();
            self.qb.close();
            self.qc.close();
        }
        self.hub.cv.notify_all();
    }

    fn aborted(&self) -> bool {
        lock(&self.hub.hub).abort
    }

    /// Retire `n` in-flight tokens; wakes everyone when the pipeline
    /// drains so parked participants can exit.
    fn retire(&self, n: usize) {
        let mut h = lock(&self.hub.hub);
        h.outstanding = h.outstanding.saturating_sub(n);
        if h.outstanding == 0 && h.next_input >= self.n_inputs {
            self.hub.cv.notify_all();
        }
    }

    /// Notify parked workers that new queue work exists. Taking the hub
    /// mutex orders this against any in-progress park-predicate check,
    /// which is what makes the handoff lost-wakeup-free.
    fn wake(&self) {
        let _h = lock(&self.hub.hub);
        self.hub.cv.notify_all();
    }

    /// Stage 4: evaluate one item and retire its token.
    fn run_eval(&self, item: C) {
        let t0 = self.enter_stage(STAGE_EVAL);
        (self.eval)(item);
        self.leave_stage(STAGE_EVAL, t0);
        self.retire(1);
    }

    /// Stage 3: expand a decoded batch into evaluation items. The token
    /// count goes from 1 (the batch) to `items.len()`, so the hub is
    /// adjusted before any item can retire.
    fn run_build(&self, batch: B) {
        let t0 = self.enter_stage(STAGE_BUILD);
        let items = (self.build)(batch);
        self.leave_stage(STAGE_BUILD, t0);
        if items.is_empty() {
            self.retire(1);
            return;
        }
        {
            let mut h = lock(&self.hub.hub);
            h.outstanding += items.len() - 1;
        }
        let mut pushed = false;
        for item in items {
            match self.qc.try_push(item) {
                PushOutcome::Pushed(depth) => {
                    obs::pipeline_queue_depth_histogram(2).record(depth as u64);
                    pushed = true;
                }
                PushOutcome::Full(item) => {
                    self.stats.record_stall(2);
                    // ORDERING: Relaxed — monotonic telemetry counter.
                    obs::pipeline_stall_counter(2).fetch_add(1, Ordering::Relaxed);
                    self.run_eval(item);
                }
                PushOutcome::Closed(item) => {
                    drop(item);
                    self.retire(1);
                }
            }
        }
        if pushed {
            self.wake();
        }
    }

    /// Stage 2: decode one batch and hand it to build.
    fn run_decode(&self, batch: A) {
        let t0 = self.enter_stage(STAGE_DECODE);
        let decoded = (self.decode)(batch);
        self.leave_stage(STAGE_DECODE, t0);
        match self.qb.try_push(decoded) {
            PushOutcome::Pushed(depth) => {
                obs::pipeline_queue_depth_histogram(1).record(depth as u64);
                self.wake();
            }
            PushOutcome::Full(decoded) => {
                self.stats.record_stall(1);
                // ORDERING: Relaxed — monotonic telemetry counter.
                obs::pipeline_stall_counter(1).fetch_add(1, Ordering::Relaxed);
                self.run_build(decoded);
            }
            PushOutcome::Closed(decoded) => {
                drop(decoded);
                self.retire(1);
            }
        }
    }

    /// Stage 1: materialise generator input `i` and hand it to decode.
    /// The claim already counted one outstanding token; an empty input
    /// retires it immediately.
    fn run_gen(&self, i: usize) {
        let t0 = self.enter_stage(STAGE_GEN);
        let item = (self.gen)(i);
        self.leave_stage(STAGE_GEN, t0);
        let Some(item) = item else {
            self.retire(1);
            return;
        };
        match self.qa.try_push(item) {
            PushOutcome::Pushed(depth) => {
                obs::pipeline_queue_depth_histogram(0).record(depth as u64);
                self.wake();
            }
            PushOutcome::Full(item) => {
                self.stats.record_stall(0);
                // ORDERING: Relaxed — monotonic telemetry counter.
                obs::pipeline_stall_counter(0).fetch_add(1, Ordering::Relaxed);
                self.run_decode(item);
            }
            PushOutcome::Closed(item) => {
                drop(item);
                self.retire(1);
            }
        }
    }

    /// Claim the next generator input, if any remain.
    fn claim_input(&self) -> Option<usize> {
        let mut h = lock(&self.hub.hub);
        if h.abort || h.next_input >= self.n_inputs {
            return None;
        }
        let i = h.next_input;
        h.next_input += 1;
        h.outstanding += 1;
        Some(i)
    }

    /// Park until queue work appears, inputs remain, the pipeline drains,
    /// or the deadline expires. Returns `true` if the caller should keep
    /// looping, `false` if it should exit.
    fn park(&self) -> bool {
        let mut h = lock(&self.hub.hub);
        loop {
            if h.abort || (h.next_input >= self.n_inputs && h.outstanding == 0) {
                return false;
            }
            // Reading queue depths acquires the channel locks (rank 45)
            // under the hub (rank 44) — ascending, and the only place the
            // two ranks nest.
            if h.next_input < self.n_inputs
                || !self.qa.is_empty()
                || !self.qb.is_empty()
                || !self.qc.is_empty()
            {
                return true;
            }
            let (guard, timed_out) = wait_timeout(&self.hub.cv, h, PARK_POLL);
            h = guard;
            if timed_out && self.deadline.is_over() {
                h.abort = true;
                self.qa.close();
                self.qb.close();
                self.qc.close();
                self.hub.cv.notify_all();
                return false;
            }
        }
    }

    /// Run one unit of stage work, containing any panic. A panic inside a
    /// stage closure would otherwise unwind the participant with its hub
    /// token still outstanding — `outstanding` would never drain and every
    /// other participant would park forever. Containment records the first
    /// payload and aborts the pipeline, which switches every participant's
    /// exit condition from "drained" to "aborted"; the leaked token is
    /// then moot and [`run_pipeline`] surfaces a typed
    /// [`Error::Internal`] instead of a hang or an unwind.
    fn contain(&self, work: impl FnOnce()) {
        if let Err(payload) = catch_unwind(AssertUnwindSafe(work)) {
            obs::panic_counter("pipeline").fetch_add(1, Ordering::Relaxed);
            let msg = fault::panic_message(payload.as_ref());
            let mut note = lock(&self.panic_note);
            note.get_or_insert(msg);
            drop(note);
            self.abort_all();
        }
    }

    /// The loop every pool participant runs: drain the latest non-empty
    /// stage first (retire before admit), else start new work, else park.
    fn worker(&self) {
        loop {
            if self.deadline.is_over() {
                self.abort_all();
                return;
            }
            if self.aborted() {
                return;
            }
            if let PopOutcome::Item(c) = self.qc.try_pop() {
                self.contain(|| self.run_eval(c));
                continue;
            }
            if let PopOutcome::Item(b) = self.qb.try_pop() {
                self.contain(|| self.run_build(b));
                continue;
            }
            if let PopOutcome::Item(a) = self.qa.try_pop() {
                self.contain(|| self.run_decode(a));
                continue;
            }
            if let Some(i) = self.claim_input() {
                self.contain(|| self.run_gen(i));
                continue;
            }
            if !self.park() {
                return;
            }
        }
    }
}

/// Run a four-stage streaming pipeline over `n_inputs` generator inputs
/// on the global worker pool.
///
/// * `gen(i)` materialises input `i` (cuboid-ordered candidate batches in
///   the join driver); `None` skips the input.
/// * `decode` performs the batched LOD decode for one input.
/// * `build` turns a decoded batch into independent evaluation items
///   (accelerator build / per-target expansion).
/// * `eval` evaluates one item (face-pair kernels; results flow out
///   through the closure's own accumulator).
///
/// `workers` is the total participant count (the caller plus pool
/// helpers); `queue_cap` bounds every inter-stage queue. Returns
/// [`Error::DeadlineExceeded`] if the deadline expired or the token was
/// cancelled before the pipeline drained — in-flight items are dropped,
/// not evaluated, and every participant has returned by then (the pool's
/// broadcast region does not complete before its workers do). Returns
/// [`Error::Internal`] if a stage closure panicked: the panic is
/// contained, the pipeline aborts, and the first payload's message is
/// carried in the error (see the module docs on panic containment).
#[allow(clippy::too_many_arguments)] // one closure per stage is the whole point
pub fn run_pipeline<A, B, C>(
    n_inputs: usize,
    workers: usize,
    queue_cap: usize,
    deadline: &Deadline,
    stats: &ExecStats,
    gen: impl Fn(usize) -> Option<A> + Sync,
    decode: impl Fn(A) -> B + Sync,
    build: impl Fn(B) -> Vec<C> + Sync,
    eval: impl Fn(C) + Sync,
) -> Result<()>
where
    A: Send,
    B: Send,
    C: Send,
{
    deadline.check()?;
    let pipe = Pipe {
        qa: Channel::new(queue_cap),
        qb: Channel::new(queue_cap),
        qc: Channel::new(queue_cap),
        hub: Hub {
            hub: Mutex::new(HubState {
                next_input: 0,
                outstanding: 0,
                abort: false,
            }),
            cv: Condvar::new(),
        },
        n_inputs,
        deadline,
        stats,
        gen,
        decode,
        build,
        eval,
        busy: std::array::from_fn(|_| AtomicU64::new(0)),
        panic_note: Mutex::new(None),
    };
    let helpers = workers.max(1) - 1;
    crate::pool::global().run_with(helpers, |_| pipe.worker());
    if let Some(message) = lock(&pipe.panic_note).take() {
        return Err(Error::Internal {
            context: "pipeline",
            message,
        });
    }
    if pipe.aborted() {
        return Err(Error::DeadlineExceeded);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Mutex as StdMutex;

    #[test]
    fn channel_bounds_and_closes() {
        let ch: Channel<u32> = Channel::new(2);
        assert!(matches!(ch.try_push(1), PushOutcome::Pushed(1)));
        assert!(matches!(ch.try_push(2), PushOutcome::Pushed(2)));
        assert!(matches!(ch.try_push(3), PushOutcome::Full(3)));
        assert_eq!(ch.len(), 2);
        ch.close();
        assert!(matches!(ch.try_push(4), PushOutcome::Closed(4)));
        // Closed channels drain their backlog before reporting Closed.
        assert!(matches!(ch.try_pop(), PopOutcome::Item(1)));
        assert!(matches!(ch.try_pop(), PopOutcome::Item(2)));
        assert!(matches!(ch.try_pop(), PopOutcome::Closed));
    }

    #[test]
    fn empty_channel_distinguishes_empty_from_closed() {
        let ch: Channel<u32> = Channel::new(1);
        assert!(matches!(ch.try_pop(), PopOutcome::Empty));
        assert!(!ch.is_closed());
        ch.close();
        assert!(ch.is_closed());
        assert!(matches!(ch.try_pop(), PopOutcome::Closed));
    }

    #[test]
    fn pipeline_processes_every_item_exactly_once() {
        for workers in [1, 4] {
            let stats = ExecStats::new();
            let seen = StdMutex::new(Vec::new());
            let r = run_pipeline(
                10,
                workers,
                2,
                &Deadline::none(),
                &stats,
                Some,
                |i| i * 10,
                |i| vec![i, i + 1, i + 2],
                |v| seen.lock().unwrap().push(v),
            );
            assert!(r.is_ok());
            let mut got = seen.into_inner().unwrap();
            got.sort_unstable();
            let mut want: Vec<usize> = (0..10)
                .flat_map(|i| [i * 10, i * 10 + 1, i * 10 + 2])
                .collect();
            want.sort_unstable();
            assert_eq!(got, want, "workers={workers}");
            let snap = stats.snapshot();
            assert_eq!(snap.stage_items, vec![10, 10, 10, 30]);
        }
    }

    #[test]
    fn empty_generator_inputs_are_skipped() {
        let stats = ExecStats::new();
        let count = AtomicUsize::new(0);
        let r = run_pipeline(
            8,
            2,
            1,
            &Deadline::none(),
            &stats,
            |i| if i % 2 == 0 { Some(i) } else { None },
            |i| i,
            |i| if i == 0 { Vec::new() } else { vec![i] },
            |_| {
                count.fetch_add(1, Ordering::Relaxed);
            },
        );
        assert!(r.is_ok());
        // Inputs 2, 4, 6 each yield one item; 0 expands to nothing.
        assert_eq!(count.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn zero_inputs_complete_immediately() {
        let stats = ExecStats::new();
        let r = run_pipeline(
            0,
            3,
            4,
            &Deadline::none(),
            &stats,
            |_| Some(0usize),
            |i| i,
            |i| vec![i],
            |_| {},
        );
        assert!(r.is_ok());
        assert_eq!(stats.snapshot().stage_items, vec![0, 0, 0, 0]);
    }

    #[test]
    fn expired_deadline_aborts_before_any_stage_runs() {
        let stats = ExecStats::new();
        let ran = AtomicUsize::new(0);
        let r = run_pipeline(
            100,
            4,
            2,
            &Deadline::within(Duration::ZERO),
            &stats,
            |i| {
                ran.fetch_add(1, Ordering::Relaxed);
                Some(i)
            },
            |i| i,
            |i| vec![i],
            |_| {},
        );
        assert!(matches!(r, Err(Error::DeadlineExceeded)));
        assert_eq!(ran.load(Ordering::Relaxed), 0, "no stage work after expiry");
    }

    #[test]
    fn cancel_mid_pipeline_returns_typed_error_and_drains() {
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;
        let flag = Arc::new(AtomicBool::new(false));
        let deadline = Deadline::none().with_cancel(Arc::clone(&flag));
        let stats = ExecStats::new();
        let evaluated = AtomicUsize::new(0);
        let r = run_pipeline(
            1000,
            4,
            2,
            &deadline,
            &stats,
            Some,
            |i| i,
            |i| {
                if i == 5 {
                    flag.store(true, Ordering::Relaxed);
                }
                vec![i]
            },
            |_| {
                evaluated.fetch_add(1, Ordering::Relaxed);
            },
        );
        assert!(matches!(r, Err(Error::DeadlineExceeded)));
        // The pipeline stopped early: nowhere near all 1000 items retired.
        assert!(evaluated.load(Ordering::Relaxed) < 1000);
        // The pool remains usable after the abort (no leaked workers
        // holding pipeline state).
        let n = AtomicUsize::new(0);
        crate::pool::global().run_with(2, |_| {
            n.fetch_add(1, Ordering::Relaxed);
        });
        assert!(n.load(Ordering::Relaxed) >= 1);
    }

    #[test]
    fn stage_panic_is_contained_and_typed() {
        let stats = ExecStats::new();
        let evaluated = AtomicUsize::new(0);
        let r = run_pipeline(
            50,
            4,
            2,
            &Deadline::none(),
            &stats,
            Some,
            |i| i,
            |i| {
                if i == 7 {
                    panic!("poisoned batch 7");
                }
                vec![i]
            },
            |_| {
                evaluated.fetch_add(1, Ordering::Relaxed);
            },
        );
        match r {
            Err(Error::Internal { context, message }) => {
                assert_eq!(context, "pipeline");
                assert!(message.contains("poisoned batch 7"), "message: {message}");
            }
            other => panic!("expected Error::Internal, got {other:?}"),
        }
        // Neither the pool nor the pipeline machinery leaked: a fresh
        // pipeline on the same global pool completes fully.
        let stats = ExecStats::new();
        let total = AtomicUsize::new(0);
        let r = run_pipeline(
            10,
            4,
            2,
            &Deadline::none(),
            &stats,
            Some,
            |i| i,
            |i| vec![i],
            |_| {
                total.fetch_add(1, Ordering::Relaxed);
            },
        );
        assert!(r.is_ok());
        assert_eq!(total.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn backpressure_engages_on_tiny_queues() {
        let stats = ExecStats::new();
        let total = AtomicUsize::new(0);
        // Single worker + capacity-1 queues: the generator must hit full
        // queues and fall through inline; everything still completes.
        let r = run_pipeline(
            50,
            1,
            1,
            &Deadline::none(),
            &stats,
            Some,
            |i| i,
            |i| vec![i, i],
            |_| {
                total.fetch_add(1, Ordering::Relaxed);
            },
        );
        assert!(r.is_ok());
        assert_eq!(total.load(Ordering::Relaxed), 100);
    }
}
