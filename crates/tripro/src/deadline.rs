//! Cooperative deadlines and cancellation for query execution.
//!
//! A long-lived service cannot let an expiring request keep paying for
//! higher-LOD decode: the Filter-Progressive-Refine ladder makes the natural
//! preemption points explicit — *between refinement rounds* every candidate
//! is in a consistent P1/P2 early-out state, so stopping there loses no
//! already-bought work and never yields a wrong (partial) answer, only a
//! typed [`Error::DeadlineExceeded`](crate::Error::DeadlineExceeded).
//!
//! [`Deadline`] carries an optional wall-clock expiry plus an optional
//! shared cancel flag (used by graceful server shutdown to abandon queued
//! work). It is threaded through [`QueryConfig`](crate::QueryConfig) so
//! every `Engine::*_one` refinement loop and the point-containment ladder
//! can poll it without new method signatures.

use crate::error::{Error, Result};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A cooperative deadline/cancellation token.
///
/// Cheap to clone (an `Option<Instant>` plus an `Option<Arc>`); the default
/// token never expires and is never cancelled, so existing callers pay one
/// branch per refinement round.
#[derive(Debug, Clone, Default)]
pub struct Deadline {
    /// Absolute expiry; `None` = unbounded.
    at: Option<Instant>,
    /// Shared cancel flag; `None` = not cancellable.
    cancel: Option<Arc<AtomicBool>>,
}

impl Deadline {
    /// A token that never expires.
    #[must_use]
    pub fn none() -> Self {
        Self::default()
    }

    /// A token expiring at the absolute instant `at`.
    #[must_use]
    pub fn at(at: Instant) -> Self {
        Self {
            at: Some(at),
            cancel: None,
        }
    }

    /// A token expiring `budget` from now. `Duration::ZERO` yields a token
    /// that is already expired — useful for shed-everything tests.
    #[must_use]
    pub fn within(budget: Duration) -> Self {
        Self::at(Instant::now() + budget)
    }

    /// Attach a shared cancel flag (e.g. a server's shutdown flag). The
    /// token reports expiry as soon as the flag is raised, regardless of
    /// the wall clock.
    #[must_use]
    pub fn with_cancel(mut self, flag: Arc<AtomicBool>) -> Self {
        self.cancel = Some(flag);
        self
    }

    /// Is this token past its deadline or cancelled?
    #[must_use]
    pub fn is_over(&self) -> bool {
        if let Some(flag) = &self.cancel {
            // ORDERING: Relaxed — cancellation is level-triggered and
            // re-polled at every refinement step; no data is transferred
            // under the flag, so a stale read only delays the stop by one
            // poll interval.
            if flag.load(Ordering::Relaxed) {
                return true;
            }
        }
        match self.at {
            Some(at) => Instant::now() >= at,
            None => false,
        }
    }

    /// Does this token bound execution at all (deadline or cancel flag)?
    #[must_use]
    pub fn is_bounded(&self) -> bool {
        self.at.is_some() || self.cancel.is_some()
    }

    /// Time left before expiry: `None` for unbounded tokens, `Some(ZERO)`
    /// once expired.
    #[must_use]
    pub fn remaining(&self) -> Option<Duration> {
        self.at
            .map(|at| at.saturating_duration_since(Instant::now()))
    }

    /// Checkpoint: `Err(Error::DeadlineExceeded)` once over, `Ok(())`
    /// otherwise. Called between LOD refinement rounds.
    pub fn check(&self) -> Result<()> {
        if self.is_over() {
            Err(Error::DeadlineExceeded)
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_never_expires() {
        let d = Deadline::none();
        assert!(!d.is_over());
        assert!(!d.is_bounded());
        assert!(d.check().is_ok());
        assert_eq!(d.remaining(), None);
    }

    #[test]
    fn zero_budget_is_already_over() {
        let d = Deadline::within(Duration::ZERO);
        assert!(d.is_over());
        assert!(matches!(d.check(), Err(Error::DeadlineExceeded)));
        assert_eq!(d.remaining(), Some(Duration::ZERO));
    }

    #[test]
    fn generous_budget_is_live() {
        let d = Deadline::within(Duration::from_secs(3600));
        assert!(!d.is_over());
        assert!(d.is_bounded());
        assert!(d.remaining().is_some_and(|r| r > Duration::from_secs(3599)));
    }

    #[test]
    fn cancel_flag_overrides_clock() {
        let flag = Arc::new(AtomicBool::new(false));
        let d = Deadline::within(Duration::from_secs(3600)).with_cancel(Arc::clone(&flag));
        assert!(!d.is_over());
        flag.store(true, Ordering::Relaxed);
        assert!(d.is_over());
        // Clones share the flag.
        let d2 = d.clone();
        assert!(d2.is_over());
    }

    #[test]
    fn cancel_only_token_is_bounded() {
        let flag = Arc::new(AtomicBool::new(false));
        let d = Deadline::none().with_cancel(flag);
        assert!(d.is_bounded());
        assert!(!d.is_over());
        assert_eq!(d.remaining(), None);
    }
}
