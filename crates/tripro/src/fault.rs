//! Deterministic fault injection: named failpoints threaded through the
//! decode path, cache, pool, pipeline and serve socket I/O.
//!
//! ## Model
//!
//! A *failpoint* is a named site in production code — [`DECODE_LOD`],
//! [`SERVE_WRITE`], ... — that normally does nothing. A chaos harness
//! (or the `TRIPRO_FAILPOINTS` environment variable) arms sites with a
//! [`FaultAction`] (return an error, inject a delay, panic, truncate a
//! write, drop a connection) and a [`Trigger`] deciding *which* hits
//! fire (always, once, the n-th hit, a seeded coin flip, ...). Seeded
//! triggers make whole fault schedules reproducible: the same spec string
//! injects the same faults at the same hits on every run, which is what
//! lets `tests/chaos.rs` assert byte-identical results against a
//! fault-free run.
//!
//! ## Cost discipline
//!
//! The registry reuses the obs gate pattern ([`crate::obs::trace`]):
//! every site starts with one `#[inline]` relaxed atomic load
//! ([`armed`]) and returns immediately while no failpoint is configured,
//! so disabled failpoints add a branch, not a lock, to the hot path
//! (`bench_obs` holds this under the same <2% budget as tracing). Only
//! armed processes pay for the site table lookup.
//!
//! Fired injections are counted in `tripro_fault_injections_total{site}`
//! (see [`crate::obs::fault_injection_counter`]) so chaos runs can prove
//! their schedule actually executed.

use crate::error::{Error, Result};
use crate::obs;
use crate::sync::{lock, Mutex};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;
use std::time::Duration;

/// Progressive decode of one object to one LOD (cache miss path).
pub const DECODE_LOD: &str = "decode.lod";
/// Insertion of a freshly decoded entry into the sharded cache.
pub const CACHE_INSERT: &str = "cache.insert";
/// A pool worker claiming a broadcast job.
pub const POOL_DISPATCH: &str = "pool.dispatch";
/// A pipeline stage pushing an item into a bounded inter-stage queue.
pub const PIPELINE_PUSH: &str = "pipeline.chan.push";
/// The serve loop reading a frame from a client socket.
pub const SERVE_READ: &str = "serve.read";
/// The serve loop writing a frame to a client socket.
pub const SERVE_WRITE: &str = "serve.write";
/// Execution of one admitted request inside the serve batch executor.
pub const SERVE_EXEC: &str = "serve.exec";

/// What an armed failpoint does when its trigger fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Return [`Error::Internal`] from the site.
    Err,
    /// Sleep this many milliseconds, then continue normally.
    Delay(u64),
    /// Panic at the site (exercises the containment boundaries).
    Panic,
    /// Socket-write sites only: write at most this many bytes of the
    /// frame in the first `write()` call (exercises short-write loops).
    Partial(usize),
    /// Socket sites only: drop the connection.
    Disconnect,
}

/// Which hits of an armed site fire its action. `hits` is 1-based: the
/// first evaluation of the site is hit 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trigger {
    /// Fire on every hit.
    Always,
    /// Fire on the first hit only.
    Once,
    /// Fire on exactly the n-th hit.
    Nth(u64),
    /// Fire on the first k hits.
    First(u64),
    /// Fire on every k-th hit (k, 2k, 3k, ...).
    Every(u64),
    /// Fire each hit independently with probability `per_mille`/1000,
    /// drawn from a splitmix64 stream seeded with `seed` — deterministic
    /// per (seed, hit index).
    Prob {
        /// Firing probability in thousandths.
        per_mille: u16,
        /// Stream seed.
        seed: u64,
    },
}

/// Point-in-time view of one armed site, for schedule logs.
#[derive(Debug, Clone)]
pub struct SiteStatus {
    /// Site name.
    pub site: String,
    /// Armed action.
    pub action: FaultAction,
    /// Armed trigger.
    pub trigger: Trigger,
    /// Evaluations so far.
    pub hits: u64,
    /// Actions fired so far.
    pub fired: u64,
}

struct SiteCfg {
    action: FaultAction,
    trigger: Trigger,
    hits: u64,
    fired: u64,
    rng: u64,
}

struct FaultRegistry {
    // LOCK-RANK(85): failpoint site table. Sites are evaluated from deep
    // inside the engine — under the cache's per-object decode locks (50)
    // and the serve writer's stream lock (30) — so this rank sits above
    // every lock a caller may hold at a site, and below the obs plane
    // (90+), whose counters are bumped only after this guard drops.
    sites: Mutex<HashMap<String, SiteCfg>>,
}

/// One relaxed load gating every site; see the module docs.
static ARMED: AtomicBool = AtomicBool::new(false);

fn registry() -> &'static FaultRegistry {
    static R: OnceLock<FaultRegistry> = OnceLock::new();
    R.get_or_init(|| FaultRegistry {
        sites: Mutex::new(HashMap::new()),
    })
}

/// splitmix64 step — the same generator `tripro-load` uses for seeded
/// workloads, so fault schedules, load schedules and client retry jitter
/// all share determinism. Public so downstream crates reuse this instead
/// of growing divergent copies.
#[must_use]
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Whether any failpoint is armed in this process. `#[inline]` so the
/// disabled fast path at every site compiles to one relaxed load and a
/// predictable branch.
#[inline]
#[must_use]
pub fn armed() -> bool {
    // ORDERING: Relaxed — arming is advisory test configuration; a site
    // observing a stale `false` for a few loads after `set` merely skips
    // an injection opportunity, and the disabled path must cost one
    // unfenced load (same contract as the obs trace gate).
    ARMED.load(Ordering::Relaxed)
}

/// Evaluate the failpoint `site`: `None` (the overwhelmingly common
/// case) means proceed normally; `Some(action)` means the site must
/// perform the injected action. Sites whose actions are all expressible
/// as error/delay/panic should call [`failpoint`] instead.
#[inline]
#[must_use]
pub fn hit(site: &str) -> Option<FaultAction> {
    if !armed() {
        return None;
    }
    hit_armed(site)
}

#[cold]
fn hit_armed(site: &str) -> Option<FaultAction> {
    let action = {
        let mut sites = lock(&registry().sites);
        let cfg = sites.get_mut(site)?;
        cfg.hits += 1;
        let fire = match cfg.trigger {
            Trigger::Always => true,
            Trigger::Once => cfg.hits == 1,
            Trigger::Nth(n) => cfg.hits == n,
            Trigger::First(k) => cfg.hits <= k,
            Trigger::Every(k) => k > 0 && cfg.hits % k == 0,
            Trigger::Prob { per_mille, .. } => {
                cfg.rng = mix64(cfg.rng);
                (cfg.rng >> 32) % 1000 < u64::from(per_mille)
            }
        };
        if !fire {
            return None;
        }
        cfg.fired += 1;
        cfg.action
    };
    // The obs registry lock (rank 95) is taken only after the site table
    // guard (rank 85) is released.
    obs::fault_injection_counter(site).fetch_add(1, Ordering::Relaxed);
    Some(action)
}

/// Evaluate `site` and perform error/delay/panic actions inline. This is
/// the one-liner for non-socket sites:
///
/// ```ignore
/// fault::failpoint(fault::DECODE_LOD)?;
/// ```
///
/// `Partial`/`Disconnect` are socket-specific; at a non-socket site they
/// degrade to `Err` so a misdirected spec still injects *a* fault rather
/// than silently passing.
#[inline]
pub fn failpoint(site: &'static str) -> Result<()> {
    match hit(site) {
        None => Ok(()),
        Some(action) => act(site, action),
    }
}

#[cold]
fn act(site: &'static str, action: FaultAction) -> Result<()> {
    match action {
        FaultAction::Delay(ms) => {
            std::thread::sleep(Duration::from_millis(ms));
            Ok(())
        }
        FaultAction::Panic => {
            // tripro_lint::allow(no_panic): deliberate injected panic —
            // this is the fault being tested, and every call site sits
            // inside a catch_unwind containment boundary under test.
            panic!("injected panic at failpoint {site}")
        }
        FaultAction::Err | FaultAction::Partial(_) | FaultAction::Disconnect => Err(injected(site)),
    }
}

/// Best-effort readable message from a caught panic payload (`&str` and
/// `String` payloads cover `panic!` and `assert!`; anything else gets a
/// placeholder). Containment boundaries use this to build the
/// [`Error::Internal`] they surface instead of the unwind.
#[must_use]
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic payload of unknown type".to_string()
    }
}

/// The typed error an `Err`-armed failpoint returns.
#[must_use]
pub fn injected(site: &'static str) -> Error {
    Error::Internal {
        context: site,
        message: "injected fault".into(),
    }
}

/// Arm `site` with `action`/`trigger`, replacing any previous arming of
/// the same site and raising the global gate.
pub fn set(site: &str, action: FaultAction, trigger: Trigger) {
    let seed = match trigger {
        Trigger::Prob { seed, .. } => seed,
        _ => 0,
    };
    let mut sites = lock(&registry().sites);
    sites.insert(
        site.to_string(),
        SiteCfg {
            action,
            trigger,
            hits: 0,
            fired: 0,
            rng: mix64(seed),
        },
    );
    drop(sites);
    // ORDERING: Relaxed — see `armed`; the map insert above is ordered by
    // the site-table mutex, which every armed hit also takes.
    ARMED.store(true, Ordering::Relaxed);
}

/// Disarm every failpoint and lower the global gate. Chaos harnesses
/// call this between seeded schedules.
pub fn clear() {
    let mut sites = lock(&registry().sites);
    sites.clear();
    drop(sites);
    // ORDERING: Relaxed — see `armed`.
    ARMED.store(false, Ordering::Relaxed);
}

/// How many times `site`'s action has fired (0 if not armed).
#[must_use]
pub fn fired(site: &str) -> u64 {
    lock(&registry().sites).get(site).map_or(0, |c| c.fired)
}

/// How many times `site` has been evaluated (0 if not armed).
#[must_use]
pub fn hits(site: &str) -> u64 {
    lock(&registry().sites).get(site).map_or(0, |c| c.hits)
}

/// Snapshot of every armed site, for failure-schedule logs.
#[must_use]
pub fn snapshot() -> Vec<SiteStatus> {
    let sites = lock(&registry().sites);
    let mut out: Vec<SiteStatus> = sites
        .iter()
        .map(|(site, c)| SiteStatus {
            site: site.clone(),
            action: c.action,
            trigger: c.trigger,
            hits: c.hits,
            fired: c.fired,
        })
        .collect();
    drop(sites);
    out.sort_by(|a, b| a.site.cmp(&b.site));
    out
}

/// Arm failpoints from a spec string; returns the number of sites armed.
///
/// Grammar (sites separated by `;`):
///
/// ```text
/// site=action[modifier]
/// action   := err | delay(ms) | panic | partial(bytes) | disconnect
/// modifier := #n        fire on exactly the n-th hit
///           | *k        fire on the first k hits
///           | /k        fire on every k-th hit
///           | %p@seed   fire with probability p/1000, seeded (@seed optional)
/// ```
///
/// Without a modifier, `panic` fires once and every other action fires
/// always. Examples: `decode.lod=err#3`, `serve.write=partial(7)*2`,
/// `serve.read=disconnect%50@42`, `cache.insert=delay(2)`.
pub fn configure(spec: &str) -> std::result::Result<usize, String> {
    let mut parsed = Vec::new();
    for part in spec.split(';') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let (site, rest) = part
            .split_once('=')
            .ok_or_else(|| format!("failpoint `{part}`: expected site=action"))?;
        let (site, rest) = (site.trim(), rest.trim());
        if site.is_empty() {
            return Err(format!("failpoint `{part}`: empty site name"));
        }
        parsed.push((site.to_string(), parse_action_spec(rest)?));
    }
    let n = parsed.len();
    for (site, (action, trigger)) in parsed {
        set(&site, action, trigger);
    }
    Ok(n)
}

/// Arm failpoints from the `TRIPRO_FAILPOINTS` environment variable (a
/// [`configure`] spec). Returns the number of sites armed; unset or
/// empty arms nothing.
pub fn init_from_env() -> std::result::Result<usize, String> {
    match std::env::var("TRIPRO_FAILPOINTS") {
        Ok(spec) if !spec.trim().is_empty() => configure(&spec),
        _ => Ok(0),
    }
}

type ActionSpec = (FaultAction, Trigger);

fn parse_action_spec(spec: &str) -> std::result::Result<ActionSpec, String> {
    let (action_str, modifier) = match spec.find(['#', '*', '/', '%']) {
        Some(i) => (&spec[..i], Some(&spec[i..])),
        None => (spec, None),
    };
    let action = parse_action(action_str.trim())?;
    let trigger = match modifier {
        Some(m) => parse_trigger(m.trim())?,
        // An unmodified `panic` defaults to once: "panic every hit"
        // would re-fire inside the very retry that contains it.
        None if action == FaultAction::Panic => Trigger::Once,
        None => Trigger::Always,
    };
    Ok((action, trigger))
}

fn parse_action(s: &str) -> std::result::Result<FaultAction, String> {
    if let Some(args) = s.strip_prefix("delay(").and_then(|r| r.strip_suffix(')')) {
        return Ok(FaultAction::Delay(parse_num(args, "delay")?));
    }
    if let Some(args) = s.strip_prefix("partial(").and_then(|r| r.strip_suffix(')')) {
        let n = parse_num(args, "partial")?;
        return Ok(FaultAction::Partial(
            usize::try_from(n).unwrap_or(usize::MAX),
        ));
    }
    match s {
        "err" => Ok(FaultAction::Err),
        "panic" => Ok(FaultAction::Panic),
        "disconnect" => Ok(FaultAction::Disconnect),
        other => Err(format!(
            "unknown failpoint action `{other}` \
             (expected err|delay(ms)|panic|partial(bytes)|disconnect)"
        )),
    }
}

fn parse_trigger(m: &str) -> std::result::Result<Trigger, String> {
    if let Some(n) = m.strip_prefix('#') {
        return Ok(Trigger::Nth(parse_num(n, "#")?));
    }
    if let Some(k) = m.strip_prefix('*') {
        return Ok(Trigger::First(parse_num(k, "*")?));
    }
    if let Some(k) = m.strip_prefix('/') {
        let k = parse_num(k, "/")?;
        if k == 0 {
            return Err("failpoint trigger `/0`: period must be >= 1".to_string());
        }
        return Ok(Trigger::Every(k));
    }
    if let Some(p) = m.strip_prefix('%') {
        let (p, seed) = match p.split_once('@') {
            Some((p, seed)) => (p, parse_num(seed, "@")?),
            None => (p, 1),
        };
        let per_mille = parse_num(p, "%")?;
        if per_mille > 1000 {
            return Err(format!(
                "failpoint probability `{per_mille}`: max is 1000 (per mille)"
            ));
        }
        return Ok(Trigger::Prob {
            per_mille: u16::try_from(per_mille).unwrap_or(1000),
            seed,
        });
    }
    Err(format!("unknown failpoint modifier `{m}`"))
}

fn parse_num(s: &str, what: &str) -> std::result::Result<u64, String> {
    s.trim()
        .parse::<u64>()
        .map_err(|_| format!("failpoint `{what}`: `{s}` is not a number"))
}

#[cfg(test)]
mod tests {
    use super::*;

    // Global registry: tests arm only `test.*` sites (never production
    // sites) and serialise on this lock so counts don't interleave.
    static SERIAL: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn serial() -> std::sync::MutexGuard<'static, ()> {
        SERIAL
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn disarmed_sites_are_inert() {
        let _g = serial();
        clear();
        assert!(!armed());
        assert!(hit("test.never.armed").is_none());
        assert!(failpoint("decode.lod").is_ok());
    }

    #[test]
    fn triggers_fire_on_schedule() {
        let _g = serial();
        clear();
        set("test.nth", FaultAction::Err, Trigger::Nth(3));
        let fires: Vec<bool> = (0..5).map(|_| hit("test.nth").is_some()).collect();
        assert_eq!(fires, [false, false, true, false, false]);
        assert_eq!(fired("test.nth"), 1);
        assert_eq!(hits("test.nth"), 5);

        set("test.first", FaultAction::Err, Trigger::First(2));
        let fires: Vec<bool> = (0..4).map(|_| hit("test.first").is_some()).collect();
        assert_eq!(fires, [true, true, false, false]);

        set("test.every", FaultAction::Err, Trigger::Every(2));
        let fires: Vec<bool> = (0..5).map(|_| hit("test.every").is_some()).collect();
        assert_eq!(fires, [false, true, false, true, false]);

        set("test.once", FaultAction::Panic, Trigger::Once);
        assert_eq!(hit("test.once"), Some(FaultAction::Panic));
        assert_eq!(hit("test.once"), None);
        clear();
    }

    #[test]
    fn prob_trigger_is_seed_deterministic() {
        let _g = serial();
        clear();
        set(
            "test.prob",
            FaultAction::Err,
            Trigger::Prob {
                per_mille: 300,
                seed: 42,
            },
        );
        let run1: Vec<bool> = (0..64).map(|_| hit("test.prob").is_some()).collect();
        set(
            "test.prob",
            FaultAction::Err,
            Trigger::Prob {
                per_mille: 300,
                seed: 42,
            },
        );
        let run2: Vec<bool> = (0..64).map(|_| hit("test.prob").is_some()).collect();
        assert_eq!(run1, run2, "same seed, same schedule");
        let hits_fired = run1.iter().filter(|&&b| b).count();
        assert!(
            hits_fired > 0 && hits_fired < 64,
            "p=0.3 fires some, not all"
        );
        clear();
    }

    #[test]
    fn failpoint_returns_typed_internal_error() {
        let _g = serial();
        clear();
        set("test.err", FaultAction::Err, Trigger::Always);
        // `failpoint` requires a 'static site name; test sites qualify.
        let err = failpoint("test.err").unwrap_err();
        assert!(matches!(
            err,
            Error::Internal {
                context: "test.err",
                ..
            }
        ));
        assert!(err.to_string().contains("injected fault"));
        clear();
    }

    #[test]
    fn spec_grammar_round_trips() {
        let _g = serial();
        clear();
        let n = configure(
            "test.a=err#3; test.b=partial(7)*2; test.c=disconnect%50@9; \
             test.d=delay(1); test.e=panic",
        )
        .expect("valid spec");
        assert_eq!(n, 5);
        let snap = snapshot();
        assert_eq!(snap.len(), 5);
        let by_name = |s: &str| snap.iter().find(|x| x.site == s).cloned().unwrap();
        assert_eq!(by_name("test.a").action, FaultAction::Err);
        assert_eq!(by_name("test.a").trigger, Trigger::Nth(3));
        assert_eq!(by_name("test.b").action, FaultAction::Partial(7));
        assert_eq!(by_name("test.b").trigger, Trigger::First(2));
        assert_eq!(
            by_name("test.c").trigger,
            Trigger::Prob {
                per_mille: 50,
                seed: 9
            }
        );
        assert_eq!(by_name("test.d").action, FaultAction::Delay(1));
        // Unmodified panic defaults to Once.
        assert_eq!(by_name("test.e").trigger, Trigger::Once);
        clear();

        assert!(configure("nonsense").is_err());
        assert!(configure("s=explode").is_err());
        assert!(configure("s=err?5").is_err());
        assert!(configure("s=delay(abc)").is_err());
        assert!(configure("s=err%2000").is_err());
        assert!(configure("s=err/0").is_err());
        assert!(!armed(), "failed configure arms nothing");
    }

    #[test]
    fn injection_is_counted_in_obs() {
        let _g = serial();
        clear();
        set("test.counted", FaultAction::Err, Trigger::Always);
        let before = obs::fault_injection_counter("test.counted").load(Ordering::Relaxed);
        assert!(hit("test.counted").is_some());
        let after = obs::fault_injection_counter("test.counted").load(Ordering::Relaxed);
        assert_eq!(after, before + 1);
        clear();
    }
}
