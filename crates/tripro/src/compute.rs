//! The geometry computer (paper §5.1): evaluates one decoded object pair —
//! intersection or minimum distance — under a configurable acceleration
//! strategy. The FPR paradigm calls this once per LOD per surviving pair.

use crate::cache::LodData;
use crate::gpu::BatchExecutor;
use crate::stats::ExecStats;
use std::time::Instant;
use tripro_geom::{tri_tri_dist2, tri_tri_intersect, Vec3};

/// Intra-geometry acceleration strategy (the columns of Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Accel {
    /// Evaluate every face pair directly.
    Brute,
    /// Skeleton-partitioned sub-objects with per-group boxes (§5.1).
    Partition,
    /// Per-object AABB-tree over faces (§5.1).
    Aabb,
    /// Batched data-parallel execution (simulated GPU, §5.1).
    Gpu,
    /// Partition pre-filtering feeding the batch executor.
    PartitionGpu,
    /// Per-object OBB-tree (Gottschalk et al.), the third intra-geometry
    /// index the paper's introduction cites. Extension column: not part of
    /// Table 1's strategy set ([`Accel::ALL`]).
    ObbTree,
}

impl Accel {
    /// All strategies, in Table 1 column order.
    pub const ALL: [Accel; 5] = [
        Accel::Brute,
        Accel::Partition,
        Accel::Aabb,
        Accel::Gpu,
        Accel::PartitionGpu,
    ];

    pub fn label(&self) -> &'static str {
        match self {
            Accel::Brute => "Brute-force",
            Accel::Partition => "Partition",
            Accel::Aabb => "AABB",
            Accel::Gpu => "GPU",
            Accel::PartitionGpu => "Partition+GPU",
            Accel::ObbTree => "OBB-tree",
        }
    }
}

/// Geometry computer bound to an acceleration strategy.
#[derive(Debug, Clone)]
pub struct Computer {
    pub accel: Accel,
    pub executor: BatchExecutor,
}

impl Computer {
    pub fn new(accel: Accel, threads: usize) -> Self {
        Self {
            accel,
            executor: BatchExecutor::new(threads),
        }
    }

    /// Do the two decoded geometries intersect (any face pair)?
    /// Skeletons drive the partition strategies and are ignored otherwise.
    pub fn intersects(
        &self,
        a: &LodData,
        b: &LodData,
        sk_a: &[Vec3],
        sk_b: &[Vec3],
        stats: &ExecStats,
    ) -> bool {
        let t0 = Instant::now();
        let (hit, tests) = match self.accel {
            Accel::Brute => brute_intersects(a, b),
            Accel::Aabb => {
                let mut n = 0;
                let hit = a.tree().intersects_tree(b.tree(), &mut n);
                (hit, n)
            }
            Accel::Partition => partition_intersects(a, b, sk_a, sk_b, None),
            Accel::Gpu => self.executor.any_intersect(&a.triangles, &b.triangles),
            Accel::PartitionGpu => partition_intersects(a, b, sk_a, sk_b, Some(&self.executor)),
            Accel::ObbTree => {
                let mut n = 0;
                let hit = a.obb_tree().intersects_tree(b.obb_tree(), &mut n);
                (hit, n)
            }
        };
        stats.add_face_pairs(tests);
        stats.add_compute(t0.elapsed());
        hit
    }

    /// Minimum distance (squared) between the two decoded geometries.
    /// `upper` seeds pruning; the result is `min(true d², upper)`.
    pub fn min_dist2(
        &self,
        a: &LodData,
        b: &LodData,
        sk_a: &[Vec3],
        sk_b: &[Vec3],
        upper: f64,
        stats: &ExecStats,
    ) -> f64 {
        let t0 = Instant::now();
        let (d2, tests) = match self.accel {
            Accel::Brute => brute_min_dist2(a, b, upper),
            Accel::Aabb => {
                let mut n = 0;
                let d2 = a.tree().min_dist2_tree(b.tree(), upper, &mut n);
                (d2, n)
            }
            Accel::Partition => partition_min_dist2(a, b, sk_a, sk_b, upper, None),
            Accel::Gpu => self.executor.min_dist2(&a.triangles, &b.triangles, upper),
            Accel::PartitionGpu => {
                partition_min_dist2(a, b, sk_a, sk_b, upper, Some(&self.executor))
            }
            Accel::ObbTree => {
                let mut n = 0;
                let d2 = a.obb_tree().min_dist2_tree(b.obb_tree(), upper, &mut n);
                (d2, n)
            }
        };
        stats.add_face_pairs(tests);
        stats.add_compute(t0.elapsed());
        d2
    }
}

fn brute_intersects(a: &LodData, b: &LodData) -> (bool, u64) {
    let mut tests = 0u64;
    for x in a.triangles.iter() {
        for y in b.triangles.iter() {
            tests += 1;
            if tri_tri_intersect(x, y) {
                return (true, tests);
            }
        }
    }
    (false, tests)
}

fn brute_min_dist2(a: &LodData, b: &LodData, upper: f64) -> (f64, u64) {
    let mut best = upper;
    let mut tests = 0u64;
    for x in a.triangles.iter() {
        for y in b.triangles.iter() {
            tests += 1;
            let d2 = tri_tri_dist2(x, y);
            if d2 < best {
                best = d2;
                if tripro_geom::is_exactly_zero(best) {
                    return (0.0, tests);
                }
            }
        }
    }
    (best, tests)
}

fn partition_intersects(
    a: &LodData,
    b: &LodData,
    sk_a: &[Vec3],
    sk_b: &[Vec3],
    executor: Option<&BatchExecutor>,
) -> (bool, u64) {
    let ga = a.groups(sk_a).clone();
    let gb = b.groups(sk_b).clone();
    let mut tests = 0u64;
    // GPU path: pack surviving group pairs, flushing every `kernel_size`
    // entries so the pack buffer stays bounded regardless of how many
    // group pairs survive the box filter — and an early hit in a flushed
    // batch skips packing the rest entirely.
    let mut pairs: Vec<(u32, u32)> = Vec::new();
    for (i, bi) in ga.non_empty() {
        for (j, bj) in gb.non_empty() {
            if !bi.intersects(bj) {
                continue;
            }
            if let Some(ex) = executor {
                for &fi in ga.group(i) {
                    for &fj in gb.group(j) {
                        pairs.push((fi, fj));
                    }
                }
                if pairs.len() >= ex.kernel_size {
                    let (hit, n) = ex.any_intersect_pairs(&a.triangles, &b.triangles, &pairs);
                    tests += n;
                    if hit {
                        return (true, tests);
                    }
                    pairs.clear();
                }
            } else {
                for &fi in ga.group(i) {
                    for &fj in gb.group(j) {
                        tests += 1;
                        if tri_tri_intersect(&a.triangles[fi as usize], &b.triangles[fj as usize]) {
                            return (true, tests);
                        }
                    }
                }
            }
        }
    }
    if let Some(ex) = executor {
        let (hit, n) = ex.any_intersect_pairs(&a.triangles, &b.triangles, &pairs);
        return (hit, tests + n);
    }
    (false, tests)
}

fn partition_min_dist2(
    a: &LodData,
    b: &LodData,
    sk_a: &[Vec3],
    sk_b: &[Vec3],
    upper: f64,
    executor: Option<&BatchExecutor>,
) -> (f64, u64) {
    let ga = a.groups(sk_a).clone();
    let gb = b.groups(sk_b).clone();
    // Order group pairs by box distance, then branch-and-bound.
    let mut group_pairs: Vec<(f64, usize, usize)> = Vec::new();
    for (i, bi) in ga.non_empty() {
        for (j, bj) in gb.non_empty() {
            group_pairs.push((bi.min_dist2(bj), i, j));
        }
    }
    group_pairs.sort_by(|x, y| x.0.total_cmp(&y.0));
    let mut best = upper;
    let mut tests = 0u64;
    if let Some(ex) = executor {
        // Pack surviving group pairs (by the box bound) and evaluate in
        // `kernel_size` batches. Flushing between batches both bounds the
        // pack buffer and tightens `best`, so later group pairs — sorted by
        // ascending box distance — are pruned by results already computed.
        let mut pairs: Vec<(u32, u32)> = Vec::new();
        for &(lb, i, j) in &group_pairs {
            if lb >= best {
                break;
            }
            for &fi in ga.group(i) {
                for &fj in gb.group(j) {
                    pairs.push((fi, fj));
                }
            }
            if pairs.len() >= ex.kernel_size {
                let (d2, n) = ex.min_dist2_pairs(&a.triangles, &b.triangles, &pairs, best);
                tests += n;
                best = best.min(d2);
                pairs.clear();
                if tripro_geom::is_exactly_zero(best) {
                    return (0.0, tests);
                }
            }
        }
        let (d2, n) = ex.min_dist2_pairs(&a.triangles, &b.triangles, &pairs, best);
        return (best.min(d2), tests + n);
    }
    for &(lb, i, j) in &group_pairs {
        if lb >= best {
            break;
        }
        for &fi in ga.group(i) {
            for &fj in gb.group(j) {
                tests += 1;
                let d2 = tri_tri_dist2(&a.triangles[fi as usize], &b.triangles[fj as usize]);
                if d2 < best {
                    best = d2;
                    if tripro_geom::is_exactly_zero(best) {
                        return (0.0, tests);
                    }
                }
            }
        }
    }
    (best, tests)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::sample_skeleton;
    use tripro_geom::{vec3, Triangle};

    fn sheet(n: usize, z: f64) -> LodData {
        let mut tris = Vec::new();
        for x in 0..n {
            for y in 0..n {
                let p = vec3(x as f64, y as f64, z);
                tris.push(Triangle::new(
                    p,
                    p + vec3(1.0, 0.0, 0.0),
                    p + vec3(0.0, 1.0, 0.0),
                ));
                tris.push(Triangle::new(
                    p + vec3(1.0, 0.0, 0.0),
                    p + vec3(1.0, 1.0, 0.0),
                    p + vec3(0.0, 1.0, 0.0),
                ));
            }
        }
        LodData::new(tris)
    }

    fn skeleton_of(d: &LodData, k: usize) -> Vec<Vec3> {
        let pts: Vec<Vec3> = d.triangles.iter().map(|t| t.centroid()).collect();
        sample_skeleton(&pts, k)
    }

    #[test]
    fn all_strategies_agree_on_distance() {
        let a = sheet(6, 0.0);
        let b = sheet(6, 4.0);
        let sk_a = skeleton_of(&a, 4);
        let sk_b = skeleton_of(&b, 4);
        let stats = ExecStats::new();
        let mut results = Vec::new();
        for accel in Accel::ALL {
            let c = Computer::new(accel, 4);
            let d2 = c.min_dist2(&a, &b, &sk_a, &sk_b, f64::INFINITY, &stats);
            results.push((accel, d2));
        }
        for (accel, d2) in &results {
            assert!((d2 - 16.0).abs() < 1e-9, "{accel:?} got {d2}");
        }
        assert!(stats.snapshot().face_pair_tests > 0);
    }

    #[test]
    fn all_strategies_agree_on_intersection() {
        let a = sheet(5, 0.0);
        // Tilted sheet crossing a's plane in the middle.
        let mut crossing = Vec::new();
        for x in 0..5 {
            let p = vec3(x as f64, 2.0, -1.0);
            crossing.push(Triangle::new(
                p,
                p + vec3(1.0, 0.0, 0.0),
                p + vec3(0.0, 0.5, 2.0),
            ));
        }
        let b = LodData::new(crossing);
        let far = sheet(5, 9.0);
        let sk_a = skeleton_of(&a, 3);
        let sk_b = skeleton_of(&b, 2);
        let sk_far = skeleton_of(&far, 3);
        let stats = ExecStats::new();
        for accel in Accel::ALL {
            let c = Computer::new(accel, 4);
            assert!(
                c.intersects(&a, &b, &sk_a, &sk_b, &stats),
                "{accel:?} missed hit"
            );
            assert!(
                !c.intersects(&a, &far, &sk_a, &sk_far, &stats),
                "{accel:?} false hit"
            );
        }
    }

    #[test]
    fn upper_bound_short_circuits() {
        let a = sheet(4, 0.0);
        let b = sheet(4, 10.0);
        let stats = ExecStats::new();
        for accel in Accel::ALL {
            let c = Computer::new(accel, 2);
            // True d² = 100; seed 9 ⇒ answer stays 9.
            let d2 = c.min_dist2(&a, &b, &[], &[], 9.0, &stats);
            assert_eq!(d2, 9.0, "{accel:?}");
        }
    }

    #[test]
    fn partition_gpu_chunked_flush_matches_unchunked() {
        // A kernel size far below the surviving pair count forces many
        // flushes; results must not change, and the inter-flush bound
        // tightening can only reduce the pairs actually evaluated.
        let a = sheet(6, 0.0);
        let b = sheet(6, 4.0);
        let sk_a = skeleton_of(&a, 4);
        let sk_b = skeleton_of(&b, 4);
        let mut tiny = Computer::new(Accel::PartitionGpu, 2);
        tiny.executor.kernel_size = 16;
        let big = Computer::new(Accel::PartitionGpu, 2);
        let s_tiny = ExecStats::new();
        let s_big = ExecStats::new();
        let d_tiny = tiny.min_dist2(&a, &b, &sk_a, &sk_b, f64::INFINITY, &s_tiny);
        let d_big = big.min_dist2(&a, &b, &sk_a, &sk_b, f64::INFINITY, &s_big);
        assert!((d_tiny - d_big).abs() < 1e-12);
        assert!((d_tiny - 16.0).abs() < 1e-9);
        assert!(
            s_tiny.snapshot().face_pair_tests <= s_big.snapshot().face_pair_tests,
            "chunked flush must not test more pairs"
        );
        // Intersection variant under the same forced chunking.
        assert!(!tiny.intersects(&a, &b, &sk_a, &sk_b, &s_tiny));
        let touching = sheet(6, 0.0);
        assert!(tiny.intersects(&a, &touching, &sk_a, &sk_a, &s_tiny));
    }

    #[test]
    fn partition_prunes_pairs() {
        // Two long thin strips far apart except at one end: partition should
        // skip most group pairs.
        let mut a_tris = Vec::new();
        let mut b_tris = Vec::new();
        for x in 0..40 {
            let p = vec3(x as f64, 0.0, 0.0);
            a_tris.push(Triangle::new(
                p,
                p + vec3(1.0, 0.0, 0.0),
                p + vec3(0.0, 1.0, 0.0),
            ));
            let q = vec3(x as f64, 0.0, 3.0 + x as f64 * 0.5);
            b_tris.push(Triangle::new(
                q,
                q + vec3(1.0, 0.0, 0.0),
                q + vec3(0.0, 1.0, 0.0),
            ));
        }
        let a = LodData::new(a_tris);
        let b = LodData::new(b_tris);
        let sk_a = skeleton_of(&a, 8);
        let sk_b = skeleton_of(&b, 8);
        let s_brute = ExecStats::new();
        let s_part = ExecStats::new();
        let brute =
            Computer::new(Accel::Brute, 1).min_dist2(&a, &b, &[], &[], f64::INFINITY, &s_brute);
        let part = Computer::new(Accel::Partition, 1).min_dist2(
            &a,
            &b,
            &sk_a,
            &sk_b,
            f64::INFINITY,
            &s_part,
        );
        assert!((brute - part).abs() < 1e-9);
        assert!(
            s_part.snapshot().face_pair_tests < s_brute.snapshot().face_pair_tests / 2,
            "partition {} vs brute {}",
            s_part.snapshot().face_pair_tests,
            s_brute.snapshot().face_pair_tests
        );
    }
}
