//! Span-based structured tracing with a lock-free ring-buffer sink and a
//! slow-query log.
//!
//! ## Model
//!
//! A *request* ([`Tracer::request`]) establishes a thread-local trace
//! context carrying a trace id (the wire `request_id` in the serve layer).
//! Within it, [`span`]/[`span_at`] guards time individual stages — filter,
//! per-object×LOD decode, per-LOD refine round, cache touch, pool task —
//! and stamp each [`SpanRecord`] with the propagated trace id and its
//! nesting depth. When the request guard drops, the accumulated span tree
//! is flushed to a global [`SpanRing`] and, if the request exceeded the
//! slow threshold, retained whole in the [`Tracer`]'s slow log (the N
//! worst requests, with full span trees).
//!
//! Spans recorded outside any request context (e.g. from pool helper
//! threads) go straight to the ring, carrying whatever trace id was
//! propagated to them explicitly (see `pool.rs`) or 0 for none.
//!
//! ## Cost discipline
//!
//! Tracing is **off by default**: every entry point first does one relaxed
//! atomic load ([`enabled`], `#[inline]`) and returns an inert guard, so a
//! disabled tracer adds a branch, not a syscall, to the hot path. The ring
//! claims slots wait-free with a `fetch_add` cursor; only the slot write
//! itself takes a tiny per-slot mutex to order wrap-around writers.

use crate::sync::{lock, Mutex};
use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// Sentinel for "no object id" on a span.
pub const NO_OBJECT: u32 = u32::MAX;
/// Sentinel for "no LOD" on a span.
pub const NO_LOD: u32 = u32::MAX;

/// What a span measures. Labels are stable identifiers used by the CLI
/// renderer and docs (`docs/observability.md`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// A whole serve/CLI request (root of a trace).
    Request,
    /// R-tree / MBB filter step of a query.
    Filter,
    /// Progressive decode of one object to one LOD.
    Decode,
    /// One LOD round of the refinement ladder.
    RefineRound,
    /// Geometric computation stage (used when stitching a shard's wire
    /// span summary into a coordinator trace).
    Compute,
    /// Decode-cache miss handling (lookup + insert bookkeeping).
    CacheTouch,
    /// One worker-pool task execution (broadcast job claim).
    PoolTask,
    /// One remote shard sub-query, stitched into a coordinator trace from
    /// the shard's wire span summary (`object` carries the shard index).
    Shard,
    /// One attempt of a retrying client (`object` carries the attempt
    /// index), so a retried request renders as one waterfall.
    RetryAttempt,
}

impl SpanKind {
    /// Stable lowercase label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            SpanKind::Request => "request",
            SpanKind::Filter => "filter",
            SpanKind::Decode => "decode",
            SpanKind::RefineRound => "refine_round",
            SpanKind::Compute => "compute",
            SpanKind::CacheTouch => "cache_touch",
            SpanKind::PoolTask => "pool_task",
            SpanKind::Shard => "shard",
            SpanKind::RetryAttempt => "retry_attempt",
        }
    }
}

/// One completed span.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Propagated request/trace id (0 = none).
    pub trace_id: u64,
    /// Stage this span measured.
    pub kind: SpanKind,
    /// Nesting depth below the request root (root = 0).
    pub depth: u16,
    /// Object id, or [`NO_OBJECT`].
    pub object: u32,
    /// LOD, or [`NO_LOD`].
    pub lod: u32,
    /// Start offset from the enclosing request start (ns); for spans
    /// without a request context, offset from tracer creation.
    pub start_ns: u64,
    /// Duration (ns).
    pub dur_ns: u64,
}

impl SpanRecord {
    /// Render one line of a span tree, indented by depth.
    #[must_use]
    pub fn render(&self) -> String {
        let mut line = String::new();
        for _ in 0..self.depth {
            line.push_str("  ");
        }
        line.push_str(self.kind.label());
        if self.object != NO_OBJECT {
            // Shard/attempt spans borrow the object field for their index;
            // label accordingly so cluster waterfalls read naturally.
            let key = match self.kind {
                SpanKind::Shard => "shard",
                SpanKind::RetryAttempt => "attempt",
                _ => "obj",
            };
            line.push_str(&format!(" {key}={}", self.object));
        }
        if self.lod != NO_LOD {
            line.push_str(&format!(" lod={}", self.lod));
        }
        line.push_str(&format!(
            " +{:.3}ms {:.3}ms",
            self.start_ns as f64 / 1e6,
            self.dur_ns as f64 / 1e6
        ));
        line
    }
}

/// Compact per-request execution summary a shard ships back on the wire
/// (protocol v6) so the coordinator can stitch shard-local detail into its
/// own trace without shipping whole span trees.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SpanSummary {
    /// The propagated trace id the work ran under.
    pub trace_id: u64,
    /// End-to-end request wall time on the shard (ns).
    pub total_ns: u64,
    /// Per-stage wall: global-index filter time (ns).
    pub filter_ns: u64,
    /// Per-stage wall: progressive decode time (ns).
    pub decode_ns: u64,
    /// Per-stage wall: geometric computation time (ns).
    pub compute_ns: u64,
    /// Bytes of geometry materialised by decodes.
    pub decoded_bytes: u64,
    /// Decode-cache hits.
    pub cache_hits: u64,
    /// Decode-cache misses.
    pub cache_misses: u64,
    /// Progressive refinement rounds executed.
    pub lod_rounds: u64,
    /// Object pairs resolved (pruned from further refinement).
    pub resolved_pairs: u64,
}

impl SpanSummary {
    /// Build a summary from a per-request stats snapshot.
    #[must_use]
    pub fn from_stats(trace_id: u64, total_ns: u64, s: &crate::stats::StatsSnapshot) -> Self {
        Self {
            trace_id,
            total_ns,
            filter_ns: s.filter_ns,
            decode_ns: s.decode_ns,
            compute_ns: s.compute_ns,
            decoded_bytes: s.decoded_bytes,
            cache_hits: s.cache_hits,
            cache_misses: s.cache_misses,
            lod_rounds: s.lod_rounds,
            resolved_pairs: s.resolved_pairs(),
        }
    }

    /// Decode-cache hit ratio in `[0, 1]`; 0.0 when nothing was requested.
    #[must_use]
    pub fn hit_ratio(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

/// Per-query cost attribution retained with a slow trace: the exemplar
/// that links the decode-cost metrics back to a concrete trace (the
/// margin planner's input signal — see ROADMAP).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CostExemplar {
    /// Bytes of geometry decoded for this query (all shards).
    pub decoded_bytes: u64,
    /// Object pairs resolved by this query (all shards).
    pub resolved_pairs: u64,
    /// Decode-cache hits / misses (all shards).
    pub cache_hits: u64,
    pub cache_misses: u64,
    /// Refinement rounds executed (all shards).
    pub lod_rounds: u64,
    /// Per-shard fanout contribution: `(shard, sub_query_wall_ns,
    /// decoded_bytes)`, one entry per shard that worked on the query.
    pub shards: Vec<(u32, u64, u64)>,
}

impl CostExemplar {
    /// Decoded bytes per resolved pair; 0.0 when nothing was resolved.
    #[must_use]
    pub fn bytes_per_pair(&self) -> f64 {
        if self.resolved_pairs == 0 {
            0.0
        } else {
            self.decoded_bytes as f64 / self.resolved_pairs as f64
        }
    }

    /// Decode-cache hit ratio in `[0, 1]`.
    #[must_use]
    pub fn hit_ratio(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Render the attribution lines appended to a slow-trace tree.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = format!(
            "cost: {} decoded bytes / {} resolved pairs = {:.1} B/pair, \
             cache {}/{} ({:.1}% hit), {} lod rounds",
            self.decoded_bytes,
            self.resolved_pairs,
            self.bytes_per_pair(),
            self.cache_hits,
            self.cache_hits + self.cache_misses,
            self.hit_ratio() * 100.0,
            self.lod_rounds,
        );
        if !self.shards.is_empty() {
            out.push_str("\nfanout:");
            for (shard, wall_ns, bytes) in &self.shards {
                out.push_str(&format!(
                    " shard {shard} {:.3}ms {bytes}B;",
                    *wall_ns as f64 / 1e6
                ));
            }
        }
        out
    }
}

/// A retained slow request: its id, total latency and full span tree in
/// start order.
#[derive(Debug, Clone)]
pub struct TraceRecord {
    /// Request/trace id.
    pub trace_id: u64,
    /// End-to-end request latency (ns).
    pub total_ns: u64,
    /// All spans of the request (root first, then by start offset).
    pub spans: Vec<SpanRecord>,
    /// Cost attribution, when the executing layer attached one
    /// ([`attach_exemplar`]).
    pub exemplar: Option<CostExemplar>,
}

impl TraceRecord {
    /// Render the whole span tree, one span per line, followed by the
    /// cost-attribution exemplar when present.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = format!(
            "trace {:#x} total {:.3}ms ({} spans)\n",
            self.trace_id,
            self.total_ns as f64 / 1e6,
            self.spans.len()
        );
        for s in &self.spans {
            out.push_str(&s.render());
            out.push('\n');
        }
        if let Some(ex) = &self.exemplar {
            for line in ex.render().lines() {
                out.push_str("  ");
                out.push_str(line);
                out.push('\n');
            }
        }
        out
    }
}

/// Tracing configuration. `Default` is disabled with a 4096-span ring, a
/// 50ms slow threshold and the 8 worst requests retained.
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// Master switch; when false every span entry point is a no-op stub.
    pub enabled: bool,
    /// Ring-buffer capacity (rounded up to a power of two, min 64).
    pub ring_capacity: usize,
    /// Requests at or above this total latency enter the slow log.
    pub slow_threshold: Duration,
    /// How many worst requests the slow log retains.
    pub keep: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        Self {
            enabled: false,
            ring_capacity: 4096,
            slow_threshold: Duration::from_millis(50),
            keep: 8,
        }
    }
}

/// Lock-free-claim span ring: a `fetch_add` cursor hands out slots
/// wait-free; each slot is a small mutex so lapped writers stay ordered.
pub struct SpanRing {
    // LOCK-RANK(90): per-slot span mutexes; leaf locks of the obs plane,
    // held only for a single record swap.
    slots: Box<[Mutex<Option<SpanRecord>>]>,
    cursor: AtomicUsize,
}

impl SpanRing {
    fn new(capacity: usize) -> Self {
        let cap = capacity.max(64).next_power_of_two();
        Self {
            slots: (0..cap).map(|_| Mutex::new(None)).collect(),
            cursor: AtomicUsize::new(0),
        }
    }

    fn push(&self, record: SpanRecord) {
        let i = self.cursor.fetch_add(1, Ordering::Relaxed) & (self.slots.len() - 1);
        if let Some(slot) = self.slots.get(i) {
            if lock(slot).replace(record).is_some() {
                // A lapped writer just discarded an unread span: make the
                // loss visible so an undersized ring is diagnosable.
                ring_overwrite_drops().fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Snapshot the ring contents, oldest first (best effort under
    /// concurrent writers).
    #[must_use]
    pub fn snapshot(&self) -> Vec<SpanRecord> {
        let cursor = self.cursor.load(Ordering::Relaxed);
        let cap = self.slots.len();
        let mut out = Vec::new();
        for off in 0..cap {
            let i = (cursor + off) & (cap - 1);
            if let Some(slot) = self.slots.get(i) {
                if let Some(r) = lock(slot).clone() {
                    out.push(r);
                }
            }
        }
        out
    }
}

struct SlowLog {
    keep: usize,
    worst: Vec<TraceRecord>,
}

impl SlowLog {
    fn offer(&mut self, record: TraceRecord) {
        self.worst.push(record);
        self.worst.sort_by_key(|r| std::cmp::Reverse(r.total_ns));
        if self.worst.len() > self.keep {
            let evicted = (self.worst.len() - self.keep) as u64;
            self.worst.truncate(self.keep);
            slow_log_evictions().fetch_add(evicted, Ordering::Relaxed);
        }
    }
}

/// Pre-bound handles for the `tripro_trace_dropped_total{reason}` family:
/// resolved once, then plain relaxed adds on the (already slow-path) drop
/// sites.
fn ring_overwrite_drops() -> &'static Arc<AtomicU64> {
    static C: OnceLock<Arc<AtomicU64>> = OnceLock::new();
    C.get_or_init(|| super::trace_dropped_counter("ring_overwrite"))
}

fn slow_log_evictions() -> &'static Arc<AtomicU64> {
    static C: OnceLock<Arc<AtomicU64>> = OnceLock::new();
    C.get_or_init(|| super::trace_dropped_counter("slow_log_evict"))
}

/// The global tracer: enable/disable switch, span ring and slow log.
pub struct Tracer {
    enabled: AtomicBool,
    slow_threshold_ns: AtomicU64,
    epoch: Instant,
    ring: SpanRing,
    // LOCK-RANK(91): slow-trace retention list; taken after ring slot
    // mutexes (90) on the span-finish path, never before them.
    slow: Mutex<SlowLog>,
}

impl Tracer {
    fn new(cfg: &TraceConfig) -> Self {
        Self {
            enabled: AtomicBool::new(cfg.enabled),
            slow_threshold_ns: AtomicU64::new(
                u64::try_from(cfg.slow_threshold.as_nanos()).unwrap_or(u64::MAX),
            ),
            epoch: Instant::now(),
            ring: SpanRing::new(cfg.ring_capacity),
            slow: Mutex::new(SlowLog {
                keep: cfg.keep.max(1),
                worst: Vec::new(),
            }),
        }
    }

    /// Apply `cfg`'s switch, threshold and retention. The ring capacity is
    /// fixed at first use (the default 4096) — documented limitation that
    /// keeps the ring allocation-free after startup.
    // ORDERING: Relaxed — the switch and threshold are advisory runtime
    // tuning; readers tolerate observing them out of order, and the span
    // payloads themselves are published by the slot mutexes, not by these
    // flags.
    pub fn configure(&self, cfg: &TraceConfig) {
        self.slow_threshold_ns.store(
            u64::try_from(cfg.slow_threshold.as_nanos()).unwrap_or(u64::MAX),
            Ordering::Relaxed,
        );
        lock(&self.slow).keep = cfg.keep.max(1);
        self.enabled.store(cfg.enabled, Ordering::Relaxed);
    }

    /// Master switch (used by tests and the overhead-guard bench).
    // ORDERING: Relaxed — see `configure`; the disabled path must cost one
    // relaxed load and nothing more.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Is tracing on?
    #[inline]
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Open a request-root trace context on this thread. All spans created
    /// on this thread until the guard drops join the trace. Inert when
    /// tracing is disabled.
    #[must_use]
    pub fn request(&'static self, trace_id: u64) -> RequestGuard {
        if !self.is_enabled() {
            return RequestGuard { active: false };
        }
        CTX.with(|ctx| {
            let mut ctx = ctx.borrow_mut();
            // Nested request guards (e.g. CLI driving the engine in-process
            // under an outer request) keep the outer context.
            if ctx.is_some() {
                return RequestGuard { active: false };
            }
            *ctx = Some(ThreadCtx {
                trace_id,
                depth: 0,
                start: Instant::now(),
                spans: Vec::with_capacity(16),
                exemplar: None,
            });
            RequestGuard { active: true }
        })
    }

    /// Snapshot the ring (all recently completed spans).
    #[must_use]
    pub fn ring_snapshot(&self) -> Vec<SpanRecord> {
        self.ring.snapshot()
    }

    /// The current slow log, worst request first.
    #[must_use]
    pub fn slow_log(&self) -> Vec<TraceRecord> {
        lock(&self.slow).worst.clone()
    }

    /// Drop all retained slow traces (used between CLI runs).
    pub fn clear_slow_log(&self) {
        lock(&self.slow).worst.clear();
    }
}

struct ThreadCtx {
    trace_id: u64,
    depth: u16,
    start: Instant,
    spans: Vec<SpanRecord>,
    exemplar: Option<CostExemplar>,
}

thread_local! {
    static CTX: RefCell<Option<ThreadCtx>> = const { RefCell::new(None) };
}

/// The global tracer (created disabled; see [`Tracer::configure`]).
#[must_use]
pub fn tracer() -> &'static Tracer {
    static TRACER: OnceLock<Tracer> = OnceLock::new();
    TRACER.get_or_init(|| Tracer::new(&TraceConfig::default()))
}

/// Fast global "is tracing on" check — one relaxed load.
#[inline]
#[must_use]
pub fn enabled() -> bool {
    tracer().is_enabled()
}

/// Render the whole slow log as text, worst request first — the payload
/// of a `TraceLogOk` wire reply and what `tripro trace --slow` prints.
#[must_use]
pub fn render_slow_log() -> String {
    let recs = tracer().slow_log();
    let mut out = String::new();
    for r in &recs {
        out.push_str(&r.render());
        out.push('\n');
    }
    out
}

/// The trace id of the request context on this thread, or 0. Used to
/// propagate ids across the pool boundary.
#[must_use]
pub fn current_trace_id() -> u64 {
    if !enabled() {
        return 0;
    }
    CTX.with(|ctx| ctx.borrow().as_ref().map_or(0, |c| c.trace_id))
}

/// Attach a per-query cost-attribution exemplar to the request context on
/// this thread; it is retained with the trace if the request enters the
/// slow log. Replaces any prior exemplar. Returns false (and drops the
/// exemplar) when tracing is off or no request context is open.
pub fn attach_exemplar(ex: CostExemplar) -> bool {
    if !enabled() {
        return false;
    }
    CTX.with(|ctx| {
        let mut ctx = ctx.borrow_mut();
        match ctx.as_mut() {
            Some(c) => {
                c.exemplar = Some(ex);
                true
            }
            None => false,
        }
    })
}

/// Record an already-measured span into the request context on this
/// thread — the stitching primitive for remote work: the coordinator
/// replays each shard's wire span summary as child spans of its own
/// trace. `started` anchors the span on the local waterfall (clamped to
/// the request start); `extra_depth` nests synthetic children below a
/// parent recorded the same way. Returns false when tracing is off or no
/// request context is open.
pub fn record_remote(
    kind: SpanKind,
    object: u32,
    lod: u32,
    started: Instant,
    dur_ns: u64,
    extra_depth: u16,
) -> bool {
    if !enabled() {
        return false;
    }
    CTX.with(|ctx| {
        let mut ctx = ctx.borrow_mut();
        match ctx.as_mut() {
            Some(c) => {
                let start_ns = u64::try_from(
                    started
                        .saturating_duration_since(c.start)
                        .as_nanos(),
                )
                .unwrap_or(0);
                let depth = c.depth.saturating_add(1).saturating_add(extra_depth);
                let trace_id = c.trace_id;
                c.spans.push(SpanRecord {
                    trace_id,
                    kind,
                    depth,
                    object,
                    lod,
                    start_ns,
                    dur_ns,
                });
                true
            }
            None => false,
        }
    })
}

/// Like [`span_for`] but with object/LOD attribution — used by the
/// retrying client to tag each attempt (`object` = attempt index) under
/// an explicitly propagated trace id.
#[inline]
#[must_use]
pub fn span_for_at(trace_id: u64, kind: SpanKind, object: u32, lod: u32) -> SpanGuard {
    if !enabled() {
        return SpanGuard { state: None };
    }
    SpanGuard::open(kind, object, lod, trace_id)
}

/// Guard for a request-root trace context (see [`Tracer::request`]).
pub struct RequestGuard {
    active: bool,
}

impl Drop for RequestGuard {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        let Some(ctx) = CTX.with(|ctx| ctx.borrow_mut().take()) else {
            return;
        };
        let total = ctx.start.elapsed();
        let total_ns = u64::try_from(total.as_nanos()).unwrap_or(u64::MAX);
        let t = tracer();
        let mut spans = ctx.spans;
        spans.push(SpanRecord {
            trace_id: ctx.trace_id,
            kind: SpanKind::Request,
            depth: 0,
            object: NO_OBJECT,
            lod: NO_LOD,
            start_ns: 0,
            dur_ns: total_ns,
        });
        spans.sort_by(|a, b| a.start_ns.cmp(&b.start_ns).then(a.depth.cmp(&b.depth)));
        for s in &spans {
            t.ring.push(s.clone());
        }
        // ORDERING: Relaxed — the threshold is advisory tuning; a stale
        // read misclassifies at most the traces racing a reconfigure.
        if total_ns >= t.slow_threshold_ns.load(Ordering::Relaxed) {
            lock(&t.slow).offer(TraceRecord {
                trace_id: ctx.trace_id,
                total_ns,
                spans,
                exemplar: ctx.exemplar,
            });
        }
    }
}

/// Guard timing one span. Created by [`span`]/[`span_at`]; records on drop.
pub struct SpanGuard {
    state: Option<SpanState>,
}

struct SpanState {
    kind: SpanKind,
    object: u32,
    lod: u32,
    /// Explicitly propagated trace id (for spans on threads without a
    /// request context, e.g. pool helpers); 0 = use the thread context.
    trace_id: u64,
    start: Instant,
    depth: u16,
}

/// Time a stage with no object/LOD attribution. `#[inline]` no-op stub
/// when tracing is disabled: one relaxed load, no clock read.
#[inline]
#[must_use]
pub fn span(kind: SpanKind) -> SpanGuard {
    span_at(kind, NO_OBJECT, NO_LOD)
}

/// Time a stage attributed to `object` at `lod` (either may be the
/// [`NO_OBJECT`]/[`NO_LOD`] sentinel).
#[inline]
#[must_use]
pub fn span_at(kind: SpanKind, object: u32, lod: u32) -> SpanGuard {
    if !enabled() {
        return SpanGuard { state: None };
    }
    SpanGuard::open(kind, object, lod, 0)
}

/// Time a span on behalf of an explicitly propagated trace id — used by
/// pool helper threads, which run outside the requesting thread's context.
#[inline]
#[must_use]
pub fn span_for(trace_id: u64, kind: SpanKind) -> SpanGuard {
    if !enabled() {
        return SpanGuard { state: None };
    }
    SpanGuard::open(kind, NO_OBJECT, NO_LOD, trace_id)
}

impl SpanGuard {
    fn open(kind: SpanKind, object: u32, lod: u32, trace_id: u64) -> SpanGuard {
        let depth = CTX.with(|ctx| {
            let mut ctx = ctx.borrow_mut();
            match ctx.as_mut() {
                Some(c) => {
                    c.depth = c.depth.saturating_add(1);
                    c.depth
                }
                None => 1,
            }
        });
        SpanGuard {
            state: Some(SpanState {
                kind,
                object,
                lod,
                trace_id,
                start: Instant::now(),
                depth,
            }),
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(s) = self.state.take() else {
            return;
        };
        let dur_ns = u64::try_from(s.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let recorded_in_ctx = CTX.with(|ctx| {
            let mut ctx = ctx.borrow_mut();
            match ctx.as_mut() {
                Some(c) => {
                    let start_ns =
                        u64::try_from(s.start.duration_since(c.start).as_nanos()).unwrap_or(0);
                    c.spans.push(SpanRecord {
                        trace_id: c.trace_id,
                        kind: s.kind,
                        depth: s.depth,
                        object: s.object,
                        lod: s.lod,
                        start_ns,
                        dur_ns,
                    });
                    c.depth = c.depth.saturating_sub(1);
                    true
                }
                None => false,
            }
        });
        if !recorded_in_ctx {
            let t = tracer();
            let start_ns =
                u64::try_from(s.start.duration_since(t.epoch).as_nanos()).unwrap_or(u64::MAX);
            t.ring.push(SpanRecord {
                trace_id: s.trace_id,
                kind: s.kind,
                depth: s.depth,
                object: s.object,
                lod: s.lod,
                start_ns,
                dur_ns,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The tracer is process-global state shared with other tests in this
    // crate; serialise the tests that touch it.
    static GATE: Mutex<()> = Mutex::new(());

    fn with_tracing<R>(f: impl FnOnce() -> R) -> R {
        let _g = lock(&GATE);
        tracer().configure(&TraceConfig {
            enabled: true,
            slow_threshold: Duration::ZERO,
            keep: 4,
            ..TraceConfig::default()
        });
        tracer().clear_slow_log();
        let r = f();
        tracer().set_enabled(false);
        r
    }

    #[test]
    fn disabled_spans_are_inert() {
        let _g = lock(&GATE);
        tracer().set_enabled(false);
        let before = tracer().ring_snapshot().len();
        {
            let _g = span(SpanKind::Filter);
            let _h = span_at(SpanKind::Decode, 3, 1);
        }
        assert_eq!(tracer().ring_snapshot().len(), before);
        assert_eq!(current_trace_id(), 0);
    }

    #[test]
    fn request_collects_nested_span_tree() {
        with_tracing(|| {
            {
                let _req = tracer().request(0xABCD);
                assert_eq!(current_trace_id(), 0xABCD);
                let _f = span(SpanKind::Filter);
                drop(_f);
                {
                    let _r = span_at(SpanKind::RefineRound, NO_OBJECT, 2);
                    let _d = span_at(SpanKind::Decode, 7, 2);
                }
            }
            let slow = tracer().slow_log();
            assert!(!slow.is_empty(), "zero threshold retains every request");
            let t = &slow[0];
            assert_eq!(t.trace_id, 0xABCD);
            let kinds: Vec<_> = t.spans.iter().map(|s| s.kind).collect();
            assert!(kinds.contains(&SpanKind::Request));
            assert!(kinds.contains(&SpanKind::Filter));
            assert!(kinds.contains(&SpanKind::Decode));
            // Root is depth 0 and first after sorting by start.
            assert_eq!(t.spans[0].kind, SpanKind::Request);
            assert_eq!(t.spans[0].depth, 0);
            // The decode nested under the refine round is deeper.
            let refine = t.spans.iter().find(|s| s.kind == SpanKind::RefineRound);
            let decode = t.spans.iter().find(|s| s.kind == SpanKind::Decode);
            match (refine, decode) {
                (Some(r), Some(d)) => assert!(d.depth > r.depth),
                _ => panic!("missing refine/decode spans"),
            }
            let rendered = t.render();
            assert!(rendered.contains("filter"));
            assert!(rendered.contains("obj=7"));
        });
    }

    #[test]
    fn slow_log_keeps_worst_n() {
        with_tracing(|| {
            for i in 0..10u64 {
                let _req = tracer().request(i);
                std::hint::black_box(i);
            }
            let slow = tracer().slow_log();
            assert!(slow.len() <= 4, "keep=4 bounds the slow log");
            // Worst-first ordering.
            for w in slow.windows(2) {
                assert!(w[0].total_ns >= w[1].total_ns);
            }
        });
    }

    #[test]
    fn spans_without_context_go_to_ring_with_propagated_id() {
        with_tracing(|| {
            {
                let _g = span_for(0x51, SpanKind::PoolTask);
            }
            let ring = tracer().ring_snapshot();
            assert!(ring
                .iter()
                .any(|s| s.kind == SpanKind::PoolTask && s.trace_id == 0x51));
        });
    }

    #[test]
    fn trace_drops_are_counted_by_reason() {
        with_tracing(|| {
            let overwrites0 = ring_overwrite_drops().load(Ordering::Relaxed);
            let evictions0 = slow_log_evictions().load(Ordering::Relaxed);
            // Lap the (4096-slot) ring twice: every slot past the first
            // pass replaces a live record.
            for _ in 0..(2 * 4096) {
                let _g = span(SpanKind::CacheTouch);
            }
            assert!(
                ring_overwrite_drops().load(Ordering::Relaxed) >= overwrites0 + 4096,
                "lapping the ring must count overwrites"
            );
            // keep=4 (with_tracing config): 10 zero-threshold requests
            // force at least 6 evictions.
            for i in 0..10u64 {
                let _req = tracer().request(i + 1);
            }
            assert!(
                slow_log_evictions().load(Ordering::Relaxed) >= evictions0 + 6,
                "slow-log truncation must count evictions"
            );
        });
    }

    #[test]
    fn remote_spans_and_exemplar_stitch_into_the_trace() {
        with_tracing(|| {
            let t0 = Instant::now();
            {
                let _req = tracer().request(0x77);
                assert!(record_remote(SpanKind::Shard, 2, NO_LOD, t0, 5_000_000, 0));
                assert!(record_remote(SpanKind::Decode, NO_OBJECT, 3, t0, 2_000_000, 1));
                assert!(attach_exemplar(CostExemplar {
                    decoded_bytes: 4096,
                    resolved_pairs: 8,
                    cache_hits: 3,
                    cache_misses: 1,
                    lod_rounds: 2,
                    shards: vec![(2, 5_000_000, 4096)],
                }));
            }
            let slow = tracer().slow_log();
            let t = slow
                .iter()
                .find(|t| t.trace_id == 0x77)
                .expect("request retained");
            let shard = t
                .spans
                .iter()
                .find(|s| s.kind == SpanKind::Shard)
                .expect("stitched shard span");
            assert_eq!(shard.object, 2);
            assert_eq!(shard.dur_ns, 5_000_000);
            let child = t
                .spans
                .iter()
                .find(|s| s.kind == SpanKind::Decode)
                .expect("stitched child span");
            assert_eq!(child.depth, shard.depth + 1);
            let ex = t.exemplar.as_ref().expect("exemplar retained");
            assert!((ex.bytes_per_pair() - 512.0).abs() < 1e-9);
            assert!((ex.hit_ratio() - 0.75).abs() < 1e-9);
            let rendered = t.render();
            assert!(rendered.contains("shard=2"), "{rendered}");
            assert!(rendered.contains("512.0 B/pair"), "{rendered}");
            assert!(rendered.contains("fanout: shard 2"), "{rendered}");
        });
        // Outside a request context both primitives refuse quietly.
        let _g = lock(&GATE);
        tracer().set_enabled(true);
        assert!(!record_remote(
            SpanKind::Shard,
            0,
            NO_LOD,
            Instant::now(),
            1,
            0
        ));
        assert!(!attach_exemplar(CostExemplar::default()));
        tracer().set_enabled(false);
    }

    #[test]
    fn ring_wraps_without_loss_of_recent_spans() {
        with_tracing(|| {
            for _ in 0..(4096 + 64) {
                let _g = span(SpanKind::CacheTouch);
            }
            let ring = tracer().ring_snapshot();
            assert!(!ring.is_empty());
            assert!(ring.len() <= 4096);
        });
    }
}
