//! A process-global metrics registry: named counters and histograms with
//! Prometheus-style labels.
//!
//! Handles are `Arc`s — call sites resolve a metric **once** (typically
//! into a `OnceLock` or a struct field) and then update it with plain
//! atomic operations; the registry mutex is only taken at registration and
//! scrape time, never on the per-sample hot path.
//!
//! Label sets are rendered to a canonical string at registration
//! (`k1="v1",k2="v2"`, keys sorted, values escaped), so the same
//! name+labels always resolves to the same underlying metric.

use super::histogram::Histogram;
use crate::sync::{lock, Mutex};
use std::collections::BTreeMap;
use std::sync::atomic::AtomicU64;
use std::sync::{Arc, OnceLock};

/// A handle to a registered metric.
#[derive(Clone)]
pub enum Metric {
    /// Monotonic counter.
    Counter(Arc<AtomicU64>),
    /// Log-linear latency histogram (nanosecond samples).
    Histogram(Arc<Histogram>),
}

impl Metric {
    /// Prometheus `# TYPE` keyword for this metric.
    #[must_use]
    pub fn type_name(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Histogram(_) => "histogram",
        }
    }
}

struct Entry {
    help: &'static str,
    metric: Metric,
}

/// One metric name with all its labelled samples, in label order.
pub struct MetricFamily {
    /// Metric name (`tripro_*`).
    pub name: &'static str,
    /// `# HELP` text.
    pub help: &'static str,
    /// `(rendered_labels, handle)` pairs; the label string is empty for
    /// unlabelled metrics.
    pub samples: Vec<(String, Metric)>,
}

/// Registry of named metrics. See the module docs for the access pattern.
#[derive(Default)]
pub struct MetricsRegistry {
    // LOCK-RANK(95): registration/scrape map; leaf lock of the obs plane,
    // taken with nothing else held (hot-path updates go through the
    // pre-registered atomic handles, never this mutex).
    entries: Mutex<BTreeMap<(&'static str, String), Entry>>,
}

/// Render a label set canonically: keys sorted, values escaped per the
/// Prometheus text format (`\\`, `\"`, `\n`).
#[must_use]
pub fn render_labels(labels: &[(&str, &str)]) -> String {
    let mut sorted: Vec<_> = labels.to_vec();
    sorted.sort_unstable();
    let mut out = String::new();
    for (i, (k, v)) in sorted.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        for c in v.chars() {
            match c {
                '\\' => out.push_str("\\\\"),
                '"' => out.push_str("\\\""),
                '\n' => out.push_str("\\n"),
                c => out.push(c),
            }
        }
        out.push('"');
    }
    out
}

impl MetricsRegistry {
    /// An empty registry (use [`global`] for the process-wide one).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Get or create the counter `name{labels}`. If the key is already
    /// registered as a different metric type, a detached (unexported)
    /// counter is returned rather than panicking — the lint-visible
    /// failure mode for a naming collision is a missing series, not an
    /// abort on the query path.
    pub fn counter(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&str, &str)],
    ) -> Arc<AtomicU64> {
        let key = (name, render_labels(labels));
        let mut entries = lock(&self.entries);
        let entry = entries.entry(key).or_insert_with(|| Entry {
            help,
            metric: Metric::Counter(Arc::new(AtomicU64::new(0))),
        });
        match &entry.metric {
            Metric::Counter(c) => Arc::clone(c),
            Metric::Histogram(_) => Arc::new(AtomicU64::new(0)),
        }
    }

    /// Get or create the histogram `name{labels}`. Same collision policy
    /// as [`MetricsRegistry::counter`].
    pub fn histogram(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&str, &str)],
    ) -> Arc<Histogram> {
        let key = (name, render_labels(labels));
        let mut entries = lock(&self.entries);
        let entry = entries.entry(key).or_insert_with(|| Entry {
            help,
            metric: Metric::Histogram(Arc::new(Histogram::new())),
        });
        match &entry.metric {
            Metric::Histogram(h) => Arc::clone(h),
            Metric::Counter(_) => Arc::new(Histogram::new()),
        }
    }

    /// Snapshot every registered metric, grouped by name in sorted order.
    /// Handles are cloned `Arc`s: values read from them are live.
    #[must_use]
    pub fn families(&self) -> Vec<MetricFamily> {
        let entries = lock(&self.entries);
        let mut out: Vec<MetricFamily> = Vec::new();
        for ((name, labels), entry) in entries.iter() {
            match out.last_mut() {
                Some(fam) if fam.name == *name => {
                    fam.samples.push((labels.clone(), entry.metric.clone()));
                }
                _ => out.push(MetricFamily {
                    name,
                    help: entry.help,
                    samples: vec![(labels.clone(), entry.metric.clone())],
                }),
            }
        }
        out
    }

    /// Number of registered series (for tests).
    #[must_use]
    pub fn len(&self) -> usize {
        lock(&self.entries).len()
    }

    /// True if nothing has been registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The process-wide registry used by all engine and service
/// instrumentation.
#[must_use]
pub fn global() -> &'static MetricsRegistry {
    static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
    GLOBAL.get_or_init(MetricsRegistry::new)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering;

    #[test]
    fn same_key_resolves_to_same_counter() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("t_total", "h", &[("shard", "3")]);
        let b = reg.counter("t_total", "h", &[("shard", "3")]);
        a.fetch_add(2, Ordering::Relaxed);
        b.fetch_add(1, Ordering::Relaxed);
        assert_eq!(a.load(Ordering::Relaxed), 3);
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn label_order_does_not_matter() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("t", "h", &[("a", "1"), ("b", "2")]);
        let b = reg.counter("t", "h", &[("b", "2"), ("a", "1")]);
        a.fetch_add(1, Ordering::Relaxed);
        assert_eq!(b.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn label_values_are_escaped() {
        let s = render_labels(&[("k", "a\"b\\c\nd")]);
        assert_eq!(s, "k=\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn kind_collision_returns_detached_handle() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("m", "h", &[]);
        let h = reg.histogram("m", "h", &[]);
        h.record(5);
        // The registered entry is still the counter; the histogram handle
        // is detached and the registry is unchanged.
        c.fetch_add(1, Ordering::Relaxed);
        assert_eq!(reg.len(), 1);
        let fams = reg.families();
        assert_eq!(fams.len(), 1);
        assert_eq!(fams[0].samples[0].1.type_name(), "counter");
    }

    #[test]
    fn families_group_by_name_in_order() {
        let reg = MetricsRegistry::new();
        reg.counter("b_total", "bees", &[("x", "1")]);
        reg.counter("b_total", "bees", &[("x", "2")]);
        reg.counter("a_total", "ays", &[]);
        let fams = reg.families();
        assert_eq!(fams.len(), 2);
        assert_eq!(fams[0].name, "a_total");
        assert_eq!(fams[1].name, "b_total");
        assert_eq!(fams[1].samples.len(), 2);
    }
}
