//! End-to-end observability: structured span tracing, log-linear latency
//! histograms, a global metrics registry and Prometheus text exposition.
//!
//! Dependency-free by construction (std atomics + the crate's own sync
//! helpers). See `docs/observability.md` for the span taxonomy, the
//! metric inventory with units, and the overhead budget.
//!
//! Two cost tiers, by design:
//!
//! * **Registry metrics are always on.** Counters and histograms are bare
//!   relaxed atomics, resolved once into `OnceLock`-cached handles — the
//!   same cost class as the existing [`ExecStats`](crate::ExecStats)
//!   counters that already sit on the hot path.
//! * **Span tracing is off by default.** Every span entry point starts
//!   with one `#[inline]` relaxed load ([`trace::enabled`]) and returns an
//!   inert guard when a [`TraceConfig`] has not enabled tracing, so the
//!   disabled cost is a branch, not a clock read. The overhead-guard
//!   bench (`bench_obs`) holds the enabled-vs-disabled gap under 2% on
//!   `bench_joins`.

pub mod export;
pub mod histogram;
pub mod registry;
pub mod trace;

pub use export::{
    render_federated, render_prometheus, snapshot_registry, validate_exposition, MetricSnapshot,
    MetricValue, NodeSnapshot, CLUSTER_NODE,
};
pub use histogram::{Histogram, HistogramSnapshot};
pub use registry::{Metric, MetricFamily, MetricsRegistry};
pub use trace::{
    attach_exemplar, current_trace_id, enabled, record_remote, render_slow_log, span, span_at,
    span_for, span_for_at, tracer, CostExemplar, SpanKind, SpanRecord, SpanSummary, TraceConfig,
    TraceRecord, Tracer,
};

use std::sync::atomic::AtomicU64;
use std::sync::{Arc, OnceLock};

/// Render the global registry as Prometheus text exposition.
#[must_use]
pub fn render_global() -> String {
    render_prometheus(registry::global())
}

/// The process-wide [`MetricsRegistry`].
#[must_use]
pub fn registry() -> &'static MetricsRegistry {
    registry::global()
}

/// Number of per-shard series pre-bound for the decode cache (must cover
/// [`crate::cache`]'s `SHARD_COUNT`).
const CACHE_SHARDS: usize = 16;
/// Decode-latency histograms are pre-bound for LODs `0..OBS_LODS-1`; the
/// last slot aggregates every higher LOD as `lod="15+"`.
const OBS_LODS: usize = 16;

static SHARD_LABELS: [&str; CACHE_SHARDS] = [
    "0", "1", "2", "3", "4", "5", "6", "7", "8", "9", "10", "11", "12", "13", "14", "15",
];
static LOD_LABELS: [&str; OBS_LODS] = [
    "0", "1", "2", "3", "4", "5", "6", "7", "8", "9", "10", "11", "12", "13", "14", "15+",
];

fn sharded_counters(name: &'static str, help: &'static str) -> [Arc<AtomicU64>; CACHE_SHARDS] {
    std::array::from_fn(|i| {
        registry().counter(
            name,
            help,
            &[("shard", SHARD_LABELS[i.min(CACHE_SHARDS - 1)])],
        )
    })
}

macro_rules! shard_counter_fn {
    ($fn_name:ident, $metric:literal, $help:literal) => {
        /// Pre-bound per-shard counter (see metric name in the body).
        #[inline]
        #[must_use]
        pub fn $fn_name(shard: usize) -> &'static AtomicU64 {
            static HANDLES: OnceLock<[Arc<AtomicU64>; CACHE_SHARDS]> = OnceLock::new();
            let handles = HANDLES.get_or_init(|| sharded_counters($metric, $help));
            &handles[shard.min(CACHE_SHARDS - 1)]
        }
    };
}

shard_counter_fn!(
    cache_hit_counter,
    "tripro_cache_hits_total",
    "Decode cache hits by shard."
);
shard_counter_fn!(
    cache_miss_counter,
    "tripro_cache_misses_total",
    "Decode cache misses by shard."
);
shard_counter_fn!(
    cache_evict_counter,
    "tripro_cache_evictions_total",
    "Decode cache evictions by shard."
);

/// Pre-bound decode-latency histogram for `lod` (seconds in exposition;
/// LODs ≥ 15 aggregate into the `15+` series).
#[inline]
#[must_use]
pub fn decode_histogram(lod: usize) -> &'static Histogram {
    static HANDLES: OnceLock<[Arc<Histogram>; OBS_LODS]> = OnceLock::new();
    let handles = HANDLES.get_or_init(|| {
        std::array::from_fn(|i| {
            registry().histogram(
                "tripro_decode_latency_seconds",
                "Progressive decode latency by LOD.",
                &[("lod", LOD_LABELS[i.min(OBS_LODS - 1)])],
            )
        })
    });
    &handles[lod.min(OBS_LODS - 1)]
}

/// Pool queue wait: time from job post to a worker claiming it.
#[inline]
#[must_use]
pub fn pool_wait_histogram() -> &'static Histogram {
    static H: OnceLock<Arc<Histogram>> = OnceLock::new();
    H.get_or_init(|| {
        registry().histogram(
            "tripro_pool_queue_wait_seconds",
            "Worker-pool queue wait: job post to claim.",
            &[],
        )
    })
}

/// Pool occupancy: number of workers active on a job at each claim
/// (a histogram of small integers — the exposition's `_sum/_count` give
/// mean occupancy; quantiles give the distribution).
#[inline]
#[must_use]
pub fn pool_occupancy_histogram() -> &'static Histogram {
    static H: OnceLock<Arc<Histogram>> = OnceLock::new();
    H.get_or_init(|| {
        registry().histogram(
            "tripro_pool_occupancy_workers",
            "Workers active on a pool job at claim time.",
            &[],
        )
    })
}

/// The five query operations the engine answers, as stable metric labels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryOp {
    /// Intersection query/join.
    Intersect,
    /// Within-distance query/join.
    Within,
    /// Nearest-neighbour query/join.
    Nn,
    /// k-nearest-neighbour query/join.
    Knn,
    /// Point-containment query.
    Contains,
}

impl QueryOp {
    /// Stable lowercase label used in `kind=` metric labels.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            QueryOp::Intersect => "intersect",
            QueryOp::Within => "within",
            QueryOp::Nn => "nn",
            QueryOp::Knn => "knn",
            QueryOp::Contains => "contains",
        }
    }

    fn idx(self) -> usize {
        match self {
            QueryOp::Intersect => 0,
            QueryOp::Within => 1,
            QueryOp::Nn => 2,
            QueryOp::Knn => 3,
            QueryOp::Contains => 4,
        }
    }
}

/// Pre-bound per-query latency histogram by kind and paradigm (`fpr`
/// selects `paradigm="FPR"` over `"FR"`). The whole grid resolves once;
/// per-query cost is two array indexings.
#[inline]
#[must_use]
pub fn query_latency_histogram(op: QueryOp, fpr: bool) -> &'static Histogram {
    static GRID: OnceLock<[[Arc<Histogram>; 2]; 5]> = OnceLock::new();
    let grid = GRID.get_or_init(|| {
        let ops = [
            QueryOp::Intersect,
            QueryOp::Within,
            QueryOp::Nn,
            QueryOp::Knn,
            QueryOp::Contains,
        ];
        std::array::from_fn(|k| {
            std::array::from_fn(|p| {
                registry().histogram(
                    "tripro_query_latency_seconds",
                    "End-to-end query latency by kind and paradigm.",
                    &[
                        ("kind", ops[k.min(4)].label()),
                        ("paradigm", if p == 1 { "FPR" } else { "FR" }),
                    ],
                )
            })
        })
    });
    &grid[op.idx()][usize::from(fpr)]
}

/// Drop guard recording its lifetime into a histogram — survives early
/// returns and `?` error paths, so deadline-expired queries are measured
/// too (their tail is exactly what the slow log is for).
pub struct LatencyTimer {
    h: &'static Histogram,
    start: std::time::Instant,
}

impl Drop for LatencyTimer {
    fn drop(&mut self) {
        self.h.record_duration(self.start.elapsed());
    }
}

/// Start timing into `h`; recording happens when the guard drops.
#[inline]
#[must_use]
pub fn time(h: &'static Histogram) -> LatencyTimer {
    LatencyTimer {
        h,
        start: std::time::Instant::now(),
    }
}

/// Admission/completion outcome counter for the serve layer
/// (`outcome` ∈ admitted|shed|completed|deadline_expired|failed|protocol_error).
#[must_use]
pub fn request_outcome_counter(outcome: &str) -> Arc<AtomicU64> {
    registry().counter(
        "tripro_requests_total",
        "Service requests by admission/completion outcome.",
        &[("outcome", outcome)],
    )
}

/// Pipeline stage names in executor order, used as stable metric labels
/// (mirrors [`crate::stats::STAGE_NAMES`]).
const PIPE_STAGE_LABELS: [&str; 4] = ["generate", "decode", "build", "eval"];

/// Inter-stage queue names: the stage pair each bounded queue connects.
const PIPE_QUEUE_LABELS: [&str; 3] = ["gen_decode", "decode_build", "build_eval"];

/// Per-item service latency of one pipelined-executor stage. Summed across
/// stages and compared with wall clock, these are the occupancy evidence
/// that decode and kernel evaluation overlap (ISSUE 7 acceptance).
#[inline]
#[must_use]
pub fn pipeline_stage_histogram(stage: usize) -> &'static Histogram {
    static HANDLES: OnceLock<[Arc<Histogram>; 4]> = OnceLock::new();
    let handles = HANDLES.get_or_init(|| {
        std::array::from_fn(|i| {
            registry().histogram(
                "tripro_pipeline_stage_seconds",
                "Pipelined join executor: per-item stage service time.",
                &[("stage", PIPE_STAGE_LABELS[i])],
            )
        })
    });
    &handles[stage.min(3)]
}

/// Depth of a bounded inter-stage queue, sampled at each push. The
/// `_sum/_count` ratio is the mean standing depth; a p99 near the bound
/// means the downstream stage is the bottleneck (backpressure engaged).
#[inline]
#[must_use]
pub fn pipeline_queue_depth_histogram(queue: usize) -> &'static Histogram {
    static HANDLES: OnceLock<[Arc<Histogram>; 3]> = OnceLock::new();
    let handles = HANDLES.get_or_init(|| {
        std::array::from_fn(|i| {
            registry().histogram(
                "tripro_pipeline_queue_depth",
                "Pipelined join executor: queue depth sampled at push.",
                &[("queue", PIPE_QUEUE_LABELS[i])],
            )
        })
    });
    &handles[queue.min(2)]
}

/// Number of distinct pipeline stages busy at once, sampled at each
/// stage entry. Samples ≥ 2 are direct evidence of stage overlap (e.g.
/// kernel evaluation concurrent with decode).
#[inline]
#[must_use]
pub fn pipeline_concurrency_histogram() -> &'static Histogram {
    static H: OnceLock<Arc<Histogram>> = OnceLock::new();
    H.get_or_init(|| {
        registry().histogram(
            "tripro_pipeline_concurrent_stages",
            "Distinct pipeline stages busy, sampled at stage entry.",
            &[],
        )
    })
}

/// Backpressure stalls: a producer found queue `queue` full and ran the
/// downstream stage inline instead of blocking.
#[inline]
#[must_use]
pub fn pipeline_stall_counter(queue: usize) -> &'static AtomicU64 {
    static HANDLES: OnceLock<[Arc<AtomicU64>; 3]> = OnceLock::new();
    let handles = HANDLES.get_or_init(|| {
        std::array::from_fn(|i| {
            registry().counter(
                "tripro_pipeline_stalls_total",
                "Pipelined join executor: queue-full backpressure events.",
                &[("queue", PIPE_QUEUE_LABELS[i])],
            )
        })
    });
    &handles[queue.min(2)]
}

/// Panics caught by a containment boundary (pool worker, pipeline stage,
/// serve request/connection handler). Contained panics convert to
/// [`Error::Internal`](crate::Error::Internal) instead of unwinding the
/// process; this counter is the audit trail that containment fired.
#[must_use]
pub fn panic_counter(context: &'static str) -> Arc<AtomicU64> {
    registry().counter(
        "tripro_panics_total",
        "Panics caught and contained, by containment boundary.",
        &[("context", context)],
    )
}

/// Failpoint actions fired, by site (see [`crate::fault`]). Incremented
/// only when an armed failpoint actually triggers, so a zero series means
/// the schedule never fired — chaos tests assert on exactly that.
#[must_use]
pub fn fault_injection_counter(site: &str) -> Arc<AtomicU64> {
    registry().counter(
        "tripro_fault_injections_total",
        "Fault-injection failpoint actions fired, by site.",
        &[("site", site)],
    )
}

/// Retries-per-request distribution observed by the resilient serve
/// client (0 = first attempt succeeded). `_sum/_count` is the mean retry
/// rate; the p99 shows whether the retry budget is actually being spent.
#[inline]
#[must_use]
pub fn request_retries_histogram() -> &'static Histogram {
    static H: OnceLock<Arc<Histogram>> = OnceLock::new();
    H.get_or_init(|| {
        registry().histogram(
            "tripro_request_retries",
            "Retries per request observed by the retrying serve client.",
            &[],
        )
    })
}

/// Total backoff slept per request by the retrying serve client.
#[inline]
#[must_use]
pub fn retry_backoff_histogram() -> &'static Histogram {
    static H: OnceLock<Arc<Histogram>> = OnceLock::new();
    H.get_or_init(|| {
        registry().histogram(
            "tripro_retry_backoff_seconds",
            "Backoff slept per request by the retrying serve client.",
            &[],
        )
    })
}

/// Sub-queries fanned out per coordinator request (1 for routed
/// single-shard queries, shard count for scatter-gather joins).
#[inline]
#[must_use]
pub fn shard_fanout_histogram() -> &'static Histogram {
    static H: OnceLock<Arc<Histogram>> = OnceLock::new();
    H.get_or_init(|| {
        registry().histogram(
            "tripro_shard_fanout",
            "Backend sub-queries fanned out per coordinator request.",
            &[],
        )
    })
}

/// Coordinator merge phase: time to combine per-shard partial results
/// after the last sub-query lands.
#[inline]
#[must_use]
pub fn merge_latency_histogram() -> &'static Histogram {
    static H: OnceLock<Arc<Histogram>> = OnceLock::new();
    H.get_or_init(|| {
        registry().histogram(
            "tripro_merge_seconds",
            "Partial-result merge latency at the coordinator.",
            &[],
        )
    })
}

/// Per-backend-shard sub-query round-trip latency (shard indices ≥ 15
/// aggregate into the last series, mirroring the cache-shard clamp).
#[inline]
#[must_use]
pub fn shard_subquery_histogram(shard: usize) -> &'static Histogram {
    static HANDLES: OnceLock<[Arc<Histogram>; CACHE_SHARDS]> = OnceLock::new();
    let handles = HANDLES.get_or_init(|| {
        std::array::from_fn(|i| {
            registry().histogram(
                "tripro_shard_subquery_seconds",
                "Sub-query round-trip latency per backend shard.",
                &[("shard", SHARD_LABELS[i])],
            )
        })
    });
    &handles[shard.min(CACHE_SHARDS - 1)]
}

/// `tripro_trace_dropped_total{reason}` — spans/traces discarded by the
/// tracing sinks (`ring_overwrite` when a lapped ring slot replaces an
/// unread span, `slow_log_evict` when slow-log retention truncates).
/// Callers pre-bind the returned handle; see `trace.rs`.
#[must_use]
pub fn trace_dropped_counter(reason: &'static str) -> Arc<AtomicU64> {
    registry().counter(
        "tripro_trace_dropped_total",
        "Trace spans/records dropped by the ring and slow-log sinks.",
        &[("reason", reason)],
    )
}

/// Failed sub-queries per backend shard (transport errors, typed errors,
/// and deadline expiries all count — the series going nonzero is the
/// signal a shard is degrading).
#[inline]
#[must_use]
pub fn shard_error_counter(shard: usize) -> &'static AtomicU64 {
    static HANDLES: OnceLock<[Arc<AtomicU64>; CACHE_SHARDS]> = OnceLock::new();
    let handles = HANDLES.get_or_init(|| {
        std::array::from_fn(|i| {
            registry().counter(
                "tripro_shard_errors_total",
                "Failed sub-queries per backend shard.",
                &[("shard", SHARD_LABELS[i])],
            )
        })
    });
    &handles[shard.min(CACHE_SHARDS - 1)]
}

/// Resource-manager task counter by executor role.
#[must_use]
pub fn resource_task_counter(device: &str) -> Arc<AtomicU64> {
    registry().counter(
        "tripro_resource_tasks_total",
        "Resource-manager tasks drained, by executor.",
        &[("device", device)],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering;

    #[test]
    fn prebound_handles_are_stable_and_clamped() {
        let a = cache_hit_counter(3);
        let b = cache_hit_counter(3);
        assert!(std::ptr::eq(a, b), "same shard resolves to same atomic");
        // Out-of-range shards clamp instead of panicking.
        let hi = cache_hit_counter(999);
        hi.fetch_add(1, Ordering::Relaxed);
        assert!(cache_hit_counter(15).load(Ordering::Relaxed) >= 1);
        decode_histogram(40).record(10);
        assert!(decode_histogram(15).count() >= 1);
    }

    #[test]
    fn global_exposition_contains_prebound_series() {
        let _ = cache_miss_counter(0);
        let _ = pool_wait_histogram();
        let text = render_global();
        assert!(text.contains("tripro_cache_misses_total{shard=\"0\"}"));
        assert!(text.contains("# TYPE tripro_pool_queue_wait_seconds histogram"));
        validate_exposition(&text).expect("global exposition validates");
    }
}
