//! Log-linear (HDR-style) latency histograms.
//!
//! A [`Histogram`] buckets non-negative integer samples (nanoseconds by
//! convention) into *octaves* of 16 linear sub-buckets each: values below
//! 16 get one bucket per value, and every power-of-two range above that is
//! split 16 ways, bounding the relative quantile error at 1/16 ≈ 6.25%.
//! All state is atomic, so recording is wait-free and concurrent readers
//! see a merely-consistent (never torn per-bucket) view — exactly the
//! guarantee a metrics scrape needs.
//!
//! Unlike sampled quantile sketches, bucket counts **merge exactly**: the
//! sum of two histograms' buckets is the histogram of the combined stream,
//! so per-shard or per-thread instances can be aggregated without losing
//! tail fidelity ([`Histogram::merge_from`]).

use std::sync::atomic::{AtomicU64, Ordering};

/// log2 of the number of linear sub-buckets per octave.
const SUB_BITS: u32 = 4;
/// Linear sub-buckets per octave (16).
const SUB: usize = 1 << SUB_BITS;
/// Total bucket count: one linear region of `SUB` values plus
/// `(64 - SUB_BITS)` octaves of `SUB` sub-buckets — covers all of `u64`.
pub const BUCKETS: usize = (64 - SUB_BITS as usize + 1) << SUB_BITS;

/// Index of the bucket holding `v`. Total order preserving: for
/// `a <= b`, `bucket_of(a) <= bucket_of(b)`.
#[inline]
#[must_use]
pub fn bucket_of(v: u64) -> usize {
    if v < SUB as u64 {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros();
    let shift = msb - SUB_BITS;
    let octave = (msb - SUB_BITS + 1) as usize;
    (octave << SUB_BITS) + ((v >> shift) as usize - SUB)
}

/// Inclusive upper bound of bucket `i` (the largest value it can hold).
#[must_use]
pub fn bucket_upper(i: usize) -> u64 {
    if i < SUB {
        return i as u64;
    }
    let octave = (i >> SUB_BITS) as u32;
    let sub = (i & (SUB - 1)) as u64;
    let upper = ((sub + SUB as u64 + 1) as u128) << (octave - 1);
    (upper - 1).min(u64::MAX as u128) as u64
}

/// A fixed-shape log-linear histogram with atomic buckets.
pub struct Histogram {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Record one sample (wait-free; relaxed atomics — per-sample ordering
    /// does not matter for aggregate statistics).
    #[inline]
    pub fn record(&self, v: u64) {
        if let Some(b) = self.buckets.get(bucket_of(v)) {
            b.fetch_add(1, Ordering::Relaxed);
        }
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Record a [`std::time::Duration`] as nanoseconds (saturating at
    /// `u64::MAX` ≈ 584 years).
    #[inline]
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded samples (wrapping on overflow).
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Smallest recorded sample, or 0 if empty.
    #[must_use]
    pub fn min(&self) -> u64 {
        if self.count() == 0 {
            0
        } else {
            self.min.load(Ordering::Relaxed)
        }
    }

    /// Largest recorded sample, or 0 if empty.
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Fold another histogram into this one. Bucket-count addition is an
    /// *exact* merge: quantiles of the result equal quantiles of the
    /// concatenated sample streams (up to the shared bucket resolution).
    pub fn merge_from(&self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            let n = theirs.load(Ordering::Relaxed);
            if n != 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.min
            .fetch_min(other.min.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max
            .fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Capture the full bucket state as plain data. The image is exact:
    /// feeding it back through [`Histogram::merge_snapshot`] is equivalent
    /// to [`Histogram::merge_from`] on the original histogram, which is
    /// what lets a coordinator merge shard histograms **losslessly** across
    /// a process boundary (the buckets travel, not a coarsened ladder).
    /// Buckets are sparse `(index, count)` pairs in ascending index order.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                (n != 0).then_some((i as u32, n))
            })
            .collect();
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            min: self.min.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            buckets,
        }
    }

    /// Fold a snapshot into this histogram — the cross-process form of
    /// [`Histogram::merge_from`], with the same exactness guarantee.
    /// Out-of-range bucket indices (a newer peer with a different shape)
    /// are ignored rather than trusted.
    pub fn merge_snapshot(&self, s: &HistogramSnapshot) {
        for &(i, n) in &s.buckets {
            if let Some(b) = self.buckets.get(i as usize) {
                if n != 0 {
                    b.fetch_add(n, Ordering::Relaxed);
                }
            }
        }
        self.count.fetch_add(s.count, Ordering::Relaxed);
        self.sum.fetch_add(s.sum, Ordering::Relaxed);
        self.min.fetch_min(s.min, Ordering::Relaxed);
        self.max.fetch_max(s.max, Ordering::Relaxed);
    }

    /// The value at quantile `q` in `[0, 1]`: the upper bound of the bucket
    /// containing the sample of rank `ceil(q * count)`, clamped to the
    /// recorded max. Returns 0 for an empty histogram.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // ceil without float equality: rank in [1, total].
        let mut rank = (q * total as f64).ceil() as u64;
        rank = rank.clamp(1, total);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen = seen.saturating_add(b.load(Ordering::Relaxed));
            if seen >= rank {
                return bucket_upper(i).min(self.max());
            }
        }
        self.max()
    }

    /// Median (p50).
    #[must_use]
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th percentile.
    #[must_use]
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th percentile.
    #[must_use]
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// 99.9th percentile.
    #[must_use]
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }

    /// Number of samples `<= bound` (resolved at bucket granularity: a
    /// bucket counts iff its whole range fits under `bound`, so the result
    /// is a lower bound within one sub-bucket of the true count). Used for
    /// Prometheus cumulative `le` buckets.
    #[must_use]
    pub fn count_le(&self, bound: u64) -> u64 {
        let mut acc = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            if bucket_upper(i) > bound {
                break;
            }
            acc = acc.saturating_add(b.load(Ordering::Relaxed));
        }
        acc
    }
}

/// Plain-data image of a [`Histogram`] (see [`Histogram::snapshot`]).
/// `min` carries the raw internal sentinel (`u64::MAX` when empty) so
/// round-tripping through a snapshot never corrupts min tracking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum: u64,
    pub min: u64,
    pub max: u64,
    /// Sparse `(bucket_index, count)` pairs, ascending by index.
    pub buckets: Vec<(u32, u64)>,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: Vec::new(),
        }
    }
}

impl HistogramSnapshot {
    /// Materialise the snapshot as a standalone histogram.
    #[must_use]
    pub fn to_histogram(&self) -> Histogram {
        let h = Histogram::new();
        h.merge_snapshot(self);
        h
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .field("sum", &self.sum())
            .field("min", &self.min())
            .field("max", &self.max())
            .field("p50", &self.p50())
            .field("p99", &self.p99())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_continuous() {
        // Exhaustive over the low range, spot-checked above.
        let mut prev = bucket_of(0);
        for v in 1u64..100_000 {
            let b = bucket_of(v);
            assert!(b >= prev, "bucket_of not monotone at {v}");
            assert!(b - prev <= 1, "bucket_of skipped an index at {v}");
            prev = b;
        }
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(15), 15);
        assert_eq!(bucket_of(16), 16);
        assert_eq!(bucket_of(31), 31);
        assert_eq!(bucket_of(32), 32);
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn bucket_upper_inverts_bucket_of() {
        for i in 0..BUCKETS {
            let hi = bucket_upper(i);
            assert_eq!(bucket_of(hi), i, "upper bound of bucket {i} maps back");
            if hi < u64::MAX {
                assert_eq!(bucket_of(hi + 1), i + 1, "bucket {i} boundary");
            }
        }
    }

    #[test]
    fn relative_error_is_bounded() {
        let h = Histogram::new();
        for v in [1u64, 100, 10_000, 1_000_000, 123_456_789] {
            let b = bucket_upper(bucket_of(v));
            let err = (b - v) as f64 / v as f64;
            assert!(err <= 1.0 / 16.0 + 1e-9, "relative error {err} at {v}");
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 123_456_789);
    }

    #[test]
    fn quantiles_of_uniform_stream() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v * 1000); // 1µs .. 1ms in µs steps
        }
        let p50 = h.p50();
        let p99 = h.p99();
        assert!(
            (470_000..=531_250).contains(&p50),
            "p50 {p50} out of tolerance"
        );
        assert!(
            (985_000..=1_047_000).contains(&p99),
            "p99 {p99} out of tolerance"
        );
        assert!(h.p999() >= p99);
        assert_eq!(h.quantile(0.0), h.quantile(0.001));
        assert_eq!(h.quantile(1.0), h.max());
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.count_le(u64::MAX), 0);
    }

    #[test]
    fn merge_is_exact_on_buckets() {
        let a = Histogram::new();
        let b = Histogram::new();
        let c = Histogram::new();
        for v in 0..500u64 {
            a.record(v * 7 + 3);
            c.record(v * 7 + 3);
        }
        for v in 0..500u64 {
            b.record(v * 13 + 1);
            c.record(v * 13 + 1);
        }
        a.merge_from(&b);
        assert_eq!(a.count(), c.count());
        assert_eq!(a.sum(), c.sum());
        assert_eq!(a.min(), c.min());
        assert_eq!(a.max(), c.max());
        for q in [0.1, 0.5, 0.9, 0.99, 0.999] {
            assert_eq!(a.quantile(q), c.quantile(q), "merged quantile {q}");
        }
    }

    #[test]
    fn snapshot_roundtrip_is_an_exact_merge() {
        let a = Histogram::new();
        for v in [3u64, 70, 70, 12_345, 9_999_999] {
            a.record(v);
        }
        let snap = a.snapshot();
        // Sparse, sorted, and exact on totals.
        assert!(snap.buckets.windows(2).all(|w| w[0].0 < w[1].0));
        assert_eq!(snap.buckets.iter().map(|&(_, n)| n).sum::<u64>(), 5);
        let b = snap.to_histogram();
        assert_eq!(b.count(), a.count());
        assert_eq!(b.sum(), a.sum());
        assert_eq!(b.min(), a.min());
        assert_eq!(b.max(), a.max());
        for q in [0.1, 0.5, 0.9, 0.99] {
            assert_eq!(b.quantile(q), a.quantile(q));
        }
        // merge_snapshot == merge_from across a "process boundary".
        let via_snapshot = Histogram::new();
        via_snapshot.merge_snapshot(&snap);
        let via_merge = Histogram::new();
        via_merge.merge_from(&a);
        assert_eq!(via_snapshot.count(), via_merge.count());
        assert_eq!(via_snapshot.count_le(100), via_merge.count_le(100));
        // Empty snapshot keeps the min sentinel intact.
        let empty = Histogram::new().snapshot();
        assert_eq!(empty, HistogramSnapshot::default());
        let c = empty.to_histogram();
        c.record(9);
        assert_eq!(c.min(), 9, "sentinel min survives the roundtrip");
        // Foreign out-of-range indices are ignored, not trusted.
        let hostile = HistogramSnapshot {
            count: 1,
            sum: 1,
            min: 1,
            max: 1,
            buckets: vec![(u32::MAX, 7)],
        };
        let d = hostile.to_histogram();
        assert_eq!(d.count_le(u64::MAX), 0);
    }

    #[test]
    fn count_le_matches_cumulative_walk() {
        let h = Histogram::new();
        for v in [10u64, 20, 30, 1000, 2000, 100_000] {
            h.record(v);
        }
        assert_eq!(h.count_le(0), 0);
        assert_eq!(h.count_le(10), 1);
        assert_eq!(h.count_le(35), 3);
        assert_eq!(h.count_le(u64::MAX), 6);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = std::sync::Arc::new(Histogram::new());
        std::thread::scope(|s| {
            for t in 0..4 {
                let h = std::sync::Arc::clone(&h);
                s.spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(i + t * 13);
                    }
                });
            }
        });
        assert_eq!(h.count(), 40_000);
    }
}
