//! Log-linear (HDR-style) latency histograms.
//!
//! A [`Histogram`] buckets non-negative integer samples (nanoseconds by
//! convention) into *octaves* of 16 linear sub-buckets each: values below
//! 16 get one bucket per value, and every power-of-two range above that is
//! split 16 ways, bounding the relative quantile error at 1/16 ≈ 6.25%.
//! All state is atomic, so recording is wait-free and concurrent readers
//! see a merely-consistent (never torn per-bucket) view — exactly the
//! guarantee a metrics scrape needs.
//!
//! Unlike sampled quantile sketches, bucket counts **merge exactly**: the
//! sum of two histograms' buckets is the histogram of the combined stream,
//! so per-shard or per-thread instances can be aggregated without losing
//! tail fidelity ([`Histogram::merge_from`]).

use std::sync::atomic::{AtomicU64, Ordering};

/// log2 of the number of linear sub-buckets per octave.
const SUB_BITS: u32 = 4;
/// Linear sub-buckets per octave (16).
const SUB: usize = 1 << SUB_BITS;
/// Total bucket count: one linear region of `SUB` values plus
/// `(64 - SUB_BITS)` octaves of `SUB` sub-buckets — covers all of `u64`.
pub const BUCKETS: usize = (64 - SUB_BITS as usize + 1) << SUB_BITS;

/// Index of the bucket holding `v`. Total order preserving: for
/// `a <= b`, `bucket_of(a) <= bucket_of(b)`.
#[inline]
#[must_use]
pub fn bucket_of(v: u64) -> usize {
    if v < SUB as u64 {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros();
    let shift = msb - SUB_BITS;
    let octave = (msb - SUB_BITS + 1) as usize;
    (octave << SUB_BITS) + ((v >> shift) as usize - SUB)
}

/// Inclusive upper bound of bucket `i` (the largest value it can hold).
#[must_use]
pub fn bucket_upper(i: usize) -> u64 {
    if i < SUB {
        return i as u64;
    }
    let octave = (i >> SUB_BITS) as u32;
    let sub = (i & (SUB - 1)) as u64;
    let upper = ((sub + SUB as u64 + 1) as u128) << (octave - 1);
    (upper - 1).min(u64::MAX as u128) as u64
}

/// A fixed-shape log-linear histogram with atomic buckets.
pub struct Histogram {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Record one sample (wait-free; relaxed atomics — per-sample ordering
    /// does not matter for aggregate statistics).
    #[inline]
    pub fn record(&self, v: u64) {
        if let Some(b) = self.buckets.get(bucket_of(v)) {
            b.fetch_add(1, Ordering::Relaxed);
        }
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Record a [`std::time::Duration`] as nanoseconds (saturating at
    /// `u64::MAX` ≈ 584 years).
    #[inline]
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded samples (wrapping on overflow).
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Smallest recorded sample, or 0 if empty.
    #[must_use]
    pub fn min(&self) -> u64 {
        if self.count() == 0 {
            0
        } else {
            self.min.load(Ordering::Relaxed)
        }
    }

    /// Largest recorded sample, or 0 if empty.
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Fold another histogram into this one. Bucket-count addition is an
    /// *exact* merge: quantiles of the result equal quantiles of the
    /// concatenated sample streams (up to the shared bucket resolution).
    pub fn merge_from(&self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            let n = theirs.load(Ordering::Relaxed);
            if n != 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.min
            .fetch_min(other.min.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max
            .fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// The value at quantile `q` in `[0, 1]`: the upper bound of the bucket
    /// containing the sample of rank `ceil(q * count)`, clamped to the
    /// recorded max. Returns 0 for an empty histogram.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // ceil without float equality: rank in [1, total].
        let mut rank = (q * total as f64).ceil() as u64;
        rank = rank.clamp(1, total);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen = seen.saturating_add(b.load(Ordering::Relaxed));
            if seen >= rank {
                return bucket_upper(i).min(self.max());
            }
        }
        self.max()
    }

    /// Median (p50).
    #[must_use]
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th percentile.
    #[must_use]
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th percentile.
    #[must_use]
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// 99.9th percentile.
    #[must_use]
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }

    /// Number of samples `<= bound` (resolved at bucket granularity: a
    /// bucket counts iff its whole range fits under `bound`, so the result
    /// is a lower bound within one sub-bucket of the true count). Used for
    /// Prometheus cumulative `le` buckets.
    #[must_use]
    pub fn count_le(&self, bound: u64) -> u64 {
        let mut acc = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            if bucket_upper(i) > bound {
                break;
            }
            acc = acc.saturating_add(b.load(Ordering::Relaxed));
        }
        acc
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .field("sum", &self.sum())
            .field("min", &self.min())
            .field("max", &self.max())
            .field("p50", &self.p50())
            .field("p99", &self.p99())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_continuous() {
        // Exhaustive over the low range, spot-checked above.
        let mut prev = bucket_of(0);
        for v in 1u64..100_000 {
            let b = bucket_of(v);
            assert!(b >= prev, "bucket_of not monotone at {v}");
            assert!(b - prev <= 1, "bucket_of skipped an index at {v}");
            prev = b;
        }
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(15), 15);
        assert_eq!(bucket_of(16), 16);
        assert_eq!(bucket_of(31), 31);
        assert_eq!(bucket_of(32), 32);
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn bucket_upper_inverts_bucket_of() {
        for i in 0..BUCKETS {
            let hi = bucket_upper(i);
            assert_eq!(bucket_of(hi), i, "upper bound of bucket {i} maps back");
            if hi < u64::MAX {
                assert_eq!(bucket_of(hi + 1), i + 1, "bucket {i} boundary");
            }
        }
    }

    #[test]
    fn relative_error_is_bounded() {
        let h = Histogram::new();
        for v in [1u64, 100, 10_000, 1_000_000, 123_456_789] {
            let b = bucket_upper(bucket_of(v));
            let err = (b - v) as f64 / v as f64;
            assert!(err <= 1.0 / 16.0 + 1e-9, "relative error {err} at {v}");
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 123_456_789);
    }

    #[test]
    fn quantiles_of_uniform_stream() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v * 1000); // 1µs .. 1ms in µs steps
        }
        let p50 = h.p50();
        let p99 = h.p99();
        assert!(
            (470_000..=531_250).contains(&p50),
            "p50 {p50} out of tolerance"
        );
        assert!(
            (985_000..=1_047_000).contains(&p99),
            "p99 {p99} out of tolerance"
        );
        assert!(h.p999() >= p99);
        assert_eq!(h.quantile(0.0), h.quantile(0.001));
        assert_eq!(h.quantile(1.0), h.max());
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.count_le(u64::MAX), 0);
    }

    #[test]
    fn merge_is_exact_on_buckets() {
        let a = Histogram::new();
        let b = Histogram::new();
        let c = Histogram::new();
        for v in 0..500u64 {
            a.record(v * 7 + 3);
            c.record(v * 7 + 3);
        }
        for v in 0..500u64 {
            b.record(v * 13 + 1);
            c.record(v * 13 + 1);
        }
        a.merge_from(&b);
        assert_eq!(a.count(), c.count());
        assert_eq!(a.sum(), c.sum());
        assert_eq!(a.min(), c.min());
        assert_eq!(a.max(), c.max());
        for q in [0.1, 0.5, 0.9, 0.99, 0.999] {
            assert_eq!(a.quantile(q), c.quantile(q), "merged quantile {q}");
        }
    }

    #[test]
    fn count_le_matches_cumulative_walk() {
        let h = Histogram::new();
        for v in [10u64, 20, 30, 1000, 2000, 100_000] {
            h.record(v);
        }
        assert_eq!(h.count_le(0), 0);
        assert_eq!(h.count_le(10), 1);
        assert_eq!(h.count_le(35), 3);
        assert_eq!(h.count_le(u64::MAX), 6);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = std::sync::Arc::new(Histogram::new());
        std::thread::scope(|s| {
            for t in 0..4 {
                let h = std::sync::Arc::clone(&h);
                s.spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(i + t * 13);
                    }
                });
            }
        });
        assert_eq!(h.count(), 40_000);
    }
}
