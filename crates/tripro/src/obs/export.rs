//! Prometheus text-format exposition (and a validator for it).
//!
//! Histograms are stored internally in nanoseconds but exported in
//! **seconds** against a fixed canonical `le` ladder (1µs … 10s, +Inf),
//! per Prometheus base-unit conventions. Cumulative bucket counts come
//! from the fine log-linear buckets ([`Histogram::count_le`]), so the
//! exported ladder is a lossless coarsening — `_sum`/`_count` are exact.

use super::histogram::Histogram;
use super::registry::{Metric, MetricsRegistry};
use std::fmt::Write as _;
use std::sync::atomic::Ordering;

/// Canonical latency ladder in nanoseconds: 1µs .. 10s, decade steps with
/// 2.5×/5× intermediates. `+Inf` is appended by the renderer.
pub const LE_LADDER_NS: &[u64] = &[
    1_000,
    10_000,
    100_000,
    1_000_000,
    2_500_000,
    5_000_000,
    10_000_000,
    25_000_000,
    50_000_000,
    100_000_000,
    250_000_000,
    500_000_000,
    1_000_000_000,
    2_500_000_000,
    5_000_000_000,
    10_000_000_000,
];

fn seconds(ns: u64) -> f64 {
    ns as f64 / 1e9
}

fn sample_name(name: &str, suffix: &str, labels: &str, extra: Option<(&str, &str)>) -> String {
    let mut out = String::new();
    out.push_str(name);
    out.push_str(suffix);
    let extra_s = extra.map(|(k, v)| format!("{k}=\"{v}\""));
    match (labels.is_empty(), extra_s) {
        (true, None) => {}
        (true, Some(e)) => {
            let _ = write!(out, "{{{e}}}");
        }
        (false, None) => {
            let _ = write!(out, "{{{labels}}}");
        }
        (false, Some(e)) => {
            let _ = write!(out, "{{{labels},{e}}}");
        }
    }
    out
}

fn render_histogram(out: &mut String, name: &str, labels: &str, h: &Histogram) {
    for &bound in LE_LADDER_NS {
        let le = format!("{}", seconds(bound));
        let _ = writeln!(
            out,
            "{} {}",
            sample_name(name, "_bucket", labels, Some(("le", &le))),
            h.count_le(bound)
        );
    }
    let _ = writeln!(
        out,
        "{} {}",
        sample_name(name, "_bucket", labels, Some(("le", "+Inf"))),
        h.count()
    );
    let _ = writeln!(
        out,
        "{} {}",
        sample_name(name, "_sum", labels, None),
        seconds(h.sum())
    );
    let _ = writeln!(
        out,
        "{} {}",
        sample_name(name, "_count", labels, None),
        h.count()
    );
}

/// Render every metric in `reg` as Prometheus text exposition
/// (`text/plain; version=0.0.4`). Output is deterministic: families and
/// series appear in sorted name/label order.
#[must_use]
pub fn render_prometheus(reg: &MetricsRegistry) -> String {
    let mut out = String::new();
    for fam in reg.families() {
        let kind = fam
            .samples
            .first()
            .map_or("counter", |(_, m)| m.type_name());
        let _ = writeln!(out, "# HELP {} {}", fam.name, fam.help);
        let _ = writeln!(out, "# TYPE {} {}", fam.name, kind);
        for (labels, metric) in &fam.samples {
            match metric {
                Metric::Counter(c) => {
                    let _ = writeln!(
                        out,
                        "{} {}",
                        sample_name(fam.name, "", labels, None),
                        c.load(Ordering::Relaxed)
                    );
                }
                Metric::Histogram(h) => render_histogram(&mut out, fam.name, labels, h),
            }
        }
    }
    out
}

fn valid_name(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn base_name(sample: &str) -> &str {
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(b) = sample.strip_suffix(suffix) {
            return b;
        }
    }
    sample
}

/// Structurally validate Prometheus text exposition: every sample line
/// must parse as `name[{labels}] value`, the value must be a finite
/// number (or `+Inf` bucket bounds), and every sample must belong to a
/// family declared by a preceding `# TYPE` line. Returns the first
/// problem found, with its 1-based line number.
pub fn validate_exposition(text: &str) -> Result<(), String> {
    use std::collections::BTreeSet;
    let mut declared: BTreeSet<String> = BTreeSet::new();
    let mut samples = 0usize;
    for (i, line) in text.lines().enumerate() {
        let n = i + 1;
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            let rest = rest.trim_start();
            if let Some(decl) = rest.strip_prefix("TYPE ") {
                let mut it = decl.split_whitespace();
                let (Some(name), Some(kind)) = (it.next(), it.next()) else {
                    return Err(format!("line {n}: malformed TYPE declaration"));
                };
                if !valid_name(name) {
                    return Err(format!("line {n}: invalid metric name {name:?}"));
                }
                if !matches!(
                    kind,
                    "counter" | "gauge" | "histogram" | "summary" | "untyped"
                ) {
                    return Err(format!("line {n}: unknown metric type {kind:?}"));
                }
                declared.insert(name.to_string());
            } else if !rest.starts_with("HELP ") && !rest.is_empty() {
                // Plain comments are legal; nothing to check.
            }
            continue;
        }
        // Sample line: name[{labels}] value
        let (name_part, value_part) = match line.find('}') {
            Some(close) => {
                let (head, tail) = line.split_at(close + 1);
                let Some(open) = head.find('{') else {
                    return Err(format!("line {n}: '}}' without '{{'"));
                };
                let labels = &head[open + 1..close];
                if labels.matches('"').count() % 2 != 0 {
                    return Err(format!("line {n}: unbalanced quotes in labels"));
                }
                (&head[..open], tail.trim())
            }
            None => {
                let mut it = line.splitn(2, ' ');
                let name = it.next().unwrap_or("");
                (name, it.next().unwrap_or("").trim())
            }
        };
        if !valid_name(name_part) {
            return Err(format!("line {n}: invalid sample name {name_part:?}"));
        }
        let value = value_part.split_whitespace().next().unwrap_or("");
        let numeric_ok = value.parse::<f64>().map(f64::is_finite).unwrap_or(false)
            || matches!(value, "+Inf" | "-Inf" | "NaN");
        if !numeric_ok {
            return Err(format!("line {n}: unparseable sample value {value:?}"));
        }
        if !declared.contains(base_name(name_part)) && !declared.contains(name_part) {
            return Err(format!(
                "line {n}: sample {name_part:?} has no preceding # TYPE declaration"
            ));
        }
        samples += 1;
    }
    if samples == 0 {
        return Err("no samples in exposition".to_string());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::registry::MetricsRegistry;

    fn populated() -> MetricsRegistry {
        let reg = MetricsRegistry::new();
        let c = reg.counter(
            "tripro_cache_hits_total",
            "Decode cache hits.",
            &[("shard", "0")],
        );
        c.fetch_add(41, Ordering::Relaxed);
        let h = reg.histogram(
            "tripro_query_latency_seconds",
            "Query latency.",
            &[("kind", "intersect"), ("paradigm", "FPR")],
        );
        h.record(3_000_000); // 3ms
        h.record(700_000_000); // 700ms
        reg
    }

    #[test]
    fn rendered_output_validates() {
        let text = render_prometheus(&populated());
        assert!(text.contains("# TYPE tripro_cache_hits_total counter"));
        assert!(text.contains("tripro_cache_hits_total{shard=\"0\"} 41"));
        assert!(text.contains("# TYPE tripro_query_latency_seconds histogram"));
        assert!(text.contains("le=\"+Inf\"} 2"));
        assert!(text.contains("tripro_query_latency_seconds_count"));
        validate_exposition(&text).expect("self-rendered exposition validates");
    }

    #[test]
    fn histogram_buckets_are_cumulative_in_seconds() {
        let text = render_prometheus(&populated());
        // 3ms lands under le=0.005; 700ms only under le=1 and above.
        let line = text
            .lines()
            .find(|l| l.contains("le=\"0.005\""))
            .expect("0.005 bucket");
        assert!(line.ends_with(" 1"), "one sample <= 5ms: {line}");
        let line = text
            .lines()
            .find(|l| l.contains("le=\"1\""))
            .expect("1s bucket");
        assert!(line.ends_with(" 2"), "both samples <= 1s: {line}");
    }

    #[test]
    fn validator_rejects_malformed_lines() {
        assert!(validate_exposition("").is_err(), "empty exposition");
        assert!(
            validate_exposition("tripro_x_total 1\n").is_err(),
            "sample without TYPE"
        );
        assert!(
            validate_exposition("# TYPE tripro_x_total counter\ntripro_x_total abc\n").is_err(),
            "non-numeric value"
        );
        assert!(
            validate_exposition("# TYPE tripro_x_total wibble\ntripro_x_total 1\n").is_err(),
            "unknown type"
        );
        assert!(
            validate_exposition("# TYPE tripro_x_total counter\ntripro_x_total{a=\"1} 1\n")
                .is_err(),
            "unbalanced label quotes"
        );
        assert!(validate_exposition("# TYPE t counter\nt{a=\"1\"} 2.5\n").is_ok());
    }

    #[test]
    fn bucket_and_sum_suffixes_resolve_to_declared_family() {
        let text = "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\nh_sum 0.5\nh_count 1\n";
        validate_exposition(text).expect("suffix resolution");
    }
}
