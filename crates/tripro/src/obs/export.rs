//! Prometheus text-format exposition (and a validator for it).
//!
//! Histograms are stored internally in nanoseconds but exported in
//! **seconds** against a fixed canonical `le` ladder (1µs … 10s, +Inf),
//! per Prometheus base-unit conventions. Cumulative bucket counts come
//! from the fine log-linear buckets ([`Histogram::count_le`]), so the
//! exported ladder is a lossless coarsening — `_sum`/`_count` are exact.

use super::histogram::{Histogram, HistogramSnapshot};
use super::registry::{render_labels, Metric, MetricsRegistry};
use std::fmt::Write as _;
use std::sync::atomic::Ordering;

/// Canonical latency ladder in nanoseconds: 1µs .. 10s, decade steps with
/// 2.5×/5× intermediates. `+Inf` is appended by the renderer.
pub const LE_LADDER_NS: &[u64] = &[
    1_000,
    10_000,
    100_000,
    1_000_000,
    2_500_000,
    5_000_000,
    10_000_000,
    25_000_000,
    50_000_000,
    100_000_000,
    250_000_000,
    500_000_000,
    1_000_000_000,
    2_500_000_000,
    5_000_000_000,
    10_000_000_000,
];

fn seconds(ns: u64) -> f64 {
    ns as f64 / 1e9
}

fn sample_name(name: &str, suffix: &str, labels: &str, extra: Option<(&str, &str)>) -> String {
    let mut out = String::new();
    out.push_str(name);
    out.push_str(suffix);
    let extra_s = extra.map(|(k, v)| format!("{k}=\"{v}\""));
    match (labels.is_empty(), extra_s) {
        (true, None) => {}
        (true, Some(e)) => {
            let _ = write!(out, "{{{e}}}");
        }
        (false, None) => {
            let _ = write!(out, "{{{labels}}}");
        }
        (false, Some(e)) => {
            let _ = write!(out, "{{{labels},{e}}}");
        }
    }
    out
}

fn render_histogram(out: &mut String, name: &str, labels: &str, h: &Histogram) {
    for &bound in LE_LADDER_NS {
        let le = format!("{}", seconds(bound));
        let _ = writeln!(
            out,
            "{} {}",
            sample_name(name, "_bucket", labels, Some(("le", &le))),
            h.count_le(bound)
        );
    }
    let _ = writeln!(
        out,
        "{} {}",
        sample_name(name, "_bucket", labels, Some(("le", "+Inf"))),
        h.count()
    );
    let _ = writeln!(
        out,
        "{} {}",
        sample_name(name, "_sum", labels, None),
        seconds(h.sum())
    );
    let _ = writeln!(
        out,
        "{} {}",
        sample_name(name, "_count", labels, None),
        h.count()
    );
}

/// Render every metric in `reg` as Prometheus text exposition
/// (`text/plain; version=0.0.4`). Output is deterministic: families and
/// series appear in sorted name/label order.
#[must_use]
pub fn render_prometheus(reg: &MetricsRegistry) -> String {
    let mut out = String::new();
    for fam in reg.families() {
        let kind = fam
            .samples
            .first()
            .map_or("counter", |(_, m)| m.type_name());
        let _ = writeln!(out, "# HELP {} {}", fam.name, fam.help);
        let _ = writeln!(out, "# TYPE {} {}", fam.name, kind);
        for (labels, metric) in &fam.samples {
            match metric {
                Metric::Counter(c) => {
                    let _ = writeln!(
                        out,
                        "{} {}",
                        sample_name(fam.name, "", labels, None),
                        c.load(Ordering::Relaxed)
                    );
                }
                Metric::Histogram(h) => render_histogram(&mut out, fam.name, labels, h),
            }
        }
    }
    out
}

/// Node-label value of the exact-merged cluster aggregate series in a
/// federated exposition.
pub const CLUSTER_NODE: &str = "cluster";

/// Plain-data value of one series: the wire-transferable form.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Monotonic counter value.
    Counter(u64),
    /// Full bucket image (exact-mergeable, see [`HistogramSnapshot`]).
    Histogram(HistogramSnapshot),
}

/// Plain-data image of one registered series. Unlike the registry (which
/// interns `&'static` names), snapshots carry owned strings so they can
/// cross a process boundary.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSnapshot {
    /// Metric name (`tripro_*`).
    pub name: String,
    /// Canonical rendered label set (may be empty).
    pub labels: String,
    /// `# HELP` text.
    pub help: String,
    /// Current value.
    pub value: MetricValue,
}

/// One node's scrape: the `node` label value plus every series it exported.
pub type NodeSnapshot = (String, Vec<MetricSnapshot>);

/// Snapshot every registered series as plain data — the scrape side of
/// metrics federation (shipped over the wire as a `MetricsBin` reply).
#[must_use]
pub fn snapshot_registry(reg: &MetricsRegistry) -> Vec<MetricSnapshot> {
    let mut out = Vec::new();
    for fam in reg.families() {
        for (labels, metric) in &fam.samples {
            out.push(MetricSnapshot {
                name: fam.name.to_string(),
                labels: labels.clone(),
                help: fam.help.to_string(),
                value: match metric {
                    Metric::Counter(c) => MetricValue::Counter(c.load(Ordering::Relaxed)),
                    Metric::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                },
            });
        }
    }
    out
}

fn with_node_label(labels: &str, node: &str) -> String {
    let node_label = render_labels(&[("node", node)]);
    if labels.is_empty() {
        node_label
    } else {
        format!("{labels},{node_label}")
    }
}

enum Agg {
    Counter(u64),
    Histogram(Histogram),
}

/// Render a cluster-wide exposition from per-node scrapes. Every series
/// gains a `node` label; per base label set, an exact aggregate series is
/// emitted first with `node="cluster"` — counters by integer addition,
/// histograms by lossless bucket merge ([`Histogram::merge_snapshot`]),
/// so aggregate counts equal the sum of the per-node counts *exactly*.
/// Each family keeps a single `# HELP`/`# TYPE` declaration; a series
/// whose type disagrees with the family's first-seen type is skipped
/// rather than corrupting the family.
#[must_use]
pub fn render_federated(nodes: &[NodeSnapshot]) -> String {
    use std::collections::BTreeMap;
    struct Fam {
        help: String,
        is_hist: bool,
        /// base labels -> exact cross-node aggregate
        agg: BTreeMap<String, Agg>,
        /// (base labels, node) -> as-scraped value
        series: BTreeMap<(String, String), MetricValue>,
    }
    let mut fams: BTreeMap<String, Fam> = BTreeMap::new();
    for (node, snaps) in nodes {
        for s in snaps {
            let fam = fams.entry(s.name.clone()).or_insert_with(|| Fam {
                help: s.help.clone(),
                is_hist: matches!(s.value, MetricValue::Histogram(_)),
                agg: BTreeMap::new(),
                series: BTreeMap::new(),
            });
            if fam.is_hist != matches!(s.value, MetricValue::Histogram(_)) {
                continue;
            }
            match &s.value {
                MetricValue::Counter(v) => {
                    let slot = fam.agg.entry(s.labels.clone()).or_insert(Agg::Counter(0));
                    if let Agg::Counter(acc) = slot {
                        *acc = acc.saturating_add(*v);
                    }
                }
                MetricValue::Histogram(hs) => {
                    let slot = fam
                        .agg
                        .entry(s.labels.clone())
                        .or_insert_with(|| Agg::Histogram(Histogram::new()));
                    if let Agg::Histogram(acc) = slot {
                        acc.merge_snapshot(hs);
                    }
                }
            }
            fam.series
                .insert((s.labels.clone(), node.clone()), s.value.clone());
        }
    }
    let mut out = String::new();
    for (name, fam) in &fams {
        let kind = if fam.is_hist { "histogram" } else { "counter" };
        let _ = writeln!(out, "# HELP {name} {}", fam.help);
        let _ = writeln!(out, "# TYPE {name} {kind}");
        for (labels, agg) in &fam.agg {
            let lbl = with_node_label(labels, CLUSTER_NODE);
            match agg {
                Agg::Counter(v) => {
                    let _ = writeln!(out, "{} {v}", sample_name(name, "", &lbl, None));
                }
                Agg::Histogram(h) => render_histogram(&mut out, name, &lbl, h),
            }
        }
        for ((labels, node), value) in &fam.series {
            let lbl = with_node_label(labels, node);
            match value {
                MetricValue::Counter(v) => {
                    let _ = writeln!(out, "{} {v}", sample_name(name, "", &lbl, None));
                }
                MetricValue::Histogram(hs) => {
                    render_histogram(&mut out, name, &lbl, &hs.to_histogram());
                }
            }
        }
    }
    out
}

fn valid_name(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn base_name(sample: &str) -> &str {
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(b) = sample.strip_suffix(suffix) {
            return b;
        }
    }
    sample
}

/// Structurally validate Prometheus text exposition: every sample line
/// must parse as `name[{labels}] value`, the value must be a finite
/// number (or `+Inf` bucket bounds), and every sample must belong to a
/// family declared by a preceding `# TYPE` line. Returns the first
/// problem found, with its 1-based line number.
pub fn validate_exposition(text: &str) -> Result<(), String> {
    use std::collections::BTreeSet;
    let mut declared: BTreeSet<String> = BTreeSet::new();
    let mut samples = 0usize;
    for (i, line) in text.lines().enumerate() {
        let n = i + 1;
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            let rest = rest.trim_start();
            if let Some(decl) = rest.strip_prefix("TYPE ") {
                let mut it = decl.split_whitespace();
                let (Some(name), Some(kind)) = (it.next(), it.next()) else {
                    return Err(format!("line {n}: malformed TYPE declaration"));
                };
                if !valid_name(name) {
                    return Err(format!("line {n}: invalid metric name {name:?}"));
                }
                if !matches!(
                    kind,
                    "counter" | "gauge" | "histogram" | "summary" | "untyped"
                ) {
                    return Err(format!("line {n}: unknown metric type {kind:?}"));
                }
                if !declared.insert(name.to_string()) {
                    // A federation bug that re-declares a family per node
                    // would otherwise scrape fine and break aggregation
                    // downstream; reject it here.
                    return Err(format!("line {n}: duplicate TYPE for family {name:?}"));
                }
            } else if !rest.starts_with("HELP ") && !rest.is_empty() {
                // Plain comments are legal; nothing to check.
            }
            continue;
        }
        // Sample line: name[{labels}] value
        let (name_part, value_part) = match line.find('}') {
            Some(close) => {
                let (head, tail) = line.split_at(close + 1);
                let Some(open) = head.find('{') else {
                    return Err(format!("line {n}: '}}' without '{{'"));
                };
                let labels = &head[open + 1..close];
                if labels.matches('"').count() % 2 != 0 {
                    return Err(format!("line {n}: unbalanced quotes in labels"));
                }
                (&head[..open], tail.trim())
            }
            None => {
                let mut it = line.splitn(2, ' ');
                let name = it.next().unwrap_or("");
                (name, it.next().unwrap_or("").trim())
            }
        };
        if !valid_name(name_part) {
            return Err(format!("line {n}: invalid sample name {name_part:?}"));
        }
        let value = value_part.split_whitespace().next().unwrap_or("");
        let numeric_ok = value.parse::<f64>().map(f64::is_finite).unwrap_or(false)
            || matches!(value, "+Inf" | "-Inf" | "NaN");
        if !numeric_ok {
            return Err(format!("line {n}: unparseable sample value {value:?}"));
        }
        if !declared.contains(base_name(name_part)) && !declared.contains(name_part) {
            return Err(format!(
                "line {n}: sample {name_part:?} has no preceding # TYPE declaration"
            ));
        }
        samples += 1;
    }
    if samples == 0 {
        return Err("no samples in exposition".to_string());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::registry::MetricsRegistry;

    fn populated() -> MetricsRegistry {
        let reg = MetricsRegistry::new();
        let c = reg.counter(
            "tripro_cache_hits_total",
            "Decode cache hits.",
            &[("shard", "0")],
        );
        c.fetch_add(41, Ordering::Relaxed);
        let h = reg.histogram(
            "tripro_query_latency_seconds",
            "Query latency.",
            &[("kind", "intersect"), ("paradigm", "FPR")],
        );
        h.record(3_000_000); // 3ms
        h.record(700_000_000); // 700ms
        reg
    }

    #[test]
    fn rendered_output_validates() {
        let text = render_prometheus(&populated());
        assert!(text.contains("# TYPE tripro_cache_hits_total counter"));
        assert!(text.contains("tripro_cache_hits_total{shard=\"0\"} 41"));
        assert!(text.contains("# TYPE tripro_query_latency_seconds histogram"));
        assert!(text.contains("le=\"+Inf\"} 2"));
        assert!(text.contains("tripro_query_latency_seconds_count"));
        validate_exposition(&text).expect("self-rendered exposition validates");
    }

    #[test]
    fn histogram_buckets_are_cumulative_in_seconds() {
        let text = render_prometheus(&populated());
        // 3ms lands under le=0.005; 700ms only under le=1 and above.
        let line = text
            .lines()
            .find(|l| l.contains("le=\"0.005\""))
            .expect("0.005 bucket");
        assert!(line.ends_with(" 1"), "one sample <= 5ms: {line}");
        let line = text
            .lines()
            .find(|l| l.contains("le=\"1\""))
            .expect("1s bucket");
        assert!(line.ends_with(" 2"), "both samples <= 1s: {line}");
    }

    #[test]
    fn validator_rejects_malformed_lines() {
        assert!(validate_exposition("").is_err(), "empty exposition");
        assert!(
            validate_exposition("tripro_x_total 1\n").is_err(),
            "sample without TYPE"
        );
        assert!(
            validate_exposition("# TYPE tripro_x_total counter\ntripro_x_total abc\n").is_err(),
            "non-numeric value"
        );
        assert!(
            validate_exposition("# TYPE tripro_x_total wibble\ntripro_x_total 1\n").is_err(),
            "unknown type"
        );
        assert!(
            validate_exposition("# TYPE tripro_x_total counter\ntripro_x_total{a=\"1} 1\n")
                .is_err(),
            "unbalanced label quotes"
        );
        assert!(validate_exposition("# TYPE t counter\nt{a=\"1\"} 2.5\n").is_ok());
    }

    #[test]
    fn bucket_and_sum_suffixes_resolve_to_declared_family() {
        let text = "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\nh_sum 0.5\nh_count 1\n";
        validate_exposition(text).expect("suffix resolution");
    }

    #[test]
    fn validator_rejects_duplicate_family_declarations() {
        let text = "# TYPE t counter\nt 1\n# TYPE t counter\nt{node=\"1\"} 2\n";
        let err = validate_exposition(text).expect_err("duplicate TYPE");
        assert!(err.contains("duplicate"), "{err}");
    }

    #[test]
    fn snapshot_registry_captures_every_series() {
        let snaps = snapshot_registry(&populated());
        assert_eq!(snaps.len(), 2);
        let c = snaps
            .iter()
            .find(|s| s.name == "tripro_cache_hits_total")
            .expect("counter series");
        assert_eq!(c.labels, "shard=\"0\"");
        assert_eq!(c.value, MetricValue::Counter(41));
        let h = snaps
            .iter()
            .find(|s| s.name == "tripro_query_latency_seconds")
            .expect("histogram series");
        match &h.value {
            MetricValue::Histogram(hs) => assert_eq!(hs.count, 2),
            MetricValue::Counter(_) => panic!("histogram expected"),
        }
    }

    #[test]
    fn federated_rendering_merges_exactly_and_validates() {
        let nodes: Vec<NodeSnapshot> = vec![
            ("shard0".to_string(), snapshot_registry(&populated())),
            ("shard1".to_string(), snapshot_registry(&populated())),
            ("coordinator".to_string(), Vec::new()),
        ];
        let text = render_federated(&nodes);
        validate_exposition(&text).expect("federated exposition validates");
        // One declaration per family, node labels on every series.
        assert_eq!(text.matches("# TYPE tripro_cache_hits_total").count(), 1);
        assert!(text.contains("tripro_cache_hits_total{shard=\"0\",node=\"cluster\"} 82"));
        assert!(text.contains("tripro_cache_hits_total{shard=\"0\",node=\"shard0\"} 41"));
        assert!(text.contains("tripro_cache_hits_total{shard=\"0\",node=\"shard1\"} 41"));
        // Histogram aggregate counts are the exact per-node sum.
        let count_of = |needle: &str| -> u64 {
            text.lines()
                .find(|l| l.starts_with(needle))
                .and_then(|l| l.rsplit(' ').next())
                .and_then(|v| v.parse().ok())
                .expect("series present")
        };
        let agg = count_of(
            "tripro_query_latency_seconds_count{kind=\"intersect\",paradigm=\"FPR\",node=\"cluster\"}",
        );
        let s0 = count_of(
            "tripro_query_latency_seconds_count{kind=\"intersect\",paradigm=\"FPR\",node=\"shard0\"}",
        );
        let s1 = count_of(
            "tripro_query_latency_seconds_count{kind=\"intersect\",paradigm=\"FPR\",node=\"shard1\"}",
        );
        assert_eq!(agg, s0 + s1, "merged count equals per-node sum exactly");
        // Same exactness on an individual bucket bound.
        let b = |node: &str| {
            text.lines()
                .filter(|l| {
                    l.starts_with("tripro_query_latency_seconds_bucket")
                        && l.contains(&format!("node=\"{node}\""))
                        && l.contains("le=\"1\"")
                })
                .map(|l| l.rsplit(' ').next().unwrap().parse::<u64>().unwrap())
                .sum::<u64>()
        };
        assert_eq!(b("cluster"), b("shard0") + b("shard1"));
    }
}
