//! The scatter-gather coordinator: a front-end that routes queries to a
//! cluster of shard engines and merges their partial results.
//!
//! ## Topology
//!
//! The coordinator loads the **target store only** (routing needs target
//! MBBs; no geometry is ever decoded here). Each backend engine holds the
//! full target store plus its slice of the source store, cut by
//! [`partition_source`](crate::shard::partition_source) from the shared
//! [`ShardMap`] — with boundary-cuboid replication, so any source object
//! whose MBB overlaps a query region is held by at least one of the
//! region's cell owners. At startup the coordinator probes every backend
//! with `ShardInfo` and refuses to serve unless epoch, shard count, index
//! order, grid cell and dataset fingerprints all agree.
//!
//! ## Execution
//!
//! * `Contains` routes to the owner of the point's grid cell (every
//!   backend has the full target store; routing by cell spreads load).
//! * `Intersect`/`Within` scatter to the owners of the grid cells the
//!   query region overlaps; ids are unioned, deduplicated and sorted —
//!   byte-identical to a single engine because each per-target result
//!   list is sorted there too.
//! * `Nn`/`Knn` scatter scored sub-queries (`NnEx`/`KnnEx`) to **all**
//!   shards; each returns its local winners with exact top-LOD distances,
//!   and the merge orders by `(distance, id)` and deduplicates replicas —
//!   bit-identical to the engine's own `(dist, id)` ranking.
//!
//! ## Overload and failure
//!
//! Admission is an executing-slot cap plus per-shard budgets: a query
//! whose route includes a backend with too many sub-queries in flight is
//! shed with a `retry_after_ms` hint derived from the most-loaded shard.
//! Sub-queries carry the residual request deadline (capped by
//! `sub_query_cap` even for unbounded requests) and per-backend socket
//! timeouts, so a dead or fault-injected shard degrades to a typed error
//! — or a partial result for kNN when `allow_partial` is set — never a
//! hang. Failure of one sub-query cancels the not-yet-dispatched rest.

use crate::client::{Client, QueryReply, RetryingClient};
use crate::protocol::{
    self, decode_header, decode_request_body_traced, ErrorCode, NodeRole, Request, Response,
    ShardInfoPayload, StatsExPayload, StatsPayload, TraceContext, HEADER_LEN, MIN_VERSION,
    NO_DEADLINE_MS, VERSION,
};
use crate::server::{bump, read_full, ConnWriter, Outcomes, ReadFull};
use crate::shard::ShardMap;
use crate::{RetryPolicy, ServeError};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use tripro::fault::{self, mix64};
use tripro::obs;
use tripro::obs::{CostExemplar, MetricSnapshot, SpanKind, SpanSummary};
use tripro::sync::{lock, wait, Condvar, Mutex};
use tripro::{Deadline, ObjectStore, ServiceSnapshot, ServiceStats, TraceConfig};
use tripro_geom::{Aabb, Vec3};

/// Coordinator configuration.
#[derive(Debug, Clone)]
pub struct CoordinatorConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Backend shard addresses, in shard-index order.
    pub shards: Vec<String>,
    /// Shard-map epoch; every backend must have partitioned under it.
    pub epoch: u64,
    /// Maximum client queries executing concurrently.
    pub max_inflight: usize,
    /// Maximum sub-queries in flight against any single backend; a query
    /// routed through a backend at budget is shed.
    pub per_shard_budget: usize,
    /// Maximum simultaneously open client connections.
    pub max_connections: usize,
    /// Server-side cap on per-request deadlines (same semantics as
    /// [`ServeConfig::deadline_cap`](crate::ServeConfig)).
    pub deadline_cap: Option<Duration>,
    /// Hard per-attempt bound on any sub-query round trip, applied even
    /// when the client asked for no deadline — the "no hang" guarantee.
    pub sub_query_cap: Duration,
    /// Answer kNN queries with a partial-flagged result when a shard
    /// fails, instead of a typed error.
    pub allow_partial: bool,
    /// Read-timeout granularity at which blocked connection readers poll
    /// the shutdown flag.
    pub poll_interval: Duration,
    /// Retry/backoff policy for backend connections.
    pub retry: RetryPolicy,
    /// Span-tracing configuration applied at startup.
    pub trace: TraceConfig,
}

impl Default for CoordinatorConfig {
    fn default() -> Self {
        let par = std::thread::available_parallelism().map_or(4, |n| n.get());
        Self {
            addr: "127.0.0.1:0".to_string(),
            shards: Vec::new(),
            epoch: 1,
            max_inflight: par.max(1),
            per_shard_budget: 64,
            max_connections: 256,
            deadline_cap: None,
            sub_query_cap: Duration::from_secs(10),
            allow_partial: false,
            poll_interval: Duration::from_millis(25),
            retry: RetryPolicy::default(),
            trace: TraceConfig::default(),
        }
    }
}

/// One backend shard: its resolved address, an idle-connection pool and a
/// live sub-query counter (the per-shard admission budget).
struct Backend {
    addr: SocketAddr,
    // LOCK-RANK(26): per-backend idle-connection pool; a connection is
    // checked out under the guard and all sub-query I/O happens after it
    // drops — no blocking I/O ever runs under this lock.
    idle: Mutex<Vec<RetryingClient>>,
    /// Sub-queries currently in flight against this backend.
    outstanding: AtomicUsize,
}

impl Backend {
    #[inline]
    fn load(&self) -> usize {
        // ORDERING: Relaxed — advisory load-accounting counter consulted
        // by admission; no data is published under it.
        self.outstanding.load(Ordering::Relaxed)
    }
}

/// A query operation a coordinator can route.
enum COp {
    Contains([f64; 3]),
    Intersect(u32),
    Within(u32, f64),
    Nn(u32),
    Knn(u32, u32),
    NnEx(u32),
    KnnEx(u32, u32),
}

/// Outcome of one sub-query against one shard.
enum SubOutcome {
    Reply(QueryReply),
    /// Transport-level failure after the retry budget (dial, reset,
    /// timeout).
    Unavailable(String),
    /// Never dispatched: an earlier shard failed (or the deadline passed)
    /// and the scatter was cancelled.
    Skipped,
}

/// Merged outcome of a coordinated query.
enum CoordReply {
    Ids {
        ids: Vec<u32>,
        partial: bool,
    },
    Scored {
        items: Vec<(u32, f64)>,
        partial: bool,
    },
    Fail {
        code: ErrorCode,
        message: String,
        retry_after_ms: u32,
    },
}

/// State shared by the accept loop and connection threads.
struct Core {
    target: Arc<ObjectStore>,
    map: ShardMap,
    /// Global source object count, validated identical on every backend.
    source_total: u64,
    cfg: CoordinatorConfig,
    backends: Vec<Backend>,
    stats: ServiceStats,
    outcomes: Outcomes,
    shutdown: AtomicBool,
    // LOCK-RANK(20): executing-request ledger (the coordinator has no
    // queue — admission either grants an executing slot or sheds); same
    // rank slot as the server's dispatch lock, before ConnWriter (30).
    executing: Mutex<usize>,
    /// Wakes `Coordinator::wait`/shutdown when the last query drains.
    drain_cv: Condvar,
    // LOCK-RANK(10): connection-handle list; outermost, held only to
    // push/reap handles.
    conns: Mutex<Vec<JoinHandle<()>>>,
}

impl Core {
    fn is_shutdown(&self) -> bool {
        // ORDERING: Acquire pairs with the Release store in
        // `begin_shutdown` (same protocol as the server's flag).
        self.shutdown.load(Ordering::Acquire)
    }

    fn begin_shutdown(&self) {
        // ORDERING: Release publishes pre-shutdown writes to threads that
        // observe the flag via the Acquire load above.
        self.shutdown.store(true, Ordering::Release);
        let st = lock(&self.executing);
        drop(st);
        self.drain_cv.notify_all();
    }

    /// Live sub-query count at the most-loaded backend.
    fn most_loaded(&self) -> usize {
        self.backends.iter().map(Backend::load).max().unwrap_or(0)
    }

    /// Backoff hint for a shed, derived from the most-loaded shard: how
    /// long that backend's backlog needs to drain at a few ms per
    /// sub-query. Clamped to 1ms..=30s.
    fn retry_after_hint(&self) -> u32 {
        let worst = self.most_loaded() as u128 + 1;
        worst.saturating_mul(2).clamp(1, 30_000) as u32
    }

    /// Deadline for a request: the client's ask clamped by the cap (same
    /// rule as the server's).
    fn deadline_for(&self, deadline_ms: u32) -> Deadline {
        let client =
            (deadline_ms != NO_DEADLINE_MS).then(|| Duration::from_millis(u64::from(deadline_ms)));
        match (client, self.cfg.deadline_cap) {
            (Some(c), Some(cap)) => Deadline::within(c.min(cap)),
            (Some(c), None) => Deadline::within(c),
            (None, Some(cap)) => Deadline::within(cap),
            (None, None) => Deadline::none(),
        }
    }

    fn stats_payload(&self) -> StatsPayload {
        let s = self.stats.snapshot();
        StatsPayload {
            admitted: s.admitted,
            shed: s.shed,
            deadline_expired: s.deadline_expired,
            completed: s.completed,
            protocol_errors: s.protocol_errors,
            target_objects: self.target.len() as u64,
            source_objects: self.source_total,
        }
    }

    fn stats_ex_payload(&self) -> StatsExPayload {
        let s = self.stats.snapshot();
        StatsExPayload {
            admitted: s.admitted,
            shed: s.shed,
            deadline_expired: s.deadline_expired,
            completed: s.completed,
            failed: s.failed,
            protocol_errors: s.protocol_errors,
            target_objects: self.target.len() as u64,
            source_objects: self.source_total,
            // The coordinator never decodes or refines; engine-side costs
            // live in the backends' own StatsEx.
            filter_ns: 0,
            decode_ns: 0,
            compute_ns: 0,
            face_pair_tests: 0,
            cache_hits: 0,
            cache_misses: 0,
            decodes: 0,
            stage_ns: [0; 4],
            stage_items: [0; 4],
            queue_stalls: [0; 3],
        }
    }

    fn shard_info_payload(&self) -> ShardInfoPayload {
        ShardInfoPayload {
            role: NodeRole::Coordinator,
            epoch: self.map.epoch,
            index: 0,
            count: self.map.count,
            cell: self.map.cell,
            target_objects: self.target.len() as u64,
            source_objects: self.source_total,
            source_total: self.source_total,
        }
    }

    /// The shards a query must touch. Joins over unbounded distance
    /// (NN/kNN) scatter everywhere; region queries contact the owners of
    /// the cells the region overlaps (superset-safe, see `shard.rs`).
    fn route(&self, op: &COp) -> Vec<u32> {
        match *op {
            COp::Contains(p) => vec![self.map.shard_of_point(p)],
            COp::Intersect(t) => self.map.shards_for_box(self.target.mbb(t)),
            COp::Within(t, d) => {
                let b = self.target.mbb(t);
                let d = d.max(0.0);
                let grown = Aabb {
                    lo: b.lo - Vec3::new(d, d, d),
                    hi: b.hi + Vec3::new(d, d, d),
                };
                self.map.shards_for_box(&grown)
            }
            COp::Nn(_) | COp::Knn(..) | COp::NnEx(_) | COp::KnnEx(..) => self.map.all_shards(),
        }
    }
}

/// A running coordinator. Dropping the handle shuts it down gracefully.
pub struct Coordinator {
    core: Arc<Core>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
}

impl Coordinator {
    /// Validate every backend (`ShardInfo` handshake), bind, spawn the
    /// accept loop, and return.
    pub fn start(
        target: Arc<ObjectStore>,
        cfg: CoordinatorConfig,
    ) -> Result<Coordinator, ServeError> {
        if cfg.shards.is_empty() {
            return Err(ServeError::Unexpected(
                "coordinator needs at least one shard",
            ));
        }
        obs::tracer().configure(&cfg.trace);
        let map = ShardMap::new(
            cfg.epoch,
            ShardMap::cell_for(&target),
            cfg.shards.len() as u32,
        );

        // Probe every backend before serving: a mis-partitioned or
        // stale-epoch backend would silently drop results, so refuse to
        // start instead.
        let mut backends = Vec::with_capacity(cfg.shards.len());
        let mut source_total: Option<u64> = None;
        for (i, s) in cfg.shards.iter().enumerate() {
            let addr = s
                .to_socket_addrs()?
                .next()
                .ok_or_else(|| std::io::Error::other("unresolvable shard address"))?;
            let mut probe = Client::connect_as(addr, NodeRole::Coordinator)?;
            let info = probe.shard_info()?;
            if info.role != NodeRole::Engine {
                return Err(ServeError::Unexpected("backend is not an engine"));
            }
            if info.epoch != map.epoch {
                return Err(ServeError::Unexpected("backend shard-map epoch mismatch"));
            }
            if info.count != map.count {
                return Err(ServeError::Unexpected("backend shard-map count mismatch"));
            }
            if info.index != i as u32 {
                return Err(ServeError::Unexpected(
                    "backend shard index does not match its list position",
                ));
            }
            if info.cell.to_bits() != map.cell.to_bits() {
                return Err(ServeError::Unexpected("backend grid-cell pitch mismatch"));
            }
            if info.target_objects != target.len() as u64 {
                return Err(ServeError::Unexpected("backend target store mismatch"));
            }
            match source_total {
                None => source_total = Some(info.source_total),
                Some(t) if t != info.source_total => {
                    return Err(ServeError::Unexpected(
                        "backends disagree on the source dataset",
                    ));
                }
                Some(_) => {}
            }
            backends.push(Backend {
                addr,
                idle: Mutex::new(Vec::new()),
                outstanding: AtomicUsize::new(0),
            });
        }

        let listener = TcpListener::bind(
            cfg.addr
                .to_socket_addrs()?
                .next()
                .ok_or_else(|| std::io::Error::other("unresolvable bind address"))?,
        )?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;

        let core = Arc::new(Core {
            target,
            map,
            source_total: source_total.unwrap_or(0),
            cfg,
            backends,
            stats: ServiceStats::new(),
            outcomes: Outcomes::bind(),
            shutdown: AtomicBool::new(false),
            executing: Mutex::new(0),
            drain_cv: Condvar::new(),
            conns: Mutex::new(Vec::new()),
        });

        let accept = {
            let core = Arc::clone(&core);
            std::thread::Builder::new()
                .name("tripro-coord-accept".into())
                .spawn(move || accept_loop(&core, &listener))?
        };

        Ok(Coordinator {
            core,
            addr,
            accept: Some(accept),
        })
    }

    /// The bound address (resolves port 0 to the actual ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shard map this coordinator routes by.
    pub fn shard_map(&self) -> ShardMap {
        self.core.map
    }

    /// Current request-lifecycle counters; under `strict-invariants` the
    /// admission ledger is checked exactly like the server's.
    pub fn stats(&self) -> ServiceSnapshot {
        #[cfg(feature = "strict-invariants")]
        {
            let st = lock(&self.core.executing);
            let snap = self.core.stats.snapshot();
            let outstanding = *st as u64;
            assert!(
                snap.accounted() <= snap.admitted,
                "accounted {} > admitted {} ({snap:?})",
                snap.accounted(),
                snap.admitted,
            );
            assert!(
                snap.admitted <= snap.accounted() + outstanding,
                "admission ledger leak: admitted {} > accounted {} + \
                 outstanding {outstanding} ({snap:?})",
                snap.admitted,
                snap.accounted(),
            );
            return snap;
        }
        #[cfg(not(feature = "strict-invariants"))]
        self.core.stats.snapshot()
    }

    /// Block until a shutdown is requested and all executing queries
    /// drain.
    pub fn wait(&self) {
        let mut st = lock(&self.core.executing);
        while !(self.core.is_shutdown() && *st == 0) {
            st = wait(&self.core.drain_cv, st);
        }
    }

    /// Graceful shutdown: stop accepting, let executing queries finish,
    /// join all threads.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.core.begin_shutdown();
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        let handles = std::mem::take(&mut *lock(&self.core.conns));
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for Coordinator {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

// ---------------------------------------------------------------------
// Accept + connection loops (same lifecycle as the server's)
// ---------------------------------------------------------------------

fn accept_loop(core: &Arc<Core>, listener: &TcpListener) {
    while !core.is_shutdown() {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let _ = stream.set_nonblocking(false);
                let mut conns = lock(&core.conns);
                conns.retain(|h| !h.is_finished());
                if conns.len() >= core.cfg.max_connections {
                    drop(conns);
                    core.stats.record_shed();
                    bump(&core.outcomes.shed);
                    let writer = ConnWriter::new(stream);
                    writer.send_response(
                        0,
                        &Response::Error {
                            code: ErrorCode::Overloaded,
                            message: "connection limit reached".to_string(),
                            retry_after_ms: core.retry_after_hint(),
                        },
                    );
                    continue;
                }
                let core2 = Arc::clone(core);
                let spawned = std::thread::Builder::new()
                    .name("tripro-coord-conn".into())
                    .spawn(move || {
                        if catch_unwind(AssertUnwindSafe(|| conn_loop(&core2, stream))).is_err() {
                            obs::panic_counter("coord_conn").fetch_add(1, Ordering::Relaxed);
                        }
                    });
                match spawned {
                    Ok(h) => conns.push(h),
                    Err(_) => {
                        core.stats.record_shed();
                        bump(&core.outcomes.shed);
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(core.cfg.poll_interval.min(Duration::from_millis(10)));
            }
            Err(_) => std::thread::sleep(core.cfg.poll_interval),
        }
    }
}

fn conn_loop(core: &Arc<Core>, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(core.cfg.poll_interval));
    let writer = match stream.try_clone() {
        Ok(w) => Arc::new(ConnWriter::new(w)),
        Err(_) => return,
    };
    let mut reader = stream;

    loop {
        let mut hb = [0u8; HEADER_LEN];
        match read_full(&core.shutdown, &mut reader, &mut hb, true) {
            ReadFull::Full => {}
            ReadFull::Stop => return,
            ReadFull::Failed => {
                core.stats.record_protocol_error();
                bump(&core.outcomes.protocol_error);
                return;
            }
        }
        let header = match decode_header(&hb) {
            Ok(h) => h,
            Err(e) => {
                core.stats.record_protocol_error();
                bump(&core.outcomes.protocol_error);
                writer.send_response(
                    0,
                    &Response::Error {
                        code: ErrorCode::BadRequest,
                        message: e.to_string(),
                        retry_after_ms: 0,
                    },
                );
                return;
            }
        };
        if !(MIN_VERSION..=VERSION).contains(&header.version) {
            core.stats.record_protocol_error();
            bump(&core.outcomes.protocol_error);
            writer.send_response(
                header.request_id,
                &Response::Error {
                    code: ErrorCode::UnsupportedVersion,
                    message: format!("coordinator speaks versions {MIN_VERSION}..={VERSION}"),
                    retry_after_ms: 0,
                },
            );
            return;
        }
        let mut payload = vec![0u8; header.payload_len as usize];
        match read_full(&core.shutdown, &mut reader, &mut payload, false) {
            ReadFull::Full => {}
            ReadFull::Stop => return,
            ReadFull::Failed => {
                core.stats.record_protocol_error();
                bump(&core.outcomes.protocol_error);
                return;
            }
        }
        if !handle_frame(core, &writer, header.kind, header.request_id, &payload) {
            return;
        }
    }
}

/// Handle one framed request inline on the connection thread (queries
/// scatter onto the worker pool from here); returns `false` to close.
fn handle_frame(
    core: &Arc<Core>,
    writer: &Arc<ConnWriter>,
    kind: u8,
    id: u64,
    payload: &[u8],
) -> bool {
    let (request, trace) = match decode_request_body_traced(kind, payload) {
        Ok(r) => r,
        Err(e) => {
            core.stats.record_protocol_error();
            bump(&core.outcomes.protocol_error);
            writer.send_response(
                id,
                &Response::Error {
                    code: ErrorCode::BadRequest,
                    message: e.to_string(),
                    retry_after_ms: 0,
                },
            );
            return false;
        }
    };
    let (op, deadline_ms) = match request {
        Request::Hello {
            min_version,
            max_version,
            role: _,
        } => {
            let spoken = (MIN_VERSION..=VERSION)
                .rev()
                .find(|v| (min_version..=max_version).contains(v));
            match spoken {
                Some(version) => {
                    writer.send_response(
                        id,
                        &Response::HelloOk {
                            version,
                            role: NodeRole::Coordinator,
                        },
                    );
                }
                None => {
                    core.stats.record_protocol_error();
                    bump(&core.outcomes.protocol_error);
                    writer.send_response(
                        id,
                        &Response::Error {
                            code: ErrorCode::UnsupportedVersion,
                            message: format!(
                                "coordinator speaks versions {MIN_VERSION}..={VERSION}"
                            ),
                            retry_after_ms: 0,
                        },
                    );
                }
            }
            return true;
        }
        Request::Health => {
            writer.send_response(id, &Response::HealthOk);
            return true;
        }
        Request::Stats => {
            writer.send_response(id, &Response::StatsOk(core.stats_payload()));
            return true;
        }
        Request::StatsEx => {
            writer.send_response(id, &Response::StatsExOk(core.stats_ex_payload()));
            return true;
        }
        Request::ShardInfo => {
            writer.send_response(id, &Response::ShardInfoOk(core.shard_info_payload()));
            return true;
        }
        Request::Metrics => {
            // Federated scrape (v6): the coordinator answers for the whole
            // cluster — every reachable backend's binary snapshot merged
            // exactly with its own registry, one `node` label per origin.
            writer.send_response(
                id,
                &Response::MetricsOk {
                    text: federated_metrics(core),
                },
            );
            return true;
        }
        Request::MetricsBin => {
            // The coordinator's OWN registry as plain data — what another
            // federation layer (or a test) scrapes; the text `Metrics`
            // frame is the cluster-merged view.
            writer.send_response(
                id,
                &Response::MetricsBinOk(obs::snapshot_registry(obs::registry())),
            );
            return true;
        }
        Request::TraceLog => {
            writer.send_response(
                id,
                &Response::TraceLogOk {
                    text: obs::render_slow_log(),
                },
            );
            return true;
        }
        Request::Shutdown => {
            writer.send_response(id, &Response::ShutdownOk);
            core.begin_shutdown();
            return false;
        }
        Request::Contains { p, deadline_ms } => (COp::Contains(p), deadline_ms),
        Request::Intersect {
            target,
            deadline_ms,
        } => (COp::Intersect(target), deadline_ms),
        Request::Within {
            target,
            d,
            deadline_ms,
        } => (COp::Within(target, d), deadline_ms),
        Request::Nn {
            target,
            deadline_ms,
        } => (COp::Nn(target), deadline_ms),
        Request::Knn {
            target,
            k,
            deadline_ms,
        } => (COp::Knn(target, k), deadline_ms),
        Request::NnEx {
            target,
            deadline_ms,
        } => (COp::NnEx(target), deadline_ms),
        Request::KnnEx {
            target,
            k,
            deadline_ms,
        } => (COp::KnnEx(target, k), deadline_ms),
    };

    // Validate before admission so a bad id never occupies a slot.
    if let COp::Intersect(t)
    | COp::Within(t, _)
    | COp::Nn(t)
    | COp::Knn(t, _)
    | COp::NnEx(t)
    | COp::KnnEx(t, _) = op
    {
        if t as usize >= core.target.len() {
            writer.send_response(
                id,
                &Response::Error {
                    code: ErrorCode::BadRequest,
                    message: format!("target {t} out of range (store has {})", core.target.len()),
                    retry_after_ms: 0,
                },
            );
            return true;
        }
    }

    let shards = core.route(&op);

    // Admission: an executing slot plus every routed backend under its
    // sub-query budget. Shed with a hint from the most-loaded shard.
    let admitted = {
        let mut n = lock(&core.executing);
        let slot_free = !core.is_shutdown() && *n < core.cfg.max_inflight.max(1);
        let budget_ok = shards.iter().all(|&s| {
            core.backends
                .get(s as usize)
                .is_some_and(|b| b.load() < core.cfg.per_shard_budget.max(1))
        });
        if slot_free && budget_ok {
            core.stats.record_admitted();
            bump(&core.outcomes.admitted);
            *n += 1;
            true
        } else {
            false
        }
    };
    if !admitted {
        core.stats.record_shed();
        bump(&core.outcomes.shed);
        writer.send_response(
            id,
            &Response::Error {
                code: ErrorCode::Overloaded,
                message: "coordinator at capacity".to_string(),
                retry_after_ms: core.retry_after_hint(),
            },
        );
        return true;
    }

    let deadline = core.deadline_for(deadline_ms);
    execute_query(core, writer, id, &op, &deadline, &shards, trace);

    let mut n = lock(&core.executing);
    *n = n.saturating_sub(1);
    drop(n);
    core.drain_cv.notify_all();
    true
}

// ---------------------------------------------------------------------
// Scatter-gather execution
// ---------------------------------------------------------------------

/// Execute one admitted query end to end: scatter, merge, reply, account.
fn execute_query(
    core: &Arc<Core>,
    writer: &Arc<ConnWriter>,
    id: u64,
    op: &COp,
    deadline: &Deadline,
    shards: &[u32],
    trace: Option<TraceContext>,
) {
    // The cluster-wide trace id: the client's propagated id when it sent
    // one, else this wire request id. Sub-queries carry the same id to
    // every shard, so the whole fan-out renders as one waterfall in the
    // coordinator's slow log.
    let trace_id = trace.map_or(id, |t| t.trace_id);
    let _req = obs::tracer().request(trace_id);
    let started = Instant::now();
    // Propagate to shards when the client traced this request or our own
    // tracer is armed; ask for shard summaries (sampled) in either case —
    // they feed both the stitched trace and the client's aggregate.
    let sampled = trace.is_some_and(|t| t.sampled) || obs::enabled();
    let sub_ctx = (trace.is_some() || obs::enabled()).then_some(TraceContext {
        trace_id,
        parent_span_id: 0, // overwritten per shard at dispatch
        sampled,
    });
    // Panic containment mirrors `serve_one`: a panicking merge (or
    // injected fault) becomes a typed Internal error so the admission
    // ledger still balances.
    let exec = catch_unwind(AssertUnwindSafe(|| {
        coordinate(core, op, deadline, shards, trace_id, sub_ctx)
    }));
    let (result, summary) = match exec {
        Ok(r) => r,
        Err(payload) => {
            core.stats.record_panic();
            obs::panic_counter("coord_request").fetch_add(1, Ordering::Relaxed);
            (
                CoordReply::Fail {
                    code: ErrorCode::Internal,
                    message: fault::panic_message(payload.as_ref()),
                    retry_after_ms: 0,
                },
                None,
            )
        }
    };
    // A client that sent a sampled context gets the cluster aggregate on
    // its final page, totalled with the coordinator's own wall time.
    let reply_summary = trace.filter(|t| t.sampled).and(summary).map(|mut s| {
        s.total_ns = started.elapsed().as_nanos() as u64;
        s
    });
    match result {
        CoordReply::Ids { ids, partial } => {
            let pages = protocol::pages_of_flagged(&ids, partial);
            let n = pages.len();
            for (i, page) in pages.iter().enumerate() {
                let s = if i + 1 == n { reply_summary.as_ref() } else { None };
                writer.send_response_traced(id, page, s);
            }
            core.stats.record_completed();
            bump(&core.outcomes.completed);
        }
        CoordReply::Scored { items, partial } => {
            let pages = protocol::scored_pages_of(&items, partial);
            let n = pages.len();
            for (i, page) in pages.iter().enumerate() {
                let s = if i + 1 == n { reply_summary.as_ref() } else { None };
                writer.send_response_traced(id, page, s);
            }
            core.stats.record_completed();
            bump(&core.outcomes.completed);
        }
        CoordReply::Fail {
            code,
            message,
            retry_after_ms,
        } => {
            if code == ErrorCode::DeadlineExceeded {
                core.stats.record_deadline_expired();
                bump(&core.outcomes.deadline_expired);
            } else {
                core.stats.record_failed();
                bump(&core.outcomes.failed);
            }
            writer.send_response(
                id,
                &Response::Error {
                    code,
                    message,
                    retry_after_ms,
                },
            );
        }
    }
}

/// Scatter the query and merge the partial results, returning the reply
/// plus the cluster-aggregate span summary when shards reported cost.
fn coordinate(
    core: &Core,
    op: &COp,
    deadline: &Deadline,
    shards: &[u32],
    trace_id: u64,
    sub_ctx: Option<TraceContext>,
) -> (CoordReply, Option<SpanSummary>) {
    if shards.is_empty() {
        return (
            CoordReply::Ids {
                ids: Vec::new(),
                partial: false,
            },
            None,
        );
    }
    if deadline.check().is_err() {
        return (
            CoordReply::Fail {
                code: ErrorCode::DeadlineExceeded,
                message: "deadline expired before fan-out".to_string(),
                retry_after_ms: 0,
            },
            None,
        );
    }
    obs::shard_fanout_histogram().record(shards.len() as u64);

    // The residual deadline travels into every sub-query, capped so even
    // a no-deadline request cannot hang on a dead backend.
    let sub_ms = {
        let cap = core.cfg.sub_query_cap;
        let d = match deadline.remaining() {
            Some(r) => r.min(cap),
            None => cap,
        };
        d.as_millis().clamp(1, u128::from(u32::MAX) - 1) as u32
    };
    let req = match *op {
        COp::Contains(p) => Request::Contains {
            p,
            deadline_ms: sub_ms,
        },
        COp::Intersect(t) => Request::Intersect {
            target: t,
            deadline_ms: sub_ms,
        },
        COp::Within(t, d) => Request::Within {
            target: t,
            d,
            deadline_ms: sub_ms,
        },
        COp::Nn(t) | COp::NnEx(t) => Request::NnEx {
            target: t,
            deadline_ms: sub_ms,
        },
        COp::Knn(t, k) | COp::KnnEx(t, k) => Request::KnnEx {
            target: t,
            k,
            deadline_ms: sub_ms,
        },
    };
    let can_partial = core.cfg.allow_partial
        && matches!(
            op,
            COp::Knn(..) | COp::KnnEx(..) | COp::Nn(_) | COp::NnEx(_)
        );

    let (subs, legs) = scatter(core, shards, &req, deadline, can_partial, sub_ctx);
    // Stitch the shard legs into this trace (we are on the connection
    // thread, inside the request guard) and build the cluster aggregate.
    let summary = stitch(trace_id, &legs);
    (merge(op, subs, deadline, can_partial), summary)
}

/// Timing and wire summary of one dispatched shard sub-query.
struct ShardLeg {
    shard: u32,
    started: Instant,
    wall_ns: u64,
    summary: Option<SpanSummary>,
}

/// Replay each shard leg into the coordinator's open trace — a `shard`
/// span per sub-query, with `filter`/`decode`/`compute` children stacked
/// sequentially from the shard's reported durations — attach the
/// per-query cost exemplar, and return the cluster-aggregate summary
/// (`total_ns` is filled in by the caller with the coordinator's wall).
fn stitch(trace_id: u64, legs: &[ShardLeg]) -> Option<SpanSummary> {
    let mut agg = SpanSummary {
        trace_id,
        ..SpanSummary::default()
    };
    let mut ex = CostExemplar::default();
    let mut saw_summary = false;
    for leg in legs {
        obs::record_remote(
            SpanKind::Shard,
            leg.shard,
            obs::trace::NO_LOD,
            leg.started,
            leg.wall_ns,
            0,
        );
        let Some(s) = &leg.summary else { continue };
        saw_summary = true;
        let mut at = leg.started;
        for (kind, ns) in [
            (SpanKind::Filter, s.filter_ns),
            (SpanKind::Decode, s.decode_ns),
            (SpanKind::Compute, s.compute_ns),
        ] {
            if ns > 0 {
                obs::record_remote(kind, obs::trace::NO_OBJECT, obs::trace::NO_LOD, at, ns, 1);
                at += Duration::from_nanos(ns);
            }
        }
        agg.filter_ns += s.filter_ns;
        agg.decode_ns += s.decode_ns;
        agg.compute_ns += s.compute_ns;
        agg.decoded_bytes += s.decoded_bytes;
        agg.cache_hits += s.cache_hits;
        agg.cache_misses += s.cache_misses;
        agg.lod_rounds += s.lod_rounds;
        agg.resolved_pairs += s.resolved_pairs;
        ex.shards.push((leg.shard, leg.wall_ns, s.decoded_bytes));
    }
    if !saw_summary {
        return None;
    }
    ex.decoded_bytes = agg.decoded_bytes;
    ex.resolved_pairs = agg.resolved_pairs;
    ex.cache_hits = agg.cache_hits;
    ex.cache_misses = agg.cache_misses;
    ex.lod_rounds = agg.lod_rounds;
    obs::attach_exemplar(ex);
    Some(agg)
}

/// Fan the sub-query out to `shards` on the process-wide worker pool.
/// Sub-queries run concurrently; a terminal failure cancels the
/// not-yet-dispatched remainder (unless a partial result can absorb it).
fn scatter(
    core: &Core,
    shards: &[u32],
    req: &Request,
    deadline: &Deadline,
    can_partial: bool,
    sub_ctx: Option<TraceContext>,
) -> (Vec<(u32, SubOutcome)>, Vec<ShardLeg>) {
    let cancel = AtomicBool::new(false);
    // LOCK-RANK(80): scatter result accumulator (outcomes + trace legs);
    // leaf lock local to this call, taken only for a push.
    #[allow(clippy::type_complexity)]
    let results: Mutex<(Vec<(u32, SubOutcome)>, Vec<ShardLeg>)> =
        Mutex::new((Vec::with_capacity(shards.len()), Vec::new()));
    let next = AtomicUsize::new(0);
    let helpers = shards.len().saturating_sub(1);
    tripro::pool::global().run_with(helpers, |_| {
        let contained = catch_unwind(AssertUnwindSafe(|| loop {
            // ORDERING: Relaxed — pure work-claiming counter.
            let i = next.fetch_add(1, Ordering::Relaxed);
            let Some(&s) = shards.get(i) else { return };
            // ORDERING: Relaxed — cancellation is advisory; a racing
            // dispatch just completes normally and is merged.
            let out = if cancel.load(Ordering::Relaxed) || deadline.is_over() {
                SubOutcome::Skipped
            } else {
                // Each shard gets the shared trace id with its own index
                // as the parent-span marker.
                let ctx = sub_ctx.map(|mut t| {
                    t.parent_span_id = u64::from(s);
                    t
                });
                let t0 = Instant::now();
                let (out, summary) = sub_query(core, s, req, deadline, ctx.as_ref());
                let wall = t0.elapsed();
                obs::shard_subquery_histogram(s as usize).record_duration(wall);
                lock(&results).1.push(ShardLeg {
                    shard: s,
                    started: t0,
                    wall_ns: wall.as_nanos() as u64,
                    summary,
                });
                out
            };
            let failed = matches!(
                &out,
                SubOutcome::Reply(QueryReply::Error { .. }) | SubOutcome::Unavailable(_)
            );
            if failed {
                obs::shard_error_counter(s as usize).fetch_add(1, Ordering::Relaxed);
                if !can_partial {
                    // ORDERING: Relaxed — see the load above.
                    cancel.store(true, Ordering::Relaxed);
                }
            }
            lock(&results).0.push((s, out));
        }));
        if contained.is_err() {
            obs::panic_counter("coord_scatter").fetch_add(1, Ordering::Relaxed);
        }
    });
    let collected = std::mem::take(&mut *lock(&results));
    collected
}

/// One sub-query against one backend, with per-shard load accounting.
/// Returns the outcome plus the shard's span summary when it sent one.
fn sub_query(
    core: &Core,
    s: u32,
    req: &Request,
    deadline: &Deadline,
    trace: Option<&TraceContext>,
) -> (SubOutcome, Option<SpanSummary>) {
    let Some(b) = core.backends.get(s as usize) else {
        return (
            SubOutcome::Unavailable(format!("shard {s} not configured")),
            None,
        );
    };
    // ORDERING: Relaxed — advisory budget counter (see `Backend::load`).
    b.outstanding.fetch_add(1, Ordering::Relaxed);
    let out = sub_query_conn(core, b, s, req, deadline, trace);
    b.outstanding.fetch_sub(1, Ordering::Relaxed);
    out
}

fn sub_query_conn(
    core: &Core,
    b: &Backend,
    s: u32,
    req: &Request,
    deadline: &Deadline,
    trace: Option<&TraceContext>,
) -> (SubOutcome, Option<SpanSummary>) {
    // Check out an idle connection (guard drops before any I/O) or dial a
    // fresh one; the retrying client self-heals across reconnects, so it
    // is returned to the pool even after a failed attempt.
    let pooled = lock(&b.idle).pop();
    let mut conn = match pooled {
        Some(c) => c,
        None => {
            let mut policy = core.cfg.retry.clone();
            // Distinct deterministic jitter stream per shard.
            policy.seed = mix64(policy.seed ^ (u64::from(s) << 8));
            match RetryingClient::connect_as(b.addr, NodeRole::Coordinator, policy) {
                Ok(c) => c,
                Err(e) => {
                    return (
                        SubOutcome::Unavailable(format!("shard {s} unreachable: {e}")),
                        None,
                    );
                }
            }
        }
    };
    // Per-attempt socket timeout: slice the residual deadline across the
    // retry budget (a dead shard must fail every attempt *within* the
    // request deadline), capped by `sub_query_cap` for unbounded asks.
    let attempts = u64::from(core.cfg.retry.max_retries) + 1;
    let per_attempt = match deadline.remaining() {
        Some(r) => (r.mul_f64(0.8) / attempts as u32).min(core.cfg.sub_query_cap),
        None => core.cfg.sub_query_cap,
    }
    .max(Duration::from_millis(5));
    if let Err(e) = conn.raw().and_then(|c| c.set_timeout(Some(per_attempt))) {
        return (
            SubOutcome::Unavailable(format!("shard {s} unreachable: {e}")),
            None,
        );
    }
    match conn.query_traced(req, trace) {
        Ok((reply, _)) => {
            let summary = conn.last_summary().copied();
            lock(&b.idle).push(conn);
            (SubOutcome::Reply(reply), summary)
        }
        Err(e) => {
            lock(&b.idle).push(conn);
            (
                SubOutcome::Unavailable(format!("shard {s} failed: {e}")),
                None,
            )
        }
    }
}

/// Federated metrics: scrape every backend's registry over `MetricsBin`
/// frames, merge with the coordinator's own snapshot, and render one
/// exposition with a `node` label (plus an exact `node="cluster"`
/// aggregate — histogram merges are exact, not approximated).
fn federated_metrics(core: &Core) -> String {
    let mut nodes: Vec<tripro::obs::NodeSnapshot> = Vec::with_capacity(core.backends.len() + 1);
    nodes.push((
        "coordinator".to_owned(),
        obs::snapshot_registry(obs::registry()),
    ));
    for (i, b) in core.backends.iter().enumerate() {
        match scrape_backend(core, b, i as u32) {
            Ok(series) => nodes.push((format!("shard{i}"), series)),
            Err(e) => {
                obs::shard_error_counter(i).fetch_add(1, Ordering::Relaxed);
                eprintln!("tripro-coordinator: metrics scrape of shard {i} failed: {e}");
            }
        }
    }
    obs::render_federated(&nodes)
}

/// Fetch one backend's binary metrics snapshot, reusing (and returning)
/// an idle pooled connection when one is available.
fn scrape_backend(core: &Core, b: &Backend, s: u32) -> Result<Vec<MetricSnapshot>, ServeError> {
    let pooled = lock(&b.idle).pop();
    let mut conn = match pooled {
        Some(c) => c,
        None => {
            let mut policy = core.cfg.retry.clone();
            // Distinct deterministic jitter stream per shard.
            policy.seed = mix64(policy.seed ^ (u64::from(s) << 8));
            RetryingClient::connect_as(b.addr, NodeRole::Coordinator, policy)?
        }
    };
    let out = conn.raw().and_then(|c| {
        c.set_timeout(Some(core.cfg.sub_query_cap))?;
        c.metrics_bin()
    });
    if out.is_ok() {
        lock(&b.idle).push(conn);
    }
    out
}

/// Merge per-shard results into the client's answer. See the module doc
/// for why each merge is byte-identical to a single-engine run.
fn merge(
    op: &COp,
    subs: Vec<(u32, SubOutcome)>,
    deadline: &Deadline,
    can_partial: bool,
) -> CoordReply {
    let _m = obs::time(obs::merge_latency_histogram());
    let mut ids: Vec<u32> = Vec::new();
    let mut scored: Vec<(u32, f64)> = Vec::new();
    let mut failed: Vec<(u32, String)> = Vec::new();
    let mut deadline_hit = false;
    let mut overload_hint: Option<u32> = None;
    for (s, out) in subs {
        match out {
            SubOutcome::Reply(QueryReply::Ids(v) | QueryReply::PartialIds(v)) => {
                ids.extend_from_slice(&v);
            }
            SubOutcome::Reply(QueryReply::Scored { items, .. }) => {
                scored.extend_from_slice(&items);
            }
            SubOutcome::Reply(QueryReply::Error {
                code,
                message,
                retry_after_ms,
            }) => {
                match code {
                    ErrorCode::DeadlineExceeded => deadline_hit = true,
                    ErrorCode::Overloaded => {
                        overload_hint = Some(overload_hint.unwrap_or(0).max(retry_after_ms.max(1)));
                    }
                    _ => {}
                }
                failed.push((s, format!("{code:?}: {message}")));
            }
            SubOutcome::Unavailable(m) => {
                if deadline.is_over() {
                    deadline_hit = true;
                }
                failed.push((s, m));
            }
            SubOutcome::Skipped => failed.push((s, "skipped after earlier failure".to_string())),
        }
    }

    let partial = !failed.is_empty();
    if partial && !can_partial {
        if deadline_hit || deadline.is_over() {
            return CoordReply::Fail {
                code: ErrorCode::DeadlineExceeded,
                message: "deadline expired in a shard sub-query".to_string(),
                retry_after_ms: 0,
            };
        }
        if let Some(hint) = overload_hint {
            return CoordReply::Fail {
                code: ErrorCode::Overloaded,
                message: "a shard shed the sub-query".to_string(),
                retry_after_ms: hint,
            };
        }
        let (s, m) = failed
            .first()
            .map(|(s, m)| (*s, m.clone()))
            .unwrap_or((0, "unknown".to_string()));
        return CoordReply::Fail {
            code: ErrorCode::Internal,
            message: format!("{} shard(s) failed; first: shard {s}: {m}", failed.len()),
            retry_after_ms: 0,
        };
    }

    match *op {
        // Single-shard passthrough: the backend's answer is already the
        // engine's byte-exact result.
        COp::Contains(_) => CoordReply::Ids { ids, partial },
        // Per-shard lists are each sorted ascending; replicated ids are
        // exact duplicates. Union + sort + dedup equals the engine's
        // sorted result.
        COp::Intersect(_) | COp::Within(..) => {
            ids.sort_unstable();
            ids.dedup();
            CoordReply::Ids { ids, partial }
        }
        // Every shard returned its local best with the exact top-LOD
        // distance; the global winner is the (distance, id) minimum.
        COp::Nn(_) | COp::NnEx(_) => {
            let winner = scored
                .iter()
                .copied()
                .min_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
            match *op {
                COp::NnEx(_) => CoordReply::Scored {
                    items: winner.into_iter().collect(),
                    partial,
                },
                _ => CoordReply::Ids {
                    ids: winner.map(|(c, _)| c).into_iter().collect(),
                    partial,
                },
            }
        }
        // Union of per-shard top-k contains the global top-k; replicas of
        // the same id carry bit-identical distances, so sorting by
        // (distance, id) makes duplicates adjacent for dedup, then the
        // first k match the engine's own (distance, id) ranking.
        COp::Knn(_, k) | COp::KnnEx(_, k) => {
            scored.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
            scored.dedup_by(|a, b| a.0 == b.0);
            scored.truncate(k as usize);
            match *op {
                COp::KnnEx(..) => CoordReply::Scored {
                    items: scored,
                    partial,
                },
                _ => CoordReply::Ids {
                    ids: scored.into_iter().map(|(c, _)| c).collect(),
                    partial,
                },
            }
        }
    }
}
