//! Cuboid → shard assignment for the horizontally sharded serve tier.
//!
//! The paper's cuboid partitioning (§5.3) doubles as the shard key: space
//! is cut into a fixed-pitch grid with an **absolute origin** (cell index
//! = `floor(coordinate / cell)`), and every grid cell is assigned to one
//! backend shard by rendezvous (highest-random-weight) hashing over a
//! versioned [`ShardMap`]. Both the coordinator and every shard derive
//! the identical assignment from `(epoch, cell, count)` alone — no cell
//! directory is ever exchanged, and routing stays a pure function.
//!
//! **Boundary-cuboid replication.** A source object whose MBB straddles
//! an ownership boundary is stored on *every* shard owning a cell its
//! MBB overlaps ([`partition_source`]). That makes per-shard join
//! results a covering set: any result object's MBB overlaps the query
//! region, hence shares a grid cell with it, hence lives on one of the
//! contacted owners. The coordinator merge deduplicates the replicas by
//! global id exactly once (see `docs/sharding.md`).

use std::sync::Arc;

use tripro::fault::mix64;
use tripro::{ObjectStore, StoredObject};
use tripro_geom::Aabb;

/// Enumerating more grid cells than this falls back to "all shards".
/// A superset of owners is always sound — extra shards only return
/// results another owner also holds, and the merge dedups — so the
/// clamp trades fan-out for bounded routing cost on huge regions.
const CELL_ENUM_MAX: u128 = 4096;

/// Versioned, deterministic cuboid → shard assignment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardMap {
    /// Assignment version. Bumping the epoch re-deals every cell, so a
    /// coordinator refuses to mix backends from different epochs.
    pub epoch: u64,
    /// Grid pitch (the cuboid edge). Derived from the target extent by
    /// the same rule the join driver uses, so coordinator and shards
    /// agree without sharing dataset bounds.
    pub cell: f64,
    /// Number of shards in the cluster.
    pub count: u32,
}

impl ShardMap {
    #[must_use]
    pub fn new(epoch: u64, cell: f64, count: u32) -> Self {
        Self {
            epoch,
            cell: cell.max(1e-9),
            count: count.max(1),
        }
    }

    /// The default grid pitch for a target store — the same rule as
    /// `Server::start`'s cuboid edge: a quarter of the largest extent.
    #[must_use]
    pub fn cell_for(target: &ObjectStore) -> f64 {
        let e = target.rtree().bounds().extent();
        (e.max_component() / 4.0).max(1e-9)
    }

    #[inline]
    fn grid(&self, x: f64) -> i64 {
        (x / self.cell).floor() as i64
    }

    /// Pack a grid coordinate triple into a cell key. 21 bits per axis;
    /// far-apart cells may alias, which only perturbs the (already
    /// pseudo-random) ownership deal and is identical on every node.
    #[inline]
    fn key_of(gx: i64, gy: i64, gz: i64) -> u64 {
        ((gx as u64 & 0x1F_FFFF) << 42) | ((gy as u64 & 0x1F_FFFF) << 21) | (gz as u64 & 0x1F_FFFF)
    }

    /// Rendezvous owner of a grid cell: the shard with the highest
    /// `mix64` weight for `(epoch, key, shard)`. Ties break to the
    /// lowest shard index; every node computes the same winner.
    #[must_use]
    pub fn owner_of(&self, key: u64) -> u32 {
        let seed = mix64(key.wrapping_add(mix64(self.epoch)));
        let mut best_w = 0u64;
        let mut best_i = 0u32;
        for i in 0..self.count {
            let w = mix64(seed ^ mix64(u64::from(i).wrapping_add(1)));
            if w > best_w {
                best_w = w;
                best_i = i;
            }
        }
        best_i
    }

    /// Owning shard of the cell containing point `p`.
    #[must_use]
    pub fn shard_of_point(&self, p: [f64; 3]) -> u32 {
        self.owner_of(Self::key_of(
            self.grid(p[0]),
            self.grid(p[1]),
            self.grid(p[2]),
        ))
    }

    /// Every shard index, ascending — the scatter set for joins and the
    /// fallback when cell enumeration would be unbounded.
    #[must_use]
    pub fn all_shards(&self) -> Vec<u32> {
        (0..self.count).collect()
    }

    /// Owners of every grid cell `b` overlaps, ascending and
    /// deduplicated. An inverted (empty) box owns nothing; a box
    /// spanning more than `CELL_ENUM_MAX` cells returns all shards.
    #[must_use]
    pub fn shards_for_box(&self, b: &Aabb) -> Vec<u32> {
        let (x0, x1) = (self.grid(b.lo.x), self.grid(b.hi.x));
        let (y0, y1) = (self.grid(b.lo.y), self.grid(b.hi.y));
        let (z0, z1) = (self.grid(b.lo.z), self.grid(b.hi.z));
        if x1 < x0 || y1 < y0 || z1 < z0 {
            return Vec::new();
        }
        let span = |a: i64, b: i64| (b as i128 - a as i128 + 1) as u128;
        let cells = span(x0, x1)
            .checked_mul(span(y0, y1))
            .and_then(|v| v.checked_mul(span(z0, z1)));
        match cells {
            Some(n) if n <= CELL_ENUM_MAX => {}
            _ => return self.all_shards(),
        }
        let mut out = Vec::new();
        for gx in x0..=x1 {
            for gy in y0..=y1 {
                for gz in z0..=z1 {
                    out.push(self.owner_of(Self::key_of(gx, gy, gz)));
                    if out.len() >= self.count as usize {
                        // Every shard already present — stop enumerating.
                        out.sort_unstable();
                        out.dedup();
                        if out.len() == self.count as usize {
                            return out;
                        }
                    }
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }
}

/// A shard process's identity within a cluster: the shared map plus this
/// process's index and the global (pre-partition) source object count.
/// Carried in `ServeConfig` and echoed over `ShardInfoOk`, so a
/// coordinator can refuse a backend built from a different map or
/// dataset before routing a single query to it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardView {
    pub map: ShardMap,
    /// This shard's index in `0..map.count`.
    pub index: u32,
    /// Object count of the global source store the partition was cut
    /// from (a cheap dataset fingerprint).
    pub source_total: u64,
}

/// Cut the global source store down to shard `index`'s replica set:
/// every object whose MBB overlaps a grid cell owned by `index` is kept
/// (boundary-cuboid replication). Returns the local store plus the
/// local→global id map; locals are kept in ascending global-id order so
/// local tie-breaks agree bit-for-bit with a single-engine run.
#[must_use]
pub fn partition_source(
    source: ObjectStore,
    map: &ShardMap,
    index: u32,
    cache_bytes: usize,
) -> (ObjectStore, Arc<Vec<u32>>) {
    let mut ids = Vec::new();
    let mut kept: Vec<StoredObject> = Vec::new();
    for (i, o) in source.into_objects().into_iter().enumerate() {
        if map.shards_for_box(&o.mbb).contains(&index) {
            ids.push(i as u32);
            kept.push(o);
        }
    }
    (ObjectStore::from_objects(kept, cache_bytes), Arc::new(ids))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tripro_geom::Vec3;

    fn bx(lo: [f64; 3], hi: [f64; 3]) -> Aabb {
        Aabb {
            lo: Vec3::new(lo[0], lo[1], lo[2]),
            hi: Vec3::new(hi[0], hi[1], hi[2]),
        }
    }

    #[test]
    fn owners_are_deterministic_and_in_range() {
        let map = ShardMap::new(7, 2.0, 5);
        for k in 0..10_000u64 {
            let key = mix64(k);
            let o = map.owner_of(key);
            assert!(o < 5);
            assert_eq!(o, map.owner_of(key), "same key, same owner");
            assert_eq!(o, ShardMap::new(7, 2.0, 5).owner_of(key));
        }
    }

    #[test]
    fn epoch_re_deals_ownership() {
        let a = ShardMap::new(1, 2.0, 4);
        let b = ShardMap::new(2, 2.0, 4);
        let moved = (0..4096u64)
            .filter(|&k| a.owner_of(mix64(k)) != b.owner_of(mix64(k)))
            .count();
        assert!(moved > 0, "bumping the epoch must move some cells");
    }

    #[test]
    fn deal_is_roughly_balanced() {
        let map = ShardMap::new(3, 1.0, 4);
        let mut counts = [0usize; 4];
        for k in 0..8192u64 {
            counts[map.owner_of(mix64(k)) as usize] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                c > 8192 / 8,
                "shard {i} got {c}/8192 cells — badly unbalanced deal"
            );
        }
    }

    #[test]
    fn shards_for_box_is_sorted_dedup_subset() {
        let map = ShardMap::new(9, 1.5, 6);
        let mut rng = 0x3D50u64;
        for _ in 0..500 {
            rng = mix64(rng);
            let cx = (rng & 0xFF) as f64 - 128.0;
            rng = mix64(rng);
            let cy = (rng & 0xFF) as f64 - 128.0;
            rng = mix64(rng);
            let cz = (rng & 0xFF) as f64 - 128.0;
            rng = mix64(rng);
            let e = ((rng & 0x1F) as f64) / 4.0;
            let b = bx([cx, cy, cz], [cx + e, cy + e, cz + e]);
            let owners = map.shards_for_box(&b);
            assert!(!owners.is_empty(), "a valid box has at least one owner");
            assert!(owners.windows(2).all(|w| w[0] < w[1]), "sorted, deduped");
            assert!(owners.iter().all(|&s| s < 6));
            // The lo-corner cell's owner is always in the set.
            assert!(owners.contains(&map.shard_of_point([cx, cy, cz])));
        }
    }

    #[test]
    fn overlapping_boxes_share_an_owner() {
        // The replication-completeness core: if two boxes overlap they
        // share a point, hence a cell, hence an owner — so a query over
        // region A contacting owners(A) always reaches a shard holding
        // any object whose MBB overlaps A.
        let map = ShardMap::new(11, 2.0, 5);
        let mut rng = 77u64;
        for _ in 0..500 {
            rng = mix64(rng);
            let ax = (rng & 0x7F) as f64;
            rng = mix64(rng);
            let ay = (rng & 0x7F) as f64;
            rng = mix64(rng);
            let ae = ((rng & 0xF) as f64) + 0.5;
            let a = bx([ax, ay, 0.0], [ax + ae, ay + ae, 3.0]);
            // Overlapping partner: shift by less than the extent.
            rng = mix64(rng);
            let d = ((rng & 0x7) as f64) / 8.0 * ae;
            let b = bx([ax + d, ay + d, 1.0], [ax + d + ae, ay + d + ae, 4.0]);
            let oa = map.shards_for_box(&a);
            let ob = map.shards_for_box(&b);
            assert!(
                oa.iter().any(|s| ob.binary_search(s).is_ok()),
                "overlapping boxes {a:?} / {b:?} share no owner: {oa:?} vs {ob:?}"
            );
        }
    }

    #[test]
    fn huge_boxes_clamp_to_all_shards() {
        let map = ShardMap::new(5, 0.001, 3);
        let b = bx([-1e6, -1e6, -1e6], [1e6, 1e6, 1e6]);
        assert_eq!(map.shards_for_box(&b), vec![0, 1, 2]);
        // Inverted (empty) boxes own nothing.
        let inv = bx([1.0, 1.0, 1.0], [0.0, 0.0, 0.0]);
        assert!(map.shards_for_box(&inv).is_empty());
    }

    #[test]
    fn single_shard_owns_everything() {
        let map = ShardMap::new(0, 1.0, 1);
        assert_eq!(map.owner_of(123), 0);
        assert_eq!(map.shards_for_box(&bx([0.0; 3], [10.0; 3])), vec![0]);
    }
}
