//! The `tripro-serve` wire protocol: length-prefixed binary frames over a
//! byte stream (see `docs/protocol.md` for the normative description).
//!
//! Every frame is a fixed 16-byte header followed by a payload:
//!
//! ```text
//! offset  size  field
//! 0       4     payload length (u32 LE, excludes the header)
//! 4       2     magic 0x3D50 ("=P")
//! 6       1     protocol version (currently 4; v1 still accepted)
//! 7       1     frame kind
//! 8       8     request id (u64 LE, echoed verbatim in responses)
//! ```
//!
//! All integers are little-endian; `f64` travels as its IEEE-754 bit
//! pattern. Payloads are capped at [`MAX_PAYLOAD`]; responses stream large
//! result sets as a sequence of [`Response::Page`] frames instead of one
//! giant frame, so the cap bounds per-frame memory on both sides.

use std::io::{Read, Write};

/// Frame magic ("=P" little-endian): rejects non-protocol peers early.
pub const MAGIC: u16 = 0x3D50;

/// The protocol version this build speaks. Version 2 added the
/// `Metrics`/`MetricsOk` frame pair; version 3 adds `StatsEx`/`StatsExOk`
/// (extended stats: failure counts plus the engine's per-stage pipeline
/// breakdown); version 4 appends a `retry_after_ms` backoff hint to the
/// `Error` frame (optional-trailing on decode, so v1–v3 error frames
/// still parse). Every older frame is unchanged, so both ends accept the
/// whole [`MIN_VERSION`]`..=`[`VERSION`] range.
pub const VERSION: u8 = 4;

/// Oldest protocol version this build still accepts.
pub const MIN_VERSION: u8 = 1;

/// Hard cap on payload size; larger length prefixes are a protocol error
/// (they would otherwise let a hostile peer demand unbounded allocation).
pub const MAX_PAYLOAD: u32 = 1 << 20;

/// Maximum object ids per result page; larger results span several pages.
pub const PAGE_MAX_IDS: usize = 512;

/// Sentinel for "no deadline" in request `deadline_ms` fields. `0` means
/// "already expired" (the request is admitted, then immediately sheds its
/// refinement work — useful for load-shedding tests).
pub const NO_DEADLINE_MS: u32 = u32::MAX;

// Frame kinds. Requests have the high bit clear, responses set.
const K_HELLO: u8 = 0x01;
const K_HEALTH: u8 = 0x02;
const K_STATS: u8 = 0x03;
const K_SHUTDOWN: u8 = 0x04;
const K_METRICS: u8 = 0x05; // v2+
const K_STATS_EX: u8 = 0x06; // v3+
const K_CONTAINS: u8 = 0x10;
const K_INTERSECT: u8 = 0x11;
const K_WITHIN: u8 = 0x12;
const K_NN: u8 = 0x13;
const K_KNN: u8 = 0x14;
const K_HELLO_OK: u8 = 0x81;
const K_HEALTH_OK: u8 = 0x82;
const K_STATS_OK: u8 = 0x83;
const K_SHUTDOWN_OK: u8 = 0x84;
const K_METRICS_OK: u8 = 0x85; // v2+
const K_STATS_EX_OK: u8 = 0x86; // v3+
const K_PAGE: u8 = 0x90;
const K_ERROR: u8 = 0xFF;

/// Errors produced while encoding, decoding or transporting frames.
#[derive(Debug)]
pub enum WireError {
    /// The underlying transport failed.
    Io(std::io::Error),
    /// The peer closed the connection at a frame boundary.
    Closed,
    /// A structurally invalid frame (bad magic, short payload, trailing
    /// bytes, unknown kind...). The message names the violation.
    Malformed(&'static str),
    /// The peer speaks a protocol version this build does not.
    UnsupportedVersion(u8),
    /// The length prefix exceeds [`MAX_PAYLOAD`].
    Oversized(u32),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "transport error: {e}"),
            WireError::Closed => write!(f, "connection closed"),
            WireError::Malformed(what) => write!(f, "malformed frame: {what}"),
            WireError::UnsupportedVersion(v) => write!(f, "unsupported protocol version {v}"),
            WireError::Oversized(n) => {
                write!(f, "oversized frame: {n} bytes (max {MAX_PAYLOAD})")
            }
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            WireError::Closed
        } else {
            WireError::Io(e)
        }
    }
}

/// Response error codes (the `code` byte of an [`Response::Error`] frame).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// Admission control refused the request; retry with backoff.
    Overloaded = 1,
    /// The request's deadline expired before refinement completed.
    DeadlineExceeded = 2,
    /// The request was structurally valid but semantically wrong
    /// (e.g. target id out of range).
    BadRequest = 3,
    /// Header version outside the server's supported range.
    UnsupportedVersion = 4,
    /// The engine failed internally (decode error, I/O...).
    Internal = 5,
}

impl ErrorCode {
    /// Decode a wire byte.
    pub fn from_u8(b: u8) -> Result<Self, WireError> {
        Ok(match b {
            1 => ErrorCode::Overloaded,
            2 => ErrorCode::DeadlineExceeded,
            3 => ErrorCode::BadRequest,
            4 => ErrorCode::UnsupportedVersion,
            5 => ErrorCode::Internal,
            _ => return Err(WireError::Malformed("unknown error code")),
        })
    }
}

/// Counters reported by a [`Response::StatsOk`] frame.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsPayload {
    pub admitted: u64,
    pub shed: u64,
    pub deadline_expired: u64,
    pub completed: u64,
    pub protocol_errors: u64,
    /// Objects in the loaded target store.
    pub target_objects: u64,
    /// Objects in the loaded source store.
    pub source_objects: u64,
}

/// Extended counters reported by a [`Response::StatsExOk`] frame (v3+):
/// the v1 `StatsPayload` fields plus execution failures and the engine's
/// cumulative time breakdown, including the pipelined executor's
/// per-stage wall time and queue-stall counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsExPayload {
    // Service lifecycle (StatsPayload superset).
    pub admitted: u64,
    pub shed: u64,
    pub deadline_expired: u64,
    pub completed: u64,
    /// Admitted requests that failed in execution — absent from the v1
    /// frame, which could not reconcile `admitted` against outcomes.
    pub failed: u64,
    pub protocol_errors: u64,
    pub target_objects: u64,
    pub source_objects: u64,
    // Engine cumulative execution breakdown.
    pub filter_ns: u64,
    pub decode_ns: u64,
    pub compute_ns: u64,
    pub face_pair_tests: u64,
    pub cache_hits: u64,
    pub cache_misses: u64,
    pub decodes: u64,
    /// Busy nanoseconds per pipeline stage (generate/decode/build/eval).
    pub stage_ns: [u64; 4],
    /// Items processed per pipeline stage.
    pub stage_items: [u64; 4],
    /// Backpressure stalls per inter-stage queue
    /// (gen→decode, decode→build, build→eval).
    pub queue_stalls: [u64; 3],
}

/// Client → server frames.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Version negotiation: the client's supported range, inclusive.
    Hello { min_version: u8, max_version: u8 },
    /// Liveness probe; answered inline even under overload.
    Health,
    /// Service counters; answered inline even under overload.
    Stats,
    /// Ask the server to drain in-flight work and exit.
    Shutdown,
    /// Prometheus text exposition of the server's metrics registry;
    /// answered inline even under overload (v2+).
    Metrics,
    /// Extended stats (v3+): service counters plus the engine's
    /// cumulative per-stage pipeline breakdown; answered inline even
    /// under overload.
    StatsEx,
    /// Ids of target-store objects containing the point.
    Contains { p: [f64; 3], deadline_ms: u32 },
    /// Source objects intersecting target object `target`.
    Intersect { target: u32, deadline_ms: u32 },
    /// Source objects within `d` of target object `target`.
    Within {
        target: u32,
        d: f64,
        deadline_ms: u32,
    },
    /// The nearest source object to target object `target`.
    Nn { target: u32, deadline_ms: u32 },
    /// The `k` nearest source objects, closest first.
    Knn {
        target: u32,
        k: u32,
        deadline_ms: u32,
    },
}

/// Server → client frames.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Version negotiation result: the version the server will speak.
    HelloOk {
        version: u8,
    },
    HealthOk,
    StatsOk(StatsPayload),
    ShutdownOk,
    /// Prometheus text exposition (v2+). Truncated server-side at a UTF-8
    /// boundary if it would overflow [`MAX_PAYLOAD`].
    MetricsOk {
        text: String,
    },
    /// Extended stats (v3+).
    StatsExOk(StatsExPayload),
    /// One page of result ids; `last` marks the final page of a request.
    Page {
        last: bool,
        ids: Vec<u32>,
    },
    /// Terminal failure for a request.
    Error {
        code: ErrorCode,
        message: String,
        /// Backoff hint (v4+): how long the client should wait before
        /// retrying, derived from live queue depth for `Overloaded`
        /// rejections. `0` means "no hint" (and is what decoding a
        /// v1–v3 error frame yields).
        retry_after_ms: u32,
    },
}

// ---------------------------------------------------------------------
// Little-endian cursor primitives
// ---------------------------------------------------------------------

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self
            .pos
            .checked_add(n)
            .ok_or(WireError::Malformed("length overflow"))?;
        if end > self.buf.len() {
            return Err(WireError::Malformed("payload too short"));
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Every payload must be fully consumed; trailing bytes are a protocol
    /// violation (they hide versioning mistakes).
    fn finish(self) -> Result<(), WireError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(WireError::Malformed("trailing bytes in payload"))
        }
    }
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

// ---------------------------------------------------------------------
// Header
// ---------------------------------------------------------------------

/// Size of the fixed frame header in bytes.
pub const HEADER_LEN: usize = 16;

/// A decoded frame header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Header {
    pub payload_len: u32,
    pub version: u8,
    pub kind: u8,
    pub request_id: u64,
}

/// Decode and validate a frame header. Magic and size limits are enforced
/// here; the version byte is surfaced so the caller can decide whether to
/// answer `UnsupportedVersion` (server) or bail (client).
pub fn decode_header(bytes: &[u8; HEADER_LEN]) -> Result<Header, WireError> {
    let mut c = Cursor::new(bytes);
    let payload_len = c.u32()?;
    let magic = c.u16()?;
    let version = c.u8()?;
    let kind = c.u8()?;
    let request_id = c.u64()?;
    if magic != MAGIC {
        return Err(WireError::Malformed("bad magic"));
    }
    if payload_len > MAX_PAYLOAD {
        return Err(WireError::Oversized(payload_len));
    }
    Ok(Header {
        payload_len,
        version,
        kind,
        request_id,
    })
}

fn encode_frame(kind: u8, request_id: u64, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    put_u32(&mut out, payload.len() as u32);
    put_u16(&mut out, MAGIC);
    out.push(VERSION);
    out.push(kind);
    put_u64(&mut out, request_id);
    out.extend_from_slice(payload);
    out
}

// ---------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------

/// Encode a request into a complete frame (header + payload).
pub fn encode_request(request_id: u64, req: &Request) -> Vec<u8> {
    let mut p = Vec::new();
    let kind = match req {
        Request::Hello {
            min_version,
            max_version,
        } => {
            p.push(*min_version);
            p.push(*max_version);
            K_HELLO
        }
        Request::Health => K_HEALTH,
        Request::Stats => K_STATS,
        Request::Shutdown => K_SHUTDOWN,
        Request::Metrics => K_METRICS,
        Request::StatsEx => K_STATS_EX,
        Request::Contains {
            p: point,
            deadline_ms,
        } => {
            put_f64(&mut p, point[0]);
            put_f64(&mut p, point[1]);
            put_f64(&mut p, point[2]);
            put_u32(&mut p, *deadline_ms);
            K_CONTAINS
        }
        Request::Intersect {
            target,
            deadline_ms,
        } => {
            put_u32(&mut p, *target);
            put_u32(&mut p, *deadline_ms);
            K_INTERSECT
        }
        Request::Within {
            target,
            d,
            deadline_ms,
        } => {
            put_u32(&mut p, *target);
            put_f64(&mut p, *d);
            put_u32(&mut p, *deadline_ms);
            K_WITHIN
        }
        Request::Nn {
            target,
            deadline_ms,
        } => {
            put_u32(&mut p, *target);
            put_u32(&mut p, *deadline_ms);
            K_NN
        }
        Request::Knn {
            target,
            k,
            deadline_ms,
        } => {
            put_u32(&mut p, *target);
            put_u32(&mut p, *k);
            put_u32(&mut p, *deadline_ms);
            K_KNN
        }
    };
    encode_frame(kind, request_id, &p)
}

/// Decode a request payload given its header `kind`.
pub fn decode_request_body(kind: u8, payload: &[u8]) -> Result<Request, WireError> {
    let mut c = Cursor::new(payload);
    let req = match kind {
        K_HELLO => Request::Hello {
            min_version: c.u8()?,
            max_version: c.u8()?,
        },
        K_HEALTH => Request::Health,
        K_STATS => Request::Stats,
        K_SHUTDOWN => Request::Shutdown,
        K_METRICS => Request::Metrics,
        K_STATS_EX => Request::StatsEx,
        K_CONTAINS => Request::Contains {
            p: [c.f64()?, c.f64()?, c.f64()?],
            deadline_ms: c.u32()?,
        },
        K_INTERSECT => Request::Intersect {
            target: c.u32()?,
            deadline_ms: c.u32()?,
        },
        K_WITHIN => Request::Within {
            target: c.u32()?,
            d: c.f64()?,
            deadline_ms: c.u32()?,
        },
        K_NN => Request::Nn {
            target: c.u32()?,
            deadline_ms: c.u32()?,
        },
        K_KNN => Request::Knn {
            target: c.u32()?,
            k: c.u32()?,
            deadline_ms: c.u32()?,
        },
        _ => return Err(WireError::Malformed("unknown request kind")),
    };
    c.finish()?;
    Ok(req)
}

// ---------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------

/// Largest metrics text that fits a `MetricsOk` payload (u32 length prefix
/// plus the bytes, under [`MAX_PAYLOAD`]).
const METRICS_TEXT_MAX: usize = MAX_PAYLOAD as usize - 4;

/// Clip metrics text to [`METRICS_TEXT_MAX`] bytes at a line boundary so a
/// truncated exposition is still a sequence of well-formed lines (the last
/// partial line is dropped, never half-sent).
fn truncate_metrics_text(text: &str) -> &[u8] {
    let bytes = text.as_bytes();
    if bytes.len() <= METRICS_TEXT_MAX {
        return bytes;
    }
    let cut = bytes[..METRICS_TEXT_MAX]
        .iter()
        .rposition(|&b| b == b'\n')
        .map_or(0, |i| i + 1);
    &bytes[..cut]
}

/// Encode a response into a complete frame (header + payload).
pub fn encode_response(request_id: u64, resp: &Response) -> Vec<u8> {
    let mut p = Vec::new();
    let kind = match resp {
        Response::HelloOk { version } => {
            p.push(*version);
            K_HELLO_OK
        }
        Response::HealthOk => K_HEALTH_OK,
        Response::StatsOk(s) => {
            put_u64(&mut p, s.admitted);
            put_u64(&mut p, s.shed);
            put_u64(&mut p, s.deadline_expired);
            put_u64(&mut p, s.completed);
            put_u64(&mut p, s.protocol_errors);
            put_u64(&mut p, s.target_objects);
            put_u64(&mut p, s.source_objects);
            K_STATS_OK
        }
        Response::ShutdownOk => K_SHUTDOWN_OK,
        Response::MetricsOk { text } => {
            let bytes = truncate_metrics_text(text);
            put_u32(&mut p, bytes.len() as u32);
            p.extend_from_slice(bytes);
            K_METRICS_OK
        }
        Response::StatsExOk(s) => {
            put_u64(&mut p, s.admitted);
            put_u64(&mut p, s.shed);
            put_u64(&mut p, s.deadline_expired);
            put_u64(&mut p, s.completed);
            put_u64(&mut p, s.failed);
            put_u64(&mut p, s.protocol_errors);
            put_u64(&mut p, s.target_objects);
            put_u64(&mut p, s.source_objects);
            put_u64(&mut p, s.filter_ns);
            put_u64(&mut p, s.decode_ns);
            put_u64(&mut p, s.compute_ns);
            put_u64(&mut p, s.face_pair_tests);
            put_u64(&mut p, s.cache_hits);
            put_u64(&mut p, s.cache_misses);
            put_u64(&mut p, s.decodes);
            for v in s.stage_ns {
                put_u64(&mut p, v);
            }
            for v in s.stage_items {
                put_u64(&mut p, v);
            }
            for v in s.queue_stalls {
                put_u64(&mut p, v);
            }
            K_STATS_EX_OK
        }
        Response::Page { last, ids } => {
            p.push(u8::from(*last));
            put_u32(&mut p, ids.len() as u32);
            for id in ids {
                put_u32(&mut p, *id);
            }
            K_PAGE
        }
        Response::Error {
            code,
            message,
            retry_after_ms,
        } => {
            p.push(*code as u8);
            let msg = message.as_bytes();
            let n = msg.len().min(u16::MAX as usize);
            put_u16(&mut p, n as u16);
            p.extend_from_slice(&msg[..n]);
            put_u32(&mut p, *retry_after_ms);
            K_ERROR
        }
    };
    encode_frame(kind, request_id, &p)
}

/// Decode a response payload given its header `kind`.
pub fn decode_response_body(kind: u8, payload: &[u8]) -> Result<Response, WireError> {
    let mut c = Cursor::new(payload);
    let resp = match kind {
        K_HELLO_OK => Response::HelloOk { version: c.u8()? },
        K_HEALTH_OK => Response::HealthOk,
        K_STATS_OK => Response::StatsOk(StatsPayload {
            admitted: c.u64()?,
            shed: c.u64()?,
            deadline_expired: c.u64()?,
            completed: c.u64()?,
            protocol_errors: c.u64()?,
            target_objects: c.u64()?,
            source_objects: c.u64()?,
        }),
        K_SHUTDOWN_OK => Response::ShutdownOk,
        K_METRICS_OK => {
            let n = c.u32()? as usize;
            let bytes = c.take(n)?;
            Response::MetricsOk {
                text: String::from_utf8_lossy(bytes).into_owned(),
            }
        }
        K_STATS_EX_OK => Response::StatsExOk(StatsExPayload {
            admitted: c.u64()?,
            shed: c.u64()?,
            deadline_expired: c.u64()?,
            completed: c.u64()?,
            failed: c.u64()?,
            protocol_errors: c.u64()?,
            target_objects: c.u64()?,
            source_objects: c.u64()?,
            filter_ns: c.u64()?,
            decode_ns: c.u64()?,
            compute_ns: c.u64()?,
            face_pair_tests: c.u64()?,
            cache_hits: c.u64()?,
            cache_misses: c.u64()?,
            decodes: c.u64()?,
            stage_ns: [c.u64()?, c.u64()?, c.u64()?, c.u64()?],
            stage_items: [c.u64()?, c.u64()?, c.u64()?, c.u64()?],
            queue_stalls: [c.u64()?, c.u64()?, c.u64()?],
        }),
        K_PAGE => {
            let last = c.u8()? != 0;
            let count = c.u32()? as usize;
            if count > PAGE_MAX_IDS {
                return Err(WireError::Malformed("page exceeds PAGE_MAX_IDS"));
            }
            let mut ids = Vec::with_capacity(count);
            for _ in 0..count {
                ids.push(c.u32()?);
            }
            Response::Page { last, ids }
        }
        K_ERROR => {
            let code = ErrorCode::from_u8(c.u8()?)?;
            let n = c.u16()? as usize;
            let bytes = c.take(n)?;
            let message = String::from_utf8_lossy(bytes).into_owned();
            // v4 appended a retry-after hint after the message; v1-v3
            // error frames end at the message, so the field is
            // optional-trailing: absent decodes as "no hint".
            let retry_after_ms = if payload.len() - c.pos == 4 {
                c.u32()?
            } else {
                0
            };
            Response::Error {
                code,
                message,
                retry_after_ms,
            }
        }
        _ => return Err(WireError::Malformed("unknown response kind")),
    };
    c.finish()?;
    Ok(resp)
}

// ---------------------------------------------------------------------
// Blocking stream helpers (client side and tests; the server uses its own
// shutdown-aware reader)
// ---------------------------------------------------------------------

fn read_payload<R: Read>(r: &mut R, header: &Header) -> Result<Vec<u8>, WireError> {
    let mut payload = vec![0u8; header.payload_len as usize];
    r.read_exact(&mut payload)?;
    Ok(payload)
}

/// Read one request frame (blocking).
pub fn read_request<R: Read>(r: &mut R) -> Result<(u64, Request), WireError> {
    let mut hb = [0u8; HEADER_LEN];
    r.read_exact(&mut hb)?;
    let header = decode_header(&hb)?;
    if !(MIN_VERSION..=VERSION).contains(&header.version) {
        return Err(WireError::UnsupportedVersion(header.version));
    }
    let payload = read_payload(r, &header)?;
    Ok((
        header.request_id,
        decode_request_body(header.kind, &payload)?,
    ))
}

/// Read one response frame (blocking).
pub fn read_response<R: Read>(r: &mut R) -> Result<(u64, Response), WireError> {
    let mut hb = [0u8; HEADER_LEN];
    r.read_exact(&mut hb)?;
    let header = decode_header(&hb)?;
    if !(MIN_VERSION..=VERSION).contains(&header.version) {
        return Err(WireError::UnsupportedVersion(header.version));
    }
    let payload = read_payload(r, &header)?;
    Ok((
        header.request_id,
        decode_response_body(header.kind, &payload)?,
    ))
}

/// Write a pre-encoded frame and flush it.
pub fn write_frame<W: Write>(w: &mut W, frame: &[u8]) -> Result<(), WireError> {
    w.write_all(frame)?;
    w.flush()?;
    Ok(())
}

/// Split result ids into wire pages (at least one page, the last flagged).
pub fn pages_of(ids: &[u32]) -> Vec<Response> {
    if ids.is_empty() {
        return vec![Response::Page {
            last: true,
            ids: Vec::new(),
        }];
    }
    let chunks: Vec<&[u32]> = ids.chunks(PAGE_MAX_IDS).collect();
    let n = chunks.len();
    chunks
        .into_iter()
        .enumerate()
        .map(|(i, chunk)| Response::Page {
            last: i + 1 == n,
            ids: chunk.to_vec(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_request(req: Request) {
        let frame = encode_request(42, &req);
        let mut r = frame.as_slice();
        let (id, got) = read_request(&mut r).unwrap();
        assert_eq!(id, 42);
        assert_eq!(got, req);
        assert!(r.is_empty(), "whole frame consumed");
    }

    fn roundtrip_response(resp: Response) {
        let frame = encode_response(7, &resp);
        let mut r = frame.as_slice();
        let (id, got) = read_response(&mut r).unwrap();
        assert_eq!(id, 7);
        assert_eq!(got, resp);
        assert!(r.is_empty());
    }

    #[test]
    fn every_request_kind_roundtrips() {
        roundtrip_request(Request::Hello {
            min_version: 1,
            max_version: 3,
        });
        roundtrip_request(Request::Health);
        roundtrip_request(Request::Stats);
        roundtrip_request(Request::Shutdown);
        roundtrip_request(Request::Metrics);
        roundtrip_request(Request::StatsEx);
        roundtrip_request(Request::Contains {
            p: [1.5, -2.25, 1e300],
            deadline_ms: 250,
        });
        roundtrip_request(Request::Intersect {
            target: 9,
            deadline_ms: NO_DEADLINE_MS,
        });
        roundtrip_request(Request::Within {
            target: 3,
            d: 0.125,
            deadline_ms: 0,
        });
        roundtrip_request(Request::Nn {
            target: u32::MAX,
            deadline_ms: 1,
        });
        roundtrip_request(Request::Knn {
            target: 0,
            k: 17,
            deadline_ms: 99,
        });
    }

    #[test]
    fn every_response_kind_roundtrips() {
        roundtrip_response(Response::HelloOk { version: 1 });
        roundtrip_response(Response::HealthOk);
        roundtrip_response(Response::StatsOk(StatsPayload {
            admitted: 1,
            shed: 2,
            deadline_expired: 3,
            completed: 4,
            protocol_errors: 5,
            target_objects: 6,
            source_objects: 7,
        }));
        roundtrip_response(Response::ShutdownOk);
        roundtrip_response(Response::MetricsOk {
            text: String::new(),
        });
        roundtrip_response(Response::MetricsOk {
            text: "# TYPE t counter\nt 1\n".to_string(),
        });
        roundtrip_response(Response::StatsExOk(StatsExPayload::default()));
        roundtrip_response(Response::StatsExOk(StatsExPayload {
            admitted: 1,
            shed: 2,
            deadline_expired: 3,
            completed: 4,
            failed: 5,
            protocol_errors: 6,
            target_objects: 7,
            source_objects: 8,
            filter_ns: 9,
            decode_ns: 10,
            compute_ns: 11,
            face_pair_tests: 12,
            cache_hits: 13,
            cache_misses: 14,
            decodes: 15,
            stage_ns: [16, 17, 18, 19],
            stage_items: [20, 21, 22, 23],
            queue_stalls: [24, 25, 26],
        }));
        roundtrip_response(Response::Page {
            last: false,
            ids: vec![1, 2, 3],
        });
        roundtrip_response(Response::Page {
            last: true,
            ids: Vec::new(),
        });
        roundtrip_response(Response::Error {
            code: ErrorCode::Overloaded,
            message: "busy".to_string(),
            retry_after_ms: 250,
        });
        for code in [
            ErrorCode::Overloaded,
            ErrorCode::DeadlineExceeded,
            ErrorCode::BadRequest,
            ErrorCode::UnsupportedVersion,
            ErrorCode::Internal,
        ] {
            roundtrip_response(Response::Error {
                code,
                message: String::new(),
                retry_after_ms: 0,
            });
        }
    }

    #[test]
    fn v3_error_frame_decodes_without_retry_hint() {
        // Hand-build a pre-v4 error payload: code + msg_len + msg, no
        // trailing retry_after_ms. Decoding must yield hint 0, not a
        // trailing-bytes or too-short error.
        let mut payload = vec![ErrorCode::Overloaded as u8];
        let msg = b"busy";
        payload.extend_from_slice(&(msg.len() as u16).to_le_bytes());
        payload.extend_from_slice(msg);
        let got = decode_response_body(K_ERROR, &payload).unwrap();
        assert_eq!(
            got,
            Response::Error {
                code: ErrorCode::Overloaded,
                message: "busy".to_string(),
                retry_after_ms: 0,
            }
        );
    }

    #[test]
    fn truncated_frames_are_rejected() {
        let frame = encode_request(
            1,
            &Request::Within {
                target: 3,
                d: 0.5,
                deadline_ms: 7,
            },
        );
        // Every strict prefix must fail with Closed (EOF), never panic or
        // succeed.
        for cut in 0..frame.len() {
            let mut r = &frame[..cut];
            let err = read_request(&mut r).unwrap_err();
            assert!(
                matches!(err, WireError::Closed | WireError::Malformed(_)),
                "cut at {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut frame = encode_request(1, &Request::Health);
        frame[4] ^= 0xFF;
        let mut r = frame.as_slice();
        assert!(matches!(
            read_request(&mut r).unwrap_err(),
            WireError::Malformed("bad magic")
        ));
    }

    #[test]
    fn oversized_length_is_rejected_before_allocation() {
        let mut frame = encode_request(1, &Request::Health);
        frame[..4].copy_from_slice(&(MAX_PAYLOAD + 1).to_le_bytes());
        let mut r = frame.as_slice();
        assert!(matches!(
            read_request(&mut r).unwrap_err(),
            WireError::Oversized(_)
        ));
    }

    #[test]
    fn wrong_version_is_rejected() {
        for bad in [0, VERSION + 1, u8::MAX] {
            let mut frame = encode_request(1, &Request::Health);
            frame[6] = bad;
            let mut r = frame.as_slice();
            assert!(matches!(
                read_request(&mut r).unwrap_err(),
                WireError::UnsupportedVersion(v) if v == bad
            ));
        }
    }

    #[test]
    fn v1_frames_still_decode() {
        // A v2 build must keep accepting frames stamped with every older
        // version in the supported range — wire compatibility is the whole
        // point of MIN_VERSION.
        for old in MIN_VERSION..VERSION {
            let mut frame = encode_request(
                5,
                &Request::Within {
                    target: 3,
                    d: 0.5,
                    deadline_ms: 7,
                },
            );
            frame[6] = old;
            let mut r = frame.as_slice();
            let (id, req) = read_request(&mut r).unwrap();
            assert_eq!(id, 5);
            assert!(matches!(req, Request::Within { target: 3, .. }));

            let mut resp = encode_response(5, &Response::HealthOk);
            resp[6] = old;
            let mut r = resp.as_slice();
            assert_eq!(read_response(&mut r).unwrap(), (5, Response::HealthOk));
        }
    }

    #[test]
    fn hand_built_v1_frame_decodes() {
        // Byte-for-byte v1 Stats frame (header only, empty payload), built
        // without the encoder so this test pins the v1 layout itself.
        let mut frame = Vec::new();
        frame.extend_from_slice(&0u32.to_le_bytes()); // payload length
        frame.extend_from_slice(&MAGIC.to_le_bytes());
        frame.push(1); // version 1
        frame.push(0x03); // K_STATS
        frame.extend_from_slice(&9u64.to_le_bytes());
        let mut r = frame.as_slice();
        assert_eq!(read_request(&mut r).unwrap(), (9, Request::Stats));
    }

    #[test]
    fn oversized_metrics_text_truncates_at_line_boundary() {
        let line = "tripro_x_total 1\n";
        let n = METRICS_TEXT_MAX / line.len() + 2;
        let text = line.repeat(n);
        assert!(text.len() > METRICS_TEXT_MAX);
        let frame = encode_response(1, &Response::MetricsOk { text });
        assert!(frame.len() <= HEADER_LEN + MAX_PAYLOAD as usize);
        let mut r = frame.as_slice();
        let (_, got) = read_response(&mut r).unwrap();
        let Response::MetricsOk { text } = got else {
            panic!("not MetricsOk")
        };
        assert!(text.len() <= METRICS_TEXT_MAX);
        assert!(text.ends_with('\n'), "no half-sent line");
        assert!(text.len() >= METRICS_TEXT_MAX - line.len());
    }

    #[test]
    fn unknown_kind_is_rejected() {
        let mut frame = encode_request(1, &Request::Health);
        frame[7] = 0x7E;
        let mut r = frame.as_slice();
        assert!(matches!(
            read_request(&mut r).unwrap_err(),
            WireError::Malformed("unknown request kind")
        ));
    }

    #[test]
    fn trailing_payload_bytes_are_rejected() {
        // Hand-build a Health frame with one stray payload byte.
        let mut frame = encode_request(1, &Request::Health);
        frame[..4].copy_from_slice(&1u32.to_le_bytes());
        frame.push(0xAB);
        let mut r = frame.as_slice();
        assert!(matches!(
            read_request(&mut r).unwrap_err(),
            WireError::Malformed("trailing bytes in payload")
        ));
    }

    #[test]
    fn short_payload_is_rejected() {
        // A Within frame whose payload claims fewer bytes than the body
        // needs: decoder must fail cleanly.
        let full = encode_request(
            1,
            &Request::Within {
                target: 3,
                d: 0.5,
                deadline_ms: 7,
            },
        );
        let mut frame = full.clone();
        frame[..4].copy_from_slice(&4u32.to_le_bytes());
        frame.truncate(HEADER_LEN + 4);
        let mut r = frame.as_slice();
        assert!(matches!(
            read_request(&mut r).unwrap_err(),
            WireError::Malformed("payload too short")
        ));
    }

    #[test]
    fn pages_split_and_flag_last() {
        assert_eq!(
            pages_of(&[]),
            vec![Response::Page {
                last: true,
                ids: vec![]
            }]
        );
        let ids: Vec<u32> = (0..PAGE_MAX_IDS as u32 + 3).collect();
        let pages = pages_of(&ids);
        assert_eq!(pages.len(), 2);
        let mut seen = Vec::new();
        for (i, p) in pages.iter().enumerate() {
            let Response::Page { last, ids } = p else {
                panic!("not a page")
            };
            assert_eq!(*last, i == 1);
            seen.extend_from_slice(ids);
        }
        assert_eq!(seen, ids);
    }

    #[test]
    fn error_message_truncates_at_u16() {
        let long = "x".repeat(70_000);
        let frame = encode_response(
            1,
            &Response::Error {
                code: ErrorCode::Internal,
                message: long,
                retry_after_ms: 0,
            },
        );
        let mut r = frame.as_slice();
        let (_, got) = read_response(&mut r).unwrap();
        let Response::Error { message, .. } = got else {
            panic!("not an error")
        };
        assert_eq!(message.len(), u16::MAX as usize);
    }
}
