//! The `tripro-serve` wire protocol: length-prefixed binary frames over a
//! byte stream (see `docs/protocol.md` for the normative description).
//!
//! Every frame is a fixed 16-byte header followed by a payload:
//!
//! ```text
//! offset  size  field
//! 0       4     payload length (u32 LE, excludes the header)
//! 4       2     magic 0x3D50 ("=P")
//! 6       1     protocol version (currently 4; v1 still accepted)
//! 7       1     frame kind
//! 8       8     request id (u64 LE, echoed verbatim in responses)
//! ```
//!
//! All integers are little-endian; `f64` travels as its IEEE-754 bit
//! pattern. Payloads are capped at [`MAX_PAYLOAD`]; responses stream large
//! result sets as a sequence of [`Response::Page`] frames instead of one
//! giant frame, so the cap bounds per-frame memory on both sides.

use std::io::{Read, Write};

use tripro::obs::{HistogramSnapshot, MetricSnapshot, MetricValue, SpanSummary};

/// Frame magic ("=P" little-endian): rejects non-protocol peers early.
pub const MAGIC: u16 = 0x3D50;

/// The protocol version this build speaks. Version 2 added the
/// `Metrics`/`MetricsOk` frame pair; version 3 adds `StatsEx`/`StatsExOk`
/// (extended stats: failure counts plus the engine's per-stage pipeline
/// breakdown); version 4 appends a `retry_after_ms` backoff hint to the
/// `Error` frame (optional-trailing on decode, so v1–v3 error frames
/// still parse). Version 5 adds the sharded-tier machinery: a node-role
/// byte on `Hello`/`HelloOk` (optional-trailing — v1–v4 frames decode to
/// the role defaults), the `ShardInfo`/`ShardInfoOk` probe, the scored
/// sub-query pair `NnEx`/`KnnEx` with `PageD` result pages, and an
/// optional-trailing `partial` flag on `Page` (emitted only when set, so
/// a complete v5 page is byte-identical to its v4 encoding). Version 6
/// adds cluster observability: an optional-trailing [`TraceContext`]
/// triple (`trace_id`, `parent_span_id`, `sampled` — 17 bytes) on every
/// query request so a coordinator can propagate its trace id to shards,
/// an optional-trailing 80-byte [`SpanSummary`] on the final `Page` /
/// `PageD` of a sampled reply carrying the shard's per-stage cost back,
/// and two probe pairs — `MetricsBin`/`MetricsBinOk` (binary metric
/// snapshots for exact federated merging) and `TraceLog`/`TraceLogOk`
/// (the node's rendered slow-trace log). Every older frame is unchanged,
/// so both ends accept the whole [`MIN_VERSION`]`..=`[`VERSION`] range.
pub const VERSION: u8 = 6;

/// Oldest protocol version this build still accepts.
pub const MIN_VERSION: u8 = 1;

/// Hard cap on payload size; larger length prefixes are a protocol error
/// (they would otherwise let a hostile peer demand unbounded allocation).
pub const MAX_PAYLOAD: u32 = 1 << 20;

/// Maximum object ids per result page; larger results span several pages.
pub const PAGE_MAX_IDS: usize = 512;

/// Sentinel for "no deadline" in request `deadline_ms` fields. `0` means
/// "already expired" (the request is admitted, then immediately sheds its
/// refinement work — useful for load-shedding tests).
pub const NO_DEADLINE_MS: u32 = u32::MAX;

// Frame kinds. Requests have the high bit clear, responses set.
const K_HELLO: u8 = 0x01;
const K_HEALTH: u8 = 0x02;
const K_STATS: u8 = 0x03;
const K_SHUTDOWN: u8 = 0x04;
const K_METRICS: u8 = 0x05; // v2+
const K_STATS_EX: u8 = 0x06; // v3+
const K_SHARD_INFO: u8 = 0x07; // v5+
const K_METRICS_BIN: u8 = 0x08; // v6+
const K_TRACE_LOG: u8 = 0x09; // v6+
const K_CONTAINS: u8 = 0x10;
const K_INTERSECT: u8 = 0x11;
const K_WITHIN: u8 = 0x12;
const K_NN: u8 = 0x13;
const K_KNN: u8 = 0x14;
const K_NN_EX: u8 = 0x15; // v5+
const K_KNN_EX: u8 = 0x16; // v5+
const K_HELLO_OK: u8 = 0x81;
const K_HEALTH_OK: u8 = 0x82;
const K_STATS_OK: u8 = 0x83;
const K_SHUTDOWN_OK: u8 = 0x84;
const K_METRICS_OK: u8 = 0x85; // v2+
const K_STATS_EX_OK: u8 = 0x86; // v3+
const K_SHARD_INFO_OK: u8 = 0x87; // v5+
const K_METRICS_BIN_OK: u8 = 0x88; // v6+
const K_TRACE_LOG_OK: u8 = 0x89; // v6+
const K_PAGE: u8 = 0x90;
const K_PAGE_D: u8 = 0x91; // v5+
const K_ERROR: u8 = 0xFF;

/// Errors produced while encoding, decoding or transporting frames.
#[derive(Debug)]
pub enum WireError {
    /// The underlying transport failed.
    Io(std::io::Error),
    /// The peer closed the connection at a frame boundary.
    Closed,
    /// A structurally invalid frame (bad magic, short payload, trailing
    /// bytes, unknown kind...). The message names the violation.
    Malformed(&'static str),
    /// The peer speaks a protocol version this build does not.
    UnsupportedVersion(u8),
    /// The length prefix exceeds [`MAX_PAYLOAD`].
    Oversized(u32),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "transport error: {e}"),
            WireError::Closed => write!(f, "connection closed"),
            WireError::Malformed(what) => write!(f, "malformed frame: {what}"),
            WireError::UnsupportedVersion(v) => write!(f, "unsupported protocol version {v}"),
            WireError::Oversized(n) => {
                write!(f, "oversized frame: {n} bytes (max {MAX_PAYLOAD})")
            }
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            WireError::Closed
        } else {
            WireError::Io(e)
        }
    }
}

/// Response error codes (the `code` byte of an [`Response::Error`] frame).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// Admission control refused the request; retry with backoff.
    Overloaded = 1,
    /// The request's deadline expired before refinement completed.
    DeadlineExceeded = 2,
    /// The request was structurally valid but semantically wrong
    /// (e.g. target id out of range).
    BadRequest = 3,
    /// Header version outside the server's supported range.
    UnsupportedVersion = 4,
    /// The engine failed internally (decode error, I/O...).
    Internal = 5,
}

impl ErrorCode {
    /// Decode a wire byte.
    pub fn from_u8(b: u8) -> Result<Self, WireError> {
        Ok(match b {
            1 => ErrorCode::Overloaded,
            2 => ErrorCode::DeadlineExceeded,
            3 => ErrorCode::BadRequest,
            4 => ErrorCode::UnsupportedVersion,
            5 => ErrorCode::Internal,
            _ => return Err(WireError::Malformed("unknown error code")),
        })
    }
}

/// What kind of node sits at each end of a connection (v5+). Carried as
/// an optional-trailing byte on `Hello` (the connecting node's role) and
/// `HelloOk` (the serving node's role): a v1–v4 `Hello` decodes as
/// [`NodeRole::Client`], a v1–v4 `HelloOk` as [`NodeRole::Engine`] —
/// exactly what those peers were.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum NodeRole {
    /// An ordinary query client.
    Client = 0,
    /// A query engine serving (a shard of) the stores directly.
    Engine = 1,
    /// A coordinator fronting a set of engine shards.
    Coordinator = 2,
}

impl NodeRole {
    /// Decode a wire byte.
    pub fn from_u8(b: u8) -> Result<Self, WireError> {
        Ok(match b {
            0 => NodeRole::Client,
            1 => NodeRole::Engine,
            2 => NodeRole::Coordinator,
            _ => return Err(WireError::Malformed("unknown node role")),
        })
    }
}

/// Shard-placement description reported by a [`Response::ShardInfoOk`]
/// frame (v5+). A plain engine reports `index 0 / count 1 / epoch 0`; a
/// coordinator validates every backend's view against its own shard map
/// at startup, so a mis-deployed cluster fails fast instead of silently
/// returning partial answers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardInfoPayload {
    /// What the answering node is.
    pub role: NodeRole,
    /// Shard-map epoch this node was started with.
    pub epoch: u64,
    /// This node's shard index in `0..count`.
    pub index: u32,
    /// Total shards in the map.
    pub count: u32,
    /// Grid cell edge the shard map hashes cuboids with.
    pub cell: f64,
    /// Objects in the (always full) target store.
    pub target_objects: u64,
    /// Source objects resident on this node (the boundary-replicated
    /// subset on a shard; the full store on an unsharded engine).
    pub source_objects: u64,
    /// Objects in the full, unpartitioned source store.
    pub source_total: u64,
}

/// Distributed trace context carried on query requests (v6+). Encoded as
/// an optional-trailing 17-byte triple (`trace_id` u64, `parent_span_id`
/// u64, `sampled` u8) after the query body: a v1–v5 request ends at the
/// body, and a v6 peer that does not trace simply omits the triple, so
/// both decode to "no context". A shard that receives a sampled context
/// executes the request under the propagated `trace_id` and ships a
/// [`SpanSummary`] back on the final page of its reply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// Cluster-wide trace id (the coordinator's request id by default).
    pub trace_id: u64,
    /// Span id of the parent on the initiating node (the coordinator
    /// encodes the shard index here so replies are attributable).
    pub parent_span_id: u64,
    /// Whether the initiator is actively sampling this request; unsampled
    /// contexts propagate the id for log correlation but ask the shard
    /// not to pay for span collection.
    pub sampled: bool,
}

/// Wire size of an encoded [`TraceContext`] (u64 + u64 + u8).
pub const TRACE_CTX_LEN: usize = 17;

/// Wire size of an encoded [`SpanSummary`] (ten u64 fields).
pub const SPAN_SUMMARY_LEN: usize = 80;

/// Counters reported by a [`Response::StatsOk`] frame.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsPayload {
    pub admitted: u64,
    pub shed: u64,
    pub deadline_expired: u64,
    pub completed: u64,
    pub protocol_errors: u64,
    /// Objects in the loaded target store.
    pub target_objects: u64,
    /// Objects in the loaded source store.
    pub source_objects: u64,
}

/// Extended counters reported by a [`Response::StatsExOk`] frame (v3+):
/// the v1 `StatsPayload` fields plus execution failures and the engine's
/// cumulative time breakdown, including the pipelined executor's
/// per-stage wall time and queue-stall counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsExPayload {
    // Service lifecycle (StatsPayload superset).
    pub admitted: u64,
    pub shed: u64,
    pub deadline_expired: u64,
    pub completed: u64,
    /// Admitted requests that failed in execution — absent from the v1
    /// frame, which could not reconcile `admitted` against outcomes.
    pub failed: u64,
    pub protocol_errors: u64,
    pub target_objects: u64,
    pub source_objects: u64,
    // Engine cumulative execution breakdown.
    pub filter_ns: u64,
    pub decode_ns: u64,
    pub compute_ns: u64,
    pub face_pair_tests: u64,
    pub cache_hits: u64,
    pub cache_misses: u64,
    pub decodes: u64,
    /// Busy nanoseconds per pipeline stage (generate/decode/build/eval).
    pub stage_ns: [u64; 4],
    /// Items processed per pipeline stage.
    pub stage_items: [u64; 4],
    /// Backpressure stalls per inter-stage queue
    /// (gen→decode, decode→build, build→eval).
    pub queue_stalls: [u64; 3],
}

/// Client → server frames.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Version negotiation: the client's supported range, inclusive, plus
    /// what the connecting node is (v5+; optional-trailing on decode).
    Hello {
        min_version: u8,
        max_version: u8,
        role: NodeRole,
    },
    /// Liveness probe; answered inline even under overload.
    Health,
    /// Service counters; answered inline even under overload.
    Stats,
    /// Ask the server to drain in-flight work and exit.
    Shutdown,
    /// Prometheus text exposition of the server's metrics registry;
    /// answered inline even under overload (v2+).
    Metrics,
    /// Extended stats (v3+): service counters plus the engine's
    /// cumulative per-stage pipeline breakdown; answered inline even
    /// under overload.
    StatsEx,
    /// Shard-placement probe (v5+): role, shard map position, store
    /// sizes; answered inline even under overload.
    ShardInfo,
    /// Binary metric snapshot (v6+): every registered series as plain
    /// data, histograms with full bucket images so a coordinator can
    /// merge them exactly (the text exposition is lossy); answered
    /// inline even under overload.
    MetricsBin,
    /// The node's rendered slow-trace log (v6+); on a coordinator this
    /// is the stitched cluster waterfall. Answered inline even under
    /// overload.
    TraceLog,
    /// Ids of target-store objects containing the point.
    Contains { p: [f64; 3], deadline_ms: u32 },
    /// Source objects intersecting target object `target`.
    Intersect { target: u32, deadline_ms: u32 },
    /// Source objects within `d` of target object `target`.
    Within {
        target: u32,
        d: f64,
        deadline_ms: u32,
    },
    /// The nearest source object to target object `target`.
    Nn { target: u32, deadline_ms: u32 },
    /// The `k` nearest source objects, closest first.
    Knn {
        target: u32,
        k: u32,
        deadline_ms: u32,
    },
    /// Scored nearest-neighbour sub-query (v5+): like `Nn`, but the
    /// response is a [`Response::PageD`] carrying the exact distance —
    /// what a coordinator needs to merge per-shard winners exactly.
    NnEx { target: u32, deadline_ms: u32 },
    /// Scored kNN sub-query (v5+): the `k` nearest with exact distances.
    KnnEx {
        target: u32,
        k: u32,
        deadline_ms: u32,
    },
}

/// Server → client frames.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Version negotiation result: the version the server will speak,
    /// plus what the serving node is (v5+; optional-trailing on decode —
    /// a v1–v4 peer is always a plain engine).
    HelloOk {
        version: u8,
        role: NodeRole,
    },
    HealthOk,
    StatsOk(StatsPayload),
    ShutdownOk,
    /// Prometheus text exposition (v2+). Truncated server-side at a UTF-8
    /// boundary if it would overflow [`MAX_PAYLOAD`].
    MetricsOk {
        text: String,
    },
    /// Extended stats (v3+).
    StatsExOk(StatsExPayload),
    /// Shard-placement description (v5+).
    ShardInfoOk(ShardInfoPayload),
    /// Binary metric snapshot (v6+): the node's registry as plain data.
    /// Truncated at a whole-series boundary if it would overflow
    /// [`MAX_PAYLOAD`].
    MetricsBinOk(Vec<MetricSnapshot>),
    /// Rendered slow-trace log text (v6+). Truncated server-side at a
    /// UTF-8 line boundary if it would overflow [`MAX_PAYLOAD`].
    TraceLogOk {
        text: String,
    },
    /// One page of result ids; `last` marks the final page of a request.
    /// `partial` (v5+) flags a result assembled with one or more shards
    /// missing — encoded as an optional-trailing byte emitted only when
    /// set, so a complete page is byte-identical to its v4 encoding.
    Page {
        last: bool,
        ids: Vec<u32>,
        partial: bool,
    },
    /// One page of scored results `(id, exact distance)` for the `NnEx`/
    /// `KnnEx` sub-queries (v5+), closest first.
    PageD {
        last: bool,
        partial: bool,
        items: Vec<(u32, f64)>,
    },
    /// Terminal failure for a request.
    Error {
        code: ErrorCode,
        message: String,
        /// Backoff hint (v4+): how long the client should wait before
        /// retrying, derived from live queue depth for `Overloaded`
        /// rejections. `0` means "no hint" (and is what decoding a
        /// v1–v3 error frame yields).
        retry_after_ms: u32,
    },
}

// ---------------------------------------------------------------------
// Little-endian cursor primitives
// ---------------------------------------------------------------------

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self
            .pos
            .checked_add(n)
            .ok_or(WireError::Malformed("length overflow"))?;
        if end > self.buf.len() {
            return Err(WireError::Malformed("payload too short"));
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Every payload must be fully consumed; trailing bytes are a protocol
    /// violation (they hide versioning mistakes).
    fn finish(self) -> Result<(), WireError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(WireError::Malformed("trailing bytes in payload"))
        }
    }
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

/// Length-prefixed string (u16 length, truncated like error messages).
fn put_str16(out: &mut Vec<u8>, s: &str) {
    let b = s.as_bytes();
    let n = b.len().min(u16::MAX as usize);
    put_u16(out, n as u16);
    out.extend_from_slice(&b[..n]);
}

fn read_str16(c: &mut Cursor<'_>) -> Result<String, WireError> {
    let n = c.u16()? as usize;
    Ok(String::from_utf8_lossy(c.take(n)?).into_owned())
}

/// Encode a [`SpanSummary`] as its fixed [`SPAN_SUMMARY_LEN`]-byte image
/// (ten u64 fields in declaration order).
fn put_summary(out: &mut Vec<u8>, s: &SpanSummary) {
    put_u64(out, s.trace_id);
    put_u64(out, s.total_ns);
    put_u64(out, s.filter_ns);
    put_u64(out, s.decode_ns);
    put_u64(out, s.compute_ns);
    put_u64(out, s.decoded_bytes);
    put_u64(out, s.cache_hits);
    put_u64(out, s.cache_misses);
    put_u64(out, s.lod_rounds);
    put_u64(out, s.resolved_pairs);
}

fn read_summary(c: &mut Cursor<'_>) -> Result<SpanSummary, WireError> {
    Ok(SpanSummary {
        trace_id: c.u64()?,
        total_ns: c.u64()?,
        filter_ns: c.u64()?,
        decode_ns: c.u64()?,
        compute_ns: c.u64()?,
        decoded_bytes: c.u64()?,
        cache_hits: c.u64()?,
        cache_misses: c.u64()?,
        lod_rounds: c.u64()?,
        resolved_pairs: c.u64()?,
    })
}

// ---------------------------------------------------------------------
// Header
// ---------------------------------------------------------------------

/// Size of the fixed frame header in bytes.
pub const HEADER_LEN: usize = 16;

/// A decoded frame header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Header {
    pub payload_len: u32,
    pub version: u8,
    pub kind: u8,
    pub request_id: u64,
}

/// Decode and validate a frame header. Magic and size limits are enforced
/// here; the version byte is surfaced so the caller can decide whether to
/// answer `UnsupportedVersion` (server) or bail (client).
pub fn decode_header(bytes: &[u8; HEADER_LEN]) -> Result<Header, WireError> {
    let mut c = Cursor::new(bytes);
    let payload_len = c.u32()?;
    let magic = c.u16()?;
    let version = c.u8()?;
    let kind = c.u8()?;
    let request_id = c.u64()?;
    if magic != MAGIC {
        return Err(WireError::Malformed("bad magic"));
    }
    if payload_len > MAX_PAYLOAD {
        return Err(WireError::Oversized(payload_len));
    }
    Ok(Header {
        payload_len,
        version,
        kind,
        request_id,
    })
}

fn encode_frame(kind: u8, request_id: u64, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    put_u32(&mut out, payload.len() as u32);
    put_u16(&mut out, MAGIC);
    out.push(VERSION);
    out.push(kind);
    put_u64(&mut out, request_id);
    out.extend_from_slice(payload);
    out
}

// ---------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------

/// Encode a request into a complete frame (header + payload).
pub fn encode_request(request_id: u64, req: &Request) -> Vec<u8> {
    encode_request_traced(request_id, req, None)
}

/// [`encode_request`] with an optional [`TraceContext`] appended to query
/// requests (v6+). Non-query requests never carry a context; passing one
/// is ignored so callers can thread an `Option` through unconditionally.
pub fn encode_request_traced(
    request_id: u64,
    req: &Request,
    trace: Option<&TraceContext>,
) -> Vec<u8> {
    let mut p = Vec::new();
    let kind = match req {
        Request::Hello {
            min_version,
            max_version,
            role,
        } => {
            p.push(*min_version);
            p.push(*max_version);
            p.push(*role as u8);
            K_HELLO
        }
        Request::Health => K_HEALTH,
        Request::Stats => K_STATS,
        Request::Shutdown => K_SHUTDOWN,
        Request::Metrics => K_METRICS,
        Request::StatsEx => K_STATS_EX,
        Request::ShardInfo => K_SHARD_INFO,
        Request::MetricsBin => K_METRICS_BIN,
        Request::TraceLog => K_TRACE_LOG,
        Request::Contains {
            p: point,
            deadline_ms,
        } => {
            put_f64(&mut p, point[0]);
            put_f64(&mut p, point[1]);
            put_f64(&mut p, point[2]);
            put_u32(&mut p, *deadline_ms);
            K_CONTAINS
        }
        Request::Intersect {
            target,
            deadline_ms,
        } => {
            put_u32(&mut p, *target);
            put_u32(&mut p, *deadline_ms);
            K_INTERSECT
        }
        Request::Within {
            target,
            d,
            deadline_ms,
        } => {
            put_u32(&mut p, *target);
            put_f64(&mut p, *d);
            put_u32(&mut p, *deadline_ms);
            K_WITHIN
        }
        Request::Nn {
            target,
            deadline_ms,
        } => {
            put_u32(&mut p, *target);
            put_u32(&mut p, *deadline_ms);
            K_NN
        }
        Request::Knn {
            target,
            k,
            deadline_ms,
        } => {
            put_u32(&mut p, *target);
            put_u32(&mut p, *k);
            put_u32(&mut p, *deadline_ms);
            K_KNN
        }
        Request::NnEx {
            target,
            deadline_ms,
        } => {
            put_u32(&mut p, *target);
            put_u32(&mut p, *deadline_ms);
            K_NN_EX
        }
        Request::KnnEx {
            target,
            k,
            deadline_ms,
        } => {
            put_u32(&mut p, *target);
            put_u32(&mut p, *k);
            put_u32(&mut p, *deadline_ms);
            K_KNN_EX
        }
    };
    // v6 appends the trace triple to query requests only; probes and
    // lifecycle frames are never traced.
    if let Some(t) = trace {
        if (K_CONTAINS..=K_KNN_EX).contains(&kind) {
            put_u64(&mut p, t.trace_id);
            put_u64(&mut p, t.parent_span_id);
            p.push(u8::from(t.sampled));
        }
    }
    encode_frame(kind, request_id, &p)
}

/// Decode a request payload given its header `kind`, discarding any v6
/// trace context (what a trace-unaware service loop uses).
pub fn decode_request_body(kind: u8, payload: &[u8]) -> Result<Request, WireError> {
    Ok(decode_request_body_traced(kind, payload)?.0)
}

/// Decode a request payload given its header `kind`, surfacing the v6
/// [`TraceContext`] when the peer appended one. Pre-v6 frames (and v6
/// frames from non-tracing peers) yield `None`.
pub fn decode_request_body_traced(
    kind: u8,
    payload: &[u8],
) -> Result<(Request, Option<TraceContext>), WireError> {
    let mut c = Cursor::new(payload);
    let mut trace = None;
    let req = match kind {
        K_HELLO => {
            let min_version = c.u8()?;
            let max_version = c.u8()?;
            // v5 appended the connecting node's role; v1–v4 hello frames
            // end after the version range, so the field is
            // optional-trailing: absent decodes as a plain client.
            let role = if payload.len() - c.pos == 1 {
                NodeRole::from_u8(c.u8()?)?
            } else {
                NodeRole::Client
            };
            Request::Hello {
                min_version,
                max_version,
                role,
            }
        }
        K_HEALTH => Request::Health,
        K_STATS => Request::Stats,
        K_SHUTDOWN => Request::Shutdown,
        K_METRICS => Request::Metrics,
        K_STATS_EX => Request::StatsEx,
        K_SHARD_INFO => Request::ShardInfo,
        K_METRICS_BIN => Request::MetricsBin,
        K_TRACE_LOG => Request::TraceLog,
        K_CONTAINS => Request::Contains {
            p: [c.f64()?, c.f64()?, c.f64()?],
            deadline_ms: c.u32()?,
        },
        K_INTERSECT => Request::Intersect {
            target: c.u32()?,
            deadline_ms: c.u32()?,
        },
        K_WITHIN => Request::Within {
            target: c.u32()?,
            d: c.f64()?,
            deadline_ms: c.u32()?,
        },
        K_NN => Request::Nn {
            target: c.u32()?,
            deadline_ms: c.u32()?,
        },
        K_KNN => Request::Knn {
            target: c.u32()?,
            k: c.u32()?,
            deadline_ms: c.u32()?,
        },
        K_NN_EX => Request::NnEx {
            target: c.u32()?,
            deadline_ms: c.u32()?,
        },
        K_KNN_EX => Request::KnnEx {
            target: c.u32()?,
            k: c.u32()?,
            deadline_ms: c.u32()?,
        },
        _ => return Err(WireError::Malformed("unknown request kind")),
    };
    // v6 appended the trace triple to query requests; pre-v6 frames (and
    // untraced v6 ones) end at the body, so it is optional-trailing.
    if (K_CONTAINS..=K_KNN_EX).contains(&kind) && payload.len() - c.pos == TRACE_CTX_LEN {
        trace = Some(TraceContext {
            trace_id: c.u64()?,
            parent_span_id: c.u64()?,
            sampled: c.u8()? != 0,
        });
    }
    c.finish()?;
    Ok((req, trace))
}

// ---------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------

/// Largest metrics text that fits a `MetricsOk` payload (u32 length prefix
/// plus the bytes, under [`MAX_PAYLOAD`]).
const METRICS_TEXT_MAX: usize = MAX_PAYLOAD as usize - 4;

/// Clip metrics text to [`METRICS_TEXT_MAX`] bytes at a line boundary so a
/// truncated exposition is still a sequence of well-formed lines (the last
/// partial line is dropped, never half-sent).
fn truncate_metrics_text(text: &str) -> &[u8] {
    let bytes = text.as_bytes();
    if bytes.len() <= METRICS_TEXT_MAX {
        return bytes;
    }
    let cut = bytes[..METRICS_TEXT_MAX]
        .iter()
        .rposition(|&b| b == b'\n')
        .map_or(0, |i| i + 1);
    &bytes[..cut]
}

/// Encode a response into a complete frame (header + payload).
pub fn encode_response(request_id: u64, resp: &Response) -> Vec<u8> {
    encode_response_traced(request_id, resp, None)
}

/// [`encode_response`] with an optional [`SpanSummary`] appended to `Page`
/// / `PageD` frames (v6+) — the shard-side cost report a traced request's
/// final page carries home. Ignored for every other frame kind, so
/// callers can thread an `Option` through unconditionally. On `Page` the
/// `partial` flag byte is always emitted when a summary follows (the two
/// trailers are length-distinguished: remainder 1 = flag only, 81 = flag
/// + summary).
pub fn encode_response_traced(
    request_id: u64,
    resp: &Response,
    summary: Option<&SpanSummary>,
) -> Vec<u8> {
    let mut p = Vec::new();
    let kind = match resp {
        Response::HelloOk { version, role } => {
            p.push(*version);
            p.push(*role as u8);
            K_HELLO_OK
        }
        Response::HealthOk => K_HEALTH_OK,
        Response::StatsOk(s) => {
            put_u64(&mut p, s.admitted);
            put_u64(&mut p, s.shed);
            put_u64(&mut p, s.deadline_expired);
            put_u64(&mut p, s.completed);
            put_u64(&mut p, s.protocol_errors);
            put_u64(&mut p, s.target_objects);
            put_u64(&mut p, s.source_objects);
            K_STATS_OK
        }
        Response::ShutdownOk => K_SHUTDOWN_OK,
        Response::MetricsOk { text } => {
            let bytes = truncate_metrics_text(text);
            put_u32(&mut p, bytes.len() as u32);
            p.extend_from_slice(bytes);
            K_METRICS_OK
        }
        Response::StatsExOk(s) => {
            put_u64(&mut p, s.admitted);
            put_u64(&mut p, s.shed);
            put_u64(&mut p, s.deadline_expired);
            put_u64(&mut p, s.completed);
            put_u64(&mut p, s.failed);
            put_u64(&mut p, s.protocol_errors);
            put_u64(&mut p, s.target_objects);
            put_u64(&mut p, s.source_objects);
            put_u64(&mut p, s.filter_ns);
            put_u64(&mut p, s.decode_ns);
            put_u64(&mut p, s.compute_ns);
            put_u64(&mut p, s.face_pair_tests);
            put_u64(&mut p, s.cache_hits);
            put_u64(&mut p, s.cache_misses);
            put_u64(&mut p, s.decodes);
            for v in s.stage_ns {
                put_u64(&mut p, v);
            }
            for v in s.stage_items {
                put_u64(&mut p, v);
            }
            for v in s.queue_stalls {
                put_u64(&mut p, v);
            }
            K_STATS_EX_OK
        }
        Response::ShardInfoOk(s) => {
            p.push(s.role as u8);
            put_u64(&mut p, s.epoch);
            put_u32(&mut p, s.index);
            put_u32(&mut p, s.count);
            put_f64(&mut p, s.cell);
            put_u64(&mut p, s.target_objects);
            put_u64(&mut p, s.source_objects);
            put_u64(&mut p, s.source_total);
            K_SHARD_INFO_OK
        }
        Response::MetricsBinOk(snaps) => {
            // Series count is prefixed, so truncation (to respect
            // MAX_PAYLOAD) happens at a whole-series boundary: a clipped
            // scrape is still a well-formed, exactly-mergeable snapshot.
            let mut body = Vec::new();
            let mut n = 0u32;
            for s in snaps {
                let mut one = Vec::new();
                put_str16(&mut one, &s.name);
                put_str16(&mut one, &s.labels);
                put_str16(&mut one, &s.help);
                match &s.value {
                    MetricValue::Counter(v) => {
                        one.push(0);
                        put_u64(&mut one, *v);
                    }
                    MetricValue::Histogram(h) => {
                        one.push(1);
                        put_u64(&mut one, h.count);
                        put_u64(&mut one, h.sum);
                        put_u64(&mut one, h.min);
                        put_u64(&mut one, h.max);
                        put_u32(&mut one, h.buckets.len() as u32);
                        for (i, cnt) in &h.buckets {
                            put_u32(&mut one, *i);
                            put_u64(&mut one, *cnt);
                        }
                    }
                }
                if 4 + body.len() + one.len() > MAX_PAYLOAD as usize {
                    break;
                }
                body.extend_from_slice(&one);
                n += 1;
            }
            put_u32(&mut p, n);
            p.extend_from_slice(&body);
            K_METRICS_BIN_OK
        }
        Response::TraceLogOk { text } => {
            let bytes = truncate_metrics_text(text);
            put_u32(&mut p, bytes.len() as u32);
            p.extend_from_slice(bytes);
            K_TRACE_LOG_OK
        }
        Response::Page { last, ids, partial } => {
            p.push(u8::from(*last));
            put_u32(&mut p, ids.len() as u32);
            for id in ids {
                put_u32(&mut p, *id);
            }
            // The partial flag is emitted only when set, so the common
            // complete untraced page stays byte-identical to its v4
            // encoding — except when a summary trailer follows, where the
            // flag byte always precedes it (remainder 81, never 80) so
            // the two optional trailers stay length-distinguishable.
            if summary.is_some() {
                p.push(u8::from(*partial));
            } else if *partial {
                p.push(1);
            }
            if let Some(s) = summary {
                put_summary(&mut p, s);
            }
            K_PAGE
        }
        Response::PageD {
            last,
            partial,
            items,
        } => {
            p.push(u8::from(*last));
            p.push(u8::from(*partial));
            put_u32(&mut p, items.len() as u32);
            for (id, dist) in items {
                put_u32(&mut p, *id);
                put_f64(&mut p, *dist);
            }
            if let Some(s) = summary {
                put_summary(&mut p, s);
            }
            K_PAGE_D
        }
        Response::Error {
            code,
            message,
            retry_after_ms,
        } => {
            p.push(*code as u8);
            let msg = message.as_bytes();
            let n = msg.len().min(u16::MAX as usize);
            put_u16(&mut p, n as u16);
            p.extend_from_slice(&msg[..n]);
            put_u32(&mut p, *retry_after_ms);
            K_ERROR
        }
    };
    encode_frame(kind, request_id, &p)
}

/// Decode a response payload given its header `kind`, discarding any v6
/// span-summary trailer.
pub fn decode_response_body(kind: u8, payload: &[u8]) -> Result<Response, WireError> {
    Ok(decode_response_body_traced(kind, payload)?.0)
}

/// Decode a response payload given its header `kind`, surfacing the v6
/// [`SpanSummary`] trailer when the peer appended one to a `Page` /
/// `PageD`. Pre-v6 frames (and untraced v6 replies) yield `None`.
pub fn decode_response_body_traced(
    kind: u8,
    payload: &[u8],
) -> Result<(Response, Option<SpanSummary>), WireError> {
    let mut c = Cursor::new(payload);
    let mut summary = None;
    let resp = match kind {
        K_HELLO_OK => {
            let version = c.u8()?;
            // v5 appended the serving node's role; a v1–v4 server is
            // always a plain engine, so the field is optional-trailing.
            let role = if payload.len() - c.pos == 1 {
                NodeRole::from_u8(c.u8()?)?
            } else {
                NodeRole::Engine
            };
            Response::HelloOk { version, role }
        }
        K_HEALTH_OK => Response::HealthOk,
        K_STATS_OK => Response::StatsOk(StatsPayload {
            admitted: c.u64()?,
            shed: c.u64()?,
            deadline_expired: c.u64()?,
            completed: c.u64()?,
            protocol_errors: c.u64()?,
            target_objects: c.u64()?,
            source_objects: c.u64()?,
        }),
        K_SHUTDOWN_OK => Response::ShutdownOk,
        K_METRICS_OK => {
            let n = c.u32()? as usize;
            let bytes = c.take(n)?;
            Response::MetricsOk {
                text: String::from_utf8_lossy(bytes).into_owned(),
            }
        }
        K_STATS_EX_OK => Response::StatsExOk(StatsExPayload {
            admitted: c.u64()?,
            shed: c.u64()?,
            deadline_expired: c.u64()?,
            completed: c.u64()?,
            failed: c.u64()?,
            protocol_errors: c.u64()?,
            target_objects: c.u64()?,
            source_objects: c.u64()?,
            filter_ns: c.u64()?,
            decode_ns: c.u64()?,
            compute_ns: c.u64()?,
            face_pair_tests: c.u64()?,
            cache_hits: c.u64()?,
            cache_misses: c.u64()?,
            decodes: c.u64()?,
            stage_ns: [c.u64()?, c.u64()?, c.u64()?, c.u64()?],
            stage_items: [c.u64()?, c.u64()?, c.u64()?, c.u64()?],
            queue_stalls: [c.u64()?, c.u64()?, c.u64()?],
        }),
        K_SHARD_INFO_OK => Response::ShardInfoOk(ShardInfoPayload {
            role: NodeRole::from_u8(c.u8()?)?,
            epoch: c.u64()?,
            index: c.u32()?,
            count: c.u32()?,
            cell: c.f64()?,
            target_objects: c.u64()?,
            source_objects: c.u64()?,
            source_total: c.u64()?,
        }),
        K_METRICS_BIN_OK => {
            let n = c.u32()? as usize;
            let mut snaps = Vec::new();
            for _ in 0..n {
                let name = read_str16(&mut c)?;
                let labels = read_str16(&mut c)?;
                let help = read_str16(&mut c)?;
                let value = match c.u8()? {
                    0 => MetricValue::Counter(c.u64()?),
                    1 => {
                        let count = c.u64()?;
                        let sum = c.u64()?;
                        let min = c.u64()?;
                        let max = c.u64()?;
                        let nb = c.u32()? as usize;
                        let mut buckets = Vec::new();
                        for _ in 0..nb {
                            buckets.push((c.u32()?, c.u64()?));
                        }
                        MetricValue::Histogram(HistogramSnapshot {
                            count,
                            sum,
                            min,
                            max,
                            buckets,
                        })
                    }
                    _ => return Err(WireError::Malformed("unknown metric value type")),
                };
                snaps.push(MetricSnapshot {
                    name,
                    labels,
                    help,
                    value,
                });
            }
            Response::MetricsBinOk(snaps)
        }
        K_TRACE_LOG_OK => {
            let n = c.u32()? as usize;
            let bytes = c.take(n)?;
            Response::TraceLogOk {
                text: String::from_utf8_lossy(bytes).into_owned(),
            }
        }
        K_PAGE => {
            let last = c.u8()? != 0;
            let count = c.u32()? as usize;
            if count > PAGE_MAX_IDS {
                return Err(WireError::Malformed("page exceeds PAGE_MAX_IDS"));
            }
            let mut ids = Vec::with_capacity(count);
            for _ in 0..count {
                ids.push(c.u32()?);
            }
            // v5 appended a partial-result flag, emitted only when set;
            // v6 may follow it with an 80-byte span summary (the flag is
            // always present when the summary is). The three layouts are
            // length-distinguished: remainder 0 / 1 / 1+80.
            let rem = payload.len() - c.pos;
            let partial = if rem == 1 || rem == 1 + SPAN_SUMMARY_LEN {
                c.u8()? != 0
            } else {
                false
            };
            if payload.len() - c.pos == SPAN_SUMMARY_LEN {
                summary = Some(read_summary(&mut c)?);
            }
            Response::Page { last, ids, partial }
        }
        K_PAGE_D => {
            let last = c.u8()? != 0;
            let partial = c.u8()? != 0;
            let count = c.u32()? as usize;
            if count > PAGE_MAX_IDS {
                return Err(WireError::Malformed("page exceeds PAGE_MAX_IDS"));
            }
            let mut items = Vec::with_capacity(count);
            for _ in 0..count {
                items.push((c.u32()?, c.f64()?));
            }
            // v6 span-summary trailer (optional-trailing).
            if payload.len() - c.pos == SPAN_SUMMARY_LEN {
                summary = Some(read_summary(&mut c)?);
            }
            Response::PageD {
                last,
                partial,
                items,
            }
        }
        K_ERROR => {
            let code = ErrorCode::from_u8(c.u8()?)?;
            let n = c.u16()? as usize;
            let bytes = c.take(n)?;
            let message = String::from_utf8_lossy(bytes).into_owned();
            // v4 appended a retry-after hint after the message; v1-v3
            // error frames end at the message, so the field is
            // optional-trailing: absent decodes as "no hint".
            let retry_after_ms = if payload.len() - c.pos == 4 {
                c.u32()?
            } else {
                0
            };
            Response::Error {
                code,
                message,
                retry_after_ms,
            }
        }
        _ => return Err(WireError::Malformed("unknown response kind")),
    };
    c.finish()?;
    Ok((resp, summary))
}

// ---------------------------------------------------------------------
// Blocking stream helpers (client side and tests; the server uses its own
// shutdown-aware reader)
// ---------------------------------------------------------------------

fn read_payload<R: Read>(r: &mut R, header: &Header) -> Result<Vec<u8>, WireError> {
    let mut payload = vec![0u8; header.payload_len as usize];
    r.read_exact(&mut payload)?;
    Ok(payload)
}

/// Read one request frame (blocking).
pub fn read_request<R: Read>(r: &mut R) -> Result<(u64, Request), WireError> {
    let mut hb = [0u8; HEADER_LEN];
    r.read_exact(&mut hb)?;
    let header = decode_header(&hb)?;
    if !(MIN_VERSION..=VERSION).contains(&header.version) {
        return Err(WireError::UnsupportedVersion(header.version));
    }
    let payload = read_payload(r, &header)?;
    Ok((
        header.request_id,
        decode_request_body(header.kind, &payload)?,
    ))
}

/// Read one response frame (blocking).
pub fn read_response<R: Read>(r: &mut R) -> Result<(u64, Response), WireError> {
    let (id, resp, _) = read_response_traced(r)?;
    Ok((id, resp))
}

/// Read one response frame (blocking), surfacing the v6 span-summary
/// trailer when the server appended one to a `Page`/`PageD`.
pub fn read_response_traced<R: Read>(
    r: &mut R,
) -> Result<(u64, Response, Option<SpanSummary>), WireError> {
    let mut hb = [0u8; HEADER_LEN];
    r.read_exact(&mut hb)?;
    let header = decode_header(&hb)?;
    if !(MIN_VERSION..=VERSION).contains(&header.version) {
        return Err(WireError::UnsupportedVersion(header.version));
    }
    let payload = read_payload(r, &header)?;
    let (resp, summary) = decode_response_body_traced(header.kind, &payload)?;
    Ok((header.request_id, resp, summary))
}

/// Write a pre-encoded frame and flush it.
pub fn write_frame<W: Write>(w: &mut W, frame: &[u8]) -> Result<(), WireError> {
    w.write_all(frame)?;
    w.flush()?;
    Ok(())
}

/// Split result ids into wire pages (at least one page, the last flagged).
pub fn pages_of(ids: &[u32]) -> Vec<Response> {
    pages_of_flagged(ids, false)
}

/// [`pages_of`] with a partial-result flag carried on every page (v5+;
/// `false` keeps the pages byte-identical to their v4 encoding).
pub fn pages_of_flagged(ids: &[u32], partial: bool) -> Vec<Response> {
    if ids.is_empty() {
        return vec![Response::Page {
            last: true,
            ids: Vec::new(),
            partial,
        }];
    }
    let chunks: Vec<&[u32]> = ids.chunks(PAGE_MAX_IDS).collect();
    let n = chunks.len();
    chunks
        .into_iter()
        .enumerate()
        .map(|(i, chunk)| Response::Page {
            last: i + 1 == n,
            ids: chunk.to_vec(),
            partial,
        })
        .collect()
}

/// Split scored results into `PageD` wire pages (at least one page, the
/// last flagged; v5+).
pub fn scored_pages_of(items: &[(u32, f64)], partial: bool) -> Vec<Response> {
    if items.is_empty() {
        return vec![Response::PageD {
            last: true,
            partial,
            items: Vec::new(),
        }];
    }
    let chunks: Vec<&[(u32, f64)]> = items.chunks(PAGE_MAX_IDS).collect();
    let n = chunks.len();
    chunks
        .into_iter()
        .enumerate()
        .map(|(i, chunk)| Response::PageD {
            last: i + 1 == n,
            partial,
            items: chunk.to_vec(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_request(req: Request) {
        let frame = encode_request(42, &req);
        let mut r = frame.as_slice();
        let (id, got) = read_request(&mut r).unwrap();
        assert_eq!(id, 42);
        assert_eq!(got, req);
        assert!(r.is_empty(), "whole frame consumed");
    }

    fn roundtrip_response(resp: Response) {
        let frame = encode_response(7, &resp);
        let mut r = frame.as_slice();
        let (id, got) = read_response(&mut r).unwrap();
        assert_eq!(id, 7);
        assert_eq!(got, resp);
        assert!(r.is_empty());
    }

    #[test]
    fn every_request_kind_roundtrips() {
        for role in [NodeRole::Client, NodeRole::Engine, NodeRole::Coordinator] {
            roundtrip_request(Request::Hello {
                min_version: 1,
                max_version: 3,
                role,
            });
        }
        roundtrip_request(Request::Health);
        roundtrip_request(Request::Stats);
        roundtrip_request(Request::Shutdown);
        roundtrip_request(Request::Metrics);
        roundtrip_request(Request::StatsEx);
        roundtrip_request(Request::ShardInfo);
        roundtrip_request(Request::Contains {
            p: [1.5, -2.25, 1e300],
            deadline_ms: 250,
        });
        roundtrip_request(Request::Intersect {
            target: 9,
            deadline_ms: NO_DEADLINE_MS,
        });
        roundtrip_request(Request::Within {
            target: 3,
            d: 0.125,
            deadline_ms: 0,
        });
        roundtrip_request(Request::Nn {
            target: u32::MAX,
            deadline_ms: 1,
        });
        roundtrip_request(Request::Knn {
            target: 0,
            k: 17,
            deadline_ms: 99,
        });
        roundtrip_request(Request::NnEx {
            target: 4,
            deadline_ms: NO_DEADLINE_MS,
        });
        roundtrip_request(Request::KnnEx {
            target: 2,
            k: 5,
            deadline_ms: 1000,
        });
        roundtrip_request(Request::MetricsBin);
        roundtrip_request(Request::TraceLog);
    }

    fn query_requests() -> Vec<Request> {
        vec![
            Request::Contains {
                p: [1.0, 2.0, 3.0],
                deadline_ms: 250,
            },
            Request::Intersect {
                target: 9,
                deadline_ms: NO_DEADLINE_MS,
            },
            Request::Within {
                target: 3,
                d: 0.125,
                deadline_ms: 0,
            },
            Request::Nn {
                target: 7,
                deadline_ms: 1,
            },
            Request::Knn {
                target: 0,
                k: 17,
                deadline_ms: 99,
            },
            Request::NnEx {
                target: 4,
                deadline_ms: NO_DEADLINE_MS,
            },
            Request::KnnEx {
                target: 2,
                k: 5,
                deadline_ms: 1000,
            },
        ]
    }

    #[test]
    fn trace_context_roundtrips_on_every_query_kind() {
        let ctx = TraceContext {
            trace_id: 0xDEAD_BEEF_CAFE_F00D,
            parent_span_id: 2,
            sampled: true,
        };
        for req in query_requests() {
            let plain = encode_request(42, &req);
            let frame = encode_request_traced(42, &req, Some(&ctx));
            // Exactly the 17-byte triple is appended.
            assert_eq!(frame.len(), plain.len() + TRACE_CTX_LEN, "{req:?}");
            let payload = &frame[HEADER_LEN..];
            let kind = frame[7];
            let (got, trace) = decode_request_body_traced(kind, payload).unwrap();
            assert_eq!(got, req);
            assert_eq!(trace, Some(ctx));
            // The trace-unaware decoder accepts the same bytes and
            // simply discards the context.
            assert_eq!(decode_request_body(kind, payload).unwrap(), req);
        }
    }

    #[test]
    fn trace_context_is_ignored_on_non_query_requests() {
        let ctx = TraceContext {
            trace_id: 1,
            parent_span_id: 2,
            sampled: true,
        };
        for req in [
            Request::Health,
            Request::Stats,
            Request::Metrics,
            Request::MetricsBin,
            Request::TraceLog,
        ] {
            assert_eq!(
                encode_request_traced(5, &req, Some(&ctx)),
                encode_request(5, &req),
                "{req:?}"
            );
        }
    }

    #[test]
    fn v5_query_frames_decode_without_trace_context() {
        // Byte-for-byte v5 Intersect frame (no trailing triple): must
        // decode with trace None, not reject or misparse.
        let mut frame = Vec::new();
        frame.extend_from_slice(&8u32.to_le_bytes()); // payload length
        frame.extend_from_slice(&MAGIC.to_le_bytes());
        frame.push(5); // stamped v5
        frame.push(0x11); // K_INTERSECT
        frame.extend_from_slice(&21u64.to_le_bytes());
        frame.extend_from_slice(&9u32.to_le_bytes()); // target
        frame.extend_from_slice(&250u32.to_le_bytes()); // deadline_ms
        let (req, trace) = decode_request_body_traced(0x11, &frame[HEADER_LEN..]).unwrap();
        assert_eq!(
            req,
            Request::Intersect {
                target: 9,
                deadline_ms: 250,
            }
        );
        assert_eq!(trace, None);
        let mut r = frame.as_slice();
        assert!(read_request(&mut r).is_ok(), "v5-stamped frame accepted");

        // And the untraced v6 encoding of every query request is
        // byte-identical to its v5 payload (the header version byte is
        // the only difference) — a v5 peer parses it unchanged.
        for req in query_requests() {
            let frame = encode_request_traced(42, &req, None);
            assert_eq!(frame, encode_request(42, &req), "{req:?}");
            let (_, trace) =
                decode_request_body_traced(frame[7], &frame[HEADER_LEN..]).unwrap();
            assert_eq!(trace, None, "{req:?}");
        }
    }

    #[test]
    fn a_16_byte_trailer_is_rejected_not_misread() {
        // 16 trailing bytes is not a trace triple (17) — must be a
        // trailing-bytes protocol error, never a silent partial read.
        let mut frame = encode_request_traced(
            1,
            &Request::Nn {
                target: 7,
                deadline_ms: 1,
            },
            Some(&TraceContext {
                trace_id: 1,
                parent_span_id: 0,
                sampled: false,
            }),
        );
        frame.truncate(frame.len() - 1);
        let n = (frame.len() - HEADER_LEN) as u32;
        frame[..4].copy_from_slice(&n.to_le_bytes());
        assert!(matches!(
            decode_request_body_traced(frame[7], &frame[HEADER_LEN..]).unwrap_err(),
            WireError::Malformed("trailing bytes in payload")
        ));
    }

    #[test]
    fn every_response_kind_roundtrips() {
        for role in [NodeRole::Engine, NodeRole::Coordinator] {
            roundtrip_response(Response::HelloOk { version: 1, role });
        }
        roundtrip_response(Response::HealthOk);
        roundtrip_response(Response::StatsOk(StatsPayload {
            admitted: 1,
            shed: 2,
            deadline_expired: 3,
            completed: 4,
            protocol_errors: 5,
            target_objects: 6,
            source_objects: 7,
        }));
        roundtrip_response(Response::ShutdownOk);
        roundtrip_response(Response::MetricsOk {
            text: String::new(),
        });
        roundtrip_response(Response::MetricsOk {
            text: "# TYPE t counter\nt 1\n".to_string(),
        });
        roundtrip_response(Response::StatsExOk(StatsExPayload::default()));
        roundtrip_response(Response::StatsExOk(StatsExPayload {
            admitted: 1,
            shed: 2,
            deadline_expired: 3,
            completed: 4,
            failed: 5,
            protocol_errors: 6,
            target_objects: 7,
            source_objects: 8,
            filter_ns: 9,
            decode_ns: 10,
            compute_ns: 11,
            face_pair_tests: 12,
            cache_hits: 13,
            cache_misses: 14,
            decodes: 15,
            stage_ns: [16, 17, 18, 19],
            stage_items: [20, 21, 22, 23],
            queue_stalls: [24, 25, 26],
        }));
        roundtrip_response(Response::ShardInfoOk(ShardInfoPayload {
            role: NodeRole::Engine,
            epoch: 7,
            index: 1,
            count: 3,
            cell: 2.5,
            target_objects: 40,
            source_objects: 17,
            source_total: 40,
        }));
        roundtrip_response(Response::Page {
            last: false,
            ids: vec![1, 2, 3],
            partial: false,
        });
        roundtrip_response(Response::Page {
            last: true,
            ids: Vec::new(),
            partial: false,
        });
        roundtrip_response(Response::Page {
            last: true,
            ids: vec![9],
            partial: true,
        });
        roundtrip_response(Response::PageD {
            last: true,
            partial: false,
            items: vec![(3, 0.25), (7, 1.5)],
        });
        roundtrip_response(Response::PageD {
            last: true,
            partial: true,
            items: Vec::new(),
        });
        roundtrip_response(Response::MetricsBinOk(Vec::new()));
        roundtrip_response(Response::MetricsBinOk(vec![
            MetricSnapshot {
                name: "tripro_cache_hits_total".to_string(),
                labels: "shard=\"0\"".to_string(),
                help: "decode cache hits".to_string(),
                value: MetricValue::Counter(41),
            },
            MetricSnapshot {
                name: "tripro_query_seconds".to_string(),
                labels: String::new(),
                help: "query latency".to_string(),
                value: MetricValue::Histogram(HistogramSnapshot {
                    count: 3,
                    sum: 99,
                    min: 7,
                    max: 50,
                    buckets: vec![(0, 1), (17, 2)],
                }),
            },
            MetricSnapshot {
                name: "tripro_empty_hist".to_string(),
                labels: String::new(),
                help: String::new(),
                // The empty-histogram min sentinel must survive the wire.
                value: MetricValue::Histogram(HistogramSnapshot::default()),
            },
        ]));
        roundtrip_response(Response::TraceLogOk {
            text: String::new(),
        });
        roundtrip_response(Response::TraceLogOk {
            text: "trace 7 total=1.2ms\n  span filter\n".to_string(),
        });
        roundtrip_response(Response::Error {
            code: ErrorCode::Overloaded,
            message: "busy".to_string(),
            retry_after_ms: 250,
        });
        for code in [
            ErrorCode::Overloaded,
            ErrorCode::DeadlineExceeded,
            ErrorCode::BadRequest,
            ErrorCode::UnsupportedVersion,
            ErrorCode::Internal,
        ] {
            roundtrip_response(Response::Error {
                code,
                message: String::new(),
                retry_after_ms: 0,
            });
        }
    }

    #[test]
    fn v3_error_frame_decodes_without_retry_hint() {
        // Hand-build a pre-v4 error payload: code + msg_len + msg, no
        // trailing retry_after_ms. Decoding must yield hint 0, not a
        // trailing-bytes or too-short error.
        let mut payload = vec![ErrorCode::Overloaded as u8];
        let msg = b"busy";
        payload.extend_from_slice(&(msg.len() as u16).to_le_bytes());
        payload.extend_from_slice(msg);
        let got = decode_response_body(K_ERROR, &payload).unwrap();
        assert_eq!(
            got,
            Response::Error {
                code: ErrorCode::Overloaded,
                message: "busy".to_string(),
                retry_after_ms: 0,
            }
        );
    }

    #[test]
    fn pre_v5_hello_frames_decode_to_role_defaults() {
        // Byte-for-byte v1–v4 Hello request: min/max version only, no
        // role byte. Must decode as a plain client, not reject.
        for version in 1..=4u8 {
            let mut frame = Vec::new();
            frame.extend_from_slice(&2u32.to_le_bytes()); // payload length
            frame.extend_from_slice(&MAGIC.to_le_bytes());
            frame.push(version);
            frame.push(0x01); // K_HELLO
            frame.extend_from_slice(&11u64.to_le_bytes());
            frame.push(1); // min_version
            frame.push(version); // max_version
            let mut r = frame.as_slice();
            let (id, req) = read_request(&mut r).unwrap();
            assert_eq!(id, 11);
            assert_eq!(
                req,
                Request::Hello {
                    min_version: 1,
                    max_version: version,
                    role: NodeRole::Client,
                },
                "v{version} hello"
            );

            // And the matching v1–v4 HelloOk: version byte only — the
            // peer is by definition a plain engine.
            let mut resp = Vec::new();
            resp.extend_from_slice(&1u32.to_le_bytes());
            resp.extend_from_slice(&MAGIC.to_le_bytes());
            resp.push(version);
            resp.push(0x81); // K_HELLO_OK
            resp.extend_from_slice(&11u64.to_le_bytes());
            resp.push(version);
            let mut r = resp.as_slice();
            assert_eq!(
                read_response(&mut r).unwrap(),
                (
                    11,
                    Response::HelloOk {
                        version,
                        role: NodeRole::Engine,
                    }
                ),
                "v{version} hello-ok"
            );
        }
    }

    #[test]
    fn complete_page_encoding_is_byte_identical_to_v4() {
        // A non-partial v5 page must serialize exactly as v4 did (modulo
        // the header version byte): last flag, count, ids — no trailer.
        let frame = encode_response(
            3,
            &Response::Page {
                last: true,
                ids: vec![5, 9],
                partial: false,
            },
        );
        let mut expect = Vec::new();
        expect.extend_from_slice(&13u32.to_le_bytes()); // 1 + 4 + 2*4
        expect.extend_from_slice(&MAGIC.to_le_bytes());
        expect.push(VERSION);
        expect.push(0x90); // K_PAGE
        expect.extend_from_slice(&3u64.to_le_bytes());
        expect.push(1); // last
        expect.extend_from_slice(&2u32.to_le_bytes());
        expect.extend_from_slice(&5u32.to_le_bytes());
        expect.extend_from_slice(&9u32.to_le_bytes());
        assert_eq!(frame, expect);

        // And the v4-layout page (no trailer) decodes as complete.
        let payload = &expect[HEADER_LEN..];
        assert_eq!(
            decode_response_body(K_PAGE, payload).unwrap(),
            Response::Page {
                last: true,
                ids: vec![5, 9],
                partial: false,
            }
        );
    }

    fn sample_summary() -> SpanSummary {
        SpanSummary {
            trace_id: 0xAB,
            total_ns: 1_000_000,
            filter_ns: 100,
            decode_ns: 200,
            compute_ns: 300,
            decoded_bytes: 4096,
            cache_hits: 3,
            cache_misses: 1,
            lod_rounds: 2,
            resolved_pairs: 8,
        }
    }

    #[test]
    fn span_summary_roundtrips_on_both_page_kinds() {
        let s = sample_summary();
        for (resp, base_rem) in [
            (
                Response::Page {
                    last: true,
                    ids: vec![5, 9],
                    partial: false,
                },
                // Complete page: untraced remainder 0, traced 81 (the
                // partial byte is forced in).
                1 + SPAN_SUMMARY_LEN,
            ),
            (
                Response::Page {
                    last: true,
                    ids: vec![5],
                    partial: true,
                },
                1 + SPAN_SUMMARY_LEN,
            ),
            (
                Response::PageD {
                    last: true,
                    partial: false,
                    items: vec![(3, 0.25)],
                },
                SPAN_SUMMARY_LEN,
            ),
        ] {
            let plain = encode_response(7, &resp);
            let frame = encode_response_traced(7, &resp, Some(&s));
            let grew = frame.len() - plain.len();
            assert!(
                grew == base_rem || grew == base_rem - 1,
                "{resp:?}: grew {grew}"
            );
            let (got, sum) = decode_response_body_traced(frame[7], &frame[HEADER_LEN..]).unwrap();
            assert_eq!(got, resp);
            assert_eq!(sum, Some(s));
            // Trace-unaware decode of the same bytes drops the trailer.
            assert_eq!(
                decode_response_body(frame[7], &frame[HEADER_LEN..]).unwrap(),
                resp
            );
        }
    }

    #[test]
    fn summary_is_ignored_on_non_page_responses() {
        let s = sample_summary();
        for resp in [
            Response::HealthOk,
            Response::MetricsOk {
                text: "x 1\n".to_string(),
            },
            Response::TraceLogOk {
                text: String::new(),
            },
        ] {
            assert_eq!(
                encode_response_traced(7, &resp, Some(&s)),
                encode_response(7, &resp),
                "{resp:?}"
            );
        }
    }

    #[test]
    fn v5_page_frames_decode_without_summary() {
        // Byte-for-byte v5 partial page: last + count + ids + flag byte,
        // no summary trailer. Must decode partial=true, summary None.
        let mut payload = Vec::new();
        payload.push(1); // last
        payload.extend_from_slice(&1u32.to_le_bytes());
        payload.extend_from_slice(&9u32.to_le_bytes());
        payload.push(1); // partial flag
        let (resp, sum) = decode_response_body_traced(K_PAGE, &payload).unwrap();
        assert_eq!(
            resp,
            Response::Page {
                last: true,
                ids: vec![9],
                partial: true,
            }
        );
        assert_eq!(sum, None);

        // Byte-for-byte v5 PageD: no trailer.
        let mut payload = Vec::new();
        payload.push(1); // last
        payload.push(0); // partial
        payload.extend_from_slice(&1u32.to_le_bytes());
        payload.extend_from_slice(&3u32.to_le_bytes());
        payload.extend_from_slice(&0.25f64.to_bits().to_le_bytes());
        let (resp, sum) = decode_response_body_traced(K_PAGE_D, &payload).unwrap();
        assert_eq!(
            resp,
            Response::PageD {
                last: true,
                partial: false,
                items: vec![(3, 0.25)],
            }
        );
        assert_eq!(sum, None);

        // And untraced v6 encodes stay byte-identical to v5 for both
        // kinds (header version byte aside).
        for resp in [
            Response::Page {
                last: true,
                ids: vec![5, 9],
                partial: true,
            },
            Response::PageD {
                last: false,
                partial: false,
                items: vec![(1, 2.0)],
            },
        ] {
            assert_eq!(
                encode_response_traced(3, &resp, None),
                encode_response(3, &resp),
                "{resp:?}"
            );
        }
    }

    #[test]
    fn unknown_metric_value_type_is_rejected() {
        let frame = encode_response(
            1,
            &Response::MetricsBinOk(vec![MetricSnapshot {
                name: "t".to_string(),
                labels: String::new(),
                help: String::new(),
                value: MetricValue::Counter(1),
            }]),
        );
        let mut payload = frame[HEADER_LEN..].to_vec();
        // The type byte sits after the three length-prefixed strings:
        // count(4) + (2+1) + 2 + 2.
        let type_at = 4 + 3 + 2 + 2;
        assert_eq!(payload[type_at], 0);
        payload[type_at] = 9;
        assert!(matches!(
            decode_response_body(K_METRICS_BIN_OK, &payload).unwrap_err(),
            WireError::Malformed("unknown metric value type")
        ));
    }

    #[test]
    fn oversized_metric_snapshot_truncates_at_series_boundary() {
        // Enough fat series to overflow MAX_PAYLOAD: the encoder must
        // clip to a whole-series prefix and the result must decode.
        let fat = MetricSnapshot {
            name: "n".repeat(60_000),
            labels: String::new(),
            help: String::new(),
            value: MetricValue::Counter(1),
        };
        let snaps: Vec<_> = (0..40).map(|_| fat.clone()).collect();
        let frame = encode_response(1, &Response::MetricsBinOk(snaps));
        assert!(frame.len() <= HEADER_LEN + MAX_PAYLOAD as usize);
        let (resp, _) = decode_response_body_traced(K_METRICS_BIN_OK, &frame[HEADER_LEN..]).unwrap();
        let Response::MetricsBinOk(got) = resp else {
            panic!("not MetricsBinOk")
        };
        assert!(!got.is_empty() && got.len() < 40, "clipped: {}", got.len());
    }

    #[test]
    fn unknown_role_byte_is_rejected() {
        let mut frame = encode_request(
            1,
            &Request::Hello {
                min_version: 1,
                max_version: VERSION,
                role: NodeRole::Coordinator,
            },
        );
        let n = frame.len();
        frame[n - 1] = 9; // no such role
        let mut r = frame.as_slice();
        assert!(matches!(
            read_request(&mut r).unwrap_err(),
            WireError::Malformed("unknown node role")
        ));
    }

    #[test]
    fn truncated_frames_are_rejected() {
        let frame = encode_request(
            1,
            &Request::Within {
                target: 3,
                d: 0.5,
                deadline_ms: 7,
            },
        );
        // Every strict prefix must fail with Closed (EOF), never panic or
        // succeed.
        for cut in 0..frame.len() {
            let mut r = &frame[..cut];
            let err = read_request(&mut r).unwrap_err();
            assert!(
                matches!(err, WireError::Closed | WireError::Malformed(_)),
                "cut at {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut frame = encode_request(1, &Request::Health);
        frame[4] ^= 0xFF;
        let mut r = frame.as_slice();
        assert!(matches!(
            read_request(&mut r).unwrap_err(),
            WireError::Malformed("bad magic")
        ));
    }

    #[test]
    fn oversized_length_is_rejected_before_allocation() {
        let mut frame = encode_request(1, &Request::Health);
        frame[..4].copy_from_slice(&(MAX_PAYLOAD + 1).to_le_bytes());
        let mut r = frame.as_slice();
        assert!(matches!(
            read_request(&mut r).unwrap_err(),
            WireError::Oversized(_)
        ));
    }

    #[test]
    fn wrong_version_is_rejected() {
        for bad in [0, VERSION + 1, u8::MAX] {
            let mut frame = encode_request(1, &Request::Health);
            frame[6] = bad;
            let mut r = frame.as_slice();
            assert!(matches!(
                read_request(&mut r).unwrap_err(),
                WireError::UnsupportedVersion(v) if v == bad
            ));
        }
    }

    #[test]
    fn v1_frames_still_decode() {
        // A v2 build must keep accepting frames stamped with every older
        // version in the supported range — wire compatibility is the whole
        // point of MIN_VERSION.
        for old in MIN_VERSION..VERSION {
            let mut frame = encode_request(
                5,
                &Request::Within {
                    target: 3,
                    d: 0.5,
                    deadline_ms: 7,
                },
            );
            frame[6] = old;
            let mut r = frame.as_slice();
            let (id, req) = read_request(&mut r).unwrap();
            assert_eq!(id, 5);
            assert!(matches!(req, Request::Within { target: 3, .. }));

            let mut resp = encode_response(5, &Response::HealthOk);
            resp[6] = old;
            let mut r = resp.as_slice();
            assert_eq!(read_response(&mut r).unwrap(), (5, Response::HealthOk));
        }
    }

    #[test]
    fn hand_built_v1_frame_decodes() {
        // Byte-for-byte v1 Stats frame (header only, empty payload), built
        // without the encoder so this test pins the v1 layout itself.
        let mut frame = Vec::new();
        frame.extend_from_slice(&0u32.to_le_bytes()); // payload length
        frame.extend_from_slice(&MAGIC.to_le_bytes());
        frame.push(1); // version 1
        frame.push(0x03); // K_STATS
        frame.extend_from_slice(&9u64.to_le_bytes());
        let mut r = frame.as_slice();
        assert_eq!(read_request(&mut r).unwrap(), (9, Request::Stats));
    }

    #[test]
    fn oversized_metrics_text_truncates_at_line_boundary() {
        let line = "tripro_x_total 1\n";
        let n = METRICS_TEXT_MAX / line.len() + 2;
        let text = line.repeat(n);
        assert!(text.len() > METRICS_TEXT_MAX);
        let frame = encode_response(1, &Response::MetricsOk { text });
        assert!(frame.len() <= HEADER_LEN + MAX_PAYLOAD as usize);
        let mut r = frame.as_slice();
        let (_, got) = read_response(&mut r).unwrap();
        let Response::MetricsOk { text } = got else {
            panic!("not MetricsOk")
        };
        assert!(text.len() <= METRICS_TEXT_MAX);
        assert!(text.ends_with('\n'), "no half-sent line");
        assert!(text.len() >= METRICS_TEXT_MAX - line.len());
    }

    #[test]
    fn unknown_kind_is_rejected() {
        let mut frame = encode_request(1, &Request::Health);
        frame[7] = 0x7E;
        let mut r = frame.as_slice();
        assert!(matches!(
            read_request(&mut r).unwrap_err(),
            WireError::Malformed("unknown request kind")
        ));
    }

    #[test]
    fn trailing_payload_bytes_are_rejected() {
        // Hand-build a Health frame with one stray payload byte.
        let mut frame = encode_request(1, &Request::Health);
        frame[..4].copy_from_slice(&1u32.to_le_bytes());
        frame.push(0xAB);
        let mut r = frame.as_slice();
        assert!(matches!(
            read_request(&mut r).unwrap_err(),
            WireError::Malformed("trailing bytes in payload")
        ));
    }

    #[test]
    fn short_payload_is_rejected() {
        // A Within frame whose payload claims fewer bytes than the body
        // needs: decoder must fail cleanly.
        let full = encode_request(
            1,
            &Request::Within {
                target: 3,
                d: 0.5,
                deadline_ms: 7,
            },
        );
        let mut frame = full.clone();
        frame[..4].copy_from_slice(&4u32.to_le_bytes());
        frame.truncate(HEADER_LEN + 4);
        let mut r = frame.as_slice();
        assert!(matches!(
            read_request(&mut r).unwrap_err(),
            WireError::Malformed("payload too short")
        ));
    }

    #[test]
    fn pages_split_and_flag_last() {
        assert_eq!(
            pages_of(&[]),
            vec![Response::Page {
                last: true,
                ids: vec![],
                partial: false,
            }]
        );
        let ids: Vec<u32> = (0..PAGE_MAX_IDS as u32 + 3).collect();
        let pages = pages_of(&ids);
        assert_eq!(pages.len(), 2);
        let mut seen = Vec::new();
        for (i, p) in pages.iter().enumerate() {
            let Response::Page { last, ids, partial } = p else {
                panic!("not a page")
            };
            assert_eq!(*last, i == 1);
            assert!(!partial);
            seen.extend_from_slice(ids);
        }
        assert_eq!(seen, ids);
    }

    #[test]
    fn error_message_truncates_at_u16() {
        let long = "x".repeat(70_000);
        let frame = encode_response(
            1,
            &Response::Error {
                code: ErrorCode::Internal,
                message: long,
                retry_after_ms: 0,
            },
        );
        let mut r = frame.as_slice();
        let (_, got) = read_response(&mut r).unwrap();
        let Response::Error { message, .. } = got else {
            panic!("not an error")
        };
        assert_eq!(message.len(), u16::MAX as usize);
    }
}
