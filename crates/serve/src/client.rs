//! A blocking client for the tripro-serve wire protocol.
//!
//! One [`Client`] owns one TCP connection and issues one request at a time
//! (the protocol itself allows pipelining — request ids disambiguate — but
//! the blocking client keeps the common case simple). Query responses
//! arrive as one or more `Page` frames; [`Client::query`] reassembles them
//! into a [`QueryReply`].

//! For unreliable transports (or servers shedding load), [`RetryingClient`]
//! wraps [`Client`] with transient-error classification, capped exponential
//! backoff with seeded jitter (honouring the server's `retry_after_ms`
//! hint), reconnect-on-reset and a per-request retry budget.

use crate::protocol::{
    encode_request_traced, read_response_traced, write_frame, ErrorCode, NodeRole, Request,
    Response, ShardInfoPayload, StatsExPayload, StatsPayload, TraceContext, WireError, MIN_VERSION,
    VERSION,
};
use crate::ServeError;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;
use tripro::fault::mix64;
use tripro::obs;
use tripro::obs::{MetricSnapshot, SpanSummary};

/// Outcome of a query request.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryReply {
    /// The query completed; result ids reassembled across pages, in the
    /// order the server produced them.
    Ids(Vec<u32>),
    /// The query completed but the result is known-incomplete (v5+: a
    /// coordinator answered a kNN with one or more shards missing).
    PartialIds(Vec<u32>),
    /// Scored results (v5+ `NnEx`/`KnnEx`): ids with exact distances,
    /// for cross-shard merging.
    Scored {
        items: Vec<(u32, f64)>,
        partial: bool,
    },
    /// The server answered with a protocol-level error (overload, expired
    /// deadline, bad request...).
    Error {
        code: ErrorCode,
        message: String,
        /// Server backoff hint in milliseconds (v4+; 0 = no hint).
        retry_after_ms: u32,
    },
}

impl QueryReply {
    /// The result ids, if the query completed (possibly partially).
    pub fn ids(&self) -> Option<&[u32]> {
        match self {
            QueryReply::Ids(ids) | QueryReply::PartialIds(ids) => Some(ids),
            QueryReply::Scored { .. } | QueryReply::Error { .. } => None,
        }
    }

    /// The scored items, if the query returned distances.
    pub fn scored(&self) -> Option<&[(u32, f64)]> {
        match self {
            QueryReply::Scored { items, .. } => Some(items),
            _ => None,
        }
    }

    /// The error code, if the server refused or failed the query.
    pub fn error_code(&self) -> Option<ErrorCode> {
        match self {
            QueryReply::Error { code, .. } => Some(*code),
            _ => None,
        }
    }
}

/// A blocking protocol client over one TCP connection.
pub struct Client {
    stream: TcpStream,
    next_id: u64,
    server_role: NodeRole,
    /// Span summary from the final page of the most recent traced query
    /// (v6+), when the server attached one.
    last_summary: Option<SpanSummary>,
}

impl Client {
    /// Connect and complete version negotiation (`Hello`).
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Client, ServeError> {
        Self::connect_as(addr, NodeRole::Client)
    }

    /// Connect, announcing `role` in the `Hello` (v5+; a coordinator
    /// identifies itself to its backends this way). Servers speaking
    /// v1–v4 simply ignore the role byte.
    pub fn connect_as<A: ToSocketAddrs>(addr: A, role: NodeRole) -> Result<Client, ServeError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let mut c = Client {
            stream,
            next_id: 1,
            server_role: NodeRole::Engine,
            last_summary: None,
        };
        match c.roundtrip(&Request::Hello {
            min_version: MIN_VERSION,
            max_version: VERSION,
            role,
        })? {
            Response::HelloOk { version: _, role } => {
                c.server_role = role;
                Ok(c)
            }
            Response::Error { .. } => Err(ServeError::Unexpected("server refused version")),
            _ => Err(ServeError::Unexpected("non-hello reply to hello")),
        }
    }

    /// The role the server announced in its `HelloOk` (v1–v4 servers
    /// default to [`NodeRole::Engine`]).
    pub fn server_role(&self) -> NodeRole {
        self.server_role
    }

    /// Optional socket read timeout for all subsequent requests.
    pub fn set_timeout(&mut self, timeout: Option<Duration>) -> Result<(), ServeError> {
        self.stream.set_read_timeout(timeout)?;
        Ok(())
    }

    fn send(&mut self, req: &Request) -> Result<u64, ServeError> {
        self.send_traced(req, None)
    }

    fn send_traced(&mut self, req: &Request, trace: Option<&TraceContext>) -> Result<u64, ServeError> {
        let id = self.next_id;
        self.next_id = self.next_id.wrapping_add(1).max(1);
        write_frame(&mut self.stream, &encode_request_traced(id, req, trace))?;
        Ok(id)
    }

    /// Read the next response frame addressed to `id`, stashing any v6
    /// span-summary trailer for [`Self::last_summary`].
    fn recv_for(&mut self, id: u64) -> Result<Response, ServeError> {
        loop {
            let (rid, resp, summary) = read_response_traced(&mut self.stream)?;
            // A strictly serial client only ever has one request in
            // flight; frames for other ids would be a server bug.
            if rid == id {
                if summary.is_some() {
                    self.last_summary = summary;
                }
                return Ok(resp);
            }
        }
    }

    fn roundtrip(&mut self, req: &Request) -> Result<Response, ServeError> {
        let id = self.send(req)?;
        self.recv_for(id)
    }

    /// Liveness probe; answered inline even when the server is overloaded.
    pub fn health(&mut self) -> Result<(), ServeError> {
        match self.roundtrip(&Request::Health)? {
            Response::HealthOk => Ok(()),
            _ => Err(ServeError::Unexpected("non-health reply to health")),
        }
    }

    /// Service counters.
    pub fn stats(&mut self) -> Result<StatsPayload, ServeError> {
        match self.roundtrip(&Request::Stats)? {
            Response::StatsOk(s) => Ok(s),
            _ => Err(ServeError::Unexpected("non-stats reply to stats")),
        }
    }

    /// Shard identity of the server (v5+): map epoch/index/count, grid
    /// pitch and store sizes. A coordinator validates every backend with
    /// this before routing to it.
    pub fn shard_info(&mut self) -> Result<ShardInfoPayload, ServeError> {
        match self.roundtrip(&Request::ShardInfo)? {
            Response::ShardInfoOk(p) => Ok(p),
            _ => Err(ServeError::Unexpected("non-shard-info reply to shard-info")),
        }
    }

    /// Extended stats: service counters plus the engine's per-stage
    /// pipeline breakdown (v3+); answered inline even under overload.
    pub fn stats_ex(&mut self) -> Result<StatsExPayload, ServeError> {
        match self.roundtrip(&Request::StatsEx)? {
            Response::StatsExOk(s) => Ok(s),
            _ => Err(ServeError::Unexpected("non-stats reply to stats-ex")),
        }
    }

    /// The server's metrics registry as Prometheus text exposition;
    /// answered inline even when the server is overloaded (v2+).
    pub fn metrics(&mut self) -> Result<String, ServeError> {
        match self.roundtrip(&Request::Metrics)? {
            Response::MetricsOk { text } => Ok(text),
            _ => Err(ServeError::Unexpected("non-metrics reply to metrics")),
        }
    }

    /// The server's metrics registry as a binary snapshot (v6+):
    /// histograms carry full bucket images, so a coordinator can merge
    /// scrapes from many nodes exactly.
    pub fn metrics_bin(&mut self) -> Result<Vec<MetricSnapshot>, ServeError> {
        match self.roundtrip(&Request::MetricsBin)? {
            Response::MetricsBinOk(snaps) => Ok(snaps),
            _ => Err(ServeError::Unexpected("non-metrics reply to metrics-bin")),
        }
    }

    /// The server's rendered slow-trace log (v6+); on a coordinator this
    /// is the stitched cluster waterfall.
    pub fn trace_log(&mut self) -> Result<String, ServeError> {
        match self.roundtrip(&Request::TraceLog)? {
            Response::TraceLogOk { text } => Ok(text),
            _ => Err(ServeError::Unexpected("non-trace reply to trace-log")),
        }
    }

    /// Span summary from the final page of the most recent traced query
    /// (v6+), when the server attached one. Reset at the start of every
    /// query.
    pub fn last_summary(&self) -> Option<&SpanSummary> {
        self.last_summary.as_ref()
    }

    /// Ask the server to drain and exit. The server acknowledges before it
    /// begins draining.
    pub fn shutdown_server(&mut self) -> Result<(), ServeError> {
        match self.roundtrip(&Request::Shutdown)? {
            Response::ShutdownOk => Ok(()),
            _ => Err(ServeError::Unexpected("non-shutdown reply to shutdown")),
        }
    }

    /// Issue a query request and reassemble its paged response.
    ///
    /// Accepts only query kinds (`Contains`/`Intersect`/`Within`/`Nn`/
    /// `Knn`); probe kinds have dedicated methods above.
    pub fn query(&mut self, req: &Request) -> Result<QueryReply, ServeError> {
        self.query_traced(req, None)
    }

    /// [`Self::query`] with a v6 [`TraceContext`] attached: the server
    /// executes under the propagated trace id and, when `sampled`, ships
    /// a span summary back (readable via [`Self::last_summary`]).
    pub fn query_traced(
        &mut self,
        req: &Request,
        trace: Option<&TraceContext>,
    ) -> Result<QueryReply, ServeError> {
        match req {
            Request::Contains { .. }
            | Request::Intersect { .. }
            | Request::Within { .. }
            | Request::Nn { .. }
            | Request::Knn { .. }
            | Request::NnEx { .. }
            | Request::KnnEx { .. } => {}
            _ => return Err(ServeError::Unexpected("query() needs a query request")),
        }
        self.last_summary = None;
        let id = self.send_traced(req, trace)?;
        let mut out: Vec<u32> = Vec::new();
        let mut scored: Vec<(u32, f64)> = Vec::new();
        let mut any_partial = false;
        loop {
            match self.recv_for(id)? {
                Response::Page { last, ids, partial } => {
                    out.extend_from_slice(&ids);
                    any_partial |= partial;
                    if last {
                        return Ok(if any_partial {
                            QueryReply::PartialIds(out)
                        } else {
                            QueryReply::Ids(out)
                        });
                    }
                }
                Response::PageD {
                    last,
                    partial,
                    items,
                } => {
                    scored.extend_from_slice(&items);
                    any_partial |= partial;
                    if last {
                        return Ok(QueryReply::Scored {
                            items: scored,
                            partial: any_partial,
                        });
                    }
                }
                Response::Error {
                    code,
                    message,
                    retry_after_ms,
                } => {
                    return Ok(QueryReply::Error {
                        code,
                        message,
                        retry_after_ms,
                    });
                }
                _ => return Err(ServeError::Unexpected("non-page reply to query")),
            }
        }
    }
}

// ---------------------------------------------------------------------
// Retrying client
// ---------------------------------------------------------------------

/// Retry/backoff policy for [`RetryingClient`].
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Retries allowed per request beyond the first attempt (the
    /// per-request retry budget). 0 disables retrying entirely.
    pub max_retries: u32,
    /// Backoff before the first retry; doubles per retry.
    pub base_backoff: Duration,
    /// Cap on any single backoff sleep (also caps the server hint).
    pub max_backoff: Duration,
    /// Jitter seed: two clients with the same seed sleep identical
    /// schedules, which keeps chaos tests deterministic.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_retries: 4,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_secs(2),
            seed: 0x3D50,
        }
    }
}

/// What one [`RetryingClient::query`] call spent getting its answer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetryOutcome {
    /// Attempts made (1 = no retries).
    pub attempts: u32,
    /// Retries after transient failures (`attempts - 1`).
    pub retries: u32,
    /// Reconnects performed after transport-level failures.
    pub reconnects: u32,
    /// Total backoff slept across all retries.
    pub backoff: Duration,
}

/// Whether an error is worth retrying: the request may succeed on a fresh
/// attempt (overload passes, connections re-establish). Protocol-level
/// rejections (`BadRequest`, `UnsupportedVersion`), server-side failures
/// (`Internal`) and expired deadlines are terminal — retrying them repeats
/// the same answer, only later.
fn is_transient_transport(e: &ServeError) -> bool {
    matches!(
        e,
        ServeError::Io(_) | ServeError::Wire(WireError::Closed | WireError::Io(_))
    )
}

/// A [`Client`] wrapper that classifies failures, retries transient ones
/// with capped exponential backoff plus seeded jitter, reconnects after
/// transport resets, and honours the server's `retry_after_ms` hint.
///
/// Terminal failures (and budget exhaustion) surface exactly like the
/// plain client's: the last `QueryReply::Error` or transport error.
pub struct RetryingClient {
    addr: SocketAddr,
    policy: RetryPolicy,
    role: NodeRole,
    conn: Option<Client>,
    /// splitmix64 jitter state, advanced once per backoff.
    rng: u64,
}

impl RetryingClient {
    /// Resolve `addr` once (reconnects reuse the resolved address) and
    /// establish the initial connection.
    pub fn connect<A: ToSocketAddrs>(addr: A, policy: RetryPolicy) -> Result<Self, ServeError> {
        Self::connect_as(addr, NodeRole::Client, policy)
    }

    /// [`RetryingClient::connect`], announcing `role` on every
    /// (re)connect — the coordinator's per-backend connections use this.
    pub fn connect_as<A: ToSocketAddrs>(
        addr: A,
        role: NodeRole,
        policy: RetryPolicy,
    ) -> Result<Self, ServeError> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| std::io::Error::other("unresolvable address"))?;
        let rng = mix64(policy.seed ^ 0x5e7e_c0de);
        let mut c = Self {
            addr,
            policy,
            role,
            conn: None,
            rng,
        };
        c.ensure_conn()?;
        Ok(c)
    }

    /// The policy this client retries under.
    pub fn policy(&self) -> &RetryPolicy {
        &self.policy
    }

    fn ensure_conn(&mut self) -> Result<&mut Client, ServeError> {
        if self.conn.is_none() {
            self.conn = Some(Client::connect_as(self.addr, self.role)?);
        }
        match self.conn.as_mut() {
            Some(c) => Ok(c),
            None => Err(ServeError::Unexpected("connection vanished")),
        }
    }

    /// Backoff before retry number `retry` (0-based): exponential from
    /// `base_backoff`, floored by the server hint, capped at
    /// `max_backoff`, then jittered into `[d/2, d]` so synchronized
    /// clients do not stampede in lockstep.
    fn backoff_before_retry(&mut self, retry: u32, hint_ms: u32) -> Duration {
        let base = self.policy.base_backoff.max(Duration::from_micros(100));
        let mut d = base.saturating_mul(1u32 << retry.min(16));
        let hint = Duration::from_millis(u64::from(hint_ms));
        if hint > d {
            d = hint;
        }
        d = d.min(self.policy.max_backoff);
        self.rng = mix64(self.rng);
        let frac = (self.rng >> 11) as f64 / (1u64 << 53) as f64;
        d.mul_f64(0.5 + 0.5 * frac)
    }

    fn sleep_backoff(&mut self, retry: u32, hint_ms: u32, outcome: &mut RetryOutcome) {
        let d = self.backoff_before_retry(retry, hint_ms);
        outcome.backoff += d;
        std::thread::sleep(d);
    }

    /// Issue a query, retrying transient failures until it resolves or the
    /// retry budget is spent. Returns the final reply plus what getting it
    /// cost ([`RetryOutcome`]).
    ///
    /// * `Overloaded` replies are retried after the server's
    ///   `retry_after_ms` hint (floored into the exponential schedule).
    /// * Transport failures (reset, EOF, I/O error) drop the connection
    ///   and reconnect on the next attempt.
    /// * Everything else — including `Internal` and `DeadlineExceeded`
    ///   replies — is returned as-is, immediately.
    pub fn query(&mut self, req: &Request) -> Result<(QueryReply, RetryOutcome), ServeError> {
        self.query_traced(req, None)
    }

    /// [`Self::query`] with a v6 [`TraceContext`] propagated on every
    /// attempt. All attempts carry the SAME trace id, and each one is
    /// tagged with its 0-based attempt index via a `retry_attempt` span,
    /// so a retried request renders as one waterfall in the slow log —
    /// never as disconnected fragments.
    pub fn query_traced(
        &mut self,
        req: &Request,
        trace: Option<&TraceContext>,
    ) -> Result<(QueryReply, RetryOutcome), ServeError> {
        let mut outcome = RetryOutcome::default();
        loop {
            outcome.attempts += 1;
            let retry = outcome.retries; // 0-based index of the *next* retry
            let _attempt = trace.map(|t| {
                obs::span_for_at(
                    t.trace_id,
                    obs::SpanKind::RetryAttempt,
                    outcome.attempts - 1,
                    obs::trace::NO_LOD,
                )
            });
            let result = match self.ensure_conn() {
                Ok(conn) => conn.query_traced(req, trace),
                Err(e) => Err(e),
            };
            match result {
                Ok(QueryReply::Error {
                    code: ErrorCode::Overloaded,
                    retry_after_ms,
                    ..
                }) if retry < self.policy.max_retries => {
                    outcome.retries += 1;
                    self.sleep_backoff(retry, retry_after_ms, &mut outcome);
                }
                Ok(reply) => {
                    self.observe(&outcome);
                    return Ok((reply, outcome));
                }
                Err(e) if is_transient_transport(&e) && retry < self.policy.max_retries => {
                    // The connection is in an unknown state (possibly a
                    // half-read frame): drop it and reconnect next attempt.
                    self.conn = None;
                    outcome.retries += 1;
                    outcome.reconnects += 1;
                    self.sleep_backoff(retry, 0, &mut outcome);
                }
                Err(e) => return Err(e),
            }
        }
    }

    fn observe(&self, outcome: &RetryOutcome) {
        obs::request_retries_histogram().record(u64::from(outcome.retries));
        obs::retry_backoff_histogram().record_duration(outcome.backoff);
    }

    /// Access the underlying connection for probe calls (`stats`,
    /// `metrics`, `shutdown_server`...), reconnecting first if needed.
    pub fn raw(&mut self) -> Result<&mut Client, ServeError> {
        self.ensure_conn()
    }

    /// Span summary from the most recent traced query's final page, when
    /// the server attached one (v6+).
    pub fn last_summary(&self) -> Option<&SpanSummary> {
        self.conn.as_ref().and_then(Client::last_summary)
    }
}
