//! A blocking client for the tripro-serve wire protocol.
//!
//! One [`Client`] owns one TCP connection and issues one request at a time
//! (the protocol itself allows pipelining — request ids disambiguate — but
//! the blocking client keeps the common case simple). Query responses
//! arrive as one or more `Page` frames; [`Client::query`] reassembles them
//! into a [`QueryReply`].

use crate::protocol::{
    encode_request, read_response, write_frame, ErrorCode, Request, Response, StatsExPayload,
    StatsPayload, MIN_VERSION, VERSION,
};
use crate::ServeError;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Outcome of a query request.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryReply {
    /// The query completed; result ids reassembled across pages, in the
    /// order the server produced them.
    Ids(Vec<u32>),
    /// The server answered with a protocol-level error (overload, expired
    /// deadline, bad request...).
    Error { code: ErrorCode, message: String },
}

impl QueryReply {
    /// The result ids, if the query completed.
    pub fn ids(&self) -> Option<&[u32]> {
        match self {
            QueryReply::Ids(ids) => Some(ids),
            QueryReply::Error { .. } => None,
        }
    }

    /// The error code, if the server refused or failed the query.
    pub fn error_code(&self) -> Option<ErrorCode> {
        match self {
            QueryReply::Ids(_) => None,
            QueryReply::Error { code, .. } => Some(*code),
        }
    }
}

/// A blocking protocol client over one TCP connection.
pub struct Client {
    stream: TcpStream,
    next_id: u64,
}

impl Client {
    /// Connect and complete version negotiation (`Hello`).
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Client, ServeError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let mut c = Client { stream, next_id: 1 };
        match c.roundtrip(&Request::Hello {
            min_version: MIN_VERSION,
            max_version: VERSION,
        })? {
            Response::HelloOk { version: _ } => Ok(c),
            Response::Error { code, message } => {
                let _ = (code, message);
                Err(ServeError::Unexpected("server refused version"))
            }
            _ => Err(ServeError::Unexpected("non-hello reply to hello")),
        }
    }

    /// Optional socket read timeout for all subsequent requests.
    pub fn set_timeout(&mut self, timeout: Option<Duration>) -> Result<(), ServeError> {
        self.stream.set_read_timeout(timeout)?;
        Ok(())
    }

    fn send(&mut self, req: &Request) -> Result<u64, ServeError> {
        let id = self.next_id;
        self.next_id = self.next_id.wrapping_add(1).max(1);
        write_frame(&mut self.stream, &encode_request(id, req))?;
        Ok(id)
    }

    /// Read the next response frame addressed to `id`.
    fn recv_for(&mut self, id: u64) -> Result<Response, ServeError> {
        loop {
            let (rid, resp) = read_response(&mut self.stream)?;
            // A strictly serial client only ever has one request in
            // flight; frames for other ids would be a server bug.
            if rid == id {
                return Ok(resp);
            }
        }
    }

    fn roundtrip(&mut self, req: &Request) -> Result<Response, ServeError> {
        let id = self.send(req)?;
        self.recv_for(id)
    }

    /// Liveness probe; answered inline even when the server is overloaded.
    pub fn health(&mut self) -> Result<(), ServeError> {
        match self.roundtrip(&Request::Health)? {
            Response::HealthOk => Ok(()),
            _ => Err(ServeError::Unexpected("non-health reply to health")),
        }
    }

    /// Service counters.
    pub fn stats(&mut self) -> Result<StatsPayload, ServeError> {
        match self.roundtrip(&Request::Stats)? {
            Response::StatsOk(s) => Ok(s),
            _ => Err(ServeError::Unexpected("non-stats reply to stats")),
        }
    }

    /// Extended stats: service counters plus the engine's per-stage
    /// pipeline breakdown (v3+); answered inline even under overload.
    pub fn stats_ex(&mut self) -> Result<StatsExPayload, ServeError> {
        match self.roundtrip(&Request::StatsEx)? {
            Response::StatsExOk(s) => Ok(s),
            _ => Err(ServeError::Unexpected("non-stats reply to stats-ex")),
        }
    }

    /// The server's metrics registry as Prometheus text exposition;
    /// answered inline even when the server is overloaded (v2+).
    pub fn metrics(&mut self) -> Result<String, ServeError> {
        match self.roundtrip(&Request::Metrics)? {
            Response::MetricsOk { text } => Ok(text),
            _ => Err(ServeError::Unexpected("non-metrics reply to metrics")),
        }
    }

    /// Ask the server to drain and exit. The server acknowledges before it
    /// begins draining.
    pub fn shutdown_server(&mut self) -> Result<(), ServeError> {
        match self.roundtrip(&Request::Shutdown)? {
            Response::ShutdownOk => Ok(()),
            _ => Err(ServeError::Unexpected("non-shutdown reply to shutdown")),
        }
    }

    /// Issue a query request and reassemble its paged response.
    ///
    /// Accepts only query kinds (`Contains`/`Intersect`/`Within`/`Nn`/
    /// `Knn`); probe kinds have dedicated methods above.
    pub fn query(&mut self, req: &Request) -> Result<QueryReply, ServeError> {
        match req {
            Request::Contains { .. }
            | Request::Intersect { .. }
            | Request::Within { .. }
            | Request::Nn { .. }
            | Request::Knn { .. } => {}
            _ => return Err(ServeError::Unexpected("query() needs a query request")),
        }
        let id = self.send(req)?;
        let mut out: Vec<u32> = Vec::new();
        loop {
            match self.recv_for(id)? {
                Response::Page { last, ids } => {
                    out.extend_from_slice(&ids);
                    if last {
                        return Ok(QueryReply::Ids(out));
                    }
                }
                Response::Error { code, message } => {
                    return Ok(QueryReply::Error { code, message });
                }
                _ => return Err(ServeError::Unexpected("non-page reply to query")),
            }
        }
    }
}
