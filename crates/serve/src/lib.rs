//! # tripro-serve
//!
//! A networked query service over the 3DPro engine: a multi-threaded TCP
//! server (std::net only — the workspace is dependency-free) speaking a
//! hand-rolled length-prefixed binary protocol ([`protocol`], specified in
//! `docs/protocol.md`).
//!
//! The paper's memory-centred design — compressed objects resident in
//! memory, per-cuboid batched execution, an LRU decode cache — is exactly
//! the substrate a long-lived service needs. This crate adds the request
//! lifecycle around it:
//!
//! * **Admission control** ([`server`]): a bounded queue plus an in-flight
//!   cap; excess requests receive an explicit `Overloaded` response instead
//!   of piling up unboundedly.
//! * **Per-cuboid batching**: concurrent point/probe requests are coalesced
//!   by the cuboid of their target object and executed on the process-wide
//!   [`tripro::pool`] worker pool, so a batch of requests touching the same
//!   spatial region shares decode-cache residency (paper §5.3).
//! * **Deadline-aware refinement**: each request's deadline travels into
//!   the engine as a [`tripro::Deadline`] token polled between LOD rounds —
//!   an expiring request stops paying for higher-LOD decode and returns a
//!   typed `DeadlineExceeded` error (P1/P2 early-out semantics).
//! * **Graceful shutdown**: the server stops admitting, drains in-flight
//!   work, answers it, and only then tears connections down.

pub mod client;
pub mod coordinator;
pub mod protocol;
pub mod server;
pub mod shard;

pub use client::{Client, QueryReply, RetryOutcome, RetryPolicy, RetryingClient};
pub use coordinator::{Coordinator, CoordinatorConfig};
pub use protocol::{
    ErrorCode, NodeRole, Request, Response, ShardInfoPayload, StatsExPayload, StatsPayload,
    TraceContext, WireError,
};
pub use server::{ServeConfig, Server};
pub use shard::{partition_source, ShardMap, ShardView};

/// Errors surfaced by the server runtime and the blocking client.
#[derive(Debug)]
pub enum ServeError {
    /// Socket-level failure (bind, connect, spawn...).
    Io(std::io::Error),
    /// Frame-level failure (malformed, oversized, closed...).
    Wire(WireError),
    /// The peer answered with a frame that makes no sense in this state
    /// (e.g. a result page for a health probe).
    Unexpected(&'static str),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "i/o error: {e}"),
            ServeError::Wire(e) => write!(f, "wire error: {e}"),
            ServeError::Unexpected(what) => write!(f, "unexpected response: {what}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Io(e) => Some(e),
            ServeError::Wire(e) => Some(e),
            ServeError::Unexpected(_) => None,
        }
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

impl From<WireError> for ServeError {
    fn from(e: WireError) -> Self {
        ServeError::Wire(e)
    }
}
