//! The query server: accept loop, per-connection framing threads, admission
//! control, the per-cuboid batch dispatcher, and graceful shutdown.
//!
//! ## Request lifecycle
//!
//! ```text
//! accept ──► connection thread ──► admission ──► bounded queue ──► batcher
//!             (frame parsing,       (cap hit ⇒                     (groups by
//!              inline probes)        Overloaded)                    cuboid, runs
//!                                                                   on tripro::pool)
//! ```
//!
//! Connection threads only parse frames and answer cheap probes
//! (`Hello`/`Health`/`Stats`) inline; every query op goes through admission
//! into the dispatcher's bounded queue. The batcher drains up to
//! `max_inflight` requests per round, sorts them by the cuboid of their
//! target object (point probes bucket by a grid cell of the same pitch) and
//! fans the groups out on the process-wide worker pool — so concurrent
//! requests against the same region share decode-cache residency exactly
//! like the offline join driver's cuboid batches (paper §5.3).
//!
//! ## Overload and deadlines
//!
//! Admission is a hard cap: `queued + executing < max_inflight +
//! queue_depth`, else the request is answered `Overloaded` immediately and
//! counted in [`ServiceStats::shed`]. Admitted requests carry a
//! [`Deadline`] token into the engine; expiry between LOD refinement rounds
//! surfaces as a `DeadlineExceeded` response without paying for further
//! decode.
//!
//! ## Shutdown
//!
//! [`Server::shutdown`] (or a `Shutdown` frame) stops the accept loop,
//! closes admission, lets the batcher drain everything already admitted,
//! answers it, then joins all threads. Connection readers poll the shutdown
//! flag on a short read timeout, so no thread blocks past a drain.

use crate::protocol::{
    self, decode_header, decode_request_body_traced, encode_response, encode_response_traced,
    ErrorCode, Header, NodeRole, Request, Response, ShardInfoPayload, StatsExPayload, StatsPayload,
    TraceContext, HEADER_LEN, MIN_VERSION, NO_DEADLINE_MS, VERSION,
};
use crate::shard::ShardView;
use crate::ServeError;
use std::collections::VecDeque;
use std::io::Read;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use tripro::fault::{self, FaultAction};
use tripro::obs;
use tripro::sync::{lock, wait, Condvar, Mutex};
use tripro::{
    Accel, Deadline, Engine, Error, ExecStats, ObjectStore, Paradigm, PointQuery, QueryConfig,
    ServiceSnapshot, ServiceStats, TraceConfig,
};

/// Server configuration. `Default` is tuned for tests: loopback, ephemeral
/// port, parallelism matching the host.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 picks an ephemeral port (see [`Server::addr`]).
    pub addr: String,
    /// Maximum requests executing concurrently (the admission semaphore).
    pub max_inflight: usize,
    /// Maximum requests waiting behind the executing set; admission refuses
    /// (`Overloaded`) beyond `max_inflight + queue_depth` outstanding.
    pub queue_depth: usize,
    /// Pool helper threads the batcher may recruit per round.
    pub batch_helpers: usize,
    /// Maximum simultaneously open client connections; excess connections
    /// are answered `Overloaded` and closed (bounded accept).
    pub max_connections: usize,
    /// Server-side cap on per-request deadlines: a client asking for more
    /// (or for no deadline) is clamped down to this budget. `None` = no cap.
    pub deadline_cap: Option<Duration>,
    /// Query paradigm for all requests (FPR unless benchmarking FR).
    pub paradigm: Paradigm,
    /// Acceleration strategy for all requests.
    pub accel: Accel,
    /// LOD ladder override (empty = every LOD).
    pub lod_list: Vec<usize>,
    /// Cuboid edge for batching; `None` derives one from the target extent
    /// (same rule as the offline join driver).
    pub cuboid_cell: Option<f64>,
    /// Artificial per-batch service time, injected while the executing slot
    /// is held. A load-testing knob: it makes overload and drain behaviour
    /// deterministic in tests and lets `tripro-load` probe admission
    /// control without a large dataset. `None` in production.
    pub inject_latency: Option<Duration>,
    /// Read-timeout granularity at which blocked connection readers poll
    /// the shutdown flag.
    pub poll_interval: Duration,
    /// Span-tracing configuration applied to the process-wide tracer at
    /// startup. Disabled by default: registry metrics (and the `Metrics`
    /// frame) work regardless; this only gates per-request span capture
    /// and the slow-query log.
    pub trace: TraceConfig,
    /// Cluster identity when this engine serves one shard of a partitioned
    /// source store (`None` = standalone single engine). Echoed over
    /// `ShardInfo` so a coordinator can validate the backend before
    /// routing to it (see `docs/sharding.md`).
    pub shard: Option<ShardView>,
    /// Local → global source id map when `shard` is set: query results
    /// are remapped to global ids before leaving the process, so every
    /// shard (and the coordinator merge) speaks one id space.
    pub source_ids: Option<Arc<Vec<u32>>>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        let par = std::thread::available_parallelism().map_or(4, |n| n.get());
        Self {
            addr: "127.0.0.1:0".to_string(),
            max_inflight: par.max(1),
            queue_depth: 64,
            batch_helpers: par.max(1),
            max_connections: 256,
            deadline_cap: None,
            paradigm: Paradigm::FilterProgressiveRefine,
            accel: Accel::Aabb,
            lod_list: Vec::new(),
            cuboid_cell: None,
            inject_latency: None,
            poll_interval: Duration::from_millis(25),
            trace: TraceConfig::default(),
            shard: None,
            source_ids: None,
        }
    }
}

/// Pre-bound registry handles for the per-outcome request counters, so the
/// hot path pays one relaxed `fetch_add` instead of a registry lookup.
/// Shared with the coordinator, which keeps the same admission ledger.
pub(crate) struct Outcomes {
    pub(crate) admitted: Arc<AtomicU64>,
    pub(crate) shed: Arc<AtomicU64>,
    pub(crate) completed: Arc<AtomicU64>,
    pub(crate) deadline_expired: Arc<AtomicU64>,
    pub(crate) failed: Arc<AtomicU64>,
    pub(crate) protocol_error: Arc<AtomicU64>,
}

impl Outcomes {
    pub(crate) fn bind() -> Self {
        Self {
            admitted: obs::request_outcome_counter("admitted"),
            shed: obs::request_outcome_counter("shed"),
            completed: obs::request_outcome_counter("completed"),
            deadline_expired: obs::request_outcome_counter("deadline_expired"),
            failed: obs::request_outcome_counter("failed"),
            protocol_error: obs::request_outcome_counter("protocol_error"),
        }
    }
}

#[inline]
pub(crate) fn bump(c: &AtomicU64) {
    c.fetch_add(1, Ordering::Relaxed);
}

/// A query operation extracted from a request frame.
enum Op {
    Contains([f64; 3]),
    Intersect(u32),
    Within(u32, f64),
    Nn(u32),
    Knn(u32, u32),
    /// Scored nearest-neighbour (coordinator sub-query): the local best
    /// with its exact distance, for cross-shard merging.
    NnEx(u32),
    /// Scored kNN (coordinator sub-query): local top-k with exact
    /// distances.
    KnnEx(u32, u32),
}

/// The successful result of a query op: plain id pages, or scored pages
/// for the `*Ex` coordinator sub-queries.
enum Reply {
    Ids(Vec<u32>),
    Scored(Vec<(u32, f64)>),
}

/// An admitted request parked in the dispatcher queue.
struct Pending {
    writer: Arc<ConnWriter>,
    request_id: u64,
    op: Op,
    deadline: Deadline,
    /// Batching key: cuboid index of the target object (or point bucket).
    group: u64,
    /// Propagated v6 trace context, when the peer sent one: the request
    /// executes under its trace id and, if sampled, ships a span summary
    /// back on the final reply page.
    trace: Option<TraceContext>,
}

#[derive(Default)]
struct DispatchState {
    queue: VecDeque<Pending>,
    executing: usize,
}

/// Write half of a connection, shared between the connection thread (inline
/// probe replies) and batch workers (query replies). Send failures mean the
/// client went away; the request's work is simply dropped. Shared with the
/// coordinator's connection threads.
pub(crate) struct ConnWriter {
    // LOCK-RANK(30): per-connection write half; taken with no other lock
    // held (repliers drop the dispatch guard before sending).
    stream: Mutex<TcpStream>,
    /// Latched once the transport is known dead (write failure or injected
    /// disconnect); later sends become no-ops instead of repeating the
    /// syscall error frame after frame.
    dead: AtomicBool,
}

impl ConnWriter {
    pub(crate) fn new(stream: TcpStream) -> Self {
        Self {
            stream: Mutex::new(stream),
            dead: AtomicBool::new(false),
        }
    }

    fn is_dead(&self) -> bool {
        // ORDERING: Relaxed — advisory fast-path flag; the stream mutex
        // serializes the writes themselves.
        self.dead.load(Ordering::Relaxed)
    }

    /// Mark the transport dead and shut both directions down so the
    /// connection thread blocked in `read` unblocks promptly.
    fn kill(&self) {
        let s = lock(&self.stream);
        self.mark_dead(&s);
    }

    fn mark_dead(&self, s: &TcpStream) {
        // ORDERING: Relaxed — see `is_dead`.
        self.dead.store(true, Ordering::Relaxed);
        let _ = s.shutdown(Shutdown::Both);
    }

    fn send(&self, frame: &[u8]) {
        if self.is_dead() {
            return;
        }
        // Serve-side write failpoint: exercises partial writes, stalls and
        // injected disconnects without needing a misbehaving client. A
        // response path must never panic (it would corrupt the admission
        // ledger), so erroring actions all degrade to dropping the
        // connection.
        let mut cap = usize::MAX;
        match fault::hit(fault::SERVE_WRITE) {
            None => {}
            Some(FaultAction::Delay(ms)) => std::thread::sleep(Duration::from_millis(ms)),
            Some(FaultAction::Partial(n)) => cap = n.max(1),
            Some(FaultAction::Err | FaultAction::Panic | FaultAction::Disconnect) => {
                self.kill();
                return;
            }
        }
        let mut s = lock(&self.stream);
        // The guard IS the frame serializer — interleaved partial writes
        // would corrupt the wire protocol. Only this connection's repliers
        // contend here, and a stuck client stalls its own replies, nothing
        // else. A short `write` is NOT failure: loop until the frame is
        // fully flushed or the transport errors.
        let mut off = 0;
        let mut ok = true;
        while off < frame.len() {
            let end = frame.len().min(off.saturating_add(cap));
            cap = usize::MAX; // only the first chunk is truncated by Partial
            match std::io::Write::write(&mut *s, &frame[off..end]) {
                Ok(0) => {
                    ok = false;
                    break;
                }
                Ok(n) => off += n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => {
                    ok = false;
                    break;
                }
            }
        }
        if ok {
            // tripro_lint::allow(condvar_wait_loop): the flush must stay
            // under the same guard as the write (frame serialization).
            ok = std::io::Write::flush(&mut *s).is_ok();
        }
        if !ok {
            self.mark_dead(&s);
        }
    }

    pub(crate) fn send_response(&self, request_id: u64, resp: &Response) {
        self.send(&encode_response(request_id, resp));
    }

    /// [`Self::send_response`] with a v6 span-summary trailer attached
    /// (only meaningful on the final `Page`/`PageD` of a sampled reply).
    pub(crate) fn send_response_traced(
        &self,
        request_id: u64,
        resp: &Response,
        summary: Option<&obs::SpanSummary>,
    ) {
        self.send(&encode_response_traced(request_id, resp, summary));
    }
}

/// State shared by the accept loop, connection threads and the batcher.
struct Core {
    target: Arc<ObjectStore>,
    source: Arc<ObjectStore>,
    cfg: ServeConfig,
    /// Target object id → cuboid group index (batching locality key).
    cuboid_of: Vec<u64>,
    /// Cuboid pitch used for bucketing point probes.
    cell: f64,
    stats: ServiceStats,
    exec_stats: ExecStats,
    outcomes: Outcomes,
    shutdown: AtomicBool,
    // LOCK-RANK(20): admission queue + executing ledger; taken after
    // `conns` (10) on shutdown paths, before ConnWriter `stream` (30) and
    // the pool lock (40) — both reached only after this guard drops.
    dispatch: Mutex<DispatchState>,
    /// Wakes the batcher when work arrives (or shutdown starts).
    work_cv: Condvar,
    /// Wakes `Server::wait`/shutdown when the dispatcher drains.
    drain_cv: Condvar,
    /// Open connections (bounded accept) and their join handles.
    // LOCK-RANK(10): connection-handle list; outermost serve lock, held
    // only to push/take handles (joins happen after the guard drops).
    conns: Mutex<Vec<JoinHandle<()>>>,
}

impl Core {
    fn is_shutdown(&self) -> bool {
        // ORDERING: Acquire pairs with the Release store in
        // `begin_shutdown`, so a reader that observes the flag also
        // observes every write the shutting-down thread made before
        // raising it (final stats, queue state).
        self.shutdown.load(Ordering::Acquire)
    }

    fn begin_shutdown(&self) {
        // ORDERING: Release publishes everything written before shutdown
        // to the threads that observe the flag via the Acquire load in
        // `is_shutdown`.
        self.shutdown.store(true, Ordering::Release);
        // Wake the batcher (to notice the flag) and any waiters.
        let st = lock(&self.dispatch);
        drop(st);
        self.work_cv.notify_all();
        self.drain_cv.notify_all();
    }

    fn stats_payload(&self) -> StatsPayload {
        let s = self.stats.snapshot();
        StatsPayload {
            admitted: s.admitted,
            shed: s.shed,
            deadline_expired: s.deadline_expired,
            completed: s.completed,
            protocol_errors: s.protocol_errors,
            target_objects: self.target.len() as u64,
            source_objects: self.source.len() as u64,
        }
    }

    fn stats_ex_payload(&self) -> StatsExPayload {
        let s = self.stats.snapshot();
        let e = self.exec_stats.snapshot();
        let arr4 = |v: &[u64]| {
            let mut a = [0u64; 4];
            for (dst, src) in a.iter_mut().zip(v) {
                *dst = *src;
            }
            a
        };
        let mut queue_stalls = [0u64; 3];
        for (dst, src) in queue_stalls.iter_mut().zip(&e.queue_stalls) {
            *dst = *src;
        }
        StatsExPayload {
            admitted: s.admitted,
            shed: s.shed,
            deadline_expired: s.deadline_expired,
            completed: s.completed,
            failed: s.failed,
            protocol_errors: s.protocol_errors,
            target_objects: self.target.len() as u64,
            source_objects: self.source.len() as u64,
            filter_ns: e.filter_ns,
            decode_ns: e.decode_ns,
            compute_ns: e.compute_ns,
            face_pair_tests: e.face_pair_tests,
            cache_hits: e.cache_hits,
            cache_misses: e.cache_misses,
            decodes: e.decodes,
            stage_ns: arr4(&e.stage_ns),
            stage_items: arr4(&e.stage_items),
            queue_stalls,
        }
    }

    /// Deadline for a request: the client's ask clamped by the server cap.
    fn deadline_for(&self, deadline_ms: u32) -> Deadline {
        let client =
            (deadline_ms != NO_DEADLINE_MS).then(|| Duration::from_millis(u64::from(deadline_ms)));
        match (client, self.cfg.deadline_cap) {
            (Some(c), Some(cap)) => Deadline::within(c.min(cap)),
            (Some(c), None) => Deadline::within(c),
            (None, Some(cap)) => Deadline::within(cap),
            (None, None) => Deadline::none(),
        }
    }

    /// Batching group for a query op: joins key on the target object's
    /// cuboid; point probes bucket into a grid of the same pitch (high bit
    /// set so the two key spaces never collide).
    fn group_of(&self, op: &Op) -> u64 {
        match op {
            Op::Intersect(t)
            | Op::Within(t, _)
            | Op::Nn(t)
            | Op::Knn(t, _)
            | Op::NnEx(t)
            | Op::KnnEx(t, _) => self.cuboid_of.get(*t as usize).copied().unwrap_or(0),
            Op::Contains(p) => {
                let b = self.target.rtree().bounds();
                let cell = self.cell.max(1e-9);
                let gx = ((p[0] - b.lo.x) / cell).floor() as i64 & 0xFFFF;
                let gy = ((p[1] - b.lo.y) / cell).floor() as i64 & 0xFFFF;
                let gz = ((p[2] - b.lo.z) / cell).floor() as i64 & 0xFFFF;
                (1 << 63) | ((gx as u64) << 32) | ((gy as u64) << 16) | (gz as u64)
            }
        }
    }

    /// Backoff hint for an `Overloaded` rejection, derived from the live
    /// backlog: roughly how long `outstanding` requests need to drain at
    /// the configured batch rate. Clamped to 1ms..=30s so a hint is always
    /// present and never absurd.
    fn retry_after_ms(&self, outstanding: usize) -> u32 {
        let per_round = self.cfg.inject_latency.unwrap_or(Duration::from_millis(2));
        let rounds = outstanding / self.cfg.max_inflight.max(1) + 1;
        let ms = per_round.as_millis().saturating_mul(rounds as u128);
        ms.clamp(1, 30_000) as u32
    }

    /// [`Core::retry_after_ms`] against the current queue depth, for shed
    /// sites that do not already hold the dispatch guard.
    fn retry_after_hint(&self) -> u32 {
        let outstanding = {
            let st = lock(&self.dispatch);
            st.queue.len() + st.executing
        };
        self.retry_after_ms(outstanding)
    }

    fn query_config(&self, deadline: Deadline) -> QueryConfig {
        let mut qc = QueryConfig::new(self.cfg.paradigm, self.cfg.accel)
            .with_lods(self.cfg.lod_list.clone())
            .with_deadline(deadline);
        qc.cuboid_cell = self.cfg.cuboid_cell;
        qc
    }

    /// Local source id → global id (identity when not sharded).
    #[inline]
    fn global_id(&self, local: u32) -> u32 {
        match &self.cfg.source_ids {
            Some(map) => map.get(local as usize).copied().unwrap_or(local),
            None => local,
        }
    }

    fn shard_info_payload(&self) -> ShardInfoPayload {
        let (epoch, index, count, cell, source_total) = match self.cfg.shard {
            Some(v) => (
                v.map.epoch,
                v.index,
                v.map.count,
                v.map.cell,
                v.source_total,
            ),
            None => (0, 0, 1, self.cell, self.source.len() as u64),
        };
        ShardInfoPayload {
            role: NodeRole::Engine,
            epoch,
            index,
            count,
            cell,
            target_objects: self.target.len() as u64,
            source_objects: self.source.len() as u64,
            source_total,
        }
    }
}

/// A running query server. Dropping the handle shuts it down gracefully.
pub struct Server {
    core: Arc<Core>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    batcher: Option<JoinHandle<()>>,
}

impl Server {
    /// Bind, spawn the accept loop and the batch dispatcher, and return.
    pub fn start(
        target: Arc<ObjectStore>,
        source: Arc<ObjectStore>,
        cfg: ServeConfig,
    ) -> Result<Server, ServeError> {
        let listener = TcpListener::bind(
            cfg.addr
                .to_socket_addrs()?
                .next()
                .ok_or_else(|| std::io::Error::other("unresolvable bind address"))?,
        )?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        obs::tracer().configure(&cfg.trace);

        // Precompute the object → cuboid map once; it is the batching key
        // for every join request.
        let cell = cfg.cuboid_cell.unwrap_or_else(|| {
            let e = target.rtree().bounds().extent();
            (e.max_component() / 4.0).max(1e-9)
        });
        let mut cuboid_of = vec![0u64; target.len()];
        for (gi, group) in target.cuboids(cell).iter().enumerate() {
            for &id in group {
                if let Some(slot) = cuboid_of.get_mut(id as usize) {
                    *slot = gi as u64;
                }
            }
        }

        let core = Arc::new(Core {
            target,
            source,
            cfg,
            cuboid_of,
            cell,
            stats: ServiceStats::new(),
            exec_stats: ExecStats::new(),
            outcomes: Outcomes::bind(),
            shutdown: AtomicBool::new(false),
            dispatch: Mutex::new(DispatchState::default()),
            work_cv: Condvar::new(),
            drain_cv: Condvar::new(),
            conns: Mutex::new(Vec::new()),
        });

        let accept = {
            let core = Arc::clone(&core);
            std::thread::Builder::new()
                .name("tripro-serve-accept".into())
                .spawn(move || accept_loop(&core, &listener))?
        };
        let batcher = {
            let core = Arc::clone(&core);
            std::thread::Builder::new()
                .name("tripro-serve-batch".into())
                .spawn(move || batch_loop(&core))?
        };

        Ok(Server {
            core,
            addr,
            accept: Some(accept),
            batcher: Some(batcher),
        })
    }

    /// The bound address (resolves port 0 to the actual ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Current request-lifecycle counters.
    ///
    /// Under `strict-invariants` this also checks the admission ledger at
    /// snapshot time: every admitted request must be queued, executing, or
    /// accounted (completed / deadline-expired / failed) — a counter that
    /// drifts from that identity means a response path forgot to record
    /// its outcome.
    pub fn stats(&self) -> ServiceSnapshot {
        #[cfg(feature = "strict-invariants")]
        {
            // Hold the dispatch lock so `executing` cannot decrement under
            // us; outcome counters may still tick concurrently (a request
            // can be accounted while its batch is draining), so the check
            // is a pair of inequalities rather than a strict equality.
            let st = lock(&self.core.dispatch);
            let snap = self.core.stats.snapshot();
            let outstanding = st.queue.len() as u64 + st.executing as u64;
            assert!(
                snap.accounted() <= snap.admitted,
                "accounted {} > admitted {}: an outcome was recorded twice \
                 or for an unadmitted request ({snap:?})",
                snap.accounted(),
                snap.admitted,
            );
            assert!(
                snap.admitted <= snap.accounted() + outstanding,
                "admission ledger leak: admitted {} > accounted {} + \
                 outstanding {outstanding} ({snap:?})",
                snap.admitted,
                snap.accounted(),
            );
            return snap;
        }
        #[cfg(not(feature = "strict-invariants"))]
        self.core.stats.snapshot()
    }

    /// Aggregate engine execution stats across all served requests.
    pub fn exec_stats(&self) -> tripro::StatsSnapshot {
        self.core.exec_stats.snapshot()
    }

    /// Block until a shutdown is requested (e.g. by a remote `Shutdown`
    /// frame) and all admitted work has drained.
    pub fn wait(&self) {
        let mut st = lock(&self.core.dispatch);
        while !(self.core.is_shutdown() && st.queue.is_empty() && st.executing == 0) {
            st = wait(&self.core.drain_cv, st);
        }
    }

    /// Graceful shutdown: stop accepting, drain admitted work, join all
    /// threads.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.core.begin_shutdown();
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        if let Some(h) = self.batcher.take() {
            let _ = h.join();
        }
        let handles = std::mem::take(&mut *lock(&self.core.conns));
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

// ---------------------------------------------------------------------
// Accept loop
// ---------------------------------------------------------------------

fn accept_loop(core: &Arc<Core>, listener: &TcpListener) {
    while !core.is_shutdown() {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let _ = stream.set_nonblocking(false);
                let mut conns = lock(&core.conns);
                // Reap finished connection threads so the bound tracks
                // *live* connections, not historical ones.
                conns.retain(|h| !h.is_finished());
                if conns.len() >= core.cfg.max_connections {
                    drop(conns);
                    core.stats.record_shed();
                    bump(&core.outcomes.shed);
                    let writer = ConnWriter::new(stream);
                    writer.send_response(
                        0,
                        &Response::Error {
                            code: ErrorCode::Overloaded,
                            message: "connection limit reached".to_string(),
                            retry_after_ms: core.retry_after_hint(),
                        },
                    );
                    continue;
                }
                let core2 = Arc::clone(core);
                let spawned = std::thread::Builder::new()
                    .name("tripro-serve-conn".into())
                    .spawn(move || {
                        // A panicking connection handler must take down its
                        // own connection only, never the process: contain
                        // it, count it, and let the thread exit (dropping
                        // the stream closes the socket).
                        if catch_unwind(AssertUnwindSafe(|| conn_loop(&core2, stream))).is_err() {
                            obs::panic_counter("serve_conn").fetch_add(1, Ordering::Relaxed);
                        }
                    });
                match spawned {
                    Ok(h) => conns.push(h),
                    Err(_) => {
                        core.stats.record_shed();
                        bump(&core.outcomes.shed);
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(core.cfg.poll_interval.min(Duration::from_millis(10)));
            }
            Err(_) => {
                // Transient accept failure (EMFILE etc.); back off briefly.
                std::thread::sleep(core.cfg.poll_interval);
            }
        }
    }
}

// ---------------------------------------------------------------------
// Connection threads
// ---------------------------------------------------------------------

/// Outcome of a shutdown-aware exact read.
pub(crate) enum ReadFull {
    Full,
    /// Clean stop: EOF at a frame boundary, or shutdown observed.
    Stop,
    /// Transport failure or truncation mid-frame.
    Failed,
}

/// Read exactly `buf.len()` bytes, polling `shutdown` on every read
/// timeout. `at_boundary` means EOF here is a clean close, not truncation.
/// Shared by the server's and the coordinator's connection threads.
pub(crate) fn read_full(
    shutdown: &AtomicBool,
    reader: &mut TcpStream,
    buf: &mut [u8],
    at_boundary: bool,
) -> ReadFull {
    // Serve-side read failpoint: erroring actions surface as a transport
    // failure (connection drops, protocol_error counted) — a read path
    // must never panic, so Panic degrades to Failed here too.
    match fault::hit(fault::SERVE_READ) {
        None => {}
        Some(FaultAction::Delay(ms)) => std::thread::sleep(Duration::from_millis(ms)),
        Some(_) => return ReadFull::Failed,
    }
    let mut n = 0;
    while n < buf.len() {
        // ORDERING: Acquire pairs with the Release store raising the flag
        // (see `Core::begin_shutdown`).
        if shutdown.load(Ordering::Acquire) {
            return ReadFull::Stop;
        }
        match reader.read(&mut buf[n..]) {
            Ok(0) => {
                return if n == 0 && at_boundary {
                    ReadFull::Stop
                } else {
                    ReadFull::Failed
                };
            }
            Ok(m) => n += m,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock
                        | std::io::ErrorKind::TimedOut
                        | std::io::ErrorKind::Interrupted
                ) => {}
            Err(_) => return ReadFull::Failed,
        }
    }
    ReadFull::Full
}

fn conn_loop(core: &Arc<Core>, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(core.cfg.poll_interval));
    let writer = match stream.try_clone() {
        Ok(w) => Arc::new(ConnWriter::new(w)),
        Err(_) => return,
    };
    let mut reader = stream;

    loop {
        let mut hb = [0u8; HEADER_LEN];
        match read_full(&core.shutdown, &mut reader, &mut hb, true) {
            ReadFull::Full => {}
            ReadFull::Stop => return,
            ReadFull::Failed => {
                core.stats.record_protocol_error();
                bump(&core.outcomes.protocol_error);
                return;
            }
        }
        let header = match decode_header(&hb) {
            Ok(h) => h,
            Err(e) => {
                // Unframeable input: answer once (the id field may be
                // garbage, use 0) and drop the connection — resynchronising
                // an unframed byte stream is not possible.
                core.stats.record_protocol_error();
                bump(&core.outcomes.protocol_error);
                writer.send_response(
                    0,
                    &Response::Error {
                        code: ErrorCode::BadRequest,
                        message: e.to_string(),
                        retry_after_ms: 0,
                    },
                );
                return;
            }
        };
        if !(MIN_VERSION..=VERSION).contains(&header.version) {
            core.stats.record_protocol_error();
            bump(&core.outcomes.protocol_error);
            writer.send_response(
                header.request_id,
                &Response::Error {
                    code: ErrorCode::UnsupportedVersion,
                    message: format!("server speaks versions {MIN_VERSION}..={VERSION}"),
                    retry_after_ms: 0,
                },
            );
            return;
        }
        let mut payload = vec![0u8; header.payload_len as usize];
        match read_full(&core.shutdown, &mut reader, &mut payload, false) {
            ReadFull::Full => {}
            ReadFull::Stop => return,
            ReadFull::Failed => {
                core.stats.record_protocol_error();
                bump(&core.outcomes.protocol_error);
                return;
            }
        }
        if !handle_frame(core, &writer, &header, &payload) {
            return;
        }
    }
}

/// Handle one framed request; returns `false` when the connection should
/// close (protocol error or shutdown).
fn handle_frame(
    core: &Arc<Core>,
    writer: &Arc<ConnWriter>,
    header: &Header,
    payload: &[u8],
) -> bool {
    let (request, trace) = match decode_request_body_traced(header.kind, payload) {
        Ok(r) => r,
        Err(e) => {
            core.stats.record_protocol_error();
            bump(&core.outcomes.protocol_error);
            writer.send_response(
                header.request_id,
                &Response::Error {
                    code: ErrorCode::BadRequest,
                    message: e.to_string(),
                    retry_after_ms: 0,
                },
            );
            return false;
        }
    };
    let id = header.request_id;
    let (op, deadline_ms) = match request {
        Request::Hello {
            min_version,
            max_version,
            role: _,
        } => {
            // Speak the newest version both sides understand. The peer's
            // role is informational; the engine answers anyone.
            let spoken = (MIN_VERSION..=VERSION)
                .rev()
                .find(|v| (min_version..=max_version).contains(v));
            match spoken {
                Some(version) => {
                    writer.send_response(
                        id,
                        &Response::HelloOk {
                            version,
                            role: NodeRole::Engine,
                        },
                    );
                }
                None => {
                    core.stats.record_protocol_error();
                    bump(&core.outcomes.protocol_error);
                    writer.send_response(
                        id,
                        &Response::Error {
                            code: ErrorCode::UnsupportedVersion,
                            message: format!("server speaks versions {MIN_VERSION}..={VERSION}"),
                            retry_after_ms: 0,
                        },
                    );
                }
            }
            return true;
        }
        Request::Health => {
            writer.send_response(id, &Response::HealthOk);
            return true;
        }
        Request::Stats => {
            writer.send_response(id, &Response::StatsOk(core.stats_payload()));
            return true;
        }
        Request::ShardInfo => {
            writer.send_response(id, &Response::ShardInfoOk(core.shard_info_payload()));
            return true;
        }
        Request::Metrics => {
            writer.send_response(
                id,
                &Response::MetricsOk {
                    text: obs::render_global(),
                },
            );
            return true;
        }
        Request::StatsEx => {
            writer.send_response(id, &Response::StatsExOk(core.stats_ex_payload()));
            return true;
        }
        Request::MetricsBin => {
            writer.send_response(
                id,
                &Response::MetricsBinOk(obs::snapshot_registry(obs::registry())),
            );
            return true;
        }
        Request::TraceLog => {
            writer.send_response(
                id,
                &Response::TraceLogOk {
                    text: obs::render_slow_log(),
                },
            );
            return true;
        }
        Request::Shutdown => {
            writer.send_response(id, &Response::ShutdownOk);
            core.begin_shutdown();
            return false;
        }
        Request::Contains { p, deadline_ms } => (Op::Contains(p), deadline_ms),
        Request::Intersect {
            target,
            deadline_ms,
        } => (Op::Intersect(target), deadline_ms),
        Request::Within {
            target,
            d,
            deadline_ms,
        } => (Op::Within(target, d), deadline_ms),
        Request::Nn {
            target,
            deadline_ms,
        } => (Op::Nn(target), deadline_ms),
        Request::Knn {
            target,
            k,
            deadline_ms,
        } => (Op::Knn(target, k), deadline_ms),
        Request::NnEx {
            target,
            deadline_ms,
        } => (Op::NnEx(target), deadline_ms),
        Request::KnnEx {
            target,
            k,
            deadline_ms,
        } => (Op::KnnEx(target, k), deadline_ms),
    };

    // Validate before admission so a bad id never occupies a slot.
    if let Op::Intersect(t)
    | Op::Within(t, _)
    | Op::Nn(t)
    | Op::Knn(t, _)
    | Op::NnEx(t)
    | Op::KnnEx(t, _) = op
    {
        if t as usize >= core.target.len() {
            writer.send_response(
                id,
                &Response::Error {
                    code: ErrorCode::BadRequest,
                    message: format!("target {t} out of range (store has {})", core.target.len()),
                    retry_after_ms: 0,
                },
            );
            return true;
        }
    }

    let group = core.group_of(&op);
    let pending = Pending {
        writer: Arc::clone(writer),
        request_id: id,
        op,
        deadline: core.deadline_for(deadline_ms),
        group,
        trace,
    };

    // Admission control: bounded outstanding work, shed beyond.
    let (admitted, outstanding) = {
        let mut st = lock(&core.dispatch);
        let outstanding = st.queue.len() + st.executing;
        if core.is_shutdown() || outstanding >= core.cfg.max_inflight + core.cfg.queue_depth {
            (false, outstanding)
        } else {
            // Count admission before the request becomes claimable, so the
            // ledger invariant (`accounted ≤ admitted`) cannot be violated
            // by a request completing before its admission is recorded.
            core.stats.record_admitted();
            bump(&core.outcomes.admitted);
            st.queue.push_back(pending);
            (true, outstanding)
        }
    };
    if admitted {
        core.work_cv.notify_all();
    } else {
        core.stats.record_shed();
        bump(&core.outcomes.shed);
        writer.send_response(
            id,
            &Response::Error {
                code: ErrorCode::Overloaded,
                message: "admission queue full".to_string(),
                retry_after_ms: core.retry_after_ms(outstanding),
            },
        );
    }
    true
}

// ---------------------------------------------------------------------
// Batch dispatcher
// ---------------------------------------------------------------------

fn batch_loop(core: &Arc<Core>) {
    loop {
        let batch = {
            let mut st = lock(&core.dispatch);
            while st.queue.is_empty() && !core.is_shutdown() {
                st = wait(&core.work_cv, st);
            }
            if st.queue.is_empty() {
                // Shutdown with a drained queue: notify waiters and exit.
                drop(st);
                core.drain_cv.notify_all();
                return;
            }
            let n = st.queue.len().min(core.cfg.max_inflight.max(1));
            let batch: Vec<Pending> = st.queue.drain(..n).collect();
            st.executing += batch.len();
            batch
        };

        // Load-testing knob: hold the executing slots for a fixed service
        // time so overload behaviour is observable at small scale.
        if let Some(hold) = core.cfg.inject_latency {
            std::thread::sleep(hold);
        }

        let n = batch.len();
        execute_batch(core, batch);

        let mut st = lock(&core.dispatch);
        st.executing = st.executing.saturating_sub(n);
        drop(st);
        core.drain_cv.notify_all();
    }
}

/// Execute one admitted batch: group by cuboid, fan groups out on the
/// process-wide pool, one group per worker claim (decode-cache locality).
fn execute_batch(core: &Arc<Core>, mut batch: Vec<Pending>) {
    batch.sort_by_key(|p| p.group);
    let mut groups: Vec<Vec<Pending>> = Vec::new();
    for p in batch {
        match groups.last_mut() {
            Some(g) if g.first().is_some_and(|f| f.group == p.group) => g.push(p),
            _ => groups.push(vec![p]),
        }
    }
    let next = std::sync::atomic::AtomicUsize::new(0);
    let helpers = core.cfg.batch_helpers.min(groups.len()).saturating_sub(1);
    tripro::pool::global().run_with(helpers, |_| {
        // `serve_one` contains engine panics itself; this is the backstop
        // for anything that escapes it on the *caller* participant, which
        // would otherwise unwind into (and kill) the batch loop. Pool
        // helpers are already contained by the pool's worker loop.
        let contained = catch_unwind(AssertUnwindSafe(|| loop {
            let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            let Some(group) = groups.get(i) else { return };
            for p in group {
                serve_one(core, p);
            }
        }));
        if contained.is_err() {
            obs::panic_counter("serve_batch").fetch_add(1, Ordering::Relaxed);
        }
    });
}

/// Execute a single admitted request and stream its response.
fn serve_one(core: &Core, p: &Pending) {
    // Root span for the whole request, keyed by the propagated v6 trace
    // id when the peer sent one (a coordinator's cluster-wide id), else
    // the wire request id. The engine's filter/refine/decode spans nest
    // under it; if the request exceeds the slow threshold the full tree
    // lands in the slow log.
    let trace_id = p.trace.map_or(p.request_id, |t| t.trace_id);
    let _req = obs::tracer().request(trace_id);
    let started = Instant::now();
    // Per-request cost attribution: a sampled trace executes against a
    // private stats block so its span summary reports this request's work
    // alone; the block is merged back into the cumulative counters after
    // execution, leaving StatsEx totals unchanged. Unsampled requests
    // write straight to the shared block exactly as before v6.
    let sampled = p.trace.is_some_and(|t| t.sampled) && obs::enabled();
    let local_stats = sampled.then(ExecStats::new);
    let stats = local_stats.as_ref().unwrap_or(&core.exec_stats);
    let qc = core.query_config(p.deadline.clone());
    let engine = Engine::new(&core.target, &core.source);
    // Panic containment: a panicking query (engine bug or injected via the
    // `serve.exec` failpoint) converts to a typed `Error::Internal` so it
    // flows through the ordinary failure path — accounted in the ledger,
    // answered over the wire, and the server keeps serving.
    let exec = catch_unwind(AssertUnwindSafe(|| -> Result<Reply, Error> {
        fault::failpoint(fault::SERVE_EXEC)?;
        match p.op {
            Op::Contains(pt) => PointQuery::new(&core.target)
                .containing(tripro_geom::vec3(pt[0], pt[1], pt[2]), &qc, stats)
                .map(Reply::Ids),
            Op::Intersect(t) => engine.intersect_one(t, &qc, stats).map(Reply::Ids),
            Op::Within(t, d) => engine.within_one(t, d, &qc, stats).map(Reply::Ids),
            Op::Nn(t) => engine
                .nn_one(t, &qc, stats)
                .map(|nn| Reply::Ids(nn.into_iter().collect())),
            Op::Knn(t, k) => engine.knn_one(t, k as usize, &qc, stats).map(Reply::Ids),
            Op::NnEx(t) => {
                let mut out = Vec::new();
                if let Some(c) = engine.nn_one(t, &qc, stats)? {
                    out.push((c, engine.pair_distance(t, c, &qc, stats)?));
                }
                Ok(Reply::Scored(out))
            }
            Op::KnnEx(t, k) => {
                let ids = engine.knn_one(t, k as usize, &qc, stats)?;
                let mut out = Vec::with_capacity(ids.len());
                for c in ids {
                    out.push((c, engine.pair_distance(t, c, &qc, stats)?));
                }
                Ok(Reply::Scored(out))
            }
        }
    }));
    let result: Result<Reply, Error> = match exec {
        Ok(r) => r,
        Err(payload) => {
            core.stats.record_panic();
            obs::panic_counter("serve_request").fetch_add(1, Ordering::Relaxed);
            Err(Error::Internal {
                context: "serve.request",
                message: fault::panic_message(payload.as_ref()),
            })
        }
    };
    let summary = local_stats.map(|local| {
        let snap = local.snapshot();
        core.exec_stats.merge_from(&snap);
        obs::SpanSummary::from_stats(trace_id, started.elapsed().as_nanos() as u64, &snap)
    });
    match result {
        Ok(reply) => {
            // Contains results are target ids (full store everywhere); all
            // other ops return source ids, remapped to the global id space
            // when this engine serves a shard partition.
            let pages = match reply {
                Reply::Ids(mut ids) => {
                    if !matches!(p.op, Op::Contains(_)) {
                        for id in &mut ids {
                            *id = core.global_id(*id);
                        }
                    }
                    protocol::pages_of(&ids)
                }
                Reply::Scored(mut items) => {
                    for (id, _) in &mut items {
                        *id = core.global_id(*id);
                    }
                    protocol::scored_pages_of(&items, false)
                }
            };
            let n = pages.len();
            for (i, page) in pages.iter().enumerate() {
                // The span summary rides the final page only.
                let s = if i + 1 == n { summary.as_ref() } else { None };
                p.writer.send_response_traced(p.request_id, page, s);
            }
            core.stats.record_completed();
            bump(&core.outcomes.completed);
        }
        Err(Error::DeadlineExceeded) => {
            core.stats.record_deadline_expired();
            bump(&core.outcomes.deadline_expired);
            p.writer.send_response(
                p.request_id,
                &Response::Error {
                    code: ErrorCode::DeadlineExceeded,
                    message: "deadline expired during refinement".to_string(),
                    retry_after_ms: 0,
                },
            );
        }
        Err(e) => {
            // Internal failures must still be accounted, or admitted
            // requests leak from the ledger (admitted ≠ accounted).
            core.stats.record_failed();
            bump(&core.outcomes.failed);
            p.writer.send_response(
                p.request_id,
                &Response::Error {
                    code: ErrorCode::Internal,
                    message: e.to_string(),
                    retry_after_ms: 0,
                },
            );
        }
    }
}
