//! OBB-tree: a bounding-volume hierarchy of *oriented* boxes over one
//! polyhedron's faces — the third intra-geometry index the paper's
//! introduction cites (Gottschalk et al.'s OBB-tree) alongside R-trees and
//! AABB-trees.
//!
//! Oriented boxes hug tilted geometry (vessel branches!) far more tightly
//! than axis-aligned ones, pruning more node pairs per traversal at the
//! price of a costlier overlap test (15-axis SAT vs 6 comparisons).

use std::sync::Arc;
use tripro_geom::{tri_tri_dist2, tri_tri_intersect, Obb, Triangle};

const LEAF_SIZE: usize = 4;

#[derive(Debug, Clone)]
struct ObbNode {
    bb: Obb,
    kind: NodeKind,
}

#[derive(Debug, Clone)]
enum NodeKind {
    Leaf { start: u32, end: u32 },
    Inner { left: u32, right: u32 },
}

/// A static OBB hierarchy over a triangle list. Like [`crate::AabbTree`],
/// the triangle buffer is shared behind an [`Arc`] and nodes are
/// index-based, so [`ObbTree::build_shared`] is zero-copy.
#[derive(Debug, Clone)]
pub struct ObbTree {
    tris: Arc<Vec<Triangle>>,
    order: Vec<u32>,
    nodes: Vec<ObbNode>,
    root: u32,
}

impl ObbTree {
    /// Build by recursive splitting along the dominant covariance axis of
    /// the contained triangle vertices (the classical OBB-tree recipe).
    pub fn build(tris: Vec<Triangle>) -> Self {
        Self::build_shared(Arc::new(tris))
    }

    /// Build over a shared triangle buffer without copying it.
    pub fn build_shared(tris: Arc<Vec<Triangle>>) -> Self {
        assert!(!tris.is_empty(), "cannot build an OBB-tree over zero faces");
        let mut order: Vec<u32> = (0..tris.len() as u32).collect();
        let mut nodes = Vec::with_capacity(2 * tris.len() / LEAF_SIZE + 2);
        let root = Self::build_rec(&tris, &mut order, 0, tris.len(), &mut nodes);
        Self {
            tris,
            order,
            nodes,
            root,
        }
    }

    /// The shared triangle buffer.
    pub fn shared_triangles(&self) -> &Arc<Vec<Triangle>> {
        &self.tris
    }

    fn fit(tris: &[Triangle], order: &[u32]) -> Obb {
        let pts: Vec<tripro_geom::Vec3> = order
            .iter()
            .flat_map(|&i| tris[i as usize].vertices())
            .collect();
        Obb::fit(&pts)
    }

    fn build_rec(
        tris: &[Triangle],
        order: &mut [u32],
        start: usize,
        end: usize,
        nodes: &mut Vec<ObbNode>,
    ) -> u32 {
        let bb = Self::fit(tris, &order[start..end]);
        if end - start <= LEAF_SIZE {
            nodes.push(ObbNode {
                bb,
                kind: NodeKind::Leaf {
                    start: start as u32,
                    end: end as u32,
                },
            });
            return (nodes.len() - 1) as u32;
        }
        // Split at the median centroid projection onto the box's major axis.
        let axis = bb.axes[0];
        let mid = (start + end) / 2;
        order[start..end].select_nth_unstable_by(mid - start, |&a, &b| {
            let ca = tris[a as usize].centroid().dot(axis);
            let cb = tris[b as usize].centroid().dot(axis);
            ca.total_cmp(&cb)
        });
        let left = Self::build_rec(tris, order, start, mid, nodes);
        let right = Self::build_rec(tris, order, mid, end, nodes);
        nodes.push(ObbNode {
            bb,
            kind: NodeKind::Inner { left, right },
        });
        (nodes.len() - 1) as u32
    }

    pub fn len(&self) -> usize {
        self.tris.len()
    }

    pub fn is_empty(&self) -> bool {
        false
    }

    /// Root bounding volume.
    pub fn bounds(&self) -> &Obb {
        &self.nodes[self.root as usize].bb
    }

    /// `true` when any face pair of the two trees intersects.
    pub fn intersects_tree(&self, other: &ObbTree, tests: &mut u64) -> bool {
        let mut stack = vec![(self.root, other.root)];
        while let Some((a, b)) = stack.pop() {
            let na = &self.nodes[a as usize];
            let nb = &other.nodes[b as usize];
            if !na.bb.intersects(&nb.bb) {
                continue;
            }
            match (&na.kind, &nb.kind) {
                (NodeKind::Leaf { start: s1, end: e1 }, NodeKind::Leaf { start: s2, end: e2 }) => {
                    for &i in &self.order[*s1 as usize..*e1 as usize] {
                        for &j in &other.order[*s2 as usize..*e2 as usize] {
                            *tests += 1;
                            if tri_tri_intersect(&self.tris[i as usize], &other.tris[j as usize]) {
                                return true;
                            }
                        }
                    }
                }
                (NodeKind::Inner { left, right }, _) => {
                    stack.push((*left, b));
                    stack.push((*right, b));
                }
                (_, NodeKind::Inner { left, right }) => {
                    stack.push((a, *left));
                    stack.push((a, *right));
                }
            }
        }
        false
    }

    /// Minimum squared distance between the trees' triangle sets, branch-
    /// and-bound with the SAT separation gap as the node-pair lower bound.
    /// `upper` seeds pruning; the result is `min(true d², upper)`.
    pub fn min_dist2_tree(&self, other: &ObbTree, upper: f64, tests: &mut u64) -> f64 {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        #[derive(PartialEq)]
        struct Key(f64);
        impl Eq for Key {}
        impl PartialOrd for Key {
            fn partial_cmp(&self, o: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(o))
            }
        }
        impl Ord for Key {
            fn cmp(&self, o: &Self) -> std::cmp::Ordering {
                self.0.total_cmp(&o.0)
            }
        }
        let mut best = upper;
        let mut heap = BinaryHeap::new();
        let g0 = self.nodes[self.root as usize]
            .bb
            .separation_gap(&other.nodes[other.root as usize].bb);
        heap.push((Reverse(Key(g0 * g0)), self.root, other.root));
        while let Some((Reverse(Key(lb2)), a, b)) = heap.pop() {
            if lb2 >= best {
                break;
            }
            let na = &self.nodes[a as usize];
            let nb = &other.nodes[b as usize];
            match (&na.kind, &nb.kind) {
                (NodeKind::Leaf { start: s1, end: e1 }, NodeKind::Leaf { start: s2, end: e2 }) => {
                    for &i in &self.order[*s1 as usize..*e1 as usize] {
                        for &j in &other.order[*s2 as usize..*e2 as usize] {
                            *tests += 1;
                            let d2 = tri_tri_dist2(&self.tris[i as usize], &other.tris[j as usize]);
                            if d2 < best {
                                best = d2;
                                if tripro_geom::is_exactly_zero(best) {
                                    return 0.0;
                                }
                            }
                        }
                    }
                }
                (NodeKind::Inner { left, right }, _) => {
                    for &c in &[*left, *right] {
                        let g = self.nodes[c as usize].bb.separation_gap(&nb.bb);
                        if g * g < best {
                            heap.push((Reverse(Key(g * g)), c, b));
                        }
                    }
                }
                (_, NodeKind::Inner { left, right }) => {
                    for &c in &[*left, *right] {
                        let g = na.bb.separation_gap(&other.nodes[c as usize].bb);
                        if g * g < best {
                            heap.push((Reverse(Key(g * g)), a, c));
                        }
                    }
                }
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tripro_geom::vec3;

    /// A tilted strip of triangles along direction (1, 1, 0).
    fn strip(n: usize, offset: tripro_geom::Vec3) -> Vec<Triangle> {
        let dir = vec3(1.0, 1.0, 0.0) * std::f64::consts::FRAC_1_SQRT_2;
        let perp = vec3(-1.0, 1.0, 0.0) * (0.2 * std::f64::consts::FRAC_1_SQRT_2);
        let mut out = Vec::new();
        for i in 0..n {
            let p = offset + dir * (i as f64 * 0.5);
            out.push(Triangle::new(p, p + dir * 0.5, p + perp));
            out.push(Triangle::new(p + dir * 0.5, p + dir * 0.5 + perp, p + perp));
        }
        out
    }

    #[test]
    fn build_and_bounds() {
        let t = ObbTree::build(strip(20, vec3(0.0, 0.0, 0.0)));
        assert_eq!(t.len(), 40);
        // The root OBB should be slim: its minor half-extent is tiny
        // compared to its major one (an AABB would be a fat square).
        let he = t.bounds().half_extent;
        assert!(he.x > 5.0, "major {he}");
        assert!(he.min_component() < 0.5, "minor {he}");
    }

    #[test]
    fn distance_matches_brute_force() {
        let a_tris = strip(10, vec3(0.0, 0.0, 0.0));
        let b_tris = strip(10, vec3(0.0, 0.0, 2.0));
        let brute = a_tris
            .iter()
            .flat_map(|x| b_tris.iter().map(move |y| tri_tri_dist2(x, y)))
            .fold(f64::INFINITY, f64::min);
        let ta = ObbTree::build(a_tris);
        let tb = ObbTree::build(b_tris);
        let mut n = 0;
        let d2 = ta.min_dist2_tree(&tb, f64::INFINITY, &mut n);
        assert!((d2 - brute).abs() < 1e-9, "obb {d2} vs brute {brute}");
        assert!((d2 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn intersection_detection() {
        let a = ObbTree::build(strip(10, vec3(0.0, 0.0, 0.0)));
        // Crossing triangle through the middle of the strip.
        let poker = ObbTree::build(vec![Triangle::new(
            vec3(1.8, 1.8, -1.0),
            vec3(1.8, 1.9, 1.0),
            vec3(1.9, 1.8, 1.0),
        )]);
        let mut n = 0;
        assert!(a.intersects_tree(&poker, &mut n));
        let far = ObbTree::build(strip(4, vec3(0.0, 0.0, 9.0)));
        let mut n2 = 0;
        assert!(!a.intersects_tree(&far, &mut n2));
        assert_eq!(n2, 0, "root OBBs alone must separate");
    }

    #[test]
    fn obb_prunes_diagonal_geometry_better_than_aabb() {
        // Two parallel diagonal strips close in AABB terms but well
        // separated: OBB-tree should resolve the distance with few
        // tri-tri tests.
        let a_tris = strip(40, vec3(0.0, 0.0, 0.0));
        let b_tris = strip(40, vec3(-2.0, 2.0, 0.0)); // shifted perpendicular
        let ta = ObbTree::build(a_tris.clone());
        let tb = ObbTree::build(b_tris.clone());
        let mut obb_tests = 0;
        let d_obb = ta.min_dist2_tree(&tb, f64::INFINITY, &mut obb_tests);
        let aabb_a = crate::AabbTree::build(a_tris);
        let aabb_b = crate::AabbTree::build(b_tris);
        let mut aabb_tests = 0;
        let d_aabb = aabb_a.min_dist2_tree(&aabb_b, f64::INFINITY, &mut aabb_tests);
        assert!((d_obb - d_aabb).abs() < 1e-9);
        assert!(
            obb_tests <= aabb_tests,
            "obb {obb_tests} vs aabb {aabb_tests} tri-tri tests"
        );
    }

    #[test]
    fn upper_seed_respected() {
        let ta = ObbTree::build(strip(5, vec3(0.0, 0.0, 0.0)));
        let tb = ObbTree::build(strip(5, vec3(0.0, 0.0, 10.0)));
        let mut n = 0;
        assert_eq!(ta.min_dist2_tree(&tb, 25.0, &mut n), 25.0);
    }

    #[test]
    #[should_panic]
    fn empty_build_panics() {
        let _ = ObbTree::build(vec![]);
    }

    #[test]
    fn build_shared_is_zero_copy() {
        let buf = Arc::new(strip(10, vec3(0.0, 0.0, 0.0)));
        let t = ObbTree::build_shared(Arc::clone(&buf));
        assert!(Arc::ptr_eq(t.shared_triangles(), &buf));
        let other = ObbTree::build(strip(10, vec3(0.0, 0.0, 2.0)));
        let owned = ObbTree::build(buf.as_ref().clone());
        let (mut n1, mut n2) = (0, 0);
        let d_shared = t.min_dist2_tree(&other, f64::INFINITY, &mut n1);
        let d_owned = owned.min_dist2_tree(&other, f64::INFINITY, &mut n2);
        assert_eq!(d_shared, d_owned);
        assert_eq!(n1, n2);
    }
}
