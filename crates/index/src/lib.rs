//! # tripro-index
//!
//! Spatial indexes for 3DPro: the global R-tree over object MBBs used by the
//! filter step (paper §4), and the per-object AABB-tree (BVH) over decoded
//! faces used by the intra-geometry acceleration (§5.1).

pub mod aabbtree;
pub mod obbtree;
pub mod rtree;

pub use aabbtree::AabbTree;
pub use obbtree::ObbTree;
pub use rtree::{RTree, TreeStats, WithinResult};
